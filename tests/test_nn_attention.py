"""Tests for the transformer substrate (paper Section VI extension)."""

import numpy as np
import pytest

from repro.core.sensitivity import empirical_lipschitz
from repro.exceptions import ShapeError
from repro.nn import (
    Adam,
    LayerNorm,
    MSELoss,
    MultiHeadSelfAttention,
    Sequential,
    Trainer,
    TransformerBlock,
)


def _numeric_check(module, x, rng, eps=1e-5, tol=2e-4, samples=4):
    """Central-difference parameter gradcheck for 3-D-input modules."""
    loss = MSELoss()
    target = rng.standard_normal(module(x).shape)
    module.zero_grad()
    loss(module(x), target)
    module.backward(loss.backward())
    for name, param in module.named_parameters():
        flat = param.data.reshape(-1)
        grad = param.grad.reshape(-1)
        for index in rng.choice(flat.size, size=min(samples, flat.size), replace=False):
            original = flat[index]
            flat[index] = original + eps
            upper = loss(module(x), target)
            flat[index] = original - eps
            lower = loss(module(x), target)
            flat[index] = original
            numeric = (upper - lower) / (2 * eps)
            denom = max(abs(numeric), abs(grad[index]), 1e-5)
            assert abs(numeric - grad[index]) / denom < tol, (
                f"{name}[{index}]: {grad[index]:.6g} vs {numeric:.6g}"
            )


def _f64(module):
    for param in module.parameters():
        param.data = param.data.astype(np.float64)
        param.grad = param.grad.astype(np.float64)
    return module


# -- LayerNorm --------------------------------------------------------------


def test_layernorm_normalizes(rng):
    layer = LayerNorm(16)
    x = rng.standard_normal((4, 7, 16)) * 5.0 + 3.0
    out = layer(x)
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
    assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_layernorm_rejects_wrong_dim(rng):
    with pytest.raises(ShapeError):
        LayerNorm(8)(np.zeros((2, 3, 9)))


def test_layernorm_gradients(rng):
    layer = _f64(LayerNorm(6))
    _numeric_check(layer, rng.standard_normal((3, 4, 6)), rng)


# -- attention ----------------------------------------------------------------


def test_attention_shape(rng):
    attn = MultiHeadSelfAttention(12, 3, rng=rng)
    out = attn(rng.standard_normal((2, 5, 12)).astype(np.float32))
    assert out.shape == (2, 5, 12)


def test_attention_rejects_bad_heads():
    with pytest.raises(ShapeError):
        MultiHeadSelfAttention(10, 3)


def test_attention_rejects_bad_input(rng):
    attn = MultiHeadSelfAttention(8, 2, rng=rng)
    with pytest.raises(ShapeError):
        attn(np.zeros((2, 8)))


def test_attention_gradients(rng):
    attn = _f64(MultiHeadSelfAttention(8, 2, rng=rng))
    _numeric_check(attn, rng.standard_normal((2, 4, 8)), rng, tol=1e-3)


def test_attention_permutation_equivariant(rng):
    """Self-attention commutes with token permutations."""
    attn = MultiHeadSelfAttention(8, 2, rng=rng)
    x = rng.standard_normal((1, 6, 8)).astype(np.float32)
    permutation = rng.permutation(6)
    direct = attn(x[:, permutation])
    permuted = attn(x)[:, permutation]
    assert np.allclose(direct, permuted, atol=1e-5)


# -- transformer block ----------------------------------------------------------


def test_transformer_block_shape(rng):
    block = TransformerBlock(16, 4, rng=rng)
    out = block(rng.standard_normal((2, 5, 16)).astype(np.float32))
    assert out.shape == (2, 5, 16)


def test_transformer_block_gradients(rng):
    block = _f64(TransformerBlock(8, 2, mlp_ratio=2, rng=rng))
    _numeric_check(block, rng.standard_normal((2, 3, 8)), rng, tol=2e-3, samples=3)


def test_transformer_trains_on_sequence_task(rng):
    """A 1-block transformer learns a smoothing map over sequences."""
    model = Sequential(TransformerBlock(8, 2, mlp_ratio=2, rng=rng))
    inputs = rng.uniform(-1, 1, (64, 6, 8)).astype(np.float32)
    # target: each token moves toward the sequence mean (attention-friendly)
    targets = (0.5 * inputs + 0.5 * inputs.mean(axis=1, keepdims=True)).astype(np.float32)
    trainer = Trainer(model, MSELoss(), Adam(model.parameters(), lr=3e-3))
    history = trainer.fit(inputs, targets, epochs=30, batch_size=16, rng=rng)
    assert history.train_loss[-1] < history.train_loss[0] * 0.5


def test_empirical_lipschitz_on_transformer(rng):
    """The Section VI gap: no closed-form bound, but a measurable one."""
    model = Sequential(TransformerBlock(8, 2, mlp_ratio=2, rng=rng))
    model.eval()
    inputs = rng.uniform(-1, 1, (8, 4, 8)).astype(np.float32)
    lipschitz = empirical_lipschitz(model, inputs, rng=rng, n_probes=8)
    assert lipschitz > 0
    # sanity: small perturbations scale roughly within the estimate
    delta = rng.standard_normal(inputs.shape).astype(np.float32)
    delta *= 1e-5 / np.linalg.norm(delta.reshape(len(inputs), -1), axis=1).max()
    moved = model(inputs + delta) - model(inputs)
    achieved = np.linalg.norm(moved.reshape(len(inputs), -1), axis=1).max()
    assert achieved <= lipschitz * 1e-5 * 3.0


def test_empirical_lipschitz_matches_gain_on_linear_model(rng):
    """On a pure linear map, the probe approaches the spectral norm."""
    from repro.nn import Identity, Linear

    layer = Linear(6, 6, bias=False, rng=rng)
    model = Sequential(layer, Identity())
    model.eval()
    sigma = np.linalg.svd(layer.weight.data, compute_uv=False)[0]
    inputs = rng.uniform(-1, 1, (4, 6)).astype(np.float32)
    estimate = empirical_lipschitz(model, inputs, rng=rng, n_probes=200)
    assert estimate <= sigma * (1 + 1e-3)
    assert estimate > 0.5 * sigma
