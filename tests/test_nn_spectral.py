"""Tests for spectral-norm estimation and parameterized spectral norm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import PowerIterationState, spectral_norm, spectral_norm_exact
from repro.nn.linear import SpectralLinear


@given(
    rows=st.integers(1, 12),
    cols=st.integers(1, 12),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_power_iteration_matches_svd(rows, cols, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((rows, cols))
    estimate = spectral_norm(matrix, n_iterations=500, tol=1e-12)
    exact = spectral_norm_exact(matrix)
    assert np.isclose(estimate, exact, rtol=1e-5, atol=1e-9)


def test_spectral_norm_zero_matrix():
    assert spectral_norm(np.zeros((4, 4))) == 0.0
    assert spectral_norm_exact(np.zeros((4, 4))) == 0.0


def test_spectral_norm_empty_matrix():
    assert spectral_norm(np.zeros((0, 3))) == 0.0


def test_spectral_norm_rejects_non_2d():
    with pytest.raises(ValueError):
        spectral_norm(np.zeros((2, 2, 2)))


def test_spectral_norm_rank_one():
    u = np.array([3.0, 4.0])
    v = np.array([1.0, 0.0, 0.0])
    matrix = np.outer(u, v)
    assert np.isclose(spectral_norm(matrix), 5.0, rtol=1e-8)


def test_power_iteration_state_tracks_sigma(rng):
    matrix = rng.standard_normal((8, 8))
    state = PowerIterationState.for_matrix(matrix, rng)
    sigma = state.step(matrix, n_steps=300)
    assert np.isclose(sigma, spectral_norm_exact(matrix), rtol=1e-6)


def test_power_iteration_zero_matrix(rng):
    state = PowerIterationState.for_matrix(np.ones((3, 3)), rng)
    assert state.step(np.zeros((3, 3))) == 0.0


def test_spectral_linear_alpha_is_exact_spectral_norm(rng):
    for alpha in (0.5, 1.0, 2.5):
        layer = SpectralLinear(16, 12, rng=rng, alpha_init=alpha)
        sigma = spectral_norm_exact(layer.effective_weight())
        assert np.isclose(sigma, alpha, rtol=1e-6)


def test_spectral_linear_invariant_survives_training(trained_spectral_mlp):
    """After real training, sigma(W_eff) == alpha for every PSN layer."""
    for layer in trained_spectral_mlp:
        if isinstance(layer, SpectralLinear):
            sigma = spectral_norm_exact(layer.effective_weight())
            assert np.isclose(sigma, layer.spectral_alpha, rtol=1e-5)
