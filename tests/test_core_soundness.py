"""Property tests for the paper's central claim: bounds cover achieved error.

These are the library's most important tests: for random and trained
networks, under every quantization format and input-perturbation level,
the predicted Eq. (3) bound must sit above the measured QoI error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ErrorFlowAnalyzer
from repro.nn import Identity, Linear, ReLU, Sequential, Tanh
from repro.quant import BF16, FP16, INT8, TF32, materialize, quantize_model

_FORMATS = (TF32, FP16, BF16, INT8)


def _random_mlp(rng, n_layers, width):
    dims = [int(rng.integers(3, width))] + [int(rng.integers(3, width)) for __ in range(n_layers)]
    layers = []
    for i in range(n_layers):
        layers.append(Linear(dims[i], dims[i + 1], rng=rng))
        layers.append(Tanh() if i % 2 == 0 else ReLU())
    layers[-1] = Identity()
    model = Sequential(*layers)
    model.eval()
    return model, dims[0]


@given(
    seed=st.integers(0, 2**31 - 1),
    n_layers=st.integers(1, 4),
    fmt_index=st.integers(0, 3),
    log_noise=st.integers(-6, -2),
)
@settings(max_examples=50, deadline=None)
def test_combined_bound_covers_achieved_error(seed, n_layers, fmt_index, log_noise):
    """Eq. (3) with a safety margin covers arbitrary random networks.

    The paper's quantization term is a CLT concentration estimate; for
    the narrow random layers generated here (a few tens of neurons) the
    fluctuation around the mean can exceed the paper-exact value, so this
    adversarial property test uses the library's ``quant_safety`` margin.
    The paper-exact default is validated on the trained workloads below
    and in the figure benchmarks.
    """
    rng = np.random.default_rng(seed)
    model, n_in = _random_mlp(rng, n_layers, width=24)
    fmt = _FORMATS[fmt_index]
    analyzer = ErrorFlowAnalyzer(model, quant_safety=2.0)
    quantized = quantize_model(model, fmt)

    x = rng.uniform(-1, 1, (32, n_in)).astype(np.float32)
    noise_amplitude = 10.0**log_noise
    noise = rng.uniform(-noise_amplitude, noise_amplitude, x.shape).astype(np.float32)

    reference = materialize(model)(x)
    perturbed = quantized(x + noise)
    achieved = np.linalg.norm(perturbed - reference, axis=1).max()
    input_l2 = np.linalg.norm(noise, axis=1).max()
    bound = analyzer.combined_bound(input_l2, fmt)
    assert achieved <= bound * (1 + 1e-6)


def test_quant_safety_scales_quantization_term(trained_spectral_mlp):
    paper_exact = ErrorFlowAnalyzer(trained_spectral_mlp)
    conservative = ErrorFlowAnalyzer(trained_spectral_mlp, quant_safety=2.0)
    assert conservative.quantization_bound(FP16) > paper_exact.quantization_bound(FP16)
    # the compression term is deterministic and unaffected
    assert conservative.compression_bound(1e-3) == paper_exact.compression_bound(1e-3)


def test_quant_safety_validation(trained_spectral_mlp):
    from repro.exceptions import ToleranceError

    with pytest.raises(ToleranceError):
        ErrorFlowAnalyzer(trained_spectral_mlp, quant_safety=0.0)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_compression_only_bound_covers_achieved(seed):
    rng = np.random.default_rng(seed)
    model, n_in = _random_mlp(rng, 3, width=20)
    analyzer = ErrorFlowAnalyzer(model)
    x = rng.uniform(-1, 1, (16, n_in)).astype(np.float32)
    noise = rng.uniform(-1e-3, 1e-3, x.shape).astype(np.float32)
    achieved = np.linalg.norm(model(x + noise) - model(x), axis=1).max()
    bound = analyzer.compression_bound(np.linalg.norm(noise, axis=1).max())
    assert achieved <= bound * (1 + 1e-6)


@pytest.mark.parametrize("fmt", _FORMATS, ids=lambda f: f.name)
def test_quantization_bound_on_trained_model(trained_spectral_mlp, fmt, rng):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    quantized = quantize_model(trained_spectral_mlp, fmt)
    x = rng.uniform(-1, 1, (128, 5)).astype(np.float32)
    reference = materialize(trained_spectral_mlp)(x)
    achieved = np.linalg.norm(quantized(x) - reference, axis=1).max()
    bound = analyzer.quantization_bound(fmt)
    assert achieved <= bound
    # the bound should be meaningful, not vacuous: within ~2 orders here
    assert bound < max(achieved, 1e-12) * 200


def test_linf_bound_covers_linf_error(trained_spectral_mlp, rng):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    quantized = quantize_model(trained_spectral_mlp, FP16)
    x = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    eps = 1e-3
    noise = rng.uniform(-eps, eps, x.shape).astype(np.float32)
    reference = materialize(trained_spectral_mlp)(x)
    achieved = np.abs(quantized(x + noise) - reference).max()
    assert achieved <= analyzer.combined_bound_linf(eps, FP16)


def test_per_feature_bounds_cover_per_feature_error(trained_spectral_mlp, rng):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    quantized = quantize_model(trained_spectral_mlp, FP16)
    x = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    eps = 1e-4
    noise = rng.uniform(-eps, eps, x.shape).astype(np.float32)
    reference = materialize(trained_spectral_mlp)(x)
    per_feature_achieved = np.abs(quantized(x + noise) - reference).max(axis=0)
    input_l2 = np.linalg.norm(noise, axis=1).max()
    per_feature_bounds = analyzer.per_feature_bounds(input_l2, FP16)
    assert np.all(per_feature_achieved <= per_feature_bounds)


def test_per_feature_bounds_below_global(trained_spectral_mlp):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    global_bound = analyzer.combined_bound(1e-3, FP16)
    per_feature = analyzer.per_feature_bounds(1e-3, FP16)
    assert np.all(per_feature <= global_bound + 1e-12)


def test_inversion_is_exact(trained_spectral_mlp):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    tolerance = 10.0 * analyzer.quantization_bound(FP16)
    allowed = analyzer.invert_compression_tolerance(tolerance, FP16)
    assert analyzer.combined_bound(allowed, FP16) == pytest.approx(tolerance, rel=1e-9)


def test_inversion_rejects_infeasible(trained_spectral_mlp):
    from repro.exceptions import ToleranceError

    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    quant_bound = analyzer.quantization_bound(INT8)
    with pytest.raises(ToleranceError):
        analyzer.invert_compression_tolerance(quant_bound * 0.5, INT8)


# -- per-layer envelope soundness (audit layer substrate) --------------------


@given(
    fmt_index=st.integers(0, 3),
    log_noise=st.integers(-6, -2),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_layer_envelope_covers_observed_layerwise_error(
    trained_spectral_mlp, fmt_index, log_noise, seed
):
    """Property: at every segment end, the observed activation error of
    the perturbed quantized path stays under the cumulative Inequality
    (3) envelope — the soundness claim the audit layer enforces at
    runtime, across all Table-I formats and perturbation magnitudes.
    """
    from repro.obs.audit import LayerwiseErrorRecorder, VERDICT_VIOLATION

    fmt = _FORMATS[fmt_index]
    quantized = quantize_model(trained_spectral_mlp, fmt)
    recorder = LayerwiseErrorRecorder(trained_spectral_mlp, quantized)

    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, (32, 5)).astype(np.float32)
    amplitude = 10.0**log_noise
    noise = rng.uniform(-amplitude, amplitude, x.shape).astype(np.float32)

    record = recorder.audit(x, x + noise)
    assert record.layerwise and len(record.layers) == 3
    for layer in record.layers:
        assert layer.verdict != VERDICT_VIOLATION
        assert layer.observed_l2 <= layer.predicted_bound * (1 + 1e-6)


def test_layer_envelope_matches_direct_trajectory(trained_spectral_mlp):
    """The analyzer's per-layer bounds equal the raw recurrence
    trajectory from :func:`propagate_chain_trajectory`."""
    from repro.core.bounds import propagate_chain_trajectory, step_sizes_for

    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    via_analyzer = analyzer.layer_bounds(1e-3, FP16)
    trajectory = propagate_chain_trajectory(
        analyzer.spec,
        input_error_l2=1e-3,
        steps=step_sizes_for(analyzer.spec, FP16),
    )
    assert via_analyzer == pytest.approx([state.delta for state in trajectory])


def test_layer_bounds_reject_residual_graphs(rng):
    from repro.exceptions import ConfigurationError
    from repro.nn.residual import ResidualBlock

    model = Sequential(
        Linear(4, 4, rng=rng),
        ResidualBlock(Sequential(Linear(4, 4, rng=rng), Tanh())),
        Identity(),
    )
    model.eval()
    analyzer = ErrorFlowAnalyzer(model)
    with pytest.raises(ConfigurationError):
        analyzer.layer_bounds(1e-3, FP16)
