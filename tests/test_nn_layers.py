"""Tests for dense/conv/pooling layers: shapes, values and exact gradients."""

import numpy as np
import pytest
from scipy import signal

from repro.exceptions import ShapeError
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    MSELoss,
    ReLU,
    Sequential,
    SpectralConv2d,
    SpectralLinear,
    Tanh,
)
from repro.nn.functional import col2im, conv_output_size, im2col


def _to_float64(model):
    for param in model.parameters():
        param.data = param.data.astype(np.float64)
        param.grad = param.grad.astype(np.float64)
    return model


def _converge_power_states(model, n_steps: int = 200):
    """Drive every spectral layer's power iteration to its fixed point.

    Single-step spectral normalization is only differentiable *at* the
    power-iteration fixed point; gradchecking a half-converged state
    measures estimator drift, not gradients.
    """
    for module in model.modules():
        power = getattr(module, "_power", None)
        if power is None:
            continue
        if isinstance(module, SpectralConv2d):
            power.step(module.matricized_weight(), n_steps=n_steps)
        else:
            power.step(module.raw_weight.data, n_steps=n_steps)


def _numeric_gradient_check(model, x, loss, target, rng, eps=1e-5, tol=1e-4):
    """Compare analytic parameter gradients against central differences."""
    _converge_power_states(model)
    model.train()
    model.zero_grad()
    loss(model(x), target)
    model.backward(loss.backward())
    for name, param in model.named_parameters():
        flat = param.data.reshape(-1)
        grad = param.grad.reshape(-1)
        for index in rng.choice(flat.size, size=min(4, flat.size), replace=False):
            original = flat[index]
            flat[index] = original + eps
            upper = loss(model(x), target)
            flat[index] = original - eps
            lower = loss(model(x), target)
            flat[index] = original
            numeric = (upper - lower) / (2 * eps)
            # The absolute floor absorbs central-difference noise on
            # exactly-zero gradients (e.g. a conv bias ahead of BN).
            denom = max(abs(numeric), abs(grad[index]), 1e-5)
            assert abs(numeric - grad[index]) / denom < tol, (
                f"{name}[{index}]: analytic {grad[index]:.6g} vs numeric {numeric:.6g}"
            )


# -- Linear ----------------------------------------------------------------


def test_linear_forward_matches_matmul(rng):
    layer = Linear(5, 3, rng=rng)
    x = rng.standard_normal((7, 5)).astype(np.float32)
    expected = x @ layer.weight.data.T + layer.bias.data
    assert np.allclose(layer(x), expected)


def test_linear_no_bias(rng):
    layer = Linear(5, 3, bias=False, rng=rng)
    assert layer.bias is None
    assert layer.effective_bias() is None


def test_linear_rejects_wrong_width(rng):
    layer = Linear(5, 3, rng=rng)
    with pytest.raises(ShapeError):
        layer(np.zeros((2, 4)))


def test_linear_rejects_bad_dims():
    with pytest.raises(ShapeError):
        Linear(0, 3)


def test_linear_gradients(rng):
    model = _to_float64(Sequential(Linear(5, 7, rng=rng), Tanh(), Linear(7, 3, rng=rng)))
    x = rng.standard_normal((6, 5))
    target = rng.standard_normal((6, 3))
    _numeric_gradient_check(model, x, MSELoss(), target, rng)


def test_linear_unknown_init(rng):
    with pytest.raises(ValueError, match="unknown weight_init"):
        Linear(3, 3, rng=rng, weight_init="nope")


# -- SpectralLinear ---------------------------------------------------------


def test_spectral_linear_effective_weight_has_alpha_norm(rng):
    layer = SpectralLinear(10, 8, rng=rng, alpha_init=1.7)
    sigma = np.linalg.svd(layer.effective_weight(), compute_uv=False)[0]
    assert np.isclose(sigma, 1.7, rtol=1e-5)


def test_spectral_linear_eval_matches_effective_weight(rng):
    layer = SpectralLinear(6, 4, rng=rng)
    layer.eval()
    x = rng.standard_normal((3, 6)).astype(np.float32)
    expected = x @ layer.effective_weight().T.astype(np.float32) + layer.bias.data
    assert np.allclose(layer(x), expected, atol=1e-6)


def test_spectral_linear_gradients(rng):
    model = _to_float64(
        Sequential(SpectralLinear(4, 6, rng=rng), Tanh(), SpectralLinear(6, 2, rng=rng))
    )
    x = rng.standard_normal((5, 4))
    target = rng.standard_normal((5, 2))
    # Spectral-normalization gradients are exact only at the power-iteration
    # fixed point; warm-started vectors give a tight approximation.
    _numeric_gradient_check(model, x, MSELoss(), target, rng, tol=5e-2)


def test_spectral_linear_eval_cache_invalidates_on_weight_change(rng):
    layer = SpectralLinear(6, 6, rng=rng)
    layer.eval()
    x = rng.standard_normal((2, 6)).astype(np.float32)
    before = layer(x)
    layer.raw_weight.data = layer.raw_weight.data * 2.0  # new array object
    after = layer(x)
    # sigma rescales with the weights, so the normalized map is unchanged
    assert np.allclose(before, after, atol=1e-6)


# -- im2col / col2im ----------------------------------------------------------


def test_conv_output_size():
    assert conv_output_size(8, 3, 1, 1) == 8
    assert conv_output_size(8, 3, 2, 1) == 4
    assert conv_output_size(7, 3, 2, 0) == 3


def test_im2col_shapes(rng):
    x = rng.standard_normal((2, 3, 8, 8))
    cols, (oh, ow) = im2col(x, (3, 3), stride=1, padding=1)
    assert (oh, ow) == (8, 8)
    assert cols.shape == (2 * 64, 3 * 9)


def test_col2im_is_adjoint_of_im2col(rng):
    """<im2col(x), y> == <x, col2im(y)> — exact adjointness."""
    x = rng.standard_normal((2, 3, 6, 6))
    cols, __ = im2col(x, (3, 3), stride=2, padding=1)
    y = rng.standard_normal(cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * col2im(y, x.shape, (3, 3), stride=2, padding=1)))
    assert np.isclose(lhs, rhs, rtol=1e-10)


# -- Conv2d -------------------------------------------------------------------


def test_conv2d_matches_scipy_correlate(rng):
    layer = Conv2d(2, 4, 3, stride=1, padding=1, rng=rng)
    x = rng.standard_normal((1, 2, 9, 9)).astype(np.float64)
    out = layer(x)
    for out_channel in range(4):
        expected = np.zeros((9, 9))
        for in_channel in range(2):
            expected += signal.correlate2d(
                x[0, in_channel], layer.weight.data[out_channel, in_channel], mode="same"
            )
        expected += layer.bias.data[out_channel]
        assert np.allclose(out[0, out_channel], expected, atol=1e-5)


def test_conv2d_stride_and_shape(rng):
    layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
    out = layer(rng.standard_normal((4, 3, 16, 16)).astype(np.float32))
    assert out.shape == (4, 8, 8, 8)


def test_conv2d_rejects_wrong_channels(rng):
    with pytest.raises(ShapeError):
        Conv2d(3, 8, 3, rng=rng)(np.zeros((1, 4, 8, 8)))


def test_conv2d_gradients(rng):
    model = _to_float64(
        Sequential(Conv2d(2, 4, 3, padding=1, rng=rng), ReLU(), GlobalAvgPool2d(), Linear(4, 3, rng=rng))
    )
    x = rng.standard_normal((3, 2, 6, 6))
    labels = rng.integers(0, 3, size=3)
    _numeric_gradient_check(model, x, CrossEntropyLoss(), labels, rng)


def test_conv2d_matricized_roundtrip(rng):
    layer = Conv2d(3, 5, 3, rng=rng)
    matrix = layer.matricized_weight()
    assert matrix.shape == (5, 27)
    layer.set_matricized_weight(matrix * 2.0)
    assert np.allclose(layer.matricized_weight(), matrix * 2.0)
    with pytest.raises(ShapeError):
        layer.set_matricized_weight(np.zeros((5, 5)))


def test_spectral_conv_effective_weight_norm(rng):
    layer = SpectralConv2d(3, 6, 3, rng=rng, alpha_init=0.9)
    sigma = np.linalg.svd(layer.effective_weight(), compute_uv=False)[0]
    assert np.isclose(sigma, 0.9, rtol=1e-5)


def test_spectral_conv_gradients(rng):
    model = _to_float64(
        Sequential(
            SpectralConv2d(2, 3, 3, padding=1, rng=rng),
            Tanh(),
            GlobalAvgPool2d(),
            Linear(3, 2, rng=rng),
        )
    )
    x = rng.standard_normal((3, 2, 6, 6))
    target = rng.standard_normal((3, 2))
    _numeric_gradient_check(model, x, MSELoss(), target, rng, tol=5e-2)


# -- Pooling ------------------------------------------------------------------


def test_maxpool_values(rng):
    pool = MaxPool2d(2)
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    out = pool(x)
    assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_with_padding_handles_negatives():
    pool = MaxPool2d(3, stride=2, padding=1)
    x = -np.ones((1, 1, 4, 4))
    out = pool(x)
    # Padded cells must not win the max: output stays -1 everywhere.
    assert np.all(out == -1.0)


def test_maxpool_gradients(rng):
    model = _to_float64(Sequential(MaxPool2d(2), GlobalAvgPool2d(), Linear(2, 2)))
    x = rng.standard_normal((2, 2, 4, 4))
    target = rng.standard_normal((2, 2))
    _numeric_gradient_check(model, x, MSELoss(), target, rng)


def test_avgpool_values():
    pool = AvgPool2d(2)
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    out = pool(x)
    assert np.array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_global_avgpool(rng):
    x = rng.standard_normal((3, 5, 4, 4))
    out = GlobalAvgPool2d()(x)
    assert out.shape == (3, 5)
    assert np.allclose(out, x.mean(axis=(2, 3)))


def test_flatten_roundtrip(rng):
    layer = Flatten()
    x = rng.standard_normal((4, 3, 2, 2))
    out = layer(x)
    assert out.shape == (4, 12)
    grad = layer.backward(out)
    assert grad.shape == x.shape


def test_pooling_rejects_non_4d():
    with pytest.raises(ShapeError):
        MaxPool2d(2)(np.zeros((3, 4)))
    with pytest.raises(ShapeError):
        GlobalAvgPool2d()(np.zeros((3, 4)))


# -- BatchNorm ----------------------------------------------------------------


def test_batchnorm_normalizes_in_training(rng):
    bn = BatchNorm2d(3)
    x = rng.standard_normal((8, 3, 5, 5)) * 4.0 + 2.0
    out = bn(x)
    assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
    assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)


def test_batchnorm_eval_uses_running_stats(rng):
    bn = BatchNorm2d(3)
    x = rng.standard_normal((16, 3, 5, 5)) * 2.0 + 1.0
    for __ in range(30):
        bn(x)
    bn.eval()
    out = bn(x)
    assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=0.05)


def test_batchnorm_gradients(rng):
    model = _to_float64(
        Sequential(Conv2d(2, 3, 3, padding=1, rng=rng), BatchNorm2d(3), GlobalAvgPool2d(), Linear(3, 2, rng=rng))
    )
    x = rng.standard_normal((4, 2, 5, 5))
    target = rng.standard_normal((4, 2))
    _numeric_gradient_check(model, x, MSELoss(), target, rng)
