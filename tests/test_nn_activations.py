"""Tests for activation layers: values, derivatives, Lipschitz constants."""

import numpy as np
import pytest

from repro.nn import (
    ACTIVATIONS,
    GELU,
    Identity,
    LeakyReLU,
    PReLU,
    ReLU,
    Sigmoid,
    Tanh,
    make_activation,
)


def _numeric_derivative(activation, x, eps=1e-6):
    return (activation.forward(x + eps) - activation.forward(x - eps)) / (2 * eps)


@pytest.mark.parametrize("name", sorted(ACTIVATIONS))
def test_registry_instantiates(name):
    activation = make_activation(name)
    out = activation(np.linspace(-2, 2, 11))
    assert out.shape == (11,)


def test_make_activation_unknown():
    with pytest.raises(ValueError, match="unknown activation"):
        make_activation("swishish")


@pytest.mark.parametrize("name", sorted(ACTIVATIONS))
def test_backward_matches_numeric_derivative(name, rng):
    activation = make_activation(name)
    x = rng.standard_normal(64)
    activation.forward(x)
    analytic = activation.backward(np.ones_like(x))
    numeric = _numeric_derivative(make_activation(name), x)
    # Kinks (ReLU at 0) can disagree pointwise; our samples avoid exact 0.
    assert np.allclose(analytic, numeric, atol=1e-4)


@pytest.mark.parametrize("name", sorted(ACTIVATIONS))
def test_lipschitz_bounds_numeric_derivative(name, rng):
    activation = make_activation(name)
    x = rng.standard_normal(2000) * 3.0
    numeric = _numeric_derivative(activation, x)
    assert np.max(np.abs(numeric)) <= activation.lipschitz + 1e-3


def test_relu_values():
    out = ReLU()(np.array([-1.0, 0.0, 2.0]))
    assert np.array_equal(out, [0.0, 0.0, 2.0])


def test_leaky_relu_slope():
    layer = LeakyReLU(0.1)
    out = layer(np.array([-10.0, 10.0]))
    assert np.allclose(out, [-1.0, 10.0])
    assert layer.lipschitz == 1.0


def test_leaky_relu_lipschitz_above_one():
    assert LeakyReLU(2.0).lipschitz == 2.0


def test_prelu_learns_slope(rng):
    layer = PReLU(init_slope=0.2)
    x = np.array([[-2.0, 3.0]])
    layer(x)
    layer.backward(np.ones_like(x))
    # gradient wrt slope is sum over negative inputs of grad * x = -2
    assert np.isclose(layer.slope.grad[0], -2.0)


def test_prelu_lipschitz_tracks_slope():
    layer = PReLU(init_slope=1.5)
    assert layer.lipschitz == 1.5
    layer.slope.data[0] = 0.3
    assert layer.lipschitz == 1.0


def test_tanh_bounded():
    out = Tanh()(np.array([-100.0, 100.0]))
    assert np.allclose(out, [-1.0, 1.0])


def test_sigmoid_lipschitz_quarter():
    assert Sigmoid().lipschitz == 0.25


def test_gelu_matches_reference():
    from scipy import special

    x = np.linspace(-4, 4, 101)
    exact = 0.5 * x * (1.0 + special.erf(x / np.sqrt(2.0)))
    approx = GELU()(x)
    assert np.allclose(approx, exact, atol=2e-3)


def test_identity_passthrough(rng):
    x = rng.standard_normal(10)
    layer = Identity()
    assert np.array_equal(layer(x), x)
    assert np.array_equal(layer.backward(x), x)
