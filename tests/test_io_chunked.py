"""Tests for chunked array storage and the reporting helpers."""

import numpy as np
import pytest

from repro.compress import ErrorBoundMode
from repro.exceptions import CompressionError
from repro.io import (
    ChunkedArrayReader,
    ChunkedArrayWriter,
    DatasetStore,
    read_chunked,
    write_chunked,
)


@pytest.fixture
def snapshots(rng):
    """A (12, 32, 32) stack of smooth time frames."""
    grid = np.linspace(0, 2 * np.pi, 32)
    frames = [
        np.sin(grid[None, :] + 0.2 * t) * np.cos(grid[:, None]) for t in range(12)
    ]
    return np.stack(frames).astype(np.float32)


def test_chunked_roundtrip(tmp_path, snapshots):
    store = DatasetStore(str(tmp_path))
    n_chunks = write_chunked(store, "series", snapshots, tolerance=1e-3, chunk_size=5)
    assert n_chunks == 3  # 5 + 5 + 2
    loaded = read_chunked(store, "series")
    assert loaded.shape == snapshots.shape
    assert np.abs(loaded - snapshots).max() <= 1e-3


def test_chunked_reader_metadata(tmp_path, snapshots):
    store = DatasetStore(str(tmp_path))
    write_chunked(store, "series", snapshots, tolerance=1e-2, chunk_size=4)
    reader = ChunkedArrayReader(store, "series")
    assert reader.n_chunks == 3
    assert reader.shape == snapshots.shape
    chunk = reader.read_chunk(1)
    assert chunk.shape == (4, 32, 32)
    assert np.abs(chunk - snapshots[4:8]).max() <= 1e-2


def test_chunked_partial_read_is_independent(tmp_path, snapshots):
    """Reading one chunk must not decompress the others."""
    store = DatasetStore(str(tmp_path))
    write_chunked(store, "series", snapshots, tolerance=1e-3, chunk_size=6)
    reader = ChunkedArrayReader(store, "series")
    store.delete("series.c0001")  # destroy the second chunk
    first = reader.read_chunk(0)  # still loads fine
    assert first.shape == (6, 32, 32)
    with pytest.raises(CompressionError):
        reader.read_chunk(1)


def test_chunked_rejects_l2_mode(tmp_path, snapshots):
    store = DatasetStore(str(tmp_path))
    with pytest.raises(CompressionError):
        ChunkedArrayWriter(store, "x", 1e-3, mode=ErrorBoundMode.L2_ABS)


def test_chunked_rejects_inconsistent_chunks(tmp_path, rng):
    store = DatasetStore(str(tmp_path))
    writer = ChunkedArrayWriter(store, "x", 1e-3)
    writer.append(rng.standard_normal((2, 8, 8)))
    with pytest.raises(CompressionError):
        writer.append(rng.standard_normal((2, 9, 9)))


def test_chunked_requires_data(tmp_path):
    store = DatasetStore(str(tmp_path))
    writer = ChunkedArrayWriter(store, "empty", 1e-3)
    with pytest.raises(CompressionError):
        writer.close()


def test_chunked_missing_manifest(tmp_path):
    store = DatasetStore(str(tmp_path))
    with pytest.raises(CompressionError):
        ChunkedArrayReader(store, "nothing")


def test_chunked_bad_chunk_size(tmp_path, snapshots):
    store = DatasetStore(str(tmp_path))
    with pytest.raises(CompressionError):
        write_chunked(store, "x", snapshots, tolerance=1e-3, chunk_size=0)


# -- reporting helpers -------------------------------------------------------------


def test_describe_model(trained_spectral_mlp):
    from repro.reporting import describe_model

    text = describe_model(trained_spectral_mlp)
    assert "SpectralLinear" in text
    assert "sigma" in text
    assert "q fp16" in text
    assert len(text.splitlines()) == 5  # header + 3 layers + totals


def test_describe_analysis(trained_spectral_mlp):
    from repro.core import ErrorFlowAnalyzer
    from repro.reporting import describe_analysis

    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    text = describe_analysis(analyzer, reference_norm=2.0)
    assert "Eq.(5) gain" in text
    assert "int8" in text
    assert "relative" in text


def test_h2_temporal_snapshots_compress_better():
    """Temporal coherence is exploitable by the codecs."""
    from repro.compress import ErrorBoundMode, SZCompressor
    from repro.datasets import make_h2_combustion

    single = make_h2_combustion(grid=32, rng=np.random.default_rng(1))
    multi = make_h2_combustion(grid=32, rng=np.random.default_rng(1), n_snapshots=4)
    assert multi.fields.shape == (9, 4, 32, 32)
    codec = SZCompressor()
    ratio_multi = codec.compress(
        multi.fields, 1e-3, ErrorBoundMode.ABS
    ).compression_ratio
    ratio_single = codec.compress(
        single.fields, 1e-3, ErrorBoundMode.ABS
    ).compression_ratio
    assert ratio_multi > ratio_single * 0.95  # never meaningfully worse
