"""Tests for blob serialization and the DatasetStore."""

import numpy as np
import pytest

from repro.compress import ErrorBoundMode, MGARDCompressor, SZCompressor, ZFPCompressor
from repro.exceptions import CompressionError
from repro.io import DatasetStore, blob_from_bytes, blob_to_bytes


@pytest.mark.parametrize(
    "codec", [SZCompressor(), ZFPCompressor(), MGARDCompressor()], ids=lambda c: c.name
)
def test_blob_serialization_roundtrip(codec, smooth_field_2d):
    blob = codec.compress(smooth_field_2d, 1e-4, ErrorBoundMode.ABS)
    restored = blob_from_bytes(blob_to_bytes(blob))
    assert restored.codec == blob.codec
    assert restored.shape == blob.shape
    assert restored.dtype == blob.dtype
    assert restored.mode == blob.mode
    assert restored.tolerance == blob.tolerance
    assert restored.payload == blob.payload
    # a *fresh* codec instance must decode the restored blob
    fresh = type(codec)()
    reconstruction = fresh.decompress(restored)
    assert np.abs(reconstruction - smooth_field_2d).max() <= 1e-4


def test_blob_from_bytes_rejects_garbage():
    with pytest.raises(CompressionError):
        blob_from_bytes(b"NOPE" + b"\x00" * 32)


def test_blob_from_bytes_rejects_corrupt_header(smooth_field_2d):
    blob = SZCompressor().compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    data = bytearray(blob_to_bytes(blob))
    data[12] ^= 0xFF  # flip a header byte
    with pytest.raises(CompressionError):
        blob_from_bytes(bytes(data))


def test_store_put_get_roundtrip(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path))
    store.put("field", smooth_field_2d, tolerance=1e-4)
    assert "field" in store
    loaded = store.get("field")
    assert loaded.shape == smooth_field_2d.shape
    assert np.abs(loaded - smooth_field_2d).max() <= 1e-4


def test_store_multiple_codecs(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path))
    for codec in ("sz", "zfp", "mgard"):
        store.put(f"x_{codec}", smooth_field_2d, tolerance=1e-3, codec=codec)
    assert store.names() == ["x_mgard", "x_sz", "x_zfp"]
    for name in store.names():
        assert np.abs(store.get(name) - smooth_field_2d).max() <= 1e-3


def test_store_summary_and_sizes(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path))
    store.put("a", smooth_field_2d, tolerance=1e-2)
    rows = store.summary()
    assert len(rows) == 1
    name, codec, shape, tolerance, ratio = rows[0]
    assert name == "a" and codec == "sz"
    assert shape == smooth_field_2d.shape
    assert ratio > 1.0
    assert store.stored_bytes("a") < smooth_field_2d.nbytes


def test_store_delete(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path))
    store.put("gone", smooth_field_2d, tolerance=1e-2)
    store.delete("gone")
    assert "gone" not in store
    with pytest.raises(CompressionError):
        store.get("gone")


def test_store_rejects_bad_names(tmp_path):
    store = DatasetStore(str(tmp_path))
    for bad in ("", "../evil", ".hidden"):
        with pytest.raises(CompressionError):
            store.put(bad, np.zeros((4, 4)), tolerance=1e-2)


def test_store_overwrite_is_atomic(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path))
    store.put("x", smooth_field_2d, tolerance=1e-2)
    store.put("x", smooth_field_2d * 2.0, tolerance=1e-2)
    loaded = store.get("x")
    assert np.abs(loaded - smooth_field_2d * 2.0).max() <= 1e-2 * 2.0 + 1e-2
    # no stray temp files left behind
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert not leftovers


def test_store_l2_mode(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path))
    store.put("l2", smooth_field_2d, tolerance=1e-3, mode=ErrorBoundMode.L2_REL)
    loaded = store.get("l2")
    achieved = np.linalg.norm(loaded - smooth_field_2d) / np.linalg.norm(smooth_field_2d)
    assert achieved <= 1e-3
