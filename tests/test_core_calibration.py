"""Tests for data-driven signal calibration of the bounds."""

import numpy as np
import pytest

from repro.core import ErrorFlowAnalyzer
from repro.core.calibration import collect_signal_norms
from repro.exceptions import ConfigurationError
from repro.nn import GlobalAvgPool2d, Linear, Sequential
from repro.quant import FP16, INT8, materialize, quantize_model


def test_collect_signal_norms_counts_layers(trained_spectral_mlp, rng):
    inputs = rng.uniform(-1, 1, (32, 5)).astype(np.float32)
    norms = collect_signal_norms(trained_spectral_mlp, inputs)
    assert len(norms) == 3
    assert all(norm > 0 for norm in norms)


def test_collect_signal_norms_first_is_input_norm(trained_spectral_mlp, rng):
    inputs = rng.uniform(-1, 1, (32, 5)).astype(np.float32)
    norms = collect_signal_norms(trained_spectral_mlp, inputs, margin=1.0)
    expected = float(np.linalg.norm(inputs, axis=1).max())
    assert norms[0] == pytest.approx(expected, rel=1e-6)


def test_collect_signal_norms_residual_model(rng):
    from repro.nn import BasicBlock

    model = Sequential(
        BasicBlock(3, 6, stride=2, rng=rng), GlobalAvgPool2d(), Linear(6, 2, rng=rng)
    )
    model.train()
    model(rng.standard_normal((4, 3, 8, 8)).astype(np.float32))
    model.eval()
    inputs = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
    norms = collect_signal_norms(model, inputs)
    analyzer = ErrorFlowAnalyzer(model, n_input=3 * 8 * 8)
    assert len(norms) == len(analyzer.spec.linear_specs())


def test_collect_signal_norms_validation(rng):
    with pytest.raises(ConfigurationError):
        collect_signal_norms(Linear(3, 3, rng=rng), np.zeros((2, 3)))
    model = Sequential(Linear(3, 3, rng=rng))
    with pytest.raises(ConfigurationError):
        collect_signal_norms(model, np.zeros((2, 3), dtype=np.float32), margin=0.5)


def test_calibration_tightens_quantization_bound(trained_spectral_mlp, rng):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    paper = analyzer.quantization_bound(INT8)
    inputs = rng.uniform(-1, 1, (256, 5)).astype(np.float32)
    analyzer.calibrate(inputs)
    assert analyzer.is_calibrated
    calibrated = analyzer.quantization_bound(INT8)
    assert calibrated < paper
    analyzer.decalibrate()
    assert analyzer.quantization_bound(INT8) == pytest.approx(paper)


def test_calibrated_bound_still_covers_achieved(trained_spectral_mlp, rng):
    """Calibration tightens but must not undercut the measured error."""
    model = trained_spectral_mlp
    model.eval()
    inputs = rng.uniform(-1, 1, (512, 5)).astype(np.float32)
    analyzer = ErrorFlowAnalyzer(model).calibrate(inputs)
    for fmt in (FP16, INT8):
        quantized = quantize_model(model, fmt)
        reference = materialize(model)(inputs)
        achieved = np.linalg.norm(quantized(inputs) - reference, axis=1).max()
        assert achieved <= analyzer.quantization_bound(fmt)


def test_calibration_does_not_touch_compression_gain(trained_spectral_mlp, rng):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    gain = analyzer.gain()
    analyzer.calibrate(rng.uniform(-1, 1, (64, 5)).astype(np.float32))
    assert analyzer.gain() == pytest.approx(gain)
    assert analyzer.compression_bound(1e-3) == pytest.approx(gain * 1e-3)
