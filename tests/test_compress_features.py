"""Tests for codec extensions: SZ spline modes, ZFP fixed rate, MGARD s."""

import numpy as np
import pytest

from repro.compress import ErrorBoundMode, MGARDCompressor, SZCompressor, ZFPCompressor
from repro.exceptions import CompressionError


# -- SZ interpolation modes ----------------------------------------------------


@pytest.mark.parametrize("interpolation", ["linear", "cubic", "dynamic"])
def test_sz_interpolation_modes_honour_bound(interpolation, smooth_field_2d):
    codec = SZCompressor(interpolation=interpolation)
    for tolerance in (1e-3, 1e-5):
        reconstruction, __ = codec.roundtrip(smooth_field_2d, tolerance, ErrorBoundMode.ABS)
        assert np.abs(reconstruction - smooth_field_2d).max() <= tolerance


def test_sz_cubic_beats_linear_on_smooth_data(smooth_field_2d):
    """Higher-order splines are the point of SZ3's dynamic selection."""
    linear = SZCompressor(interpolation="linear").compress(
        smooth_field_2d, 1e-3, ErrorBoundMode.ABS
    )
    cubic = SZCompressor(interpolation="cubic").compress(
        smooth_field_2d, 1e-3, ErrorBoundMode.ABS
    )
    assert cubic.compression_ratio > linear.compression_ratio * 1.3


def test_sz_dynamic_at_least_matches_both(smooth_field_2d):
    results = {}
    for interpolation in ("linear", "cubic", "dynamic"):
        blob = SZCompressor(interpolation=interpolation).compress(
            smooth_field_2d, 1e-3, ErrorBoundMode.ABS
        )
        results[interpolation] = blob.compression_ratio
    assert results["dynamic"] >= max(results["linear"], results["cubic"]) * 0.95


def test_sz_dynamic_choices_travel_in_blob(smooth_field_2d):
    """A decoder with a different default mode must still decode."""
    blob = SZCompressor(interpolation="dynamic").compress(
        smooth_field_2d, 1e-4, ErrorBoundMode.ABS
    )
    other = SZCompressor(interpolation="linear")
    reconstruction = other.decompress(blob)
    assert np.abs(reconstruction - smooth_field_2d).max() <= 1e-4


def test_sz_rejects_unknown_interpolation():
    with pytest.raises(CompressionError):
        SZCompressor(interpolation="quintic")


def test_sz_dynamic_on_rough_data(rng):
    """Rough data must still satisfy the contract (linear usually wins)."""
    rough = rng.standard_normal((64, 64))
    codec = SZCompressor(interpolation="dynamic")
    reconstruction, __ = codec.roundtrip(rough, 1e-4, ErrorBoundMode.ABS)
    assert np.abs(reconstruction - rough).max() <= 1e-4


# -- ZFP fixed-rate mode ---------------------------------------------------------


def test_zfp_fixed_rate_meets_budget(smooth_field_2d):
    codec = ZFPCompressor()
    for bits_per_value in (4.0, 8.0):
        blob = codec.compress_fixed_rate(smooth_field_2d, bits_per_value)
        achieved_bpv = 8.0 * blob.nbytes / smooth_field_2d.size
        assert achieved_bpv <= bits_per_value
        assert blob.metadata["achieved_bpv"] == pytest.approx(achieved_bpv)
        # still decodable through the ordinary path
        reconstruction = codec.decompress(blob)
        assert reconstruction.shape == smooth_field_2d.shape


def test_zfp_fixed_rate_more_bits_more_accuracy(smooth_field_2d):
    codec = ZFPCompressor()
    low = codec.decompress(codec.compress_fixed_rate(smooth_field_2d, 3.0))
    high = codec.decompress(codec.compress_fixed_rate(smooth_field_2d, 10.0))
    low_error = np.abs(low - smooth_field_2d).max()
    high_error = np.abs(high - smooth_field_2d).max()
    assert high_error < low_error


def test_zfp_fixed_rate_validation(smooth_field_2d):
    with pytest.raises(CompressionError):
        ZFPCompressor().compress_fixed_rate(smooth_field_2d, 0.0)


# -- MGARD s-weight -------------------------------------------------------------


@pytest.mark.parametrize("s_weight", [0.0, 0.5, 1.0])
def test_mgard_s_weight_honours_bound(s_weight, smooth_field_2d):
    codec = MGARDCompressor(s_weight=s_weight)
    reconstruction, __ = codec.roundtrip(smooth_field_2d, 1e-4, ErrorBoundMode.ABS)
    assert np.abs(reconstruction - smooth_field_2d).max() <= 1e-4


def test_mgard_blob_decodable_by_other_instance(smooth_field_2d):
    """Blobs are self-describing: depth and weighting travel with them."""
    producer = MGARDCompressor(n_levels=4, s_weight=1.0)
    blob = producer.compress(smooth_field_2d, 1e-4, ErrorBoundMode.ABS)
    consumer = MGARDCompressor()  # different defaults
    reconstruction = consumer.decompress(blob)
    assert np.abs(reconstruction - smooth_field_2d).max() <= 1e-4
