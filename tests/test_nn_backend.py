"""Tests for the compiled multi-backend execution engine.

The contract under test is *bit-exactness*: for every supported model the
fused (and, when installed, numba) backend must return ``np.array_equal``
outputs to the interpreted reference path — across activations, spectral
parameterization, residual skips, and every Table-I numeric format — and
must fall back to the interpreter, with the reason recorded, whenever
running the kernel could change observable behavior.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ErrorFlowAnalyzer, InferencePipeline, TolerancePlanner
from repro.compress import SZCompressor
from repro.exceptions import ConfigurationError, LoweringError
from repro.models import build_mlp
from repro.nn import Identity, Linear, Module, ReLU, Sequential, Tanh
from repro.nn.backend import (
    BACKEND_NAMES,
    CompiledForward,
    generate_fused_source,
    lower,
    numba_available,
    resolve_backend_name,
)
from repro.nn.residual import ResidualBlock
from repro.perf import CompileCache, kernel_key, reset_compile_cache, structure_key
from repro.quant import STANDARD_FORMATS, quantize_model

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="optional numba package not installed"
)


@pytest.fixture(autouse=True)
def _memory_only_cache(monkeypatch):
    """Isolate every test from the user's on-disk kernel cache."""
    monkeypatch.setenv("REPRO_COMPILE_CACHE_DIR", "")
    reset_compile_cache()
    yield
    reset_compile_cache()


def _compiled(model, backend="fused"):
    model.eval()
    return CompiledForward(model, backend)


# -- bit-exactness: fused vs reference ---------------------------------------


ACTIVATION_NAMES = ["relu", "leaky_relu", "prelu", "tanh", "sigmoid", "gelu"]


@given(
    widths=st.lists(st.integers(1, 9), min_size=0, max_size=3),
    activation=st.sampled_from(ACTIVATION_NAMES),
    spectral=st.booleans(),
    fmt=st.sampled_from(sorted(STANDARD_FORMATS)),
    batch=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_fused_bit_exact_random_chain(widths, activation, spectral, fmt, batch, seed):
    """Random chain models x Table-I formats: fused == reference, bitwise."""
    rng = np.random.default_rng(seed)
    model = build_mlp(4, widths, 3, activation=activation, spectral=spectral, rng=rng)
    quantized = quantize_model(model, STANDARD_FORMATS[fmt]).model
    x = rng.standard_normal((batch, 4)).astype(np.float32)

    forward = _compiled(quantized)
    expected = quantized(x)
    actual = forward(x)
    assert forward.last_fallback_reason is None
    assert actual.dtype == expected.dtype
    assert np.array_equal(actual, expected)


def _residual_model(rng):
    body = Sequential(Linear(6, 6, rng=rng), Tanh(), Linear(6, 6, rng=rng))
    return Sequential(
        Linear(4, 6, rng=rng),
        ReLU(),
        ResidualBlock(body, post_activation=Tanh()),
        ResidualBlock(Sequential(Linear(6, 6, rng=rng)), shortcut=Linear(6, 6, rng=rng)),
        Linear(6, 2, rng=rng),
        Identity(),
    )


@given(batch=st.integers(1, 6), seed=st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_fused_bit_exact_residual(batch, seed):
    rng = np.random.default_rng(seed)
    model = _residual_model(rng)
    x = rng.standard_normal((batch, 4)).astype(np.float32)
    forward = _compiled(model)
    assert np.array_equal(forward(x), model(x))
    assert forward.last_fallback_reason is None


def test_fused_bit_exact_nonfinite_inputs(rng):
    """NaN/inf survive the compiled path unchanged (equal_nan semantics)."""
    model = build_mlp(4, [8], 3, activation="tanh", spectral=False, rng=rng)
    model.eval()
    x = rng.standard_normal((8, 4)).astype(np.float32)
    x[0, 0] = np.nan
    x[1, 1] = np.inf
    x[2, 2] = -np.inf
    forward = CompiledForward(model, "fused")
    assert np.array_equal(forward(x), model(x), equal_nan=True)


@requires_numba
@given(
    widths=st.lists(st.integers(1, 8), min_size=0, max_size=2),
    activation=st.sampled_from(["relu", "tanh", "sigmoid", "prelu"]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_numba_bit_exact_random_chain(widths, activation, seed):
    rng = np.random.default_rng(seed)
    model = build_mlp(4, widths, 3, activation=activation, spectral=False, rng=rng)
    model.eval()
    x = rng.standard_normal((3, 4)).astype(np.float32)
    forward = CompiledForward(model, "numba")
    assert np.array_equal(forward(x), model(x))
    assert forward.last_fallback_reason is None


# -- fallback matrix ---------------------------------------------------------


def test_forward_hook_forces_fallback_then_resumes(tiny_mlp, rng):
    """Hook registration (audit lockstep) must route through the interpreter."""
    tiny_mlp.eval()
    forward = CompiledForward(tiny_mlp, "fused")
    x = rng.standard_normal((4, 6)).astype(np.float32)
    assert forward.last_fallback_reason is None

    forward(x)  # compiled path first, proves the hook check is per-call
    seen = []
    handle = tiny_mlp.register_forward_hook(lambda m, i, o: seen.append(m))
    hooked = forward(x)
    assert forward.last_fallback_reason == "forward-hooks"
    assert seen, "fallback must actually run the hooked interpreter"
    assert np.array_equal(hooked, tiny_mlp(x))

    handle.remove()
    seen.clear()
    forward(x)
    assert forward.last_fallback_reason is None
    assert not seen


def test_training_mode_forces_fallback(tiny_mlp, rng):
    tiny_mlp.train()
    forward = CompiledForward(tiny_mlp, "fused")
    x = rng.standard_normal((2, 6)).astype(np.float32)
    assert np.array_equal(forward(x), tiny_mlp(x))
    assert forward.last_fallback_reason == "training-mode"
    tiny_mlp.eval()
    forward(x)
    assert forward.last_fallback_reason is None


class _Opaque(Module):
    """A module the lowering pass has no rule for."""

    def forward(self, x):
        return x * 2.0


def test_unsupported_module_falls_back_and_memoizes(rng, monkeypatch):
    model = Sequential(Linear(4, 4, rng=rng), _Opaque())
    model.eval()
    import repro.nn.backend.base as base_mod

    attempts = []
    real_lower = base_mod.lower
    monkeypatch.setattr(
        base_mod, "lower", lambda m: attempts.append(m) or real_lower(m)
    )
    forward = CompiledForward(model, "fused")
    x = rng.standard_normal((2, 4)).astype(np.float32)
    assert np.array_equal(forward(x), model(x))
    assert "_Opaque" in forward.last_fallback_reason
    forward(x)
    # lowering is attempted once per weight version, not once per call
    assert len(attempts) == 1
    assert forward.stats["fallbacks"] == 2


def test_input_shape_and_dtype_guards(tiny_mlp, rng):
    tiny_mlp.eval()
    forward = CompiledForward(tiny_mlp, "fused")
    # Linear broadcasts over leading dims; the 2-d kernel envelope does not
    batched_3d = rng.standard_normal((2, 3, 6)).astype(np.float32)
    assert np.array_equal(forward(batched_3d), tiny_mlp(batched_3d))
    assert forward.last_fallback_reason == "input-shape"
    ints = np.ones((2, 6), dtype=np.int32)
    assert np.array_equal(forward(ints), tiny_mlp(ints))
    assert forward.last_fallback_reason == "input-dtype"


def test_lowering_rejects_training_spectral(rng):
    model = build_mlp(4, [5], 2, activation="tanh", spectral=True, rng=rng)
    model.train()
    with pytest.raises(LoweringError):
        lower(model)


# -- staleness / recompile discipline ----------------------------------------


def test_exactly_one_lowering_across_calls_and_batch_sizes(tiny_mlp, rng):
    """Warm cache: one lowering and one compile per (structure, weight_version)."""
    tiny_mlp.eval()
    forward = CompiledForward(tiny_mlp, "fused")
    for batch in (1, 3, 7, 3, 1, 64):
        x = rng.standard_normal((batch, 6)).astype(np.float32)
        assert np.array_equal(forward(x), tiny_mlp(x))
    assert forward.stats["lowerings"] == 1
    assert forward.stats["compiles"] == 1
    assert forward.stats["fallbacks"] == 0


def test_weight_update_invalidates_kernel(tiny_mlp, rng):
    """Regression: a stale kernel must never serve old weights."""
    tiny_mlp.eval()
    forward = CompiledForward(tiny_mlp, "fused")
    x = rng.standard_normal((3, 6)).astype(np.float32)
    before = forward(x)
    assert np.array_equal(before, tiny_mlp(x))

    lin = next(m for m in tiny_mlp.modules() if isinstance(m, Linear))
    lin.weight.data = lin.weight.data * 1.5  # setter bumps the version counter

    after = forward(x)
    assert forward.stats["lowerings"] == 2, "version bump must force a recompile"
    assert np.array_equal(after, tiny_mlp(x))
    assert not np.array_equal(after, before)


def test_kernel_key_differs_for_different_weights(rng):
    rng2 = np.random.default_rng(999)
    a = build_mlp(4, [5], 2, activation="relu", spectral=False, rng=rng)
    b = build_mlp(4, [5], 2, activation="relu", spectral=False, rng=rng2)
    a.eval(), b.eval()
    pa, pb = lower(a), lower(b)
    assert pa.signature == pb.signature  # same structure...
    from repro.nn.backend.lowering import constant_bindings

    ca = sorted((k, v) for k, v in constant_bindings(pa).items() if k.startswith(("W", "b")))
    cb = sorted((k, v) for k, v in constant_bindings(pb).items() if k.startswith(("W", "b")))
    assert kernel_key(pa.signature, "fused", ca, 0) != kernel_key(
        pb.signature, "fused", cb, 0
    )  # ...but content-distinct kernels
    assert structure_key(pa.signature, "fused") == structure_key(pb.signature, "fused")


def test_disk_source_cache_shared_across_instances(tmp_path, tiny_mlp, rng):
    """A second process-alike cache reuses the generated source from disk."""
    tiny_mlp.eval()
    program = lower(tiny_mlp)
    source = generate_fused_source(program)
    skey = structure_key(program.signature, "fused")

    writer = CompileCache(directory=tmp_path)
    assert writer.get_source(skey, program.signature, "fused") is None
    writer.put_source(skey, program.signature, "fused", source)

    reader = CompileCache(directory=tmp_path)  # fresh memory, same disk
    assert reader.get_source(skey, program.signature, "fused") == source
    assert reader.stats["source_disk_hits"] == 1
    assert reader.stats["source_generated"] == 0

    # a tampered/collided entry degrades to a miss, never a wrong kernel
    # (fresh cache: the memory level only holds keys this process validated)
    collided = CompileCache(directory=tmp_path)
    assert collided.get_source(skey, program.signature + "-other", "fused") is None


def test_corrupt_disk_entry_is_a_miss(tmp_path, tiny_mlp):
    tiny_mlp.eval()
    program = lower(tiny_mlp)
    skey = structure_key(program.signature, "fused")
    (tmp_path / f"{skey}.json").write_text("{not json")
    cache = CompileCache(directory=tmp_path)
    assert cache.get_source(skey, program.signature, "fused") is None


# -- backend selection (CLI / env contract) ----------------------------------


def test_resolve_backend_names(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend_name(None) == "fused"  # auto default
    assert resolve_backend_name("auto") == "fused"
    assert resolve_backend_name("reference") == "reference"
    assert resolve_backend_name(" Fused ") == "fused"
    assert set(BACKEND_NAMES) == {"auto", "reference", "fused", "numba"}


def test_resolve_backend_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "reference")
    assert resolve_backend_name(None) == "reference"
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ConfigurationError):
        resolve_backend_name(None)


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend_name("cuda")
    assert "auto|reference|fused|numba" in str(excinfo.value)


@pytest.mark.skipif(numba_available(), reason="numba is installed here")
def test_numba_backend_requires_package():
    with pytest.raises(ConfigurationError):
        resolve_backend_name("numba")


# -- end-to-end: pipeline, planner and audit parity --------------------------


def _run_pipeline(model, fields, backend):
    planner = TolerancePlanner(ErrorFlowAnalyzer(model))
    plan = planner.plan(5e-2, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(model, SZCompressor(), plan, backend=backend)
    return plan, pipeline.execute(fields)


def test_pipeline_identical_across_backends(trained_spectral_mlp):
    x = np.linspace(0, 2 * np.pi, 32)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)

    plan_ref, ref = _run_pipeline(trained_spectral_mlp, fields, "reference")
    plan_fused, fused = _run_pipeline(trained_spectral_mlp, fields, "fused")

    # planner decisions are backend-independent
    assert plan_ref.fmt == plan_fused.fmt
    assert plan_ref.input_tolerance == plan_fused.input_tolerance
    # and so is every observable output bit
    assert np.array_equal(ref.outputs, fused.outputs)
    assert np.array_equal(ref.reference_outputs, fused.reference_outputs)
    assert ref.qoi_error("linf", relative=False) == fused.qoi_error(
        "linf", relative=False
    )
    assert fused.extra["backend"]["name"] == "fused"
    assert "fallback_quant" not in fused.extra["backend"]
    assert ref.extra["backend"]["name"] == "reference"


def test_audit_verdicts_identical_across_backends(trained_spectral_mlp, rng, monkeypatch):
    from repro.obs.audit import LayerwiseErrorRecorder

    clean = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    perturbed = clean + rng.uniform(-1e-3, 1e-3, clean.shape).astype(np.float32)
    quantized = quantize_model(trained_spectral_mlp, STANDARD_FORMATS["fp16"])

    records = {}
    for backend in ("reference", "fused"):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        recorder = LayerwiseErrorRecorder(trained_spectral_mlp, quantized)
        records[backend] = recorder.audit(clean, perturbed)

    ref, fused = records["reference"], records["fused"]
    assert ref.verdict == fused.verdict
    assert ref.qoi_observed == fused.qoi_observed
    assert ref.qoi_predicted == fused.qoi_predicted
    assert [layer.verdict for layer in ref.layers] == [
        layer.verdict for layer in fused.layers
    ]


# -- instrumented per-op timing variant --------------------------------------


def test_instrumented_kernel_bit_exact_and_timed(tiny_mlp, rng):
    """Timing brackets wrap the same expressions: identical arrays out,
    one wall-time slot per lowered op in."""
    x = rng.standard_normal((4, 6)).astype(np.float32)
    fast = _compiled(tiny_mlp)
    timed = CompiledForward(tiny_mlp, "fused", instrument=True)
    assert np.array_equal(timed(x), fast(x))
    assert np.array_equal(timed(x), tiny_mlp(x))
    labels = timed.op_labels
    seconds = timed.last_op_seconds
    assert labels and len(seconds) == len(labels)
    assert all(value >= 0.0 for value in seconds)
    # the fast path never grows timing state
    assert fast.last_op_seconds is None and fast.op_labels is None


def test_instrumented_labels_match_codegen(tiny_mlp):
    from repro.nn.backend import instrumented_op_labels

    tiny_mlp.eval()
    program = lower(tiny_mlp)
    labels = instrumented_op_labels(program)
    timed = CompiledForward(tiny_mlp, "fused", instrument=True)
    timed(np.zeros((1, 6), dtype=np.float32))
    assert timed.op_labels == labels
    # deterministic re-derivation: same program, same label order
    assert instrumented_op_labels(program) == labels


def test_instrumented_and_fast_kernels_coexist_in_cache(tiny_mlp, rng):
    """Distinct backend identity = distinct cache keys at both levels:
    enabling timing must not evict (or serve) the fast kernel."""
    from repro.perf import get_compile_cache

    x = rng.standard_normal((2, 6)).astype(np.float32)
    fast = _compiled(tiny_mlp)
    fast(x)
    cache = get_compile_cache()
    kernels_before = len(cache._kernels)
    timed = CompiledForward(tiny_mlp, "fused", instrument=True)
    timed(x)
    assert len(cache._kernels) == kernels_before + 1
    assert fast.stats["compiles"] == 1 and timed.stats["compiles"] == 1
    # and the fast path re-resolves to its own, uninstrumented kernel
    fast(x)
    assert fast.last_op_seconds is None


def test_instrument_env_default(tiny_mlp, rng, monkeypatch):
    tiny_mlp.eval()
    x = rng.standard_normal((1, 6)).astype(np.float32)
    monkeypatch.setenv("REPRO_INSTRUMENT_OPS", "1")
    timed = CompiledForward(tiny_mlp, "fused")
    timed(x)
    assert timed.last_op_seconds is not None
    # explicit instrument=False beats the env
    fast = CompiledForward(tiny_mlp, "fused", instrument=False)
    fast(x)
    assert fast.last_op_seconds is None
    monkeypatch.setenv("REPRO_INSTRUMENT_OPS", "0")
    default = CompiledForward(tiny_mlp, "fused")
    default(x)
    assert default.last_op_seconds is None


def test_instrument_ignored_off_fused(tiny_mlp):
    assert not CompiledForward(tiny_mlp, "reference", instrument=True).instrument


def test_instrumented_call_feeds_op_seconds_histogram(tiny_mlp, rng):
    from repro import obs

    tiny_mlp.eval()
    x = rng.standard_normal((2, 6)).astype(np.float32)
    timed = CompiledForward(tiny_mlp, "fused", instrument=True)
    with obs.capture() as (_, metrics):
        timed(x)
        timed(x)
        for index, label in enumerate(timed.op_labels):
            histogram = metrics.histogram("backend_op_seconds", op=label, index=index)
            assert histogram.count == 2


def test_pipeline_instrument_ops_lands_in_result_extra(trained_spectral_mlp, rng):
    x = np.linspace(0, 2 * np.pi, 24)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)
    plan = TolerancePlanner(ErrorFlowAnalyzer(trained_spectral_mlp)).plan(
        1e-2, norm="linf", quant_fraction=0.5
    )
    pipeline = InferencePipeline(
        trained_spectral_mlp, SZCompressor(), plan, backend="fused",
        instrument_ops=True,
    )
    result = pipeline.execute(fields)
    backend_info = result.extra["backend"]
    assert backend_info["op_labels"]
    assert len(backend_info["op_seconds"]) == len(backend_info["op_labels"])
    plain = InferencePipeline(
        trained_spectral_mlp, SZCompressor(), plan, backend="fused"
    )
    assert "op_seconds" not in plain.execute(fields).extra["backend"]


# -- ops-plane gauges --------------------------------------------------------


def test_compiled_active_gauge_tracks_kernel_vs_fallback(tiny_mlp, rng):
    from repro import obs

    x = rng.standard_normal((2, 6)).astype(np.float32)
    with obs.capture() as (_, metrics):
        compiled = _compiled(tiny_mlp)
        compiled(x)
        active = metrics.gauge("backend_compiled_active", backend="fused")
        assert active.value == 1.0
        compiled(x.astype(np.int64))  # dtype guard: interpreter fallback
        assert active.value == 0.0
        assert (
            metrics.gauge(
                "backend_last_fallback_info", backend="fused", reason="input-dtype"
            ).value
            == 1.0
        )
        compiled(x)
        assert active.value == 1.0


def test_last_fallback_info_gauge_switches_reason_labels(tiny_mlp, rng):
    from repro import obs

    x = rng.standard_normal((2, 6)).astype(np.float32)
    with obs.capture() as (_, metrics):
        compiled = _compiled(tiny_mlp)
        compiled(x.astype(np.int64))
        tiny_mlp.train()
        compiled(x)
        tiny_mlp.eval()
        info = lambda reason: metrics.gauge(
            "backend_last_fallback_info", backend="fused", reason=reason
        ).value
        # exactly one reason label holds 1.0: the latest cause
        assert info("input-dtype") == 0.0
        assert info("training-mode") == 1.0


def test_cache_hit_ratio_gauges(tmp_path, tiny_mlp, rng, monkeypatch):
    from repro import obs
    from repro.perf import get_compile_cache

    monkeypatch.setenv("REPRO_COMPILE_CACHE_DIR", str(tmp_path))
    reset_compile_cache()
    x = rng.standard_normal((1, 6)).astype(np.float32)
    with obs.capture() as (_, metrics):
        first = _compiled(tiny_mlp)
        first(x)  # kernel miss, disk miss, source generated
        first(x)  # cached kernel: no cache traffic
        memory_ratio = metrics.gauge("backend_cache_hit_ratio", level="memory")
        disk_ratio = metrics.gauge("backend_cache_hit_ratio", level="disk")
        assert memory_ratio.value == 0.0
        assert disk_ratio.value == 0.0
        reset_compile_cache()  # fresh process: same disk directory
        second = _compiled(tiny_mlp)
        second(x)  # kernel miss, disk hit
        cache = get_compile_cache()
        assert cache.stats["source_disk_hits"] == 1
        # the same gauge instruments track the new cache's ratios
        assert memory_ratio.value == 0.0
        assert disk_ratio.value == 1.0
