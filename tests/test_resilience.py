"""Fault-injection suite: every corruption class is detected, never decoded.

Proves the data-integrity layer's central claim — between the store and
the model, no corrupted byte passes silently.  Covers the v2 checksummed
blob format, the fault injectors themselves, the runtime guards, the
DatasetStore degradation policies, pipeline-level recovery, and v1
backward compatibility.
"""

import os
import struct

import numpy as np
import pytest

from repro.compress import ErrorBoundMode, SZCompressor, ZFPCompressor
from repro.core import InferencePipeline, TolerancePlanner
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.exceptions import (
    CompressionError,
    ConfigurationError,
    ContractViolation,
    IntegrityError,
)
from repro.io import DatasetStore, blob_from_bytes, blob_to_bytes
from repro.resilience import (
    CorruptionPolicy,
    FaultInjector,
    blob_corruptions,
    check_contract,
    corrupt_file,
    corrupt_header_byte,
    corrupt_magic,
    corrupt_payload_byte,
    corrupt_version,
    flip_bit,
    poison_inf,
    poison_nan,
    resolve_policy,
    screen_finite,
    truncate,
)


@pytest.fixture
def blob_bytes(smooth_field_2d):
    blob = SZCompressor().compress(smooth_field_2d, 1e-4, ErrorBoundMode.ABS)
    return blob_to_bytes(blob)


# -- corruption matrix ------------------------------------------------------
def test_corruption_matrix_no_silent_decode(blob_bytes):
    """Every injected corruption raises a typed error — zero silent successes."""
    cases = list(blob_corruptions(blob_bytes, truncation_step=16))
    assert len(cases) > 20  # magic, version, header, payload + many truncations
    for name, corrupted in cases:
        with pytest.raises(CompressionError):
            blob_from_bytes(corrupted)
            pytest.fail(f"corruption {name!r} decoded silently")


def test_every_payload_bitflip_detected(blob_bytes):
    """Walk single-bit flips across the whole payload region."""
    for offset in range(0, 256, 17):
        with pytest.raises(IntegrityError):
            blob_from_bytes(corrupt_payload_byte(blob_bytes, offset=offset))


def test_every_header_bitflip_detected(blob_bytes):
    for offset in range(0, 32, 3):
        with pytest.raises(CompressionError):
            blob_from_bytes(corrupt_header_byte(blob_bytes, offset=offset))


def test_truncation_at_every_boundary_detected(blob_bytes):
    for length in range(0, len(blob_bytes), 16):
        with pytest.raises(CompressionError):
            blob_from_bytes(truncate(blob_bytes, length))


def test_bad_magic_and_version_detected(blob_bytes):
    with pytest.raises(CompressionError):
        blob_from_bytes(corrupt_magic(blob_bytes))
    with pytest.raises(CompressionError):
        blob_from_bytes(corrupt_version(blob_bytes))


def test_random_bitflip_storm_detected(blob_bytes):
    """A seeded storm of random single-bit flips: all caught or benign-free."""
    injector = FaultInjector(seed=123)
    for __ in range(64):
        with pytest.raises(CompressionError):
            blob_from_bytes(injector.flip_random_bit(blob_bytes))


def test_header_missing_keys_rejected(smooth_field_2d):
    """A structurally valid v1 blob whose header lacks required keys."""
    header = b'{"codec":"sz"}'
    data = b"RBLB" + struct.pack("<HI", 1, len(header)) + header + b"\x00" * 16
    with pytest.raises(CompressionError, match="missing required keys"):
        blob_from_bytes(data)


def test_header_invalid_shape_rejected():
    header = b'{"codec":"sz","shape":[-1],"dtype":"float32","mode":"abs","tolerance":1e-4}'
    data = b"RBLB" + struct.pack("<HI", 1, len(header)) + header
    with pytest.raises(CompressionError, match="invalid shape"):
        blob_from_bytes(data)


def test_short_inputs_raise_typed_errors():
    for data in (b"", b"RB", b"RBLB", b"RBLB\x02", b"RBLB\x02\x00\xff"):
        with pytest.raises(CompressionError):
            blob_from_bytes(data)


# -- v1 backward compatibility ---------------------------------------------
def test_v1_blob_still_loads(smooth_field_2d):
    """Blobs written before the integrity layer must keep decoding."""
    codec = SZCompressor()
    blob = codec.compress(smooth_field_2d, 1e-4, ErrorBoundMode.ABS)
    legacy = blob_to_bytes(blob, version=1)
    restored = blob_from_bytes(legacy)
    assert restored.codec == blob.codec
    assert np.abs(codec.decompress(restored) - smooth_field_2d).max() <= 1e-4


def test_v1_prelude_is_bit_identical_to_seed_format(smooth_field_2d):
    """The v1 writer must reproduce the exact pre-PR wire layout."""
    blob = SZCompressor().compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    data = blob_to_bytes(blob, version=1)
    assert data[:4] == b"RBLB"
    version, header_length = struct.unpack_from("<HI", data, 4)
    assert version == 1
    assert data[10 : 10 + header_length].startswith(b"{")


def test_v2_is_default_and_checksummed(blob_bytes):
    version, __, stored_crc = struct.unpack_from("<HII", blob_bytes, 4)
    assert version == 2
    import zlib

    assert stored_crc == zlib.crc32(blob_bytes[14:])


# -- injectors --------------------------------------------------------------
def test_flip_bit_is_involutive_and_bounded():
    data = bytes(range(32))
    assert flip_bit(flip_bit(data, 100), 100) == data
    with pytest.raises(ConfigurationError):
        flip_bit(data, 8 * len(data))


def test_poisoning_is_deterministic(smooth_field_2d):
    a = poison_nan(smooth_field_2d, fraction=0.05, seed=9)
    b = poison_nan(smooth_field_2d, fraction=0.05, seed=9)
    assert np.array_equal(np.isnan(a), np.isnan(b))
    assert np.isnan(a).sum() == max(1, round(0.05 * smooth_field_2d.size))
    assert np.isinf(poison_inf(smooth_field_2d, seed=3)).any()


def test_corrupt_file_is_atomic(tmp_path):
    path = tmp_path / "x.bin"
    path.write_bytes(b"A" * 64)

    def exploding(data):
        raise RuntimeError("injector crashed")

    with pytest.raises(RuntimeError):
        corrupt_file(str(path), exploding)
    assert path.read_bytes() == b"A" * 64  # untouched
    assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]


# -- guards -----------------------------------------------------------------
def test_screen_finite_passes_clean_and_int_arrays(smooth_field_2d):
    assert screen_finite(smooth_field_2d, "t") is not None
    screen_finite(np.arange(10), "t")  # ints are trivially finite


def test_screen_finite_reports_counts(smooth_field_2d):
    poisoned = poison_nan(smooth_field_2d, fraction=0.01, seed=1)
    with pytest.raises(IntegrityError, match="NaN"):
        screen_finite(poisoned, "decompress", name="fields")


def test_check_contract_structured_diagnostic():
    with pytest.raises(ContractViolation) as excinfo:
        check_contract(2e-3, 1e-3, codec="sz", stage="decompress", norm="linf")
    err = excinfo.value
    assert err.codec == "sz" and err.stage == "decompress" and err.norm == "linf"
    assert err.expected == pytest.approx(1e-3)
    assert err.achieved == pytest.approx(2e-3)
    # inside the bound: returns achieved
    assert check_contract(5e-4, 1e-3, codec="sz", stage="s") == pytest.approx(5e-4)
    with pytest.raises(ContractViolation):
        check_contract(float("nan"), 1e-3, codec="sz", stage="s")


def test_resolve_policy():
    assert resolve_policy("raise") is CorruptionPolicy.RAISE
    assert resolve_policy(CorruptionPolicy.RECOMPRESS) is CorruptionPolicy.RECOMPRESS
    assert CorruptionPolicy.FALLBACK_LOSSLESS.recovers
    assert not CorruptionPolicy.RAISE.recovers
    with pytest.raises(ConfigurationError):
        resolve_policy("ignore")


# -- DatasetStore degradation ----------------------------------------------
def _rblob_path(store, name):
    return os.path.join(store.directory, name + ".rblob")


def test_store_detects_on_disk_corruption(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path))
    store.put("f", smooth_field_2d, tolerance=1e-3)
    corrupt_file(_rblob_path(store, "f"), lambda b: corrupt_payload_byte(b, 5))
    with pytest.raises(IntegrityError):
        store.get("f")


def test_store_recompress_from_source_recovers(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path), on_corruption="recompress-from-source")
    store.put("f", smooth_field_2d, tolerance=1e-3, keep_source=True)
    corrupt_file(_rblob_path(store, "f"), lambda b: truncate(b, len(b) // 3))
    recovered = store.get("f")
    assert np.abs(recovered - smooth_field_2d).max() <= 1e-3
    assert store.verify("f")  # on-disk entry was repaired too


def test_store_fallback_lossless_recovers_exactly(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path), on_corruption="fallback-lossless")
    store.put("f", smooth_field_2d, tolerance=1e-3, keep_source=True)
    corrupt_file(_rblob_path(store, "f"), lambda b: corrupt_payload_byte(b, 0))
    recovered = store.get("f")
    assert np.array_equal(recovered, smooth_field_2d)
    assert store.get_blob("f").metadata.get("degraded") is True


def test_store_attach_source_provider(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path), on_corruption="recompress-from-source")
    store.put("f", smooth_field_2d, tolerance=1e-3)
    store.attach_source("f", lambda: smooth_field_2d)
    corrupt_file(_rblob_path(store, "f"), lambda b: truncate(b, 20))
    assert np.abs(store.get("f") - smooth_field_2d).max() <= 1e-3


def test_store_recovery_without_source_raises(tmp_path, smooth_field_2d):
    store = DatasetStore(str(tmp_path), on_corruption="recompress-from-source")
    store.put("f", smooth_field_2d, tolerance=1e-3)
    corrupt_file(_rblob_path(store, "f"), lambda b: truncate(b, 20))
    with pytest.raises(IntegrityError, match="could not be recovered"):
        store.get("f")


def test_store_retries_are_bounded(tmp_path, smooth_field_2d, monkeypatch):
    """A persistently corrupting medium fails loudly, not forever."""
    store = DatasetStore(
        str(tmp_path), on_corruption="recompress-from-source", max_retries=2
    )
    store.put("f", smooth_field_2d, tolerance=1e-3, keep_source=True)
    calls = {"n": 0}
    original = DatasetStore.get_blob

    def always_corrupt(self, name):
        calls["n"] += 1
        blob = original(self, name)
        raise IntegrityError("medium keeps flipping bits")

    monkeypatch.setattr(DatasetStore, "get_blob", always_corrupt)
    with pytest.raises(IntegrityError):
        store.get("f")
    assert calls["n"] == 3  # initial read + max_retries


def test_store_missing_entry_is_not_a_corruption_event(tmp_path):
    store = DatasetStore(str(tmp_path), on_corruption="fallback-lossless")
    with pytest.raises(CompressionError, match="not found"):
        store.get("absent")


def test_store_rejects_escaping_names(tmp_path):
    store = DatasetStore(str(tmp_path))
    field = np.zeros((4, 4))
    for bad in ("", "../evil", ".hidden", "a/b", "a\\b", "..", "a..b", os.sep + "abs"):
        with pytest.raises(CompressionError):
            store.put(bad, field, tolerance=1e-2)


def test_store_crash_safety_no_torn_file(tmp_path, smooth_field_2d, monkeypatch):
    """A writer dying mid-put leaves no visible (or partial) entry."""
    store = DatasetStore(str(tmp_path))

    def exploding_replace(src, dst):
        raise OSError("simulated crash during rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        store.put("f", smooth_field_2d, tolerance=1e-3)
    monkeypatch.undo()
    assert "f" not in store
    assert store.names() == []
    assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    # the store still works afterwards
    store.put("f", smooth_field_2d, tolerance=1e-3)
    assert store.verify("f")


def test_store_crash_during_payload_write(tmp_path, smooth_field_2d, monkeypatch):
    store = DatasetStore(str(tmp_path))
    store.put("f", smooth_field_2d, tolerance=1e-3)
    before = open(_rblob_path(store, "f"), "rb").read()

    import repro.io.store as store_mod

    def exploding_to_bytes(blob):
        raise MemoryError("simulated failure while serializing")

    monkeypatch.setattr(store_mod, "blob_to_bytes", exploding_to_bytes)
    with pytest.raises(MemoryError):
        store.put("f", smooth_field_2d * 2, tolerance=1e-3)
    monkeypatch.undo()
    # the previous entry is intact — overwrite is all-or-nothing
    assert open(_rblob_path(store, "f"), "rb").read() == before


# -- pipeline guards --------------------------------------------------------
@pytest.fixture(scope="module")
def planned(trained_spectral_mlp):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp, n_input=5)
    plan = TolerancePlanner(analyzer).plan(1e-2, norm="linf", quant_fraction=0.5)
    return trained_spectral_mlp, plan


@pytest.fixture
def field_batch(rng):
    # (V, H, W) layout: 5 variable planes, pipelines reshape to samples
    return rng.uniform(-1, 1, (5, 16, 16)).astype(np.float32)


def test_pipeline_records_integrity_report(planned, field_batch):
    model, plan = planned
    pipe = InferencePipeline(model, SZCompressor(), plan)
    result = pipe.execute(field_batch)
    report = result.extra["integrity"]
    assert report["screened"] is True
    assert report["recoveries"] == 0 and report["degraded"] is False
    contract = report["input_contract"]
    assert contract["achieved"] <= contract["expected"]


def test_pipeline_screens_poisoned_decompression(planned, field_batch, monkeypatch):
    model, plan = planned
    codec = SZCompressor()
    original = SZCompressor.decompress

    def poisoning(self, blob):
        return poison_nan(original(self, blob), fraction=0.02, seed=5)

    monkeypatch.setattr(SZCompressor, "decompress", poisoning)
    pipe = InferencePipeline(model, codec, plan)
    with pytest.raises(IntegrityError, match="decompress"):
        pipe.execute(field_batch)


def test_pipeline_fallback_lossless_recovers(planned, field_batch, monkeypatch):
    model, plan = planned
    original = SZCompressor.decompress

    def poisoning(self, blob):
        data = original(self, blob)
        if blob.metadata.get("lossless"):
            return data  # the degraded path reads clean
        return poison_nan(data, fraction=0.02, seed=5)

    monkeypatch.setattr(SZCompressor, "decompress", poisoning)
    pipe = InferencePipeline(
        model, SZCompressor(), plan, on_corruption="fallback-lossless"
    )
    result = pipe.execute(field_batch)
    report = result.extra["integrity"]
    assert report["degraded"] is True and report["recoveries"] == 1
    assert result.input_error_linf == 0.0  # lossless blob: exact inputs
    assert np.isfinite(result.outputs).all()


def test_pipeline_recompress_retries_transient_fault(planned, field_batch, monkeypatch):
    model, plan = planned
    original = SZCompressor.decompress
    state = {"fails": 1}

    def flaky(self, blob):
        data = original(self, blob)
        if state["fails"] > 0 and not blob.metadata.get("lossless"):
            state["fails"] -= 1
            return poison_inf(data, fraction=0.01, seed=2)
        return data

    monkeypatch.setattr(SZCompressor, "decompress", flaky)
    pipe = InferencePipeline(
        model, SZCompressor(), plan, on_corruption="recompress-from-source"
    )
    result = pipe.execute(field_batch)
    report = result.extra["integrity"]
    assert report["recoveries"] == 1
    assert report["degraded"] is False  # the retry succeeded lossily
    assert result.qoi_error("linf", relative=False) <= 1e-2


def test_pipeline_recompress_degrades_after_budget(planned, field_batch, monkeypatch):
    """When every lossy attempt fails, recompression degrades to lossless."""
    model, plan = planned
    original = SZCompressor.decompress

    def always_poisoned(self, blob):
        data = original(self, blob)
        if blob.metadata.get("lossless"):
            return data
        return poison_nan(data, fraction=0.01, seed=4)

    monkeypatch.setattr(SZCompressor, "decompress", always_poisoned)
    pipe = InferencePipeline(
        model, SZCompressor(), plan, on_corruption="recompress-from-source", max_retries=2
    )
    result = pipe.execute(field_batch)
    assert result.extra["integrity"]["degraded"] is True
    assert result.extra["integrity"]["recoveries"] == 3


def test_pipeline_contract_violation_is_structured(planned, field_batch, monkeypatch):
    """A codec that silently overshoots its bound triggers ContractViolation."""
    model, plan = planned
    original = SZCompressor.decompress

    def overshooting(self, blob):
        data = original(self, blob)
        if blob.metadata.get("lossless"):
            return data
        return data + 10.0 * plan.input_tolerance  # finite but out of contract

    monkeypatch.setattr(SZCompressor, "decompress", overshooting)
    pipe = InferencePipeline(model, SZCompressor(), plan)
    with pytest.raises(ContractViolation) as excinfo:
        pipe.execute(field_batch)
    err = excinfo.value
    assert err.codec == "sz" and err.stage == "decompress"
    assert err.achieved > err.expected


def test_pipeline_rejects_non_finite_source(planned, field_batch):
    model, plan = planned
    pipe = InferencePipeline(model, SZCompressor(), plan)
    with pytest.raises(IntegrityError, match="source"):
        pipe.execute(poison_nan(field_batch, fraction=0.01, seed=8))


def test_pipeline_screen_off_skips_guards(planned, field_batch, monkeypatch):
    model, plan = planned
    original = SZCompressor.decompress

    def overshooting(self, blob):
        return original(self, blob) + 10.0 * plan.input_tolerance

    monkeypatch.setattr(SZCompressor, "decompress", overshooting)
    pipe = InferencePipeline(model, SZCompressor(), plan, screen=False)
    result = pipe.execute(field_batch)  # measurement-only: no raise
    assert result.input_error_linf > plan.input_tolerance


def test_pipeline_zfp_also_guarded(planned, field_batch):
    model, plan = planned
    pipe = InferencePipeline(model, ZFPCompressor(), plan)
    result = pipe.execute(field_batch)
    assert result.extra["integrity"]["input_contract"]["achieved"] <= plan.input_tolerance


# -- resilience event counters ------------------------------------------------
def test_counters_raise_policy_counts_integrity_failure(planned, field_batch, monkeypatch):
    from repro import obs

    model, plan = planned
    original = SZCompressor.decompress

    def poisoning(self, blob):
        return poison_nan(original(self, blob), fraction=0.02, seed=5)

    monkeypatch.setattr(SZCompressor, "decompress", poisoning)
    pipe = InferencePipeline(model, SZCompressor(), plan)
    with obs.capture() as (__, metrics):
        with pytest.raises(IntegrityError):
            pipe.execute(field_batch)
    assert metrics.value("integrity_failures_total", stage="decompress") == 1
    assert metrics.value("retries_total", component="pipeline") == 0
    assert metrics.value(
        "recoveries_total", policy="raise", component="pipeline"
    ) == 0


def test_counters_fallback_lossless_recovery(planned, field_batch, monkeypatch):
    from repro import obs

    model, plan = planned
    original = SZCompressor.decompress

    def poisoning(self, blob):
        data = original(self, blob)
        if blob.metadata.get("lossless"):
            return data
        return poison_nan(data, fraction=0.02, seed=5)

    monkeypatch.setattr(SZCompressor, "decompress", poisoning)
    pipe = InferencePipeline(
        model, SZCompressor(), plan, on_corruption="fallback-lossless"
    )
    with obs.capture() as (__, metrics):
        pipe.execute(field_batch)
    assert metrics.value("integrity_failures_total", stage="decompress") == 1
    assert metrics.value("retries_total", component="pipeline") == 1
    assert metrics.value(
        "recoveries_total", policy="fallback-lossless", component="pipeline"
    ) == 1


def test_counters_recompress_transient_then_budget_exhaustion(
    planned, field_batch, monkeypatch
):
    from repro import obs

    model, plan = planned
    original = SZCompressor.decompress

    def always_poisoned(self, blob):
        data = original(self, blob)
        if blob.metadata.get("lossless"):
            return data
        return poison_nan(data, fraction=0.01, seed=4)

    monkeypatch.setattr(SZCompressor, "decompress", always_poisoned)
    pipe = InferencePipeline(
        model, SZCompressor(), plan, on_corruption="recompress-from-source", max_retries=2
    )
    with obs.capture() as (__, metrics):
        result = pipe.execute(field_batch)
    assert result.extra["integrity"]["recoveries"] == 3
    # every lossy attempt failed the finite screen...
    assert metrics.value("integrity_failures_total", stage="decompress") == 3
    # ...each re-attempt (2 lossy retries + the lossless rescue) was counted...
    assert metrics.value("retries_total", component="pipeline") == 3
    # ...but only the attempt that finally produced clean data counts as
    # a successful policy activation
    assert metrics.value(
        "recoveries_total", policy="recompress-from-source", component="pipeline"
    ) == 1


def test_counters_contract_violation(planned, field_batch, monkeypatch):
    from repro import obs

    model, plan = planned
    original = SZCompressor.decompress

    def overshooting(self, blob):
        data = original(self, blob)
        if blob.metadata.get("lossless"):
            return data
        return data + 10.0 * plan.input_tolerance

    monkeypatch.setattr(SZCompressor, "decompress", overshooting)
    pipe = InferencePipeline(model, SZCompressor(), plan)
    with obs.capture() as (__, metrics):
        with pytest.raises(ContractViolation):
            pipe.execute(field_batch)
    assert metrics.value(
        "contract_violations_total", stage="decompress", codec="sz"
    ) == 1


def test_counters_store_recovery(tmp_path, smooth_field_2d):
    from repro import obs

    store = DatasetStore(str(tmp_path), on_corruption="fallback-lossless")
    store.put("f", smooth_field_2d, tolerance=1e-3, keep_source=True)
    corrupt_file(_rblob_path(store, "f"), lambda b: corrupt_payload_byte(b, 0))
    with obs.capture() as (tracer, metrics):
        store.get("f")
    assert metrics.value("retries_total", component="store") == 1
    assert metrics.value(
        "recoveries_total", policy="fallback-lossless", component="store"
    ) == 1
    get_span = tracer.find("store.get")[0]
    assert get_span.attributes["recovered"] is True
    assert get_span.attributes["attempts"] == 2  # failed read + clean re-read


# -- safe_decompress --------------------------------------------------------
def test_safe_decompress_truncated_lossless_payload(smooth_field_2d):
    from repro.compress.base import CompressedBlob

    blob = CompressedBlob(
        codec="sz",
        payload=smooth_field_2d.tobytes()[:-8],  # torn write
        shape=smooth_field_2d.shape,
        dtype=str(smooth_field_2d.dtype),
        mode=ErrorBoundMode.ABS,
        tolerance=1e-3,
        metadata={"lossless": True},
    )
    with pytest.raises(IntegrityError, match="lossless payload"):
        SZCompressor().safe_decompress(blob)


def test_safe_decompress_wrong_codec_rejected(smooth_field_2d):
    blob = SZCompressor().compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    with pytest.raises(CompressionError):
        ZFPCompressor().safe_decompress(blob)
