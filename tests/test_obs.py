"""Tests for the observability layer: tracing, metrics, logging, hooks.

Covers span nesting and ordering, JSONL round-trips, histogram
percentiles, the Prometheus exposition format, the structured logger,
per-layer timing hooks, the global enable/disable switchboard, and the
near-zero cost of the disabled (null) mode.
"""

import json
import math
import time

import numpy as np
import pytest

from repro import obs
from repro.compress import ErrorBoundMode, SZCompressor
from repro.core import InferencePipeline, TolerancePlanner
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.nn import MSELoss, SGD, Trainer
from repro.obs import (
    LEVELS,
    Counter,
    Gauge,
    Histogram,
    Logger,
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    Tracer,
    attach_layer_timing,
    get_logger,
    get_metrics,
    get_tracer,
    read_jsonl,
    render_metrics_json,
    set_log_level,
)


@pytest.fixture(autouse=True)
def _restore_log_level():
    yield
    set_log_level("info")


# -- tracer -----------------------------------------------------------------


def test_span_nesting_parent_ids_and_depth():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                pass
    assert outer.parent_id is None and outer.depth == 0
    assert middle.parent_id == outer.span_id and middle.depth == 1
    assert inner.parent_id == middle.span_id and inner.depth == 2
    # completion order: innermost finishes first
    assert [s.name for s in tracer.finished] == ["inner", "middle", "outer"]
    assert tracer.roots == [outer]
    assert tracer.children(outer) == [middle]


def test_sibling_spans_share_parent():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    a, b = tracer.find("a")[0], tracer.find("b")[0]
    assert a.parent_id == root.span_id and b.parent_id == root.span_id
    assert [c.name for c in tracer.children(root)] == ["a", "b"]


def test_span_attributes_creation_set_and_posthoc():
    tracer = Tracer()
    with tracer.span("work", codec="sz") as span:
        span.set(ratio=2.5)
    span.set(observed_error=1e-4)  # post-hoc enrichment after exit
    assert span.attributes == {"codec": "sz", "ratio": 2.5, "observed_error": 1e-4}


def test_span_durations_and_total_seconds():
    tracer = Tracer()
    for __ in range(3):
        with tracer.span("tick"):
            time.sleep(0.001)
    assert len(tracer.find("tick")) == 3
    assert all(s.duration_s >= 0.001 for s in tracer.find("tick"))
    assert tracer.total_seconds("tick") == pytest.approx(
        sum(s.duration_s for s in tracer.find("tick"))
    )
    assert tracer.total_seconds("absent") == 0.0


def test_tracer_current_tracks_active_span():
    tracer = Tracer()
    assert tracer.current() is None
    with tracer.span("a") as a:
        assert tracer.current() is a
        with tracer.span("b") as b:
            assert tracer.current() is b
        assert tracer.current() is a
    assert tracer.current() is None


def test_span_survives_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert len(tracer.find("doomed")) == 1


def test_out_of_order_exit_tolerated():
    tracer = Tracer()
    outer = tracer.span("outer").__enter__()
    tracer.span("leaked").__enter__()  # never exited explicitly
    outer.__exit__(None, None, None)  # pops the leaked span too
    assert tracer.current() is None
    assert "outer" in [s.name for s in tracer.finished]


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("root", codec="sz"):
        with tracer.span("child") as child:
            child.set(ratio=2.0)
    path = str(tmp_path / "trace.jsonl")
    tracer.export_jsonl(path)
    rows = read_jsonl(path)
    assert rows == tracer.to_dicts()
    child_row = next(r for r in rows if r["name"] == "child")
    assert child_row["attributes"] == {"ratio": 2.0}
    assert child_row["parent_id"] == next(
        r["span_id"] for r in rows if r["name"] == "root"
    )
    # each line is independently parseable JSON
    with open(path) as handle:
        assert all(json.loads(line) for line in handle if line.strip())


def test_render_tree_structure_and_pruning():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("big"):
            time.sleep(0.01)
        with tracer.span("small", detail=1):
            pass
    tree = tracer.render_tree()
    lines = tree.splitlines()
    assert lines[0].startswith("root")
    assert any(line.lstrip().startswith("big") for line in lines)
    assert "[detail=1]" in tree
    pruned = tracer.render_tree(min_fraction=0.5)
    assert "big" in pruned and "small" not in pruned


# -- metrics ----------------------------------------------------------------


def test_counter_monotone():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge()
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(2)
    assert gauge.value == 13.0


def test_histogram_exact_percentiles():
    histogram = Histogram()
    for value in range(1, 101):  # 1..100
        histogram.observe(value)
    assert histogram.count == 100
    assert histogram.percentile(0) == 1
    assert histogram.percentile(100) == 100
    assert histogram.percentile(50) == pytest.approx(50.5)  # interpolated
    assert histogram.percentile(90) == pytest.approx(90.1)
    summary = histogram.summary()
    assert summary["count"] == 100 and summary["min"] == 1 and summary["max"] == 100
    assert summary["sum"] == pytest.approx(5050)


def test_histogram_edge_cases():
    empty = Histogram()
    assert math.isnan(empty.percentile(50))
    assert empty.summary() == {"count": 0, "sum": 0.0}
    single = Histogram()
    single.observe(7.0)
    assert single.percentile(0) == single.percentile(100) == 7.0
    with pytest.raises(ValueError):
        single.percentile(101)


def test_registry_label_series_are_distinct():
    registry = MetricsRegistry()
    registry.counter("recoveries_total", policy="fallback-lossless").inc()
    registry.counter("recoveries_total", policy="recompress-from-source").inc(2)
    assert registry.value("recoveries_total", policy="fallback-lossless") == 1
    assert registry.value("recoveries_total", policy="recompress-from-source") == 2
    assert registry.value("recoveries_total", policy="unknown") == 0.0
    assert registry.value("never_touched") == 0.0


def test_registry_same_series_is_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("hits", route="x")
    b = registry.counter("hits", route="x")
    assert a is b


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x_total")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x_total")


def test_registry_to_json_shape():
    registry = MetricsRegistry()
    registry.counter("events_total", kind="a").inc(3)
    registry.histogram("latency_seconds").observe(0.5)
    payload = registry.to_json()
    rows = {row["name"]: row for row in payload["metrics"]}
    assert rows["events_total"]["value"] == 3
    assert rows["events_total"]["labels"] == {"kind": "a"}
    assert rows["latency_seconds"]["count"] == 1
    assert rows["latency_seconds"]["p50"] == 0.5
    # the document survives a JSON round-trip
    assert json.loads(json.dumps(payload)) == payload


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("events_total", kind="a").inc(3)
    registry.gauge("ratio").set(2.5)
    histogram = registry.histogram("latency_seconds", stage="compress")
    histogram.observe(0.1)
    histogram.observe(0.3)
    text = registry.to_prometheus()
    assert "# TYPE events_total counter" in text
    assert 'events_total{kind="a"} 3' in text
    assert "# TYPE ratio gauge" in text
    assert "ratio 2.5" in text
    assert "# TYPE latency_seconds summary" in text
    assert 'latency_seconds{stage="compress",quantile="0.5"}' in text
    assert 'latency_seconds_sum{stage="compress"}' in text
    assert 'latency_seconds_count{stage="compress"} 2' in text
    assert text.endswith("\n")


def test_render_matches_saved_export():
    registry = MetricsRegistry()
    registry.counter("events_total").inc()
    registry.histogram("latency_seconds").observe(0.25)
    assert registry.render() == render_metrics_json(registry.to_json())
    assert "events_total" in registry.render()
    assert render_metrics_json({"metrics": []}) == "(no metrics recorded)"


# -- global switchboard -----------------------------------------------------


def test_defaults_are_null_objects():
    assert get_tracer() is NULL_TRACER
    assert get_metrics() is NULL_METRICS
    assert not obs.enabled()


def test_capture_installs_and_restores():
    assert get_tracer() is NULL_TRACER
    with obs.capture() as (tracer, metrics):
        assert get_tracer() is tracer and get_metrics() is metrics
        assert obs.enabled()
        with tracer.span("inside"):
            pass
        metrics.counter("c").inc()
    assert get_tracer() is NULL_TRACER and get_metrics() is NULL_METRICS
    assert len(tracer.finished) == 1  # results outlive the scope


def test_capture_nests_and_restores_outer():
    with obs.capture() as (outer_tracer, __):
        with obs.capture() as (inner_tracer, __m):
            assert get_tracer() is inner_tracer
        assert get_tracer() is outer_tracer


def test_capture_restores_on_exception():
    with pytest.raises(RuntimeError):
        with obs.capture():
            raise RuntimeError("boom")
    assert get_tracer() is NULL_TRACER


def test_null_tracer_is_allocation_free_and_cheap(tmp_path):
    span_a = NULL_TRACER.span("a", attr=1)
    span_b = NULL_TRACER.span("b")
    assert span_a is span_b  # shared singleton: no per-call allocation
    with span_a as entered:
        assert entered.set(x=1) is entered
    assert NULL_TRACER.find("a") == [] and NULL_TRACER.to_dicts() == []
    assert NULL_TRACER.render_tree() == ""
    path = str(tmp_path / "empty.jsonl")
    NULL_TRACER.export_jsonl(path)
    assert read_jsonl(path) == []
    # the disabled hot path must stay near-zero: well under 5us per span
    n = 20_000
    start = time.perf_counter()
    for __ in range(n):
        with NULL_TRACER.span("x"):
            pass
    assert (time.perf_counter() - start) / n < 5e-6


def test_null_metrics_absorbs_everything():
    instrument = NULL_METRICS.counter("a", k="v")
    assert instrument is NULL_METRICS.histogram("b")
    instrument.inc()
    instrument.observe(1.0)
    instrument.set(2.0)
    assert instrument.value == 0.0
    assert NULL_METRICS.to_json() == {"metrics": []}
    assert NULL_METRICS.to_prometheus() == ""


def test_disabled_codec_path_records_nothing(smooth_field_2d):
    codec = SZCompressor()
    codec.compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    assert get_tracer() is NULL_TRACER  # still disabled, nothing leaked
    with obs.capture() as (tracer, metrics):
        pass  # the pre-capture compress left no trace
    assert tracer.finished == [] and metrics.names() == []


# -- logger -----------------------------------------------------------------


def test_plain_format_matches_print(capsys):
    get_logger("t").info("compression ratio: 2.21x")
    assert capsys.readouterr().out == "compression ratio: 2.21x\n"


def test_plain_format_appends_context(capsys):
    get_logger("t").info("loaded", entries=3, codec="sz")
    assert capsys.readouterr().out == "loaded entries=3 codec=sz\n"


def test_warning_and_error_go_to_stderr(capsys):
    logger = get_logger("t")
    logger.warning("watch out")
    logger.error("TOLERANCE VIOLATED")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == "watch out\nTOLERANCE VIOLATED\n"


def test_level_threshold_filters(capsys):
    logger = get_logger("t")
    logger.debug("hidden")
    assert capsys.readouterr().out == ""
    set_log_level("debug")
    logger.debug("visible")
    assert capsys.readouterr().out == "visible\n"
    set_log_level("error")
    logger.info("hidden again")
    assert capsys.readouterr().out == ""
    assert logger.is_enabled_for("error") and not logger.is_enabled_for("info")


def test_logfmt_format_and_quoting(capsys):
    get_logger("pipe", fmt="logfmt").info("stage done", stage="compress", note="two words")
    out = capsys.readouterr().out
    assert out == 'level=info logger=pipe msg="stage done" stage=compress note="two words"\n'


def test_logger_registry_and_validation():
    assert get_logger("same") is get_logger("same")
    assert get_logger("same") is not get_logger("same", fmt="logfmt")
    with pytest.raises(ValueError):
        Logger("x", fmt="xml")
    with pytest.raises(ValueError, match="unknown log level"):
        set_log_level("loud")
    assert set(LEVELS) == {"debug", "info", "warning", "error"}


# -- layer timing hooks -----------------------------------------------------


def test_attach_layer_timing_records_and_detaches(tiny_mlp, rng):
    registry = MetricsRegistry()
    batch = rng.uniform(-1, 1, (8, 6)).astype(np.float32)
    with attach_layer_timing(tiny_mlp, metrics=registry) as handle:
        assert handle.n_wrapped > 0
        tiny_mlp(batch)
    forward_series = [
        row for row in registry.to_json()["metrics"]
        if row["name"] == "nn_layer_forward_seconds"
    ]
    assert len(forward_series) >= 6  # one series per leaf layer
    assert all(row["count"] == 1 for row in forward_series)
    # detach restored the class methods: no instance attribute remains
    for __, module in tiny_mlp.named_modules():
        assert "forward" not in vars(module)
    assert handle.n_wrapped == 0


def test_attach_layer_timing_null_metrics_is_untouched(tiny_mlp):
    handle = attach_layer_timing(tiny_mlp, metrics=NULL_METRICS)
    assert handle.n_wrapped == 0
    for __, module in tiny_mlp.named_modules():
        assert "forward" not in vars(module)


# -- instrumented subsystems ------------------------------------------------


def test_codec_spans_and_metrics(smooth_field_2d):
    codec = SZCompressor()
    with obs.capture() as (tracer, metrics):
        blob = codec.compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
        codec.decompress(blob)
    compress_span = tracer.find("codec.compress")[0]
    assert compress_span.attributes["codec"] == "sz"
    assert compress_span.attributes["ratio"] == pytest.approx(blob.compression_ratio)
    assert len(tracer.find("codec.decompress")) == 1
    assert metrics.value("codec_compress_total", codec="sz") == 1
    assert metrics.value("codec_decompress_total", codec="sz") == 1


def test_pipeline_spans_carry_bounds_and_observed_errors(trained_spectral_mlp, rng):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp, n_input=5)
    plan = TolerancePlanner(analyzer).plan(1e-2, norm="linf", quant_fraction=0.5)
    pipe = InferencePipeline(trained_spectral_mlp, SZCompressor(), plan)
    fields = rng.uniform(-1, 1, (5, 16, 16)).astype(np.float32)
    with obs.capture() as (tracer, metrics):
        result = pipe.execute(fields)
    root = tracer.find("pipeline.execute")[0]
    assert root.attributes["codec"] == "sz"
    assert root.attributes["compression_ratio"] == pytest.approx(result.compression_ratio)
    # the acceptance criterion: every stage span carries both the
    # predicted bound and the observed error
    for stage in ("pipeline.compress", "pipeline.decompress", "pipeline.inference", "pipeline.guard"):
        spans = tracer.find(stage)
        assert len(spans) == 1, stage
        assert "predicted_bound" in spans[0].attributes, stage
        assert "observed_error" in spans[0].attributes, stage
    guard = tracer.find("pipeline.guard")[0]
    assert guard.attributes["observed_error"] <= guard.attributes["predicted_bound"]
    assert guard.attributes["contract_slack"] >= 0
    assert metrics.value("pipeline_executions_total", codec="sz") == 1
    stage_rows = [
        row for row in metrics.to_json()["metrics"] if row["name"] == "pipeline_stage_seconds"
    ]
    assert {row["labels"]["stage"] for row in stage_rows} == {
        "compress", "decompress", "inference",
    }


def test_trainer_spans_and_layer_timing(tiny_mlp, rng):
    inputs = rng.uniform(-1, 1, (64, 6)).astype(np.float32)
    targets = rng.uniform(-1, 1, (64, 4)).astype(np.float32)
    trainer = Trainer(tiny_mlp, MSELoss(), SGD(tiny_mlp.parameters(), lr=0.01))
    with obs.capture() as (tracer, metrics):
        trainer.fit(inputs, targets, epochs=2, batch_size=32, rng=rng)
    fit = tracer.find("trainer.fit")[0]
    assert fit.attributes["epochs_run"] == 2
    epochs = tracer.find("trainer.epoch")
    assert [s.attributes["epoch"] for s in epochs] == [0, 1]
    assert all(s.parent_id == fit.span_id for s in epochs)
    assert metrics.value("train_steps_total") == 4  # 2 epochs x 2 batches
    layer_rows = [
        row for row in metrics.to_json()["metrics"]
        if row["name"] == "nn_layer_forward_seconds"
    ]
    assert layer_rows and all(row["count"] > 0 for row in layer_rows)
    # hooks were detached after fit: plain training leaves no shims
    for __, module in tiny_mlp.named_modules():
        assert "forward" not in vars(module)


# -- histogram sample cap (reservoir degradation) ---------------------------


def test_histogram_caps_retained_samples():
    histogram = Histogram(cap=100)
    for value in range(10_000):
        histogram.observe(float(value))
    assert len(histogram.samples) == 100
    # aggregate statistics stay exact past the cap
    assert histogram.count == 10_000
    assert histogram.sum == pytest.approx(sum(range(10_000)))
    summary = histogram.summary()
    assert summary["min"] == 0.0 and summary["max"] == 9999.0
    assert summary["count"] == 10_000
    # the reservoir is a uniform subsample: the median estimate must land
    # in the bulk of the distribution, not at an extreme
    assert 2000 < summary["p50"] < 8000


def test_histogram_below_cap_is_exact():
    histogram = Histogram(cap=100)
    for value in range(1, 51):
        histogram.observe(value)
    assert len(histogram.samples) == 50
    assert histogram.percentile(50) == pytest.approx(25.5)


def test_histogram_reservoir_is_deterministic():
    first, second = Histogram(cap=16), Histogram(cap=16)
    for value in range(1000):
        first.observe(value)
        second.observe(value)
    assert first.samples == second.samples


def test_histogram_unbounded_with_none_cap():
    histogram = Histogram(cap=None)
    for value in range(10_000):
        histogram.observe(value)
    assert len(histogram.samples) == 10_000


def test_histogram_rejects_non_positive_cap():
    with pytest.raises(ValueError):
        Histogram(cap=0)
    with pytest.raises(ValueError):
        Histogram(cap=-5)


def test_registry_histogram_cap_flows_to_instruments():
    registry = MetricsRegistry(histogram_cap=8)
    histogram = registry.histogram("pipeline_stage_seconds", stage="compress")
    for value in range(100):
        histogram.observe(value)
    assert len(histogram.samples) == 8 and histogram.count == 100
    # default registries use the class default
    assert MetricsRegistry().histogram("x").cap == Histogram.DEFAULT_CAP


# -- telemetry export hardening (numpy attribute values) --------------------


def test_export_jsonl_survives_numpy_attributes(tmp_path):
    from repro.obs import json_default

    tracer = Tracer()
    with tracer.span(
        "stage",
        error=np.float32(1.5),
        rows=np.int64(42),
        shape=np.array([2, 3]),
        flags={"b", "a"},
    ):
        pass
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(str(path))
    (record,) = read_jsonl(str(path))
    assert record["attributes"]["error"] == 1.5
    assert record["attributes"]["rows"] == 42
    assert record["attributes"]["shape"] == [2, 3]
    assert record["attributes"]["flags"] == ["a", "b"]
    # the converter itself: scalars via tolist, exotic objects via str
    assert json_default(np.float64(2.0)) == 2.0
    assert isinstance(json_default(object()), str)


def test_metrics_json_export_survives_numpy_values(tmp_path):
    from repro.cli import _export_metrics

    registry = MetricsRegistry()
    registry.gauge("compression_ratio").set(np.float32(3.5))
    registry.counter("events_total").inc(np.int64(2))
    path = tmp_path / "metrics.json"
    _export_metrics(registry, str(path))
    payload = json.loads(path.read_text())
    values = {row["name"]: row["value"] for row in payload["metrics"]}
    assert values["compression_ratio"] == pytest.approx(3.5)
    assert values["events_total"] == 2
