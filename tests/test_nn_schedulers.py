"""Tests for learning-rate schedulers and the trainer's new knobs."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TrainingError
from repro.nn import (
    Adam,
    CosineAnnealingLR,
    Linear,
    MSELoss,
    Parameter,
    SGD,
    Sequential,
    StepLR,
    Tanh,
    Trainer,
)


def _optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(2))], lr=lr)


# -- StepLR -----------------------------------------------------------------


def test_step_lr_decays_at_boundaries():
    optimizer = _optimizer(lr=1.0)
    scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
    rates = [scheduler.step() for __ in range(6)]
    assert rates == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]


def test_step_lr_validation():
    with pytest.raises(ConfigurationError):
        StepLR(_optimizer(), step_size=0)
    with pytest.raises(ConfigurationError):
        StepLR(_optimizer(), step_size=2, gamma=1.5)


# -- cosine ------------------------------------------------------------------


def test_cosine_reaches_min_lr():
    optimizer = _optimizer(lr=1.0)
    scheduler = CosineAnnealingLR(optimizer, t_max=10, min_lr=0.01)
    rates = [scheduler.step() for __ in range(12)]
    assert rates[0] < 1.0
    assert rates[9] == pytest.approx(0.01)
    assert rates[11] == pytest.approx(0.01)  # clamps past t_max
    assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))


def test_cosine_validation():
    with pytest.raises(ConfigurationError):
        CosineAnnealingLR(_optimizer(), t_max=0)
    with pytest.raises(ConfigurationError):
        CosineAnnealingLR(_optimizer(), t_max=5, min_lr=-1.0)


# -- trainer integration ---------------------------------------------------------


def _toy_problem(rng):
    model = Sequential(Linear(3, 8, rng=rng), Tanh(), Linear(8, 2, rng=rng))
    inputs = rng.uniform(-1, 1, (128, 3)).astype(np.float32)
    targets = np.tanh(inputs @ rng.standard_normal((3, 2))).astype(np.float32)
    return model, inputs, targets


def test_trainer_steps_scheduler(rng):
    model, inputs, targets = _toy_problem(rng)
    optimizer = SGD(model.parameters(), lr=0.1)
    scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
    trainer = Trainer(model, MSELoss(), optimizer, scheduler=scheduler)
    trainer.fit(inputs, targets, epochs=3, batch_size=32, rng=rng)
    assert optimizer.lr == pytest.approx(0.1 * 0.5**3)


def test_trainer_grad_clip_bounds_updates(rng):
    model, inputs, targets = _toy_problem(rng)
    trainer = Trainer(
        model, MSELoss(), SGD(model.parameters(), lr=0.1), grad_clip=1e-9
    )
    before = model.state_dict()
    trainer.fit(inputs, targets, epochs=1, batch_size=32, rng=rng)
    after = model.state_dict()
    # clipped to nearly-zero gradient norm: weights barely move
    for key in before:
        assert np.allclose(before[key], after[key], atol=1e-8)


def test_trainer_early_stopping(rng):
    model, inputs, targets = _toy_problem(rng)
    # lr=0 means validation loss never improves -> stop after `patience`
    trainer = Trainer(
        model, MSELoss(), Adam(model.parameters(), lr=1e-12), patience=2
    )
    history = trainer.fit(
        inputs, targets, epochs=50, batch_size=32,
        val_inputs=inputs, val_targets=targets, rng=rng,
    )
    assert history.epochs <= 4


def test_trainer_knob_validation(rng):
    model, __, __ = _toy_problem(rng)
    with pytest.raises(TrainingError):
        Trainer(model, MSELoss(), SGD(model.parameters(), lr=0.1), grad_clip=0.0)
    with pytest.raises(TrainingError):
        Trainer(model, MSELoss(), SGD(model.parameters(), lr=0.1), patience=0)
