"""Tests for numeric format emulation and Table I step sizes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.exceptions import QuantizationError
from repro.quant import (
    BF16,
    FP16,
    FP32,
    INT8,
    TF32,
    FloatFormat,
    IntFormat,
    average_step_size,
    elementwise_step_size,
    get_format,
)

_FLOAT_FORMATS = (TF32, FP16, BF16)

finite_arrays = npst.arrays(
    dtype=np.float64,
    shape=npst.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=24),
    elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
)


@given(values=finite_arrays)
@settings(max_examples=80, deadline=None)
def test_fp16_emulation_matches_numpy_float16(values):
    ours = FP16.quantize(values)
    reference = values.astype(np.float16).astype(np.float64)
    assert np.array_equal(ours, reference)


@pytest.mark.parametrize("fmt", _FLOAT_FORMATS, ids=lambda f: f.name)
@given(values=finite_arrays)
@settings(max_examples=40, deadline=None)
def test_float_quantization_idempotent(fmt, values):
    once = fmt.quantize(values)
    twice = fmt.quantize(once)
    assert np.array_equal(once, twice)


@pytest.mark.parametrize("fmt", _FLOAT_FORMATS, ids=lambda f: f.name)
@given(values=finite_arrays)
@settings(max_examples=40, deadline=None)
def test_float_rounding_error_below_step(fmt, values):
    quantized = fmt.quantize(values)
    steps = elementwise_step_size(values, fmt)
    # round-to-nearest: error at most half the local step
    assert np.all(np.abs(quantized - values) <= steps / 2 + 1e-300)


def test_fp32_is_identity_on_float32(rng):
    values = rng.standard_normal(100).astype(np.float32).astype(np.float64)
    assert np.array_equal(FP32.quantize(values), values)
    assert FP32.is_identity


def test_tf32_fp16_same_mantissa():
    # Paper Section IV-B.2: TF32 and FP16 share 10 mantissa bits, hence
    # nearly identical error bounds.
    assert TF32.mantissa_bits == FP16.mantissa_bits == 10
    assert BF16.mantissa_bits == 7


def test_fp16_saturates_at_max():
    assert FP16.quantize(np.array([1e6]))[0] == pytest.approx(65504.0)
    assert FP16.quantize(np.array([-1e6]))[0] == pytest.approx(-65504.0)


def test_fp16_subnormal_grid():
    # below 2^-14 the grid pitch is fixed at 2^-24
    tiny = np.array([2.0**-20])
    quantized = FP16.quantize(tiny)
    assert quantized[0] % 2.0**-24 == 0.0


def test_zero_preserved():
    for fmt in (*_FLOAT_FORMATS, INT8):
        assert fmt.quantize(np.zeros(5)).tolist() == [0.0] * 5


def test_int8_error_within_half_step(rng):
    values = rng.standard_normal(500) * 3.0
    quantized = INT8.quantize(values)
    step = (values.max() - values.min()) / 255
    assert np.max(np.abs(quantized - values)) <= step / 2 + 1e-12


def test_int8_constant_tensor_unchanged():
    values = np.full(10, 3.7)
    assert np.array_equal(INT8.quantize(values), values)


def test_degenerate_formats_rejected():
    with pytest.raises(QuantizationError):
        FloatFormat(name="bad", storage_bits=8, exponent_bits=1, mantissa_bits=4)
    with pytest.raises(QuantizationError):
        IntFormat(name="bad", storage_bits=1, bits=1)


def test_get_format_lookup():
    assert get_format("FP16") is FP16
    assert get_format("int8") is INT8
    with pytest.raises(QuantizationError):
        get_format("fp8")


def test_memory_ratio():
    assert FP16.memory_ratio() == 0.5
    assert INT8.memory_ratio() == 0.25
    assert TF32.memory_ratio() == pytest.approx(19 / 32)


# -- Table I step sizes ---------------------------------------------------------


def test_step_size_single_binade():
    # all weights in [1, 2): floor(log2|w|) = 0 everywhere
    weights = np.array([1.0, 1.25, 1.5, 1.9])
    assert average_step_size(weights, FP16) == pytest.approx(2.0**-10)
    assert average_step_size(weights, BF16) == pytest.approx(2.0**-7)
    assert average_step_size(weights, TF32) == pytest.approx(2.0**-10)


def test_step_size_is_rms_across_binades():
    weights = np.array([1.0, 2.0])  # binades 0 and 1
    expected = 2.0**-10 * np.sqrt((1.0 + 4.0) / 2.0)
    assert average_step_size(weights, FP16) == pytest.approx(expected)


def test_step_size_int8_formula(rng):
    weights = rng.standard_normal(64)
    expected = (weights.max() - weights.min()) / 256
    assert average_step_size(weights, INT8) == pytest.approx(expected)


def test_step_size_fp16_clamps_exponent():
    weights = np.array([2.0**-30])  # below the FP16 normal range
    expected = 2.0 ** (-14 - 10)
    assert average_step_size(weights, FP16) == pytest.approx(expected)
    # TF32 keeps the float32 exponent range: no clamp at -14
    assert average_step_size(weights, TF32) == pytest.approx(2.0 ** (-30 - 10))


def test_step_size_scales_with_weights(rng):
    weights = rng.standard_normal(128)
    small = average_step_size(weights * 0.25, FP16)
    large = average_step_size(weights, FP16)
    assert small == pytest.approx(large / 4.0)


def test_step_size_empty_and_zero():
    assert average_step_size(np.array([]), FP16) == 0.0
    assert average_step_size(np.zeros(8), FP16) == 0.0


def test_elementwise_step_unknown_format():
    class Weird:
        pass

    with pytest.raises(QuantizationError):
        elementwise_step_size(np.ones(3), Weird())
