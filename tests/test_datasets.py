"""Tests for the three workload datasets and the loader utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    CLASS_NAMES,
    INPUT_VARIABLES,
    MinMaxNormalizer,
    OUTPUT_VARIABLES,
    batches,
    make_borghesi_flame,
    make_eurosat,
    make_h2_combustion,
    train_test_split,
)
from repro.exceptions import ShapeError


# -- loaders ------------------------------------------------------------------


def test_normalizer_maps_to_unit_interval(rng):
    data = rng.standard_normal((200, 4)) * np.array([1.0, 10.0, 0.1, 100.0])
    normalizer = MinMaxNormalizer().fit(data)
    transformed = normalizer.transform(data)
    assert transformed.min() >= -1.0 - 1e-6
    assert transformed.max() <= 1.0 + 1e-6


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_normalizer_roundtrip(seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((50, 3)) * rng.uniform(0.1, 50.0, 3)
    normalizer = MinMaxNormalizer().fit(data)
    recovered = normalizer.inverse(normalizer.transform(data))
    assert np.allclose(recovered, data, rtol=1e-4, atol=1e-4)


def test_normalizer_degenerate_feature():
    data = np.column_stack([np.ones(10), np.arange(10.0)])
    normalizer = MinMaxNormalizer().fit(data)
    transformed = normalizer.transform(data)
    assert np.all(np.isfinite(transformed))


def test_normalizer_requires_fit():
    with pytest.raises(ShapeError):
        MinMaxNormalizer().transform(np.zeros((2, 2)))


def test_train_test_split_partition(rng):
    inputs = np.arange(100).reshape(100, 1)
    targets = np.arange(100)
    train_x, train_y, test_x, test_y = train_test_split(inputs, targets, 0.25, rng)
    assert len(test_x) == 25 and len(train_x) == 75
    combined = np.sort(np.concatenate([train_x.ravel(), test_x.ravel()]))
    assert np.array_equal(combined, np.arange(100))
    assert np.array_equal(train_x.ravel(), train_y)


def test_train_test_split_validation(rng):
    with pytest.raises(ShapeError):
        train_test_split(np.zeros((5, 1)), np.zeros(4), 0.2, rng)
    with pytest.raises(ShapeError):
        train_test_split(np.zeros((5, 1)), np.zeros(5), 1.5, rng)


def test_batches_cover_everything(rng):
    inputs = np.arange(10).reshape(10, 1)
    targets = np.arange(10)
    seen = []
    for batch_x, __ in batches(inputs, targets, batch_size=3):
        seen.extend(batch_x.ravel().tolist())
    assert sorted(seen) == list(range(10))


# -- H2 combustion ----------------------------------------------------------------


def test_h2_dataset_shapes(rng):
    dataset = make_h2_combustion(grid=32, rng=rng)
    assert dataset.train_inputs.shape[1] == 9
    assert dataset.train_targets.shape[1] == 9
    assert dataset.fields.shape == (9, 32, 32)
    assert dataset.n_inputs == 9 and dataset.n_outputs == 9
    assert dataset.task == "regression"


def test_h2_dataset_normalized(rng):
    dataset = make_h2_combustion(grid=32, rng=rng)
    assert dataset.train_inputs.min() >= -1.0 - 1e-5
    assert dataset.train_inputs.max() <= 1.0 + 1e-5
    assert np.isfinite(dataset.train_targets).all()


def test_h2_fields_match_samples(rng):
    dataset = make_h2_combustion(grid=24, rng=rng)
    samples = dataset.fields_as_samples()
    assert samples.shape == (24 * 24, 9)
    total = len(dataset.train_inputs) + len(dataset.test_inputs)
    assert total == 24 * 24


def test_h2_dataset_deterministic():
    a = make_h2_combustion(grid=24, rng=np.random.default_rng(5))
    b = make_h2_combustion(grid=24, rng=np.random.default_rng(5))
    assert np.array_equal(a.fields, b.fields)


# -- Borghesi ---------------------------------------------------------------------


def test_borghesi_has_13_inputs_3_outputs(rng):
    dataset = make_borghesi_flame(grid=32, rng=rng)
    assert dataset.n_inputs == len(INPUT_VARIABLES) == 13
    assert dataset.n_outputs == len(OUTPUT_VARIABLES) == 3
    assert dataset.fields.shape == (13, 32, 32)


def test_borghesi_dissipation_nonnegative(rng):
    """chi_Z and chi_C are (filtered) squared gradients: non-negative."""
    dataset = make_borghesi_flame(grid=32, rng=rng)
    raw_targets = dataset.target_normalizer.inverse(dataset.train_targets)
    assert raw_targets[:, 0].min() >= -1e-6
    assert raw_targets[:, 1].min() >= -1e-6


# -- EuroSAT ----------------------------------------------------------------------


def test_eurosat_shapes_and_classes(rng):
    dataset = make_eurosat(n_per_class=4, image_size=16, rng=rng)
    assert dataset.train_inputs.shape[1:] == (13, 16, 16)
    assert dataset.n_outputs == 10
    assert dataset.task == "classification"
    assert len(CLASS_NAMES) == 10
    assert dataset.metadata["bit_depth"] == 16


def test_eurosat_all_classes_present(rng):
    dataset = make_eurosat(n_per_class=6, image_size=16, rng=rng)
    labels = np.concatenate([dataset.train_targets, dataset.test_targets])
    assert set(labels.tolist()) == set(range(10))


def test_eurosat_classes_spectrally_distinct(rng):
    dataset = make_eurosat(n_per_class=8, image_size=16, rng=rng)
    inputs = np.concatenate([dataset.train_inputs, dataset.test_inputs])
    labels = np.concatenate([dataset.train_targets, dataset.test_targets])
    # mean band signature per class: within-class spread must be smaller
    # than between-class spread for the task to be learnable
    signatures = np.stack(
        [inputs[labels == c].mean(axis=(0, 2, 3)) for c in range(10)]
    )
    between = np.linalg.norm(signatures[:, None] - signatures[None, :], axis=-1)
    closest = np.min(between + np.eye(10) * 1e9)
    assert closest > 0.05


def test_eurosat_images_in_normalized_range(rng):
    dataset = make_eurosat(n_per_class=3, image_size=16, rng=rng)
    assert dataset.train_inputs.min() >= -1.0
    assert dataset.train_inputs.max() <= 1.0
