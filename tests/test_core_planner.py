"""Tests for the tolerance planner (Fig. 1 / Fig. 10 logic)."""

import numpy as np
import pytest

from repro.core import ErrorFlowAnalyzer, TolerancePlanner
from repro.exceptions import PlanningError
from repro.quant import FP32


@pytest.fixture
def planner(trained_spectral_mlp):
    return TolerancePlanner(ErrorFlowAnalyzer(trained_spectral_mlp))


def test_plan_selects_faster_format_with_larger_budget(planner):
    analyzer = planner.analyzer
    fp16_bound = analyzer.quantization_bound(planner.formats[1])
    loose = planner.plan(qoi_tolerance=fp16_bound * 100, quant_fraction=0.5)
    tight = planner.plan(qoi_tolerance=fp16_bound * 0.1, quant_fraction=0.5)
    # loose budget admits an aggressive format; tight forces FP32
    assert loose.fmt.name in ("int8", "fp16")
    assert tight.fmt.name == "fp32"
    assert tight.quant_bound == 0.0


def test_plan_respects_quant_fraction(planner):
    tolerance = 1e-1
    small = planner.plan(tolerance, quant_fraction=0.05)
    large = planner.plan(tolerance, quant_fraction=0.95)
    # a larger fraction can only admit an equally fast or faster format
    ranking = [fmt.name for fmt in planner.formats]
    assert ranking.index(large.fmt.name) <= ranking.index(small.fmt.name)


def test_plan_total_budget_is_conserved(planner):
    plan = planner.plan(qoi_tolerance=1e-1, quant_fraction=0.5)
    assert plan.quant_bound + plan.compression_budget == pytest.approx(1e-1)
    # predicted combined bound at the planned input tolerance == tolerance
    analyzer = planner.analyzer
    input_l2 = plan.input_tolerance if plan.norm == "l2" else (
        plan.input_tolerance * np.sqrt(analyzer.n_input)
    )
    fmt = None if plan.fmt.is_identity else plan.fmt
    assert analyzer.combined_bound(input_l2, fmt) == pytest.approx(plan.qoi_tolerance, rel=1e-9)


def test_plan_l2_norm_units(planner):
    linf_plan = planner.plan(1e-2, norm="linf")
    l2_plan = planner.plan(1e-2, norm="l2")
    # pointwise tolerance is the L2 one shrunk by sqrt(n0)
    assert linf_plan.input_tolerance == pytest.approx(
        l2_plan.input_tolerance / np.sqrt(planner.analyzer.n_input)
    )


def test_plan_validation(planner):
    with pytest.raises(PlanningError):
        planner.plan(0.0)
    with pytest.raises(PlanningError):
        planner.plan(1e-3, quant_fraction=1.5)
    with pytest.raises(PlanningError):
        planner.plan(1e-3, norm="l7")


def test_plan_sweep_length(planner):
    plans = planner.plan_sweep([1e-4, 1e-3, 1e-2])
    assert len(plans) == 3
    assert plans[0].qoi_tolerance < plans[-1].qoi_tolerance


def test_plan_describe(planner):
    text = planner.plan(1e-2).describe()
    assert "tol=" in text and "format=" in text


def test_fp32_fallback_always_feasible(planner):
    """Even a tolerance below every format's bound must yield a plan."""
    plan = planner.plan(qoi_tolerance=1e-9, quant_fraction=0.9)
    assert plan.fmt is FP32
    assert plan.input_tolerance > 0.0


def test_auto_plan_maximizes_throughput(planner):
    """auto_plan must beat or match every fixed-fraction plan."""

    def throughput_model(plan):
        # toy model: faster formats help, larger input tolerance helps
        speedups = {"fp32": 1.0, "tf32": 1.2, "bf16": 1.3, "fp16": 4.5, "int8": 4.2}
        return min(speedups[plan.fmt.name], 1e6 * plan.input_tolerance)

    best = planner.auto_plan(1e-1, throughput_model)
    for fraction in (0.1, 0.5, 0.9):
        fixed = planner.plan(1e-1, quant_fraction=fraction)
        assert throughput_model(best) >= throughput_model(fixed) - 1e-12
    assert "search_trace" in best.metadata
