"""Tests for the worker pool and the parallel chunked paths it powers."""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.compress.sz import SZCompressor
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.core.pipeline import InferencePipeline
from repro.core.planner import TolerancePlanner
from repro.exceptions import PlanningError
from repro.io import DatasetStore, read_chunked, write_chunked
from repro.perf.parallel import WorkerPool, parallel_map, resolve_workers


# -- resolve_workers ------------------------------------------------------------


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1  # one per CPU
    assert resolve_workers(-1) >= 1


# -- parallel_map ---------------------------------------------------------------


def test_parallel_map_preserves_order():
    def slow_negate(x):
        time.sleep(0.01 * (5 - x % 5))  # later items finish first
        return -x

    items = list(range(20))
    assert parallel_map(slow_negate, items, workers=4) == [-x for x in items]


def test_parallel_map_matches_serial():
    items = list(range(50))
    serial = parallel_map(lambda x: x * x, items, workers=1)
    parallel = parallel_map(lambda x: x * x, items, workers=4)
    assert serial == parallel == [x * x for x in items]


def test_parallel_map_serial_path_runs_inline():
    thread_names = []
    parallel_map(lambda _: thread_names.append(threading.current_thread().name), [1, 2], workers=1)
    assert thread_names == [threading.current_thread().name] * 2


def test_parallel_map_fail_fast():
    def boom(x):
        if x == 3:
            raise ValueError("task 3 failed")
        return x

    with pytest.raises(ValueError, match="task 3 failed"):
        parallel_map(boom, range(6), workers=2)


def test_parallel_map_cancels_pending_on_failure():
    """Fail-fast: once a task fails, queued-but-unstarted tasks are
    cancelled instead of being run to completion."""
    executed = []
    gate = threading.Event()

    def task(x):
        if x == 1:
            raise ValueError("early failure")
        # every non-failing task blocks until cancellation has happened,
        # so the workers cannot race through the queue before the main
        # thread wakes to cancel it
        gate.wait(10.0)
        executed.append(x)
        return x

    with obs.capture() as (_tracer, metrics):
        def release_once_cancelled():
            for _ in range(2000):
                if metrics.value("pool_tasks_cancelled_total", pool="probe") > 0:
                    break
                time.sleep(0.005)
            gate.set()

        watcher = threading.Thread(target=release_once_cancelled, daemon=True)
        watcher.start()
        with pytest.raises(ValueError, match="early failure"):
            try:
                parallel_map(task, range(40), workers=2, label="probe")
            finally:
                gate.set()
        watcher.join(5.0)
        cancelled = metrics.value("pool_tasks_cancelled_total", pool="probe")
    # both workers are parked on the gate after the failure, so at most
    # tasks 0 and 2 ever start — the rest of the queue must be cancelled
    assert cancelled >= 37
    assert len(executed) <= 2


def test_parallel_map_earliest_failure_wins():
    """When several tasks fail, the earliest-submitted failure is raised."""
    def boom(x):
        time.sleep(0.01 * (4 - x))  # later tasks fail *sooner*
        raise ValueError(f"task {x} failed")

    with pytest.raises(ValueError, match="task 0 failed"):
        parallel_map(boom, range(4), workers=4)


def test_parallel_map_records_pool_metrics():
    with obs.capture() as (_tracer, metrics):
        parallel_map(lambda x: x, range(8), workers=2, label="probe")
    assert metrics.value("pool_tasks_total", pool="probe") == 8
    assert metrics.value("pool_workers", pool="probe") == 2
    assert 0.0 < metrics.value("pool_utilization", pool="probe") <= 1.0


def test_parallel_map_traces_worker_spans():
    with obs.capture() as (tracer, _metrics):
        parallel_map(lambda x: x, range(4), workers=2, label="probe")
    spans = [s for s in tracer.finished if s.name == "pool.task"]
    assert len(spans) == 4
    assert sorted(s.attributes["index"] for s in spans) == [0, 1, 2, 3]
    assert all(s.attributes["pool"] == "probe" for s in spans)


# -- WorkerPool -----------------------------------------------------------------


def test_worker_pool_drain_propagates_failure():
    def boom(_):
        raise RuntimeError("chunk store failed")

    pool = WorkerPool(workers=2)
    pool.submit(boom, None)
    with pytest.raises(RuntimeError, match="chunk store failed"):
        pool.drain()
    pool.shutdown()


def test_worker_pool_drain_cancels_pending_on_failure():
    executed = []
    gate = threading.Event()

    def task(x):
        if x == 1:
            raise RuntimeError("first chunk failed")
        gate.wait(10.0)  # park the workers until the backlog is cancelled
        executed.append(x)

    with obs.capture() as (_tracer, metrics):
        pool = WorkerPool(workers=2, label="probe")
        for i in range(40):
            pool.submit(task, i)

        def release_once_cancelled():
            for _ in range(2000):
                if metrics.value("pool_tasks_cancelled_total", pool="probe") > 0:
                    break
                time.sleep(0.005)
            gate.set()

        watcher = threading.Thread(target=release_once_cancelled, daemon=True)
        watcher.start()
        with pytest.raises(RuntimeError, match="first chunk failed"):
            try:
                pool.drain()
            finally:
                gate.set()
        watcher.join(5.0)
    pool.shutdown()
    assert len(executed) <= 2  # the backlog was cancelled, not drained


def test_worker_pool_serial_runs_inline():
    seen = []
    pool = WorkerPool(workers=1)
    assert not pool.is_parallel
    pool.submit(seen.append, 7)
    assert seen == [7]  # ran at submit time, no drain needed
    pool.drain()
    pool.shutdown()


def test_worker_pool_context_manager_drains():
    done = []
    with WorkerPool(workers=2) as pool:
        for i in range(5):
            pool.submit(lambda x: (time.sleep(0.01), done.append(x)), i)
    assert sorted(done) == [0, 1, 2, 3, 4]


# -- chunked I/O with workers ---------------------------------------------------


@pytest.fixture
def snapshots(rng):
    grid = np.linspace(0, 2 * np.pi, 24)
    frames = [
        np.sin(grid[None, :] + 0.2 * t) * np.cos(grid[:, None]) for t in range(10)
    ]
    return np.stack(frames).astype(np.float32)


def test_chunked_io_parallel_serial_parity(tmp_path, snapshots):
    serial_store = DatasetStore(str(tmp_path / "serial"))
    parallel_store = DatasetStore(str(tmp_path / "parallel"))
    n_serial = write_chunked(serial_store, "a", snapshots, 1e-3, chunk_size=3)
    n_parallel = write_chunked(
        parallel_store, "a", snapshots, 1e-3, chunk_size=3, workers=4
    )
    assert n_serial == n_parallel
    serial = read_chunked(serial_store, "a")
    parallel = read_chunked(parallel_store, "a", workers=4)
    assert np.array_equal(serial, parallel)
    assert np.abs(parallel - snapshots).max() <= 1e-3


def test_chunked_writer_failure_leaves_no_manifest(tmp_path, snapshots):
    store = DatasetStore(str(tmp_path))
    from repro.io.chunked import ChunkedArrayWriter

    writer = ChunkedArrayWriter(store, "bad", tolerance=1e-3, workers=2)
    writer.append(snapshots[:3])
    writer._pool.submit(lambda _: 1 / 0, None)  # poison the queue
    with pytest.raises(ZeroDivisionError):
        writer.close()
    assert not (tmp_path / ("bad" + ".manifest.json")).exists()


# -- InferencePipeline.execute_chunked ------------------------------------------


@pytest.fixture
def pipeline_setup(trained_spectral_mlp):
    x = np.linspace(0, 2 * np.pi, 32)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)
    planner = TolerancePlanner(ErrorFlowAnalyzer(trained_spectral_mlp))
    return trained_spectral_mlp, fields, planner


def test_execute_chunked_parallel_matches_serial(pipeline_setup):
    model, fields, planner = pipeline_setup
    plan = planner.plan(1e-2, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(model, SZCompressor(), plan)
    serial = pipeline.execute_chunked(fields, chunk_size=8, chunk_axis=1, workers=1)
    parallel = pipeline.execute_chunked(fields, chunk_size=8, chunk_axis=1, workers=4)
    assert np.array_equal(serial.outputs, parallel.outputs)
    assert np.array_equal(serial.reference_outputs, parallel.reference_outputs)
    assert serial.extra["chunked"]["n_chunks"] == 4
    assert parallel.extra["chunked"]["workers"] == 4


def test_execute_chunked_honours_tolerance(pipeline_setup):
    model, fields, planner = pipeline_setup
    tolerance = 1e-2
    plan = planner.plan(tolerance, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(model, SZCompressor(), plan)
    result = pipeline.execute_chunked(fields, chunk_size=8, chunk_axis=1, workers=2)
    assert result.outputs.shape == (32 * 32, 3)
    assert result.qoi_error("linf", relative=False) <= tolerance
    assert result.input_error_linf <= plan.input_tolerance
    assert result.extra["chunked"]["compression_ratio"] > 1.0


def test_execute_chunked_output_shape_matches_unchunked(pipeline_setup):
    model, fields, planner = pipeline_setup
    plan = planner.plan(1e-2, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(model, SZCompressor(), plan)
    whole = pipeline.execute(fields)
    chunked = pipeline.execute_chunked(fields, chunk_size=8, chunk_axis=1)
    assert chunked.outputs.shape == whole.outputs.shape
    # References are computed on uncompressed data: identical either way.
    assert np.allclose(
        chunked.reference_outputs, whole.reference_outputs, atol=1e-6
    )


def test_execute_chunked_rejects_l2_plans(pipeline_setup):
    model, fields, planner = pipeline_setup
    plan = planner.plan(5e-2, norm="l2", quant_fraction=0.5)
    pipeline = InferencePipeline(model, SZCompressor(), plan)
    with pytest.raises(PlanningError):
        pipeline.execute_chunked(fields, chunk_size=8, chunk_axis=1)


def test_execute_chunked_rejects_bad_chunk_size(pipeline_setup):
    model, fields, planner = pipeline_setup
    plan = planner.plan(1e-2, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(model, SZCompressor(), plan)
    with pytest.raises(PlanningError):
        pipeline.execute_chunked(fields, chunk_size=0)
