"""Tests for the performance models (hardware, I/O, execution)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models import mlp_small, model_flops
from repro.perf import (
    CodecSpeed,
    ExecutionModel,
    GPU_PROFILES,
    IOModel,
    MI250X,
    RTX3080TI,
    Stopwatch,
    Timer,
    V100,
    get_gpu,
    measure_inference_seconds,
)


# -- hardware profiles ------------------------------------------------------------


def test_only_rtx_supports_tf32():
    """Paper Fig. 5: TF32/BF16 results exist only on the RTX 3080 Ti."""
    assert RTX3080TI.supports("tf32")
    assert not V100.supports("tf32")
    assert not MI250X.supports("tf32")


def test_bf16_emulated_on_v100_and_mi250x():
    for gpu in (V100, MI250X):
        assert gpu.supports("bf16")
        assert not gpu.is_native("bf16")
        # emulation is slower than FP32
        assert gpu.speedup("bf16") < 1.0
    assert RTX3080TI.is_native("bf16")


def test_fp16_speedup_up_to_4_5x():
    """Paper: up to 4.5x computation throughput for FP16."""
    best = max(gpu.speedup("fp16") for gpu in GPU_PROFILES.values())
    assert best == pytest.approx(4.5)


def test_speedup_unknown_format_raises():
    with pytest.raises(ConfigurationError):
        V100.speedup("fp4")


def test_get_gpu_lookup():
    assert get_gpu("v100") is V100
    with pytest.raises(ConfigurationError):
        get_gpu("h100")


# -- I/O model ---------------------------------------------------------------------


def test_io_baseline_is_2_8_gbps():
    assert IOModel().baseline_gbps == pytest.approx(2.8)


def test_io_throughput_grows_with_ratio():
    model = IOModel()
    low = model.throughput_gbps("sz", 1.5)
    high = model.throughput_gbps("sz", 20.0)
    assert high > low


def test_sz_mgard_dip_below_baseline_at_low_ratio():
    """Paper Fig. 7: at tight tolerances SZ and MGARD fall below 2.8 GB/s."""
    model = IOModel()
    for codec in ("sz", "mgard"):
        assert model.throughput_gbps(codec, 1.05) < model.baseline_gbps


def test_zfp_stays_stable():
    """Paper Fig. 7: ZFP throughput is comparatively stable."""
    model = IOModel()
    near = model.throughput_gbps("zfp", 1.2)
    far = model.throughput_gbps("zfp", 16.0)
    assert near > 0.7 * model.baseline_gbps
    assert far / near < 6.0


def test_io_tenfold_gain_achievable():
    """Paper: up to ~10x I/O throughput at a QoI tolerance of 1e-3."""
    model = IOModel()
    assert model.speedup("sz", 30.0) > 7.0


def test_io_model_validation():
    with pytest.raises(ConfigurationError):
        IOModel(disk_bandwidth_gbps=0.0)
    with pytest.raises(ConfigurationError):
        IOModel().throughput_gbps("lz4", 2.0)
    with pytest.raises(ConfigurationError):
        CodecSpeed(base_rate_gbps=10.0).rate(0.0)


# -- execution model ------------------------------------------------------------------


def test_exec_throughput_scales_with_format():
    model = ExecutionModel(RTX3080TI)
    fp32 = model.data_throughput_gbps(int(1e6), 1024, "fp32")
    fp16 = model.data_throughput_gbps(int(1e6), 1024, "fp16")
    assert fp16 == pytest.approx(fp32 * 4.5)


def test_exec_throughput_inverse_in_flops_when_compute_bound():
    model = ExecutionModel(RTX3080TI, overhead_flops=0.0)
    cheap = model.samples_per_second(int(1e5))
    costly = model.samples_per_second(int(1e7))
    assert cheap == pytest.approx(costly * 100)


def test_exec_overhead_caps_tiny_model_throughput():
    """Tiny MLPs are launch-overhead-bound, not FLOP-bound."""
    model = ExecutionModel(RTX3080TI, overhead_flops=2e5)
    tiny = model.samples_per_second(int(1e3))
    tinier = model.samples_per_second(int(1e2))
    assert tinier / tiny < 1.05  # throughput saturates


def test_exec_model_validation():
    with pytest.raises(ConfigurationError):
        ExecutionModel(V100, efficiency=0.0)
    with pytest.raises(ConfigurationError):
        ExecutionModel(V100).samples_per_second(0)


def test_stage_breakdown_fractions_sum_to_one():
    model = ExecutionModel(RTX3080TI)
    breakdown = model.stage_breakdown(int(4e6), 4096, n_samples=1000)
    fractions = breakdown.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in fractions.values())


def test_bigger_model_shifts_time_to_execute():
    """Fig. 2: deeper models spend a larger share in model execution."""
    model = ExecutionModel(RTX3080TI)
    small = model.stage_breakdown(int(5e5), 1024, 100).fractions()["execute"]
    large = model.stage_breakdown(int(3.4e7), 1024, 100).fractions()["execute"]
    assert large > small


def test_measure_inference_seconds_positive(rng):
    model = mlp_small(rng=rng)
    seconds = measure_inference_seconds(model, (256,), batch_size=8, repeats=2, rng=rng)
    assert seconds > 0


# -- timers -----------------------------------------------------------------------------


def test_timer_measures_elapsed():
    with Timer() as timer:
        sum(range(1000))
    assert timer.seconds >= 0


def test_stopwatch_accumulates():
    watch = Stopwatch()
    with watch.lap("a"):
        pass
    with watch.lap("a"):
        pass
    with watch.lap("b"):
        pass
    assert set(watch.phases) == {"a", "b"}
    assert watch.total() == pytest.approx(sum(watch.phases.values()))
    fractions = watch.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_timer_zero_duration_and_reuse():
    timer = Timer()
    assert timer.seconds == 0.0  # unused timer reads zero
    with timer:
        pass
    assert timer.seconds >= 0
    with timer:  # reusable: the second run overwrites the first
        sum(range(10000))
    assert timer.seconds > 0


def test_timer_records_on_exception():
    timer = Timer()
    with pytest.raises(ValueError):
        with timer:
            raise ValueError("boom")
    assert timer.seconds >= 0


def test_stopwatch_nested_same_phase_counts_once():
    """Reentrant laps must not double-count the outer lap's time."""
    import time as _time

    watch = Stopwatch()
    with watch.lap("phase"):
        with watch.lap("phase"):  # nested lap of the SAME phase
            _time.sleep(0.01)
    # without the depth guard this would be >= 0.02 (outer + inner)
    assert 0.01 <= watch.phases["phase"] < 0.02
    # the depth bookkeeping resets, so later laps still accumulate
    with watch.lap("phase"):
        pass
    assert watch.phases["phase"] >= 0.01


def test_stopwatch_lap_exception_still_records():
    watch = Stopwatch()
    with pytest.raises(RuntimeError):
        with watch.lap("risky"):
            raise RuntimeError("boom")
    assert watch.phases["risky"] >= 0
    assert watch._depths == {}  # no leaked depth state


def test_stopwatch_zero_duration_fractions():
    watch = Stopwatch(phases={"a": 0.0, "b": 0.0})
    assert watch.total() == 0.0
    assert watch.fractions() == {"a": 0.0, "b": 0.0}


def test_stopwatch_laps_become_spans():
    from repro.obs import Tracer

    tracer = Tracer()
    watch = Stopwatch(tracer=tracer)
    with watch.lap("load"):
        with watch.lap("execute"):
            pass
    names = [span.name for span in tracer.finished]
    assert names == ["execute", "load"]
    execute = tracer.find("execute")[0]
    assert execute.parent_id == tracer.find("load")[0].span_id


def test_stopwatch_from_spans_skips_shadowed_descendants():
    from repro.obs import Tracer

    tracer = Tracer()
    with tracer.span("phase"):
        with tracer.span("phase"):  # same-name descendant: already counted
            pass
        with tracer.span("other"):
            pass
    watch = Stopwatch.from_spans(tracer)
    outer = [s for s in tracer.find("phase") if s.parent_id is None][0]
    assert watch.phases["phase"] == pytest.approx(outer.duration_s)
    assert set(watch.phases) == {"phase", "other"}
    # dict rows (JSONL export shape) behave identically
    rebuilt = Stopwatch.from_spans(tracer.to_dicts())
    assert rebuilt.phases == watch.phases
