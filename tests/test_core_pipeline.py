"""Tests for the end-to-end inference pipeline and sensitivity probing."""

import numpy as np
import pytest

from repro.compress import MGARDCompressor, SZCompressor, ZFPCompressor
from repro.core import ErrorFlowAnalyzer, InferencePipeline, TolerancePlanner, probe_sensitivity
from repro.exceptions import PlanningError


@pytest.fixture
def fields(rng):
    """A (5, 32, 32) normalized variable-plane field feeding the MLP."""
    x = np.linspace(0, 2 * np.pi, 32)
    xx, yy = np.meshgrid(x, x)
    planes = [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    return np.stack(planes).astype(np.float32)


@pytest.fixture
def planner(trained_spectral_mlp):
    return TolerancePlanner(ErrorFlowAnalyzer(trained_spectral_mlp))


@pytest.mark.parametrize("codec_cls", [SZCompressor, ZFPCompressor, MGARDCompressor])
def test_pipeline_honours_linf_tolerance(codec_cls, trained_spectral_mlp, planner, fields):
    tolerance = 1e-2
    plan = planner.plan(tolerance, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(trained_spectral_mlp, codec_cls(), plan)
    result = pipeline.execute(fields)
    assert result.qoi_error("linf", relative=False) <= tolerance
    assert result.input_error_linf <= plan.input_tolerance
    assert result.compression_ratio > 1.0


@pytest.mark.parametrize("codec_cls", [SZCompressor, MGARDCompressor])
def test_pipeline_honours_l2_tolerance(codec_cls, trained_spectral_mlp, planner, fields):
    tolerance = 5e-2
    plan = planner.plan(tolerance, norm="l2", quant_fraction=0.5)
    pipeline = InferencePipeline(trained_spectral_mlp, codec_cls(), plan)
    result = pipeline.execute(fields)
    assert result.qoi_error("l2", relative=False) <= tolerance


def test_pipeline_zfp_rejects_l2(trained_spectral_mlp, planner):
    plan = planner.plan(1e-2, norm="l2")
    with pytest.raises(PlanningError):
        InferencePipeline(trained_spectral_mlp, ZFPCompressor(), plan)


def test_pipeline_records_timings(trained_spectral_mlp, planner, fields):
    plan = planner.plan(1e-2)
    pipeline = InferencePipeline(trained_spectral_mlp, SZCompressor(), plan)
    result = pipeline.execute(fields)
    assert result.compress_seconds > 0
    assert result.decompress_seconds > 0
    assert result.inference_seconds > 0


def test_pipeline_tighter_tolerance_lower_ratio(trained_spectral_mlp, planner, fields):
    loose = InferencePipeline(
        trained_spectral_mlp, SZCompressor(), planner.plan(3e-2)
    ).execute(fields)
    tight = InferencePipeline(
        trained_spectral_mlp, SZCompressor(), planner.plan(1e-4)
    ).execute(fields)
    assert loose.compression_ratio >= tight.compression_ratio
    assert loose.qoi_error("linf", relative=False) <= 3e-2
    assert tight.qoi_error("linf", relative=False) <= 1e-4


def test_pipeline_store_load_roundtrip(trained_spectral_mlp, planner, fields):
    plan = planner.plan(1e-3)
    pipeline = InferencePipeline(trained_spectral_mlp, SZCompressor(), plan)
    blob = pipeline.store(fields)
    reconstructed = pipeline.load(blob)
    assert reconstructed.shape == fields.shape
    assert np.abs(reconstructed - fields).max() <= plan.input_tolerance


# -- sensitivity ------------------------------------------------------------------


def test_sensitivity_report_fields(trained_spectral_mlp, rng):
    inputs = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    report = probe_sensitivity(trained_spectral_mlp, inputs, perturbation=1e-3, rng=rng)
    assert report.qoi_change_l2_max >= report.qoi_change_l2_mean > 0
    assert report.amplification > 0
    assert "amplification" in report.describe()


def test_sensitivity_scales_roughly_linearly(trained_spectral_mlp, rng):
    inputs = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    small = probe_sensitivity(trained_spectral_mlp, inputs, 1e-5, rng=rng)
    large = probe_sensitivity(trained_spectral_mlp, inputs, 1e-3, rng=rng)
    ratio = large.qoi_change_l2_mean / small.qoi_change_l2_mean
    assert 20 < ratio < 500  # ~100x for a smooth model


def test_sensitivity_below_analyzer_gain(trained_spectral_mlp, rng):
    """Empirical amplification can never exceed the spectral gain bound."""
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    inputs = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    report = probe_sensitivity(trained_spectral_mlp, inputs, 1e-4, rng=rng)
    eps_l2 = 1e-4 * np.sqrt(5)
    assert report.qoi_change_l2_max <= analyzer.compression_bound(eps_l2)
