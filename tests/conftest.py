"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Identity, Linear, MSELoss, SGD, Sequential, SpectralLinear, Tanh, Trainer


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_field_2d(rng) -> np.ndarray:
    """A compressible 2-D scientific-looking field (float32)."""
    x = np.linspace(0, 4 * np.pi, 96)
    xx, yy = np.meshgrid(x, x)
    field = np.sin(xx) * np.cos(yy) + 0.3 * np.sin(3 * xx + 1.0) * np.cos(2 * yy)
    field += 1e-4 * rng.standard_normal(field.shape)
    return field.astype(np.float32)


@pytest.fixture
def tiny_mlp(rng) -> Sequential:
    """Untrained 3-layer dense net with plain layers."""
    return Sequential(
        Linear(6, 12, rng=rng), Tanh(), Linear(12, 12, rng=rng), Tanh(), Linear(12, 4, rng=rng),
        Identity(),
    )


@pytest.fixture(scope="session")
def trained_spectral_mlp() -> Sequential:
    """A small PSN network trained on a smooth synthetic regression task.

    Session-scoped: trained once, reused by every bound/quantization test
    that needs realistic (non-random) weights.
    """
    rng = np.random.default_rng(7)
    model = Sequential(
        SpectralLinear(5, 24, rng=rng, alpha_init=1.2),
        Tanh(),
        SpectralLinear(24, 24, rng=rng, alpha_init=1.2),
        Tanh(),
        SpectralLinear(24, 3, rng=rng, alpha_init=1.2),
        Identity(),
    )
    inputs = rng.uniform(-1, 1, (512, 5)).astype(np.float32)
    mixing = rng.standard_normal((5, 3)) * 0.8
    targets = np.tanh(inputs @ mixing).astype(np.float32)
    trainer = Trainer(
        model,
        MSELoss(),
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        spectral_weight=1e-4,
    )
    trainer.fit(inputs, targets, epochs=40, batch_size=64, rng=np.random.default_rng(8))
    model.eval()
    return model
