"""Tests for the content-keyed memoization layer (repro.perf.cache)."""

import numpy as np
import pytest

from repro import obs
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.core.planner import TolerancePlanner
from repro.nn import SGD, Linear, Sequential, Tanh
from repro.nn.spectral import spectral_norm
from repro.perf.cache import (
    Memo,
    array_fingerprint,
    cached_average_step_size,
    cached_spectral_norm,
    clear_all_caches,
    get_memo,
    registered_memos,
)
from repro.quant.formats import STANDARD_FORMATS
from repro.quant.stepsize import average_step_size


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_all_caches()
    yield
    clear_all_caches()


# -- Memo -----------------------------------------------------------------------


def test_memo_hit_miss_counting():
    memo = Memo("t", maxsize=4)
    calls = []
    assert memo.get("a", lambda: calls.append(1) or 41) == 41
    assert memo.get("a", lambda: calls.append(1) or 42) == 41
    assert memo.hits == 1 and memo.misses == 1
    assert len(calls) == 1


def test_memo_lru_eviction():
    memo = Memo("t", maxsize=2)
    memo.get("a", lambda: 1)
    memo.get("b", lambda: 2)
    memo.get("a", lambda: -1)  # refresh a; b is now least-recent
    memo.get("c", lambda: 3)  # evicts b
    assert memo.get("a", lambda: -1) == 1
    assert memo.get("b", lambda: 20) == 20  # recomputed after eviction
    assert len(memo) == 2


def test_memo_clear_keeps_totals():
    memo = Memo("t")
    memo.get("a", lambda: 1)
    memo.get("a", lambda: 1)
    memo.clear()
    assert len(memo) == 0
    assert memo.stats()["hits"] == 1 and memo.stats()["misses"] == 1
    memo.get("a", lambda: 2)
    assert memo.misses == 2


def test_memo_rejects_bad_maxsize():
    with pytest.raises(ValueError):
        Memo("t", maxsize=0)


def test_memo_mirrors_metrics_counters():
    with obs.capture() as (_tracer, metrics):
        memo = Memo("mirror_test")
        memo.get("k", lambda: 1)
        memo.get("k", lambda: 1)
        memo.get("k", lambda: 1)
    assert metrics.value("cache_misses_total", cache="mirror_test") == 1
    assert metrics.value("cache_hits_total", cache="mirror_test") == 2


def test_get_memo_registry():
    memo = get_memo("registry_probe")
    assert get_memo("registry_probe") is memo
    assert registered_memos()["registry_probe"] is memo


# -- array fingerprint ----------------------------------------------------------


def test_fingerprint_stable_and_content_sensitive(rng):
    a = rng.standard_normal((8, 8))
    assert array_fingerprint(a) == array_fingerprint(a.copy())
    b = a.copy()
    b[3, 3] += 1e-12
    assert array_fingerprint(a) != array_fingerprint(b)


def test_fingerprint_distinguishes_shape_and_dtype(rng):
    a = rng.standard_normal(16)
    assert array_fingerprint(a) != array_fingerprint(a.reshape(4, 4))
    zeros64 = np.zeros(4, dtype=np.float64)
    zeros8 = np.zeros(32, dtype=np.uint8)  # identical bytes
    assert array_fingerprint(zeros64) != array_fingerprint(zeros8)


def test_fingerprint_handles_noncontiguous(rng):
    a = rng.standard_normal((8, 8))
    assert array_fingerprint(a[:, ::2]) == array_fingerprint(a[:, ::2].copy())


# -- cached kernels -------------------------------------------------------------


def test_cached_spectral_norm_matches_and_hits(rng):
    w = rng.standard_normal((12, 10))
    assert cached_spectral_norm(w) == pytest.approx(spectral_norm(w), rel=1e-12)
    before = get_memo("spectral_norm").hits
    cached_spectral_norm(w.copy())
    assert get_memo("spectral_norm").hits == before + 1


def test_cached_step_size_keyed_by_format(rng):
    w = rng.standard_normal((6, 6))
    fp16, bf16 = STANDARD_FORMATS["fp16"], STANDARD_FORMATS["bf16"]
    miss0 = get_memo("step_size").misses
    assert cached_average_step_size(w, fp16) == pytest.approx(
        average_step_size(w, fp16)
    )
    assert cached_average_step_size(w, bf16) == pytest.approx(
        average_step_size(w, bf16)
    )
    # distinct formats over the same weights are distinct entries
    assert get_memo("step_size").misses - miss0 == 2


# -- parameter versioning + analyzer invalidation -------------------------------


def _plain_mlp(rng):
    return Sequential(
        Linear(6, 16, rng=rng), Tanh(), Linear(16, 16, rng=rng), Tanh(),
        Linear(16, 3, rng=rng),
    )


def test_weight_version_counts_assignments(rng):
    model = _plain_mlp(rng)
    v0 = model.weight_version()
    params = list(model.parameters())
    params[0].data = params[0].data * 1.0
    assert model.weight_version() == v0 + 1
    params[1].bump_version()
    assert model.weight_version() == v0 + 2


def test_optimizer_step_bumps_versions(rng):
    model = _plain_mlp(rng)
    v0 = model.weight_version()
    x = rng.standard_normal((4, 6)).astype(np.float32)
    out = model(x)
    model.backward(np.ones_like(out))
    SGD(model.parameters(), lr=0.01).step()
    assert model.weight_version() > v0


def test_planner_sweep_one_power_iteration_per_layer_per_version(rng):
    """The ISSUE 4 acceptance check: a full format x fraction sweep runs
    exactly one power-iteration pass per layer per weight version."""
    model = _plain_mlp(rng)
    model.eval()
    n_layers = 3
    memo = get_memo("spectral_norm")
    miss0, hit0 = memo.misses, memo.hits  # totals persist across tests

    analyzer = ErrorFlowAnalyzer(model)
    planner = TolerancePlanner(analyzer)
    for fraction in (0.2, 0.4, 0.6, 0.8):
        planner.plan(1e-2, norm="linf", quant_fraction=fraction)
    for name in ("tf32", "fp16", "bf16", "int8"):
        analyzer.quantization_bound(STANDARD_FORMATS[name])
    # one pass per layer; everything downstream reuses it
    assert memo.misses - miss0 == n_layers
    assert memo.hits == hit0  # analyzer memoizes bounds; no re-extraction

    # A weight update starts a new version: exactly one more pass per layer.
    x = rng.standard_normal((8, 6)).astype(np.float32)
    out = model(x)
    model.backward(np.ones_like(out))
    SGD(list(model.parameters()), lr=0.05).step()
    analyzer.quantization_bound(STANDARD_FORMATS["fp16"])
    assert memo.misses - miss0 == 2 * n_layers
    planner.plan(1e-2, norm="linf", quant_fraction=0.5)
    assert memo.misses - miss0 == 2 * n_layers


def test_analyzer_bounds_refresh_after_step(rng):
    model = _plain_mlp(rng)
    model.eval()
    analyzer = ErrorFlowAnalyzer(model)
    fmt = STANDARD_FORMATS["fp16"]
    before = analyzer.quantization_bound(fmt)
    gain_before = analyzer.gain()

    x = rng.standard_normal((8, 6)).astype(np.float32)
    out = model(x)
    model.backward(np.ones_like(out))
    SGD(model.parameters(), lr=0.5).step()  # large step: bounds must move

    after = analyzer.quantization_bound(fmt)
    assert after != before
    assert analyzer.gain() != gain_before
    # And the refreshed values are what a fresh analyzer computes.
    fresh = ErrorFlowAnalyzer(model)
    assert after == pytest.approx(fresh.quantization_bound(fmt), rel=1e-12)


def test_analyzer_memo_hits_on_repeat_evaluation(rng):
    model = _plain_mlp(rng)
    analyzer = ErrorFlowAnalyzer(model)
    fmt = STANDARD_FORMATS["int8"]
    memo = get_memo("bound_eval")
    analyzer.quantization_bound(fmt)
    misses, hits = memo.misses, memo.hits
    for _ in range(5):
        analyzer.quantization_bound(fmt)
    assert memo.misses == misses
    assert memo.hits - hits == 5


def test_calibration_invalidates_bound_memo(rng):
    model = _plain_mlp(rng)
    model.eval()
    analyzer = ErrorFlowAnalyzer(model)
    fmt = STANDARD_FORMATS["fp16"]
    uncalibrated = analyzer.quantization_bound(fmt)
    analyzer.calibrate(rng.uniform(-1, 1, (64, 6)).astype(np.float32))
    calibrated = analyzer.quantization_bound(fmt)
    assert calibrated < uncalibrated  # tighter with measured signals
    analyzer.decalibrate()
    assert analyzer.quantization_bound(fmt) == pytest.approx(uncalibrated)
