"""Tests for activation quantization (paper Section III-B remark)."""

import numpy as np
import pytest

from repro.core import ErrorFlowAnalyzer
from repro.exceptions import QuantizationError, ToleranceError
from repro.nn import GlobalAvgPool2d, Linear, Sequential
from repro.quant import BF16, FP16, FP32, INT8
from repro.quant.activations import QuantizedActivationModel, activation_rounding_bound


def test_rounding_bound_float_formats():
    # activations bounded by 1.0 -> worst-case ulp at binade 0
    bound = activation_rounding_bound(FP16, 1.0, 100)
    expected = 2.0 ** (0 - 10) / 2 * 10.0
    assert bound == pytest.approx(expected)
    # BF16: 3 fewer mantissa bits -> 8x larger
    assert activation_rounding_bound(BF16, 1.0, 100) == pytest.approx(8 * bound)


def test_rounding_bound_int8():
    bound = activation_rounding_bound(INT8, 1.0, 64)
    expected = (2.0 / 256) / 2 * 8.0
    assert bound == pytest.approx(expected)


def test_rounding_bound_identity_and_zero():
    assert activation_rounding_bound(FP32, 1.0, 10) == 0.0
    assert activation_rounding_bound(FP16, 0.0, 10) == 0.0


def test_rounding_bound_validation():
    with pytest.raises(QuantizationError):
        activation_rounding_bound(FP16, -1.0, 10)


def test_quantized_activation_model_changes_outputs(trained_spectral_mlp, rng):
    x = rng.uniform(-1, 1, (32, 5)).astype(np.float32)
    trained_spectral_mlp.eval()
    reference = trained_spectral_mlp(x)
    wrapped = QuantizedActivationModel(trained_spectral_mlp, INT8)
    outputs = wrapped(x)
    assert outputs.shape == reference.shape
    assert not np.array_equal(outputs, reference)


def test_quantized_activation_model_fp32_is_identity(trained_spectral_mlp, rng):
    x = rng.uniform(-1, 1, (16, 5)).astype(np.float32)
    trained_spectral_mlp.eval()
    wrapped = QuantizedActivationModel(trained_spectral_mlp, FP32)
    assert np.allclose(wrapped(x), trained_spectral_mlp(x))


def test_quantized_activation_model_validation(trained_spectral_mlp, rng):
    with pytest.raises(QuantizationError):
        QuantizedActivationModel(Linear(3, 3, rng=rng), FP16)
    with pytest.raises(QuantizationError):
        QuantizedActivationModel(trained_spectral_mlp, FP16, after_layers=[99])


@pytest.mark.parametrize("fmt", [FP16, BF16, INT8], ids=lambda f: f.name)
def test_activation_bound_covers_achieved(trained_spectral_mlp, fmt, rng):
    """The Section III-B amplification rule covers real activation rounding."""
    model = trained_spectral_mlp
    model.eval()
    analyzer = ErrorFlowAnalyzer(model)
    x = rng.uniform(-1, 1, (128, 5)).astype(np.float32)
    reference = model(x)
    wrapped = QuantizedActivationModel(model, fmt)
    achieved = np.linalg.norm(wrapped(x) - reference, axis=1).max()
    # Tanh keeps activations within [-1, 1]
    bound = analyzer.activation_quantization_bound(fmt, activation_linf=1.0)
    assert achieved <= bound


def test_activation_bound_rejects_residual_specs(rng):
    from repro.nn import BasicBlock

    model = Sequential(
        BasicBlock(3, 3, rng=rng), GlobalAvgPool2d(), Linear(3, 2, rng=rng)
    )
    analyzer = ErrorFlowAnalyzer(model, n_input=3 * 16 * 16)
    with pytest.raises(ToleranceError):
        analyzer.activation_quantization_bound(FP16)


def test_activation_bound_ordering(trained_spectral_mlp):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    fp16 = analyzer.activation_quantization_bound(FP16)
    bf16 = analyzer.activation_quantization_bound(BF16)
    int8 = analyzer.activation_quantization_bound(INT8)
    # For activations in [-1, 1], BF16's ulp at binade 0 (2^-7) nearly
    # coincides with INT8's grid pitch (2/256); both dwarf FP16.
    assert 0 < fp16 < bf16
    assert fp16 < int8
    assert int8 == pytest.approx(bf16, rel=0.05)
