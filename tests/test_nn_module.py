"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import Linear, Module, Parameter, ReLU, Sequential, Tanh


class _Branchy(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8)
        self.second = Linear(8, 2)
        self.gain = Parameter(np.ones(1))


def test_parameter_defaults_to_float32():
    param = Parameter(np.arange(4))
    assert param.data.dtype == np.float32
    assert param.grad.shape == (4,)
    assert param.requires_grad


def test_parameter_keeps_float64():
    param = Parameter(np.zeros(3, dtype=np.float64))
    assert param.data.dtype == np.float64


def test_parameter_zero_grad():
    param = Parameter(np.ones(3))
    param.grad += 5.0
    param.zero_grad()
    assert np.all(param.grad == 0.0)


def test_named_parameters_are_qualified():
    model = _Branchy()
    names = {name for name, __ in model.named_parameters()}
    assert "gain" in names
    assert "first.weight" in names
    assert "first.bias" in names
    assert "second.weight" in names


def test_parameters_counts_submodules():
    model = _Branchy()
    assert len(list(model.parameters())) == 5


def test_num_parameters():
    model = _Branchy()
    expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
    assert model.num_parameters() == expected


def test_train_eval_propagates():
    model = Sequential(Linear(3, 3), ReLU(), Sequential(Linear(3, 3), Tanh()))
    model.eval()
    assert all(not module.training for module in model.modules())
    model.train()
    assert all(module.training for module in model.modules())


def test_zero_grad_clears_all():
    model = _Branchy()
    for param in model.parameters():
        param.grad += 1.0
    model.zero_grad()
    assert all(np.all(param.grad == 0) for param in model.parameters())


def test_state_dict_roundtrip():
    model = _Branchy()
    state = model.state_dict()
    clone = _Branchy()
    clone.load_state_dict(state)
    for (__, original), (__, loaded) in zip(model.named_parameters(), clone.named_parameters()):
        assert np.array_equal(original.data, loaded.data)


def test_state_dict_is_a_copy():
    model = _Branchy()
    state = model.state_dict()
    state["gain"][...] = 99.0
    assert model.gain.data[0] == 1.0


def test_load_state_dict_rejects_missing_keys():
    model = _Branchy()
    state = model.state_dict()
    del state["gain"]
    with pytest.raises(ShapeError):
        model.load_state_dict(state)


def test_load_state_dict_rejects_bad_shape():
    model = _Branchy()
    state = model.state_dict()
    state["gain"] = np.zeros(7)
    with pytest.raises(ShapeError):
        model.load_state_dict(state)


def test_register_module_for_lists():
    container = Module()
    container.register_module("layer0", Linear(2, 2))
    assert len(list(container.parameters())) == 2


def test_forward_hook_receives_module_inputs_output():
    seen = []
    layer = Linear(4, 2)
    layer.register_forward_hook(
        lambda module, inputs, output: seen.append((module, inputs, output))
    )
    x = np.ones((3, 4), dtype=np.float32)
    y = layer(x)
    (module, inputs, output), = seen
    assert module is layer
    assert inputs is x
    assert output is y


def test_forward_hook_handle_remove_stops_firing():
    calls = []
    layer = Linear(4, 2)
    handle = layer.register_forward_hook(lambda m, i, o: calls.append(1))
    layer(np.ones((1, 4), dtype=np.float32))
    handle.remove()
    layer(np.ones((1, 4), dtype=np.float32))
    assert len(calls) == 1
    handle.remove()  # idempotent


def test_forward_hook_context_manager_detaches():
    calls = []
    layer = Linear(4, 2)
    with layer.register_forward_hook(lambda m, i, o: calls.append(1)):
        layer(np.ones((1, 4), dtype=np.float32))
    layer(np.ones((1, 4), dtype=np.float32))
    assert len(calls) == 1


def test_forward_hooks_on_sequential_children_fire_in_order():
    model = Sequential(Linear(4, 8), Tanh(), Linear(8, 2))
    fired = []
    handles = [
        child.register_forward_hook(
            lambda m, i, o, index=index: fired.append((index, o.shape))
        )
        for index, child in enumerate(model)
    ]
    model(np.ones((5, 4), dtype=np.float32))
    assert [index for index, __ in fired] == [0, 1, 2]
    assert [shape for __, shape in fired] == [(5, 8), (5, 8), (5, 2)]
    for handle in handles:
        handle.remove()
