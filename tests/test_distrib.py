"""Distributed shard coordination suite: wire protocol, lease
scheduling, journal merge, chaos-driven reassignment and crash-safe
resume.

The contract under test is the distribution tentpole: a run sharded
over TCP workers produces results bit-identical to the serial run, a
killed or partitioned worker costs a lease (reassigned), never a chunk
(lost or doubled), and a coordinator that dies resumes from its merged
journal without recomputing.
"""

import json
import shutil
import socket
import struct
import tempfile
import threading
import time
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cli import build_parser, main as cli_main
from repro.obs.timeline import analyze_spans
from repro.compress.sz import SZCompressor
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.core.pipeline import InferencePipeline, split_chunks
from repro.core.planner import TolerancePlanner
from repro.distrib import (
    DistribConfig,
    DrainedError,
    FrameSocket,
    ShardCoordinator,
    ShardWorker,
    decode_artifact,
    encode_artifact,
    fingerprints_equal,
    manifest_identity,
)
from repro.distrib.protocol import (
    msg_hello,
    msg_lease_request,
    msg_result,
)
from repro.exceptions import (
    ConfigurationError,
    IntegrityError,
    PlanningError,
    ProtocolError,
)
from repro.io import CheckpointJournal, append_jsonl, digest_array, digest_bytes
from repro.io.checkpoint import digest_model
from repro.resilience import CHAOS_ENV_VAR, ChaosInjector, RetryPolicy, fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="shard workers use the fork-based supervised pool"
)

#: fast deterministic connect backoff so reconnect tests never dawdle
FAST_CONNECT = RetryPolicy(max_retries=6, base_delay=0.02, max_delay=0.2, jitter=0.0)


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """Tests control chaos explicitly; the environment must not leak in."""
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)


# -- wire protocol ----------------------------------------------------------


def _framed_pair():
    """One framed end and one raw end of an in-process socket pair."""
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return FrameSocket(left, role="worker"), right


def test_frame_roundtrip():
    a_sock, b_sock = socket.socketpair()
    a, b = FrameSocket(a_sock, role="worker"), FrameSocket(b_sock, role="coordinator")
    message = msg_result(3, 1, {"input_digest": "ab"}, encode_artifact(b"\x00\x01"))
    a.send(message)
    assert b.recv() == message
    a.close()
    assert b.recv() is None  # clean EOF between frames
    b.close()


def test_recv_rejects_mid_frame_close():
    framed, raw = _framed_pair()
    raw.sendall(struct.pack("!I", 10) + b"abc")
    raw.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        framed.recv()
    framed.close()


def test_recv_rejects_oversized_frame():
    framed, raw = _framed_pair()
    raw.sendall(struct.pack("!I", (1 << 30) + 1))
    with pytest.raises(ProtocolError, match="limit"):
        framed.recv()
    framed.close()
    raw.close()


def test_recv_rejects_undecodable_json():
    framed, raw = _framed_pair()
    payload = b"{not json"
    raw.sendall(struct.pack("!I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="undecodable"):
        framed.recv()
    framed.close()
    raw.close()


def test_recv_rejects_unknown_message_type():
    framed, raw = _framed_pair()
    payload = b'{"type": "bogus"}'
    raw.sendall(struct.pack("!I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="unknown message type"):
        framed.recv()
    framed.close()
    raw.close()


def test_artifact_encoding_roundtrip():
    data = bytes(range(256))
    assert decode_artifact(encode_artifact(data)) == data
    with pytest.raises(ProtocolError):
        decode_artifact("not base64 !!")


def test_fingerprints_equal_is_order_insensitive():
    assert fingerprints_equal({"a": 1, "b": 2}, {"b": 2, "a": 1})
    assert not fingerprints_equal({"a": 1}, {"a": 2})


def test_manifest_identity_covers_digests():
    base = {"fingerprint": {"codec": "sz"}, "chunk_digests": ["aa", "bb"]}
    assert manifest_identity(base) == manifest_identity(dict(base))
    assert manifest_identity(base) != manifest_identity(
        {"fingerprint": {"codec": "sz"}, "chunk_digests": ["aa", "cc"]}
    )


# -- split_chunks / config validation ---------------------------------------


def test_split_chunks_covers_fields():
    fields = np.arange(60, dtype=np.float32).reshape(5, 12)
    chunks = split_chunks(fields, 5, chunk_axis=1)
    assert [c.shape for c in chunks] == [(5, 5), (5, 5), (5, 2)]
    assert np.array_equal(np.concatenate(chunks, axis=1), fields)


def test_split_chunks_rejects_bad_sizes():
    fields = np.ones((4, 4), dtype=np.float32)
    with pytest.raises(PlanningError):
        split_chunks(fields, 0)
    with pytest.raises(PlanningError):
        split_chunks(np.ones((0, 4), dtype=np.float32), 2)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"lease_ttl": 0.0},
        {"shard_size": 0},
        {"expect_workers": -1},
        {"worker_wait": -1.0},
    ],
)
def test_distrib_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        DistribConfig(**kwargs)


# -- journal merge (satellite: duplicate-entry replay) -----------------------


def _tiny_journal(path):
    arr = np.arange(12, dtype=np.float32).reshape(3, 4)
    digest = digest_array(arr)
    manifest = {"fingerprint": {"codec": "test"}, "chunk_digests": [digest]}
    journal = CheckpointJournal(str(path))
    journal.begin(manifest)
    entry = journal.record(
        0,
        outputs=arr,
        reference_outputs=arr,
        blob_bytes=b"blob-bytes",
        entry={"input_digest": digest, "attempts": 1},
    )
    return journal, manifest, entry


def test_replay_duplicate_with_equal_digest_is_last_wins(tmp_path):
    journal, manifest, entry = _tiny_journal(tmp_path)
    append_jsonl(journal.journal_path, dict(entry, attempts=7))
    completed = CheckpointJournal(str(tmp_path)).begin(manifest, resume=True)
    # same certified bytes, so the later (fresher) metadata wins
    assert completed[0]["attempts"] == 7


def test_replay_conflicting_duplicate_keeps_first_verified(tmp_path):
    journal, manifest, entry = _tiny_journal(tmp_path)
    append_jsonl(
        journal.journal_path, dict(entry, attempts=9, artifact_digest="0" * 32)
    )
    completed = CheckpointJournal(str(tmp_path)).begin(manifest, resume=True)
    # the artifact on disk can only match one digest: first verified wins
    assert completed[0]["attempts"] == 1
    assert completed[0]["artifact_digest"] == entry["artifact_digest"]


def test_record_raw_adopts_bytes_verbatim(tmp_path):
    journal, manifest, entry = _tiny_journal(tmp_path / "a")
    with open(f"{journal.path}/{entry['artifact']}", "rb") as handle:
        data = handle.read()
    other = CheckpointJournal(str(tmp_path / "b"))
    other.begin(manifest)
    merged = other.record_raw(
        0, data=data, entry={"input_digest": manifest["chunk_digests"][0]}
    )
    assert merged["artifact_digest"] == entry["artifact_digest"]
    with open(f"{other.path}/{merged['artifact']}", "rb") as handle:
        assert handle.read() == data


# -- executor resolution (the thread inference executor was removed) ---------


def test_thread_executor_removed_and_auto_never_picked_it():
    expected = "process" if fork_available() else "serial"
    assert InferencePipeline._resolve_executor("auto", 4) == expected
    assert InferencePipeline._resolve_executor("auto", 1) == "serial"
    assert InferencePipeline._resolve_executor("distributed", 1) == "distributed"
    # the GIL-bound thread pool is no longer an inference executor
    # (BENCH_pr4 showed no speedup; threads remain for chunked I/O)
    with pytest.raises(ConfigurationError):
        InferencePipeline._resolve_executor("thread", 4)
    with pytest.raises(ConfigurationError):
        InferencePipeline._resolve_executor("fancy", 2)


# -- CLI surface -------------------------------------------------------------


def test_cli_parses_coordinate_command():
    args = build_parser().parse_args(
        [
            "coordinate", "h2combustion", "--tolerance", "1e-2",
            "--chunk-size", "16", "--expect-workers", "2",
            "--lease-ttl", "5", "--checkpoint", "/tmp/ckpt",
        ]
    )
    assert args.command == "coordinate"
    assert args.expect_workers == 2
    assert args.lease_ttl == 5.0
    assert args.shard_size == 1


def test_cli_parses_worker_command():
    args = build_parser().parse_args(
        [
            "worker", "h2combustion", "--tolerance", "1e-2",
            "--chunk-size", "16", "--connect", "127.0.0.1:5000",
        ]
    )
    assert args.command == "worker"
    assert args.connect == "127.0.0.1:5000"


# -- coordinator + worker integration ---------------------------------------


@pytest.fixture(scope="module")
def distrib_setup(trained_spectral_mlp, tmp_path_factory):
    x = np.linspace(0, 2 * np.pi, 32)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)
    planner = TolerancePlanner(ErrorFlowAnalyzer(trained_spectral_mlp))
    plan = planner.plan(1e-2, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(trained_spectral_mlp, SZCompressor(), plan)
    serial_dir = tmp_path_factory.mktemp("serial-journal")
    serial = pipeline.execute_chunked(
        fields, chunk_size=8, chunk_axis=1, workers=1, checkpoint=str(serial_dir)
    )
    chunks = split_chunks(fields, 8, 1)
    digests = [digest_array(chunk) for chunk in chunks]
    manifest = pipeline._checkpoint_manifest(chunks, 8, 1, digests)
    return pipeline, fields, serial, manifest, str(serial_dir)


def _run_distributed(
    pipeline,
    fields,
    *,
    n_workers=2,
    chaos_specs=None,
    checkpoint=None,
    resume=False,
    lease_ttl=3.0,
    worker_wait=15.0,
    expect_workers=0,
    worker_checkpoints=None,
    metrics_port=None,
    on_coordinator=None,
):
    """Distributed run with in-thread worker agents launched on start."""
    summaries, errors, threads = [], [], []

    def launch(coordinator):
        host, port = coordinator.address
        if on_coordinator is not None:
            on_coordinator(coordinator)

        def run_one(index):
            spec = (chaos_specs or {}).get(index)
            try:
                agent = ShardWorker(
                    pipeline,
                    fields,
                    8,
                    chunk_axis=1,
                    name=f"w{index}",
                    workers=2,
                    connect_retry=FAST_CONNECT,
                    chaos=ChaosInjector.from_spec(spec) if spec else None,
                    checkpoint=(worker_checkpoints or {}).get(index),
                )
                summaries.append(agent.run(host, port))
            except Exception as exc:  # surfaced by the asserting test
                errors.append(exc)

        for index in range(n_workers):
            thread = threading.Thread(target=run_one, args=(index,), daemon=True)
            threads.append(thread)
            thread.start()

    config = DistribConfig(
        port=0,
        lease_ttl=lease_ttl,
        worker_wait=worker_wait,
        expect_workers=expect_workers,
        on_start=launch,
        metrics_port=metrics_port,
    )
    result = pipeline.execute_chunked(
        fields,
        chunk_size=8,
        chunk_axis=1,
        executor="distributed",
        distrib=config,
        checkpoint=checkpoint,
        resume=resume,
    )
    # the coordinator's shutdown drain sends every agent home; collect
    # their summaries before asserting on them
    for thread in threads:
        thread.join(timeout=15.0)
    assert not any(thread.is_alive() for thread in threads)
    return result, summaries, errors


@needs_fork
def test_distributed_matches_serial(distrib_setup):
    pipeline, fields, serial, _, _ = distrib_setup
    result, summaries, errors = _run_distributed(
        pipeline, fields, n_workers=2, expect_workers=2
    )
    assert errors == []
    assert np.array_equal(result.outputs, serial.outputs)
    assert np.array_equal(result.reference_outputs, serial.reference_outputs)
    distrib = result.extra["distrib"]
    assert distrib["outcome"] == "complete"
    assert distrib["workers_joined"] == 2
    assert distrib["results"]["accepted"] == 4
    assert distrib["results"]["rejected"] == 0
    assert result.extra["chunked"]["requested_executor"] == "distributed"
    assert result.extra["chunked"]["executor"] == "distributed"
    assert len(summaries) == 2
    assert sum(s["chunks_computed"] for s in summaries) == 4
    assert all(s["drained"] for s in summaries)
    assert result.qoi_error("linf", relative=False) <= pipeline.plan.qoi_tolerance


@needs_fork
def test_distributed_disconnect_chaos_reassigns(distrib_setup):
    """A partitioned worker reconnects; its lost lease is reassigned and
    every chunk still completes exactly once."""
    pipeline, fields, serial, _, _ = distrib_setup
    result, summaries, errors = _run_distributed(
        pipeline,
        fields,
        n_workers=2,
        expect_workers=2,
        chaos_specs={0: "disconnect@1", 1: "disconnect@1"},
    )
    assert errors == []
    assert np.array_equal(result.outputs, serial.outputs)
    distrib = result.extra["distrib"]
    assert distrib["outcome"] == "complete"
    assert distrib["results"]["accepted"] == 4
    # at least one connection died holding a lease -> expiry + re-lease
    assert distrib["leases_expired"] >= 1
    assert distrib["leases_reassigned"] >= 1
    assert sum(s["partitions"] for s in summaries) >= 1
    assert sum(s["reconnects"] for s in summaries) >= 1


@needs_fork
def test_distributed_refuses_mismatched_plan_then_degrades(distrib_setup):
    """A worker with a different plan is refused at handshake; with no
    usable workers the coordinator degrades to the local pool."""
    pipeline, fields, serial, _, _ = distrib_setup
    planner = TolerancePlanner(ErrorFlowAnalyzer(pipeline.model))
    other_plan = planner.plan(5e-2, norm="linf", quant_fraction=0.5)
    other = InferencePipeline(pipeline.model, SZCompressor(), other_plan)

    refused = []

    def launch(coordinator):
        host, port = coordinator.address

        def run_one():
            agent = ShardWorker(
                other, fields, 8, chunk_axis=1, name="intruder",
                workers=2, connect_retry=FAST_CONNECT,
            )
            with pytest.raises(IntegrityError, match="refused"):
                agent.run(host, port)
            refused.append(True)

        threading.Thread(target=run_one, daemon=True).start()

    config = DistribConfig(port=0, lease_ttl=1.0, worker_wait=1.5, on_start=launch)
    result = pipeline.execute_chunked(
        fields, chunk_size=8, chunk_axis=1, executor="distributed", distrib=config
    )
    assert refused == [True]
    distrib = result.extra["distrib"]
    assert distrib["outcome"] == "no_workers"
    assert distrib["handshake_refused"] == 1
    # degradation finished the run locally, bit-identical anyway
    assert np.array_equal(result.outputs, serial.outputs)
    assert "supervision" in result.extra


@needs_fork
def test_distributed_no_workers_degrades_local(distrib_setup):
    pipeline, fields, serial, _, _ = distrib_setup
    config = DistribConfig(port=0, lease_ttl=1.0, worker_wait=0.3)
    result = pipeline.execute_chunked(
        fields, chunk_size=8, chunk_axis=1, executor="distributed", distrib=config
    )
    assert result.extra["distrib"]["outcome"] == "no_workers"
    assert np.array_equal(result.outputs, serial.outputs)


def test_distributed_rejects_chaos_and_stray_config(distrib_setup):
    pipeline, fields, _, _, _ = distrib_setup
    with pytest.raises(ConfigurationError, match="worker processes"):
        pipeline.execute_chunked(
            fields, chunk_size=8, chunk_axis=1, executor="distributed",
            chaos=ChaosInjector.from_spec("kill@0"),
        )
    with pytest.raises(ConfigurationError, match="distributed"):
        pipeline.execute_chunked(
            fields, chunk_size=8, chunk_axis=1, distrib=DistribConfig()
        )


def test_requested_executor_recorded(distrib_setup):
    pipeline, fields, _, _, _ = distrib_setup
    result = pipeline.execute_chunked(
        fields, chunk_size=8, chunk_axis=1, workers=2, executor="auto"
    )
    chunked = result.extra["chunked"]
    assert chunked["requested_executor"] == "auto"
    assert chunked["executor"] == ("process" if fork_available() else "serial")


def test_straggler_dedup_and_result_validation(distrib_setup, tmp_path):
    """Raw-socket client: an expired lease is re-granted (straggler
    re-lease), duplicates dedup first-digest-wins, and tampered or
    mixed-plan results are rejected without consuming the chunk."""
    pipeline, fields, _, manifest, _ = distrib_setup
    chunks = split_chunks(fields, 8, 1)
    digests = list(manifest["chunk_digests"])

    # certified entries computed out-of-band (no network, no pool)
    local = CheckpointJournal(str(tmp_path / "local"))
    local.begin(manifest)
    entries, artifacts = {}, {}
    for index, chunk in enumerate(chunks):
        result = pipeline.execute(chunk)
        entries[index] = pipeline._journal_chunk(local, index, result, digests[index])
        with open(f"{local.path}/{entries[index]['artifact']}", "rb") as handle:
            artifacts[index] = handle.read()

    coordinator = ShardCoordinator(
        manifest,
        weights=digest_model(pipeline.model),
        config=DistribConfig(port=0, lease_ttl=0.4, worker_wait=30.0),
    )
    host, port = coordinator.start()
    summary_box = {}
    server = threading.Thread(
        target=lambda: summary_box.update(summary=coordinator.serve()), daemon=True
    )
    server.start()

    conn = FrameSocket(socket.create_connection((host, port)), role="worker")
    conn.settimeout(5.0)
    try:
        conn.send(
            msg_hello(
                "straggler",
                manifest["fingerprint"],
                manifest_identity(manifest),
                digest_model(pipeline.model),
            )
        )
        welcome = conn.recv()
        assert welcome["type"] == "welcome"

        conn.send(msg_lease_request())
        lease = conn.recv()
        assert lease["type"] == "lease" and lease["chunks"] == [0]
        time.sleep(3.0 * 0.4)  # never heartbeat: let the lease expire

        conn.send(msg_lease_request())
        release = conn.recv()
        assert release["chunks"] == [0]  # straggler re-lease, same chunk

        def submit(index, entry, data):
            conn.send(
                msg_result(release["lease"], index, entry, encode_artifact(data))
            )
            ack = conn.recv()
            assert ack["type"] == "result_ack" and ack["chunk"] == index
            return ack["status"]

        assert submit(0, entries[0], artifacts[0]) == "accepted"
        # byte-identical resubmission: harmless duplicate
        assert submit(0, entries[0], artifacts[0]) == "duplicate"
        # differing bytes for a certified chunk: first digest wins
        forged = artifacts[0] + b"\x00"
        conflicting = dict(entries[0], artifact_digest=digest_bytes(forged))
        assert submit(0, conflicting, forged) == "conflict"
        # declared digest disagrees with the bytes: tampered in transit
        tampered = dict(entries[1], artifact_digest="0" * 32)
        assert submit(1, tampered, artifacts[1]) == "rejected"
        # wrong input digest: computed on different bytes (mixed plan)
        stale = dict(entries[1], input_digest=digests[0])
        assert submit(1, stale, artifacts[1]) == "rejected"
        # valid submissions finish the run (results need no live lease)
        for index in (1, 2, 3):
            assert submit(index, entries[index], artifacts[index]) == "accepted"
    finally:
        conn.close()
    server.join(timeout=10.0)
    assert not server.is_alive()

    summary = summary_box["summary"]
    assert summary["outcome"] == "complete"
    assert summary["completed_chunks"] == 4
    assert summary["results"] == {
        "accepted": 4, "duplicate": 1, "conflict": 1, "rejected": 2,
    }
    assert summary["leases_expired"] == 1
    assert summary["leases_reassigned"] == 1


def test_drain_before_completion_raises_drained_error(distrib_setup, tmp_path):
    pipeline, fields, _, _, _ = distrib_setup
    config = DistribConfig(
        port=0,
        lease_ttl=1.0,
        worker_wait=30.0,
        on_start=lambda c: c.request_drain("test drain"),
    )
    with pytest.raises(DrainedError, match="resume"):
        pipeline.execute_chunked(
            fields,
            chunk_size=8,
            chunk_axis=1,
            executor="distributed",
            distrib=config,
            checkpoint=str(tmp_path / "ckpt"),
        )


@needs_fork
def test_coordinator_resume_replays_merged_journal(distrib_setup, tmp_path):
    """The merged journal is a first-class checkpoint: a new run resumes
    from it, replaying every remote chunk without recomputing."""
    pipeline, fields, serial, _, _ = distrib_setup
    checkpoint = str(tmp_path / "merged")
    first, _, errors = _run_distributed(
        pipeline, fields, n_workers=2, expect_workers=2, checkpoint=checkpoint
    )
    assert errors == []
    assert first.extra["distrib"]["outcome"] == "complete"

    # simulate the coordinator dying after the run: resume from its journal
    config = DistribConfig(port=0, lease_ttl=1.0, worker_wait=0.2)
    resumed = pipeline.execute_chunked(
        fields,
        chunk_size=8,
        chunk_axis=1,
        executor="distributed",
        distrib=config,
        checkpoint=checkpoint,
        resume=True,
    )
    assert resumed.extra["checkpoint"]["replayed_chunks"] == 4
    assert resumed.extra["checkpoint"]["computed_chunks"] == 0
    # nothing was pending, so no coordinator (and no workers) ran at all
    assert "distrib" not in resumed.extra
    assert np.array_equal(resumed.outputs, serial.outputs)
    assert np.array_equal(resumed.reference_outputs, serial.reference_outputs)


@needs_fork
@settings(max_examples=4, deadline=None)
@given(fault_chunk=st.integers(min_value=0, max_value=3))
def test_merged_journal_matches_serial_under_partitions(
    distrib_setup, fault_chunk
):
    """Property (satellite): wherever the partition lands, the merged
    journal certifies the same computation as the serial journal —
    same chunks, same input digests, identical replayed arrays."""
    pipeline, fields, _, manifest, serial_dir = distrib_setup
    workdir = tempfile.mkdtemp(prefix="repro-distrib-prop-")
    try:
        result, _, errors = _run_distributed(
            pipeline,
            fields,
            n_workers=2,
            expect_workers=2,
            checkpoint=f"{workdir}/merged",
            chaos_specs={
                0: f"disconnect@{fault_chunk}",
                1: f"disconnect@{fault_chunk}",
            },
            worker_checkpoints={0: f"{workdir}/w0", 1: f"{workdir}/w1"},
        )
        assert errors == []
        assert result.extra["distrib"]["outcome"] == "complete"

        merged = CheckpointJournal(f"{workdir}/merged")
        merged_entries = merged.begin(manifest, resume=True)
        reference = CheckpointJournal(serial_dir)
        serial_entries = reference.begin(manifest, resume=True)
        assert set(merged_entries) == set(serial_entries) == {0, 1, 2, 3}
        for index in range(4):
            ours, theirs = merged_entries[index], serial_entries[index]
            assert ours["input_digest"] == theirs["input_digest"]
            mine, ref = merged.load(ours), reference.load(theirs)
            assert np.array_equal(mine["outputs"], ref["outputs"])
            assert np.array_equal(
                mine["reference_outputs"], ref["reference_outputs"]
            )
            assert mine["blob_bytes"] == ref["blob_bytes"]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# -- distributed tracing + live ops plane ------------------------------------


@needs_fork
def test_distributed_trace_stitches_one_trace_across_chaos(distrib_setup):
    """The observability tentpole, end to end: a chaos-partitioned
    2-worker run — one disconnect mid-lease, one artificially slow
    chunk — still lands every span in ONE trace (zero orphans), and
    the timeline analyzer names the slow chunk as the straggler."""
    pipeline, fields, serial, _, _ = distrib_setup
    with obs.capture() as (tracer, _):
        result, summaries, errors = _run_distributed(
            pipeline,
            fields,
            expect_workers=2,
            chaos_specs={
                0: "disconnect@1,slow@2:all=1.5",
                1: "slow@2:all=1.5",
            },
        )
        spans = tracer.to_dicts()
    assert errors == []
    np.testing.assert_array_equal(result.outputs, serial.outputs)

    # one stitched trace: every span shares the run's trace id and is
    # reachable from a root — nothing orphaned by the partition
    assert {span["trace_id"] for span in spans} == {tracer.trace_id}
    report = analyze_spans(spans)
    assert report["orphans"]["count"] == 0
    assert report["n_spans"] == len(spans) > 0

    # the lease schedule was reconstructed: all four chunks accounted
    # for, with per-worker utilization over the run wall
    assert sum(w["chunks"] for w in report["workers"].values()) == 4
    assert set(report["workers"]) <= {"w0", "w1"}
    for stats in report["workers"].values():
        assert stats["busy_s"] > 0.0 and 0.0 < stats["utilization"] <= 1.0

    # the chaos-slowed chunk shows up as the straggler
    straggler_chunks = [s["chunk"] for s in report["stragglers"]]
    assert 2 in straggler_chunks
    slow = next(s for s in report["stragglers"] if s["chunk"] == 2)
    assert slow["run_s"] >= 1.5 and slow["ratio_to_median"] > 2.0

    assert report["critical_path"], "critical path must be non-empty"
    assert report["phase_seconds"]["run"] >= 1.5

    # the same analysis rides back on the result itself
    timeline = result.extra["timeline"]
    assert timeline["orphans"]["count"] == 0
    assert 2 in [s["chunk"] for s in timeline["stragglers"]]

    # worker spans made it over the wire (or through the fork seam)
    names = {span["name"] for span in spans}
    assert {"distrib.serve", "distrib.chunk", "worker.lease"} <= names


@needs_fork
def test_live_endpoints_respond_during_run(distrib_setup):
    """/status and /metrics answer while the run is in flight and see
    both connected workers."""
    pipeline, fields, serial, _, _ = distrib_setup
    statuses, metric_bodies = [], []
    stop = threading.Event()
    pollers = []

    def poll(address):
        host, port = address
        base = f"http://{host}:{port}"
        while not stop.is_set():
            try:
                with urllib.request.urlopen(f"{base}/status", timeout=2.0) as r:
                    statuses.append(json.loads(r.read()))
                with urllib.request.urlopen(f"{base}/metrics", timeout=2.0) as r:
                    metric_bodies.append(r.read().decode())
            except OSError:
                pass  # run may finish between polls
            time.sleep(0.05)

    def watch(coordinator):
        assert coordinator.metrics_address is not None
        thread = threading.Thread(
            target=poll, args=(coordinator.metrics_address,), daemon=True
        )
        pollers.append(thread)
        thread.start()

    with obs.capture():
        result, _, errors = _run_distributed(
            pipeline,
            fields,
            expect_workers=2,
            chaos_specs={0: "slow@*:all=0.25", 1: "slow@*:all=0.25"},
            metrics_port=0,
            on_coordinator=watch,
        )
    stop.set()
    for thread in pollers:
        thread.join(timeout=5.0)
    assert errors == []
    np.testing.assert_array_equal(result.outputs, serial.outputs)

    assert statuses, "poller never reached /status"
    assert any(s["workers_connected"] == 2 for s in statuses)
    assert any(s["leases_active"] >= 1 for s in statuses)
    # the lease table exposes per-chunk state while chunks are leased
    leased = [
        c for s in statuses for c in s["chunks"] if c["state"] == "leased"
    ]
    assert leased and all(c["owner"] in ("w0", "w1") for c in leased)
    assert any("distrib_workers_connected 2" in body for body in metric_bodies)
    assert any("distrib_chunk_seconds" in body for body in metric_bodies)


def test_coordinator_endpoints_without_workers():
    """Raw endpoint contract: a freshly started coordinator answers
    /status, /metrics and /healthz before any worker joins."""
    manifest = {
        "fingerprint": {"codec": "sz"},
        "chunk_digests": [digest_array(np.zeros((2, 2), dtype=np.float32))],
    }
    config = DistribConfig(port=0, metrics_port=0, worker_wait=5.0)
    coordinator = ShardCoordinator(manifest, config=config)
    with obs.capture():
        coordinator.start()
        try:
            host, port = coordinator.metrics_address
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(f"{base}/status", timeout=5.0) as r:
                status = json.loads(r.read())
            assert status["workers_connected"] == 0
            assert status["chunks_total"] == 1
            assert status["chunks_pending"] == 1
            assert [c["state"] for c in status["chunks"]] == ["pending"]
            with urllib.request.urlopen(f"{base}/healthz", timeout=5.0) as r:
                assert r.read() == b"ok\n"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5.0) as r:
                assert "text/plain" in r.headers["Content-Type"]
        finally:
            coordinator.request_drain()
            assert coordinator.serve()["outcome"] == "drained"


def test_cli_parses_telemetry_flags_and_trace_command():
    args = build_parser().parse_args(
        [
            "coordinate", "h2combustion", "--tolerance", "1e-2",
            "--chunk-size", "16",
            "--metrics-port", "9100", "--metrics-host", "0.0.0.0",
        ]
    )
    assert args.metrics_port == 9100
    assert args.metrics_host == "0.0.0.0"

    args = build_parser().parse_args(
        ["trace", "analyze", "t.jsonl", "--straggler-k", "3", "--json", "o.json"]
    )
    assert args.command == "trace" and args.trace_command == "analyze"
    assert args.file == "t.jsonl" and args.straggler_k == 3.0

    args = build_parser().parse_args(
        ["serve-metrics", "m.json", "--port", "9100", "--duration", "0.5"]
    )
    assert args.command == "serve-metrics" and args.duration == 0.5


def test_cli_trace_analyze_exit_codes(tmp_path):
    from repro.obs import Tracer

    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    clean = str(tmp_path / "clean.jsonl")
    tracer.export_jsonl(clean)
    out = str(tmp_path / "report.json")
    assert cli_main(["trace", "analyze", clean, "--json", out]) == 0
    report = json.loads(open(out).read())
    assert report["orphans"]["count"] == 0
    assert [p["name"] for p in report["critical_path"]] == ["root", "child"]

    orphaned = str(tmp_path / "orphaned.jsonl")
    shutil.copy(clean, orphaned)
    with open(orphaned, "a") as handle:
        handle.write(json.dumps({
            "span_id": "a" * 16, "parent_id": "b" * 16, "root": False,
            "name": "lost", "start_unix": 0.0, "duration_s": 0.1,
        }) + "\n")
    # orphaned spans flip the exit code: CI can assert a fully
    # stitched trace with nothing but `repro trace analyze`
    assert cli_main(["trace", "analyze", orphaned]) == 1
    assert cli_main(["trace", "analyze", str(tmp_path / "missing.jsonl")]) == 1


def test_cli_serve_metrics_serves_saved_export(tmp_path):
    with obs.capture() as (_, metrics):
        metrics.counter("events_total").inc(5)
        payload = metrics.to_json()
    path = str(tmp_path / "metrics.json")
    with open(path, "w") as handle:
        json.dump(payload, handle)

    results = {}

    def run():
        results["code"] = cli_main(
            ["serve-metrics", path, "--port", "0", "--duration", "1.0"]
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(timeout=10.0)
    assert results.get("code") == 0
