"""Tests shared across the SZ/ZFP/MGARD codecs: the error-bound contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    ErrorBoundMode,
    MGARDCompressor,
    SZCompressor,
    ZFPCompressor,
    achieved_error,
    compression_ratio,
    get_compressor,
    psnr,
    verify_tolerance,
)
from repro.exceptions import CompressionError, ToleranceError

_ALL_CODECS = [SZCompressor, ZFPCompressor, MGARDCompressor]


def _codec_instances():
    return [cls() for cls in _ALL_CODECS]


def _smooth(shape, seed=0, noise=1e-4):
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.linspace(0, 3 * np.pi, s) for s in shape], indexing="ij")
    field = sum(np.sin((i + 1) * axis) for i, axis in enumerate(axes))
    return (field + noise * rng.standard_normal(shape)).astype(np.float64)


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
@pytest.mark.parametrize("tolerance", [1e-2, 1e-4, 1e-6])
def test_abs_bound_honoured(codec, tolerance, smooth_field_2d):
    reconstruction, blob = codec.roundtrip(smooth_field_2d, tolerance, ErrorBoundMode.ABS)
    assert achieved_error(smooth_field_2d, reconstruction, ErrorBoundMode.ABS) <= tolerance
    assert reconstruction.shape == smooth_field_2d.shape
    assert reconstruction.dtype == smooth_field_2d.dtype


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
@pytest.mark.parametrize("tolerance", [1e-2, 1e-4])
def test_rel_bound_honoured(codec, tolerance, smooth_field_2d):
    reconstruction, __ = codec.roundtrip(smooth_field_2d, tolerance, ErrorBoundMode.REL)
    assert achieved_error(smooth_field_2d, reconstruction, ErrorBoundMode.REL) <= tolerance


@pytest.mark.parametrize(
    "codec", [SZCompressor(), MGARDCompressor()], ids=lambda c: c.name
)
@pytest.mark.parametrize("mode", [ErrorBoundMode.L2_ABS, ErrorBoundMode.L2_REL])
def test_l2_bound_honoured(codec, mode, smooth_field_2d):
    tolerance = 1e-3 if mode is ErrorBoundMode.L2_REL else 1.0
    reconstruction, __ = codec.roundtrip(smooth_field_2d, tolerance, mode)
    assert achieved_error(smooth_field_2d, reconstruction, mode) <= tolerance


def test_zfp_rejects_l2_modes(smooth_field_2d):
    # Paper Fig. 8: "ZFP does not support an L2 norm tolerance."
    codec = ZFPCompressor()
    for mode in (ErrorBoundMode.L2_ABS, ErrorBoundMode.L2_REL):
        with pytest.raises(ToleranceError):
            codec.compress(smooth_field_2d, 1e-3, mode)


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
def test_ratio_improves_with_looser_tolerance(codec, smooth_field_2d):
    tight = codec.compress(smooth_field_2d, 1e-5, ErrorBoundMode.REL)
    loose = codec.compress(smooth_field_2d, 1e-2, ErrorBoundMode.REL)
    assert loose.compression_ratio > tight.compression_ratio
    assert loose.compression_ratio > 3.0  # smooth data must compress well


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
@pytest.mark.parametrize(
    "shape", [(257,), (64, 48), (13, 24, 24), (5, 7)], ids=str
)
def test_odd_shapes_roundtrip(codec, shape):
    field = _smooth(shape)
    reconstruction, __ = codec.roundtrip(field, 1e-3, ErrorBoundMode.ABS)
    assert reconstruction.shape == shape
    assert np.max(np.abs(reconstruction - field)) <= 1e-3


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
def test_float32_input_preserves_dtype_and_bound(codec):
    field = _smooth((96, 96)).astype(np.float32)
    reconstruction, __ = codec.roundtrip(field, 1e-4, ErrorBoundMode.ABS)
    assert reconstruction.dtype == np.float32
    assert np.max(np.abs(reconstruction.astype(np.float64) - field)) <= 1e-4


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
def test_lossless_fallback_below_dtype_precision(codec):
    field = _smooth((32, 32)).astype(np.float32)
    blob = codec.compress(field, 1e-12, ErrorBoundMode.ABS)
    assert blob.metadata.get("lossless")
    assert np.array_equal(codec.decompress(blob), field)


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
def test_rejects_non_positive_tolerance(codec, smooth_field_2d):
    with pytest.raises(ToleranceError):
        codec.compress(smooth_field_2d, 0.0, ErrorBoundMode.ABS)
    with pytest.raises(ToleranceError):
        codec.compress(smooth_field_2d, -1.0, ErrorBoundMode.ABS)


@pytest.mark.parametrize("codec", _codec_instances(), ids=lambda c: c.name)
def test_rejects_foreign_blob(codec, smooth_field_2d):
    other = SZCompressor() if codec.name != "sz" else ZFPCompressor()
    blob = other.compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    with pytest.raises(CompressionError):
        codec.decompress(blob)


@given(
    seed=st.integers(0, 2**31 - 1),
    log_tol=st.integers(-6, -1),
    codec_name=st.sampled_from(["sz", "zfp", "mgard"]),
)
@settings(max_examples=30, deadline=None)
def test_property_pointwise_bound_random_fields(seed, log_tol, codec_name):
    """The ABS contract must hold on arbitrary (even rough) data."""
    rng = np.random.default_rng(seed)
    field = rng.standard_normal((40, 40)) * rng.uniform(0.1, 10.0)
    tolerance = 10.0**log_tol
    codec = get_compressor(codec_name)
    reconstruction, __ = codec.roundtrip(field, tolerance, ErrorBoundMode.ABS)
    assert np.max(np.abs(reconstruction - field)) <= tolerance


def test_get_compressor_unknown():
    with pytest.raises(ValueError):
        get_compressor("lz77")


# -- metrics ---------------------------------------------------------------------


def test_achieved_error_modes(smooth_field_2d):
    noisy = smooth_field_2d + 0.01
    assert achieved_error(smooth_field_2d, noisy, ErrorBoundMode.ABS) == pytest.approx(0.01, rel=1e-3)
    rel = achieved_error(smooth_field_2d, noisy, ErrorBoundMode.REL)
    value_range = smooth_field_2d.max() - smooth_field_2d.min()
    assert rel == pytest.approx(0.01 / value_range, rel=1e-3)


def test_verify_tolerance(smooth_field_2d):
    assert verify_tolerance(smooth_field_2d, smooth_field_2d, 1e-12, ErrorBoundMode.ABS)
    assert not verify_tolerance(
        smooth_field_2d, smooth_field_2d + 1.0, 1e-3, ErrorBoundMode.ABS
    )


def test_psnr_exact_reconstruction_is_infinite(smooth_field_2d):
    assert psnr(smooth_field_2d, smooth_field_2d) == np.inf


def test_psnr_decreases_with_noise(smooth_field_2d, rng):
    small = psnr(smooth_field_2d, smooth_field_2d + 1e-4 * rng.standard_normal(smooth_field_2d.shape))
    large = psnr(smooth_field_2d, smooth_field_2d + 1e-2 * rng.standard_normal(smooth_field_2d.shape))
    assert small > large


def test_compression_ratio_metric(smooth_field_2d):
    codec = SZCompressor()
    blob = codec.compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    assert compression_ratio(smooth_field_2d, blob) == pytest.approx(
        blob.compression_ratio, rel=1e-6
    )
