"""Tests for losses, optimizers, trainer and residual blocks."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.nn import (
    Adam,
    BasicBlock,
    CrossEntropyLoss,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MSELoss,
    Parameter,
    ReLU,
    ResidualBlock,
    SGD,
    Sequential,
    SpectralLinear,
    Tanh,
    Trainer,
    spectral_penalty,
    spectral_penalty_backward,
)


# -- losses ------------------------------------------------------------------


def test_mse_value_and_gradient(rng):
    loss = MSELoss()
    pred = np.array([[1.0, 2.0]])
    target = np.array([[0.0, 0.0]])
    assert np.isclose(loss(pred, target), 2.5)
    grad = loss.backward()
    assert np.allclose(grad, [[1.0, 2.0]])


def test_cross_entropy_matches_manual(rng):
    loss = CrossEntropyLoss()
    logits = rng.standard_normal((6, 4))
    labels = rng.integers(0, 4, size=6)
    value = loss(logits, labels)
    shifted = logits - logits.max(axis=1, keepdims=True)
    probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
    manual = -np.mean(np.log(probs[np.arange(6), labels]))
    assert np.isclose(value, manual)


def test_cross_entropy_gradient_sums_to_zero(rng):
    loss = CrossEntropyLoss()
    logits = rng.standard_normal((5, 3))
    labels = rng.integers(0, 3, size=5)
    loss(logits, labels)
    grad = loss.backward()
    assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)


def test_spectral_penalty_sums_alpha_squared(rng):
    model = Sequential(
        SpectralLinear(3, 4, rng=rng, alpha_init=2.0),
        Tanh(),
        SpectralLinear(4, 2, rng=rng, alpha_init=3.0),
    )
    assert np.isclose(spectral_penalty(model, weight=0.1), 0.1 * (4.0 + 9.0))


def test_spectral_penalty_zero_for_plain_model(tiny_mlp):
    assert spectral_penalty(tiny_mlp, weight=1.0) == 0.0


def test_spectral_penalty_backward_accumulates(rng):
    model = Sequential(SpectralLinear(3, 3, rng=rng, alpha_init=2.0))
    model.zero_grad()
    spectral_penalty_backward(model, weight=0.5)
    assert np.isclose(model[0].alpha.grad[0], 2 * 0.5 * 2.0)


# -- optimizers ----------------------------------------------------------------


def _quadratic_descent(optimizer_factory, steps=150):
    param = Parameter(np.array([5.0, -3.0], dtype=np.float64))
    optimizer = optimizer_factory([param])
    for __ in range(steps):
        optimizer.zero_grad()
        param.grad += 2.0 * param.data  # d/dx ||x||^2
        optimizer.step()
    return np.linalg.norm(param.data)


def test_sgd_converges_on_quadratic():
    assert _quadratic_descent(lambda p: SGD(p, lr=0.1)) < 1e-6


def test_sgd_momentum_converges():
    assert _quadratic_descent(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=400) < 1e-6


def test_adam_converges_on_quadratic():
    assert _quadratic_descent(lambda p: Adam(p, lr=0.3), steps=300) < 1e-4


def test_sgd_weight_decay_shrinks_params():
    param = Parameter(np.array([1.0]))
    optimizer = SGD([param], lr=0.1, weight_decay=1.0)
    optimizer.step()  # grad 0, decay pulls toward zero
    assert param.data[0] < 1.0


def test_optimizer_rejects_bad_lr():
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(1))], lr=-1.0)
    with pytest.raises(ValueError):
        Adam([Parameter(np.zeros(1))], lr=0.0)


def test_optimizer_rejects_empty_params():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_adam_rejects_bad_betas():
    with pytest.raises(ValueError):
        Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))


def test_optimizer_skips_frozen_params():
    frozen = Parameter(np.array([1.0]), requires_grad=False)
    optimizer = SGD([frozen], lr=0.5)
    frozen.grad += 10.0
    optimizer.step()
    assert frozen.data[0] == 1.0


# -- trainer ------------------------------------------------------------------


def test_trainer_reduces_loss(rng):
    model = Sequential(Linear(4, 16, rng=rng), Tanh(), Linear(16, 2, rng=rng), Identity())
    inputs = rng.uniform(-1, 1, (256, 4)).astype(np.float32)
    targets = np.tanh(inputs @ rng.standard_normal((4, 2))).astype(np.float32)
    trainer = Trainer(model, MSELoss(), SGD(model.parameters(), lr=0.05, momentum=0.9))
    history = trainer.fit(inputs, targets, epochs=20, batch_size=32, rng=rng)
    assert history.train_loss[-1] < history.train_loss[0] * 0.5
    assert history.epochs == 20


def test_trainer_validation_and_metric(rng):
    model = Sequential(Linear(3, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    inputs = rng.standard_normal((64, 3)).astype(np.float32)
    labels = rng.integers(0, 2, size=64)

    def accuracy(pred, target):
        return float((pred.argmax(axis=1) == target).mean())

    trainer = Trainer(
        model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.1), metric=accuracy
    )
    history = trainer.fit(
        inputs, labels, epochs=3, batch_size=16, val_inputs=inputs, val_targets=labels, rng=rng
    )
    assert len(history.val_loss) == 3
    assert len(history.val_metric) == 3
    assert history.best_val_loss() == min(history.val_loss)


def test_trainer_rejects_mismatched_data(rng, tiny_mlp):
    trainer = Trainer(tiny_mlp, MSELoss(), SGD(tiny_mlp.parameters(), lr=0.1))
    with pytest.raises(TrainingError):
        trainer.fit(np.zeros((4, 6)), np.zeros((5, 4)), epochs=1, batch_size=2)


def test_trainer_rejects_bad_epochs(rng, tiny_mlp):
    trainer = Trainer(tiny_mlp, MSELoss(), SGD(tiny_mlp.parameters(), lr=0.1))
    with pytest.raises(TrainingError):
        trainer.fit(np.zeros((4, 6)), np.zeros((4, 4)), epochs=0, batch_size=2)


def test_history_without_validation_raises(rng, tiny_mlp):
    trainer = Trainer(tiny_mlp, MSELoss(), SGD(tiny_mlp.parameters(), lr=0.1))
    history = trainer.fit(
        np.zeros((4, 6), dtype=np.float32), np.zeros((4, 4), dtype=np.float32),
        epochs=1, batch_size=2,
    )
    with pytest.raises(TrainingError):
        history.best_val_loss()


# -- residual blocks ----------------------------------------------------------


def test_identity_residual_adds_input(rng):
    body = Sequential(Linear(4, 4, rng=rng))
    block = ResidualBlock(body)
    x = rng.standard_normal((3, 4)).astype(np.float32)
    expected = body(x) + x
    assert np.allclose(block(x), expected)


def test_projection_residual_changes_shape(rng):
    block = BasicBlock(3, 8, stride=2, rng=rng)
    out = block(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
    assert out.shape == (2, 8, 4, 4)
    assert block.has_projection


def test_same_shape_block_uses_identity_skip(rng):
    block = BasicBlock(4, 4, stride=1, rng=rng)
    assert not block.has_projection


def test_spectral_block_has_no_batchnorm(rng):
    from repro.nn import BatchNorm2d

    block = BasicBlock(3, 8, stride=2, rng=rng, spectral=True)
    assert not any(isinstance(m, BatchNorm2d) for m in block.modules())
    plain = BasicBlock(3, 8, stride=2, rng=rng, spectral=False)
    assert any(isinstance(m, BatchNorm2d) for m in plain.modules())


def test_residual_backward_shape(rng):
    block = BasicBlock(3, 6, stride=2, rng=rng)
    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    out = block(x)
    grad = block.backward(np.ones_like(out))
    assert grad.shape == x.shape
