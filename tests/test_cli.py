"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_analyze_command(capsys):
    assert main(["analyze", "h2combustion"]) == 0
    out = capsys.readouterr().out
    assert "Eq. (5) gain" in out
    assert "fp16" in out and "int8" in out


def test_analyze_calibrated(capsys):
    assert main(["analyze", "h2combustion", "--calibrate"]) == 0
    assert "(calibrated)" in capsys.readouterr().out


def test_analyze_verbose_layer_report(capsys):
    assert main(["analyze", "h2combustion", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "SpectralLinear" in out
    assert "q fp16" in out


def test_plan_command(capsys):
    assert main(["plan", "h2combustion", "--tolerance", "1e-2"]) == 0
    out = capsys.readouterr().out
    assert "tol=1.00e-02" in out
    assert "compression budget" in out


def test_pipeline_command(capsys):
    assert main(
        ["pipeline", "h2combustion", "--tolerance", "1e-2", "--codec", "sz"]
    ) == 0
    out = capsys.readouterr().out
    assert "tolerance honoured" in out


def test_compress_decompress_roundtrip(tmp_path, capsys, smooth_field_2d):
    array_path = tmp_path / "field.npy"
    blob_path = tmp_path / "field.rblob"
    out_path = tmp_path / "restored.npy"
    np.save(array_path, smooth_field_2d)

    assert main(
        [
            "compress", str(array_path), "--out", str(blob_path),
            "--codec", "mgard", "--tolerance", "1e-4",
        ]
    ) == 0
    assert "ratio" in capsys.readouterr().out

    assert main(["decompress", str(blob_path), "--out", str(out_path)]) == 0
    restored = np.load(out_path)
    assert np.abs(restored - smooth_field_2d).max() <= 1e-4


def test_store_command(tmp_path, capsys, smooth_field_2d):
    from repro.io import DatasetStore

    store = DatasetStore(str(tmp_path))
    store.put("snapshot", smooth_field_2d, tolerance=1e-3)
    assert main(["store", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "snapshot" in out

    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["store", str(empty)]) == 0
    assert "empty store" in capsys.readouterr().out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["analyze", "imagenet"])
