"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _restore_log_level():
    from repro.obs import set_log_level

    yield
    set_log_level("info")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_analyze_command(capsys):
    assert main(["analyze", "h2combustion"]) == 0
    out = capsys.readouterr().out
    assert "Eq. (5) gain" in out
    assert "fp16" in out and "int8" in out


def test_analyze_calibrated(capsys):
    assert main(["analyze", "h2combustion", "--calibrate"]) == 0
    assert "(calibrated)" in capsys.readouterr().out


def test_analyze_verbose_layer_report(capsys):
    assert main(["analyze", "h2combustion", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "SpectralLinear" in out
    assert "q fp16" in out


def test_plan_command(capsys):
    assert main(["plan", "h2combustion", "--tolerance", "1e-2"]) == 0
    out = capsys.readouterr().out
    assert "tol=1.00e-02" in out
    assert "compression budget" in out


def test_pipeline_command(capsys):
    assert main(
        ["pipeline", "h2combustion", "--tolerance", "1e-2", "--codec", "sz"]
    ) == 0
    out = capsys.readouterr().out
    assert "tolerance honoured" in out


def test_compress_decompress_roundtrip(tmp_path, capsys, smooth_field_2d):
    array_path = tmp_path / "field.npy"
    blob_path = tmp_path / "field.rblob"
    out_path = tmp_path / "restored.npy"
    np.save(array_path, smooth_field_2d)

    assert main(
        [
            "compress", str(array_path), "--out", str(blob_path),
            "--codec", "mgard", "--tolerance", "1e-4",
        ]
    ) == 0
    assert "ratio" in capsys.readouterr().out

    assert main(["decompress", str(blob_path), "--out", str(out_path)]) == 0
    restored = np.load(out_path)
    assert np.abs(restored - smooth_field_2d).max() <= 1e-4


def test_store_command(tmp_path, capsys, smooth_field_2d):
    from repro.io import DatasetStore

    store = DatasetStore(str(tmp_path))
    store.put("snapshot", smooth_field_2d, tolerance=1e-3)
    assert main(["store", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "snapshot" in out

    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["store", str(empty)]) == 0
    assert "empty store" in capsys.readouterr().out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["analyze", "imagenet"])


# -- observability flags ----------------------------------------------------


def test_traced_pipeline_writes_spans_and_metrics(tmp_path, capsys):
    from repro.obs import read_jsonl

    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.json"
    assert main(
        [
            "--trace", str(trace_path), "--metrics", str(metrics_path),
            "pipeline", "h2combustion", "--tolerance", "1e-2",
        ]
    ) == 0
    assert "tolerance honoured" in capsys.readouterr().out
    spans = {row["name"] for row in read_jsonl(str(trace_path))}
    assert {
        "pipeline.execute", "pipeline.compress", "pipeline.decompress",
        "pipeline.inference", "pipeline.guard", "codec.compress",
    } <= spans
    guard = next(
        row for row in read_jsonl(str(trace_path)) if row["name"] == "pipeline.guard"
    )
    assert "predicted_bound" in guard["attributes"]
    assert "observed_error" in guard["attributes"]
    import json

    payload = json.loads(metrics_path.read_text())
    names = {row["name"] for row in payload["metrics"]}
    assert "pipeline_executions_total" in names
    assert "pipeline_stage_seconds" in names


def test_trace_disabled_after_main():
    from repro.obs import NULL_TRACER, get_tracer

    main(["plan", "h2combustion", "--tolerance", "1e-2"])
    assert get_tracer() is NULL_TRACER


def test_metrics_prometheus_extension(tmp_path, capsys):
    prom_path = tmp_path / "metrics.prom"
    assert main(
        [
            "--metrics", str(prom_path),
            "pipeline", "h2combustion", "--tolerance", "1e-2",
        ]
    ) == 0
    capsys.readouterr()
    text = prom_path.read_text()
    assert "# TYPE pipeline_executions_total counter" in text
    assert 'pipeline_executions_total{codec="sz"} 1' in text


def test_trace_summary_goes_to_stderr(capsys):
    assert main(
        ["--trace-summary", "pipeline", "h2combustion", "--tolerance", "1e-2"]
    ) == 0
    captured = capsys.readouterr()
    assert "pipeline.execute" in captured.err
    assert "pipeline.execute" not in captured.out


def test_metrics_command_renders_export(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert main(
        [
            "--metrics", str(metrics_path),
            "plan", "h2combustion", "--tolerance", "1e-2",
        ]
    ) == 0
    capsys.readouterr()
    assert main(["metrics", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    # the plan command records no metrics, but the export still renders
    assert "no metrics recorded" in out or "metric" in out


def test_metrics_command_missing_file(tmp_path, capsys):
    assert main(["metrics", str(tmp_path / "absent.json")]) == 1
    captured = capsys.readouterr()
    assert "error (OSError)" in captured.err


def test_log_level_debug_adds_context_lines(capsys):
    assert main(
        ["--log-level", "debug", "pipeline", "h2combustion", "--tolerance", "1e-2"]
    ) == 0
    out = capsys.readouterr().out
    assert "workload loaded" in out  # debug-only line
    assert "tolerance honoured" in out


def test_log_level_error_silences_stdout(capsys):
    assert main(
        ["--log-level", "error", "plan", "h2combustion", "--tolerance", "1e-2"]
    ) == 0
    assert capsys.readouterr().out == ""


def test_audit_record_command(tmp_path, capsys):
    from repro.obs import read_jsonl

    registry_path = tmp_path / "runs.jsonl"
    assert main(
        [
            "audit", "record", "h2combustion", "--tolerance", "1e-2",
            "--registry", str(registry_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "tightness" in out
    assert "recorded run-0001" in out
    (record,) = read_jsonl(str(registry_path))
    assert record["run_id"] == "run-0001"
    assert record["verdict"] in ("ok", "loose")
    assert record["layers"], "PSN MLP audits must carry per-layer rows"


def test_audit_record_forced_format(tmp_path, capsys):
    registry_path = tmp_path / "runs.jsonl"
    assert main(
        [
            "audit", "record", "h2combustion", "--tolerance", "2e-1",
            "--fmt", "int8", "--registry", str(registry_path),
        ]
    ) == 0
    assert "fmt=int8" in capsys.readouterr().out


def test_audit_record_rejects_infeasible_format(tmp_path, capsys):
    assert main(
        [
            "audit", "record", "h2combustion", "--tolerance", "1e-6",
            "--fmt", "int8", "--registry", str(tmp_path / "runs.jsonl"),
        ]
    ) == 1
    assert "error (ToleranceError)" in capsys.readouterr().err


def test_audit_report_and_diff(tmp_path, capsys):
    registry_path = tmp_path / "runs.jsonl"
    for _ in range(2):
        assert main(
            [
                "audit", "record", "h2combustion", "--tolerance", "1e-2",
                "--registry", str(registry_path),
            ]
        ) == 0
    capsys.readouterr()

    assert main(["audit", "report", str(registry_path)]) == 0
    out = capsys.readouterr().out
    assert "run-0001" in out and "run-0002" in out

    assert main(
        ["audit", "diff", "run-0001", "run-0002", "--registry", str(registry_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "audit diff run-0001 -> run-0002" in out
    assert "no drift" in out


def test_audit_diff_unknown_run(tmp_path, capsys):
    registry_path = tmp_path / "runs.jsonl"
    assert main(
        [
            "audit", "record", "h2combustion", "--tolerance", "1e-2",
            "--registry", str(registry_path),
        ]
    ) == 0
    capsys.readouterr()
    assert main(
        ["audit", "diff", "run-0001", "run-0099", "--registry", str(registry_path)]
    ) == 1
    assert "error" in capsys.readouterr().err


def test_audit_flag_on_pipeline_command(tmp_path, capsys):
    from repro.obs import NULL_AUDITOR, get_auditor, read_jsonl

    registry_path = tmp_path / "runs.jsonl"
    assert main(
        [
            "--audit", str(registry_path),
            "pipeline", "h2combustion", "--tolerance", "1e-2",
        ]
    ) == 0
    capsys.readouterr()
    (record,) = read_jsonl(str(registry_path))
    assert record["codec"] == "sz"
    assert get_auditor() is NULL_AUDITOR  # switched off after main


def test_observability_flushes_when_command_raises(tmp_path, capsys):
    from repro.obs import NULL_TRACER, get_auditor, get_tracer, NULL_AUDITOR

    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.json"
    audit_path = tmp_path / "runs.jsonl"
    with pytest.raises(FileNotFoundError):
        main(
            [
                "--trace", str(trace_path), "--metrics", str(metrics_path),
                "--audit", str(audit_path),
                "compress", str(tmp_path / "missing.npy"),
                "--out", str(tmp_path / "out.rblob"), "--tolerance", "1e-3",
            ]
        )
    capsys.readouterr()
    # partial telemetry still lands on disk and the globals are reset
    assert trace_path.exists()
    assert metrics_path.exists()
    assert get_tracer() is NULL_TRACER
    assert get_auditor() is NULL_AUDITOR


def test_metrics_flush_survives_trace_export_failure(tmp_path, capsys, monkeypatch):
    from repro.obs import NULL_TRACER, Tracer, get_tracer

    def _boom(self, path):
        raise OSError("disk full")

    monkeypatch.setattr(Tracer, "export_jsonl", _boom)
    metrics_path = tmp_path / "metrics.json"
    with pytest.raises(OSError, match="disk full"):
        main(
            [
                "--trace", str(tmp_path / "trace.jsonl"),
                "--metrics", str(metrics_path),
                "pipeline", "h2combustion", "--tolerance", "1e-2",
            ]
        )
    capsys.readouterr()
    assert metrics_path.exists()  # later exports ran despite the failure
    assert get_tracer() is NULL_TRACER


# -- chunked-flag validation ------------------------------------------------


@pytest.mark.parametrize(
    ("flags", "fragment"),
    [
        (["--workers", "0"], "--workers must be a positive integer"),
        (["--workers", "-2"], "--workers must be a positive integer"),
        (["--chunk-size", "-3"], "--chunk-size must be a positive integer"),
        (["--chunk-size", "0"], "--chunk-size must be a positive integer"),
        (["--max-retries", "-1"], "--max-retries must be >= 0"),
        (["--task-timeout", "0"], "--task-timeout must be positive"),
        (["--resume"], "--resume requires --checkpoint"),
    ],
)
def test_pipeline_rejects_bad_chunk_flags(capsys, flags, fragment):
    assert main(["pipeline", "h2combustion", "--tolerance", "1e-2", *flags]) == 1
    captured = capsys.readouterr()
    assert "ConfigurationError" in captured.out + captured.err
    assert fragment in captured.out + captured.err


def test_pipeline_chunked_checkpoint_and_resume(tmp_path, capsys):
    checkpoint = str(tmp_path / "ck")
    base = [
        "pipeline", "h2combustion", "--tolerance", "1e-2",
        "--workers", "2", "--chunk-size", "16", "--checkpoint", checkpoint,
    ]
    assert main(base) == 0
    out = capsys.readouterr().out
    assert "chunked run" in out and "tolerance honoured" in out
    assert "0 replayed" in out
    # second invocation with --resume replays every chunk
    assert main([*base, "--resume"]) == 0
    out = capsys.readouterr().out
    assert "0 computed" in out
    assert "tolerance honoured" in out
