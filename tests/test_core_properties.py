"""Property tests on structural invariants of the bound machinery."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core import ErrorFlowAnalyzer, mlp_combined_bound, sigma_tilde
from repro.nn import Identity, Linear, Sequential, Tanh
from repro.nn.spectral import spectral_norm_exact
from repro.quant import BF16, FP16, INT8


@given(
    sigmas=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=5),
    q_scale=st.floats(1e-6, 1e-1),
    dx=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_bound_monotone_in_steps(sigmas, q_scale, dx):
    """Larger quantization steps can only increase the bound."""
    n = len(sigmas)
    dims = [8] * (n + 1)
    small = [q_scale * 0.5] * n
    large = [q_scale] * n
    assert mlp_combined_bound(sigmas, small, dims, dx) <= mlp_combined_bound(
        sigmas, large, dims, dx
    ) + 1e-12


@given(
    sigmas=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=5),
    q=st.floats(0.0, 1e-2),
    dx=st.floats(0.0, 1.0),
    index=st.integers(0, 4),
)
@settings(max_examples=60, deadline=None)
def test_bound_monotone_in_sigma(sigmas, q, dx, index):
    """Inflating any layer's spectral norm can only increase the bound."""
    n = len(sigmas)
    dims = [8] * (n + 1)
    steps = [q] * n
    inflated = list(sigmas)
    inflated[index % n] *= 1.5
    assert mlp_combined_bound(sigmas, steps, dims, dx) <= mlp_combined_bound(
        inflated, steps, dims, dx
    ) + 1e-12


@given(seed=st.integers(0, 2**31 - 1), fmt_index=st.integers(0, 2))
@settings(max_examples=40, deadline=None)
@example(seed=1353085, fmt_index=0)  # 2x16 fp16: CLT term undershoots by 1.6e-5
@example(seed=14374, fmt_index=1)  # 2x12 bf16: worst observed ratio, 1.00076
@example(seed=13129, fmt_index=0)  # 30x2 fp16: worst observed increment ratio
def test_sigma_tilde_covers_actual_quantized_sigma(seed, fmt_index):
    """sigma~ must cover the actually-quantized spectral norm.

    Two-part contract (see the README caveat): the triangle inequality
    gives a hard almost-sure cover via the realized perturbation's
    Frobenius norm, while sigma~ itself is the paper's CLT concentration
    estimate — tiny layers can exceed it *slightly* (worst observed over
    60k random cases: 0.08% of the total norm), which is exactly why
    ``ErrorFlowAnalyzer`` offers a ``quant_safety`` margin.  We assert
    the hard cover exactly and the statistical estimate within 1%.
    """
    rng = np.random.default_rng(seed)
    rows, cols = int(rng.integers(2, 40)), int(rng.integers(2, 40))
    weights = rng.standard_normal((rows, cols)) * rng.uniform(0.05, 3.0)
    fmt = (FP16, BF16, INT8)[fmt_index]
    from repro.quant import average_step_size

    q = average_step_size(weights, fmt)
    quantized = fmt.quantize(weights)
    sigma = spectral_norm_exact(weights)
    actual = spectral_norm_exact(quantized)
    hard_cover = sigma + float(np.linalg.norm(quantized - weights))
    assert actual <= hard_cover * (1 + 1e-9)
    predicted = sigma_tilde(sigma, q, cols, rows)
    assert actual <= predicted * 1.01


def test_quant_safety_scales_linearly(trained_spectral_mlp):
    base = ErrorFlowAnalyzer(trained_spectral_mlp)
    doubled = ErrorFlowAnalyzer(trained_spectral_mlp, quant_safety=2.0)
    # the first-order term doubles; the sigma~ cross terms make the total
    # slightly superlinear but still below the naive square
    ratio = doubled.quantization_bound(FP16) / base.quantization_bound(FP16)
    assert 2.0 <= ratio < 2.2


def test_bound_additivity_structure(trained_spectral_mlp):
    """Eq. (3) = compression term + quantization term, exactly."""
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    for dx in (1e-4, 1e-2):
        combined = analyzer.combined_bound(dx, FP16)
        separate = analyzer.compression_bound(dx) + analyzer.quantization_bound(FP16)
        assert combined == pytest.approx(separate, rel=1e-9)


def test_deeper_network_larger_quant_bound(rng):
    """Each appended layer adds a non-negative quantization term."""
    previous = 0.0
    layers: list = []
    for depth in range(1, 5):
        layers.extend([Linear(8, 8, rng=rng), Tanh()])
        model = Sequential(*layers[:-1], Identity())
        bound = ErrorFlowAnalyzer(model).quantization_bound(FP16)
        assert bound > previous * 0.99
        previous = bound
