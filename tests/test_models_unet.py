"""Tests for the U-Net extension (paper Section VI)."""

import numpy as np
import pytest

from repro.core import ErrorFlowAnalyzer
from repro.exceptions import ShapeError
from repro.models import unet
from repro.nn import Adam, ConcatChannels, MSELoss, Trainer, Upsample2d
from repro.quant import FP16, INT8, materialize, quantize_model


@pytest.fixture(scope="module")
def trained_unet():
    """A small spectral U-Net trained on a denoising task."""
    rng = np.random.default_rng(3)
    model = unet(in_channels=1, out_channels=1, base_width=6, depth=2, rng=rng)
    grid = np.linspace(0, 6, 16)
    clean = np.stack(
        [
            np.sin(grid + phase)[None, :] * np.cos(grid)[:, None]
            for phase in np.linspace(0, 3, 48)
        ]
    )[:, None].astype(np.float32)
    noisy = clean + 0.1 * rng.standard_normal(clean.shape).astype(np.float32)
    trainer = Trainer(
        model, MSELoss(), Adam(model.parameters(), lr=2e-3), spectral_weight=1e-4
    )
    history = trainer.fit(noisy, clean, epochs=20, batch_size=8, rng=rng)
    model.eval()
    return model, noisy, history


# -- plumbing ----------------------------------------------------------------


def test_upsample_values():
    layer = Upsample2d(2)
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    out = layer(x)
    assert out.shape == (1, 1, 4, 4)
    assert np.array_equal(out[0, 0, :2, :2], [[1.0, 1.0], [1.0, 1.0]])


def test_upsample_l2_gain_is_scale(rng):
    layer = Upsample2d(2)
    x = rng.standard_normal((2, 3, 8, 8))
    assert np.linalg.norm(layer(x)) == pytest.approx(2.0 * np.linalg.norm(x))
    assert layer.l2_gain == 2.0


def test_upsample_backward_is_adjoint(rng):
    layer = Upsample2d(2)
    x = rng.standard_normal((1, 2, 4, 4))
    y = rng.standard_normal((1, 2, 8, 8))
    lhs = float(np.sum(layer(x) * y))
    rhs = float(np.sum(x * layer.backward(y)))
    assert lhs == pytest.approx(rhs)


def test_concat_channels(rng):
    layer = ConcatChannels()
    a = rng.standard_normal((2, 3, 4, 4))
    b = rng.standard_normal((2, 5, 4, 4))
    out = layer(a, b)
    assert out.shape == (2, 8, 4, 4)
    grad_a, grad_b = layer.backward(out)
    assert np.array_equal(grad_a, a)
    assert np.array_equal(grad_b, b)


def test_concat_rejects_mismatch(rng):
    with pytest.raises(ShapeError):
        ConcatChannels()(np.zeros((1, 2, 4, 4)), np.zeros((1, 2, 5, 5)))
    with pytest.raises(ShapeError):
        ConcatChannels()(np.zeros((1, 2, 4, 4)))


# -- model ---------------------------------------------------------------------


def test_unet_preserves_spatial_shape(rng):
    model = unet(in_channels=2, out_channels=3, base_width=4, depth=2, rng=rng)
    out = model(rng.uniform(-1, 1, (2, 2, 16, 16)).astype(np.float32))
    assert out.shape == (2, 3, 16, 16)


def test_unet_training_reduces_loss(trained_unet):
    __, __, history = trained_unet
    assert history.train_loss[-1] < history.train_loss[0] * 0.7


def test_unet_extraction_counts_all_convs(trained_unet):
    model, __, __ = trained_unet
    analyzer = ErrorFlowAnalyzer(model, n_input=16 * 16)
    # depth 2: down x2, bottleneck, fuse x2, head = 6 convolutions
    assert len(analyzer.spec.linear_specs()) == 6
    assert analyzer.gain() > 0


@pytest.mark.parametrize("fmt", [FP16, INT8], ids=lambda f: f.name)
def test_unet_quantization_bound_holds(trained_unet, fmt, rng):
    model, noisy, __ = trained_unet
    analyzer = ErrorFlowAnalyzer(model, n_input=16 * 16)
    x = noisy[:8]
    reference = materialize(model)(x)
    quantized = quantize_model(model, fmt)
    achieved = np.linalg.norm((quantized(x) - reference).reshape(len(x), -1), axis=1).max()
    assert achieved <= analyzer.quantization_bound(fmt)


def test_unet_compression_bound_holds(trained_unet, rng):
    model, noisy, __ = trained_unet
    analyzer = ErrorFlowAnalyzer(model, n_input=16 * 16)
    x = noisy[:8]
    epsilon = 1e-3
    delta = rng.uniform(-epsilon, epsilon, x.shape).astype(np.float32)
    achieved = np.linalg.norm(
        (model(x + delta) - model(x)).reshape(len(x), -1), axis=1
    ).max()
    assert achieved <= analyzer.compression_bound_linf(epsilon)


def test_unet_calibration(trained_unet):
    model, noisy, __ = trained_unet
    analyzer = ErrorFlowAnalyzer(model, n_input=16 * 16)
    paper = analyzer.quantization_bound(INT8)
    analyzer.calibrate(noisy[:8])
    assert analyzer.quantization_bound(INT8) < paper


def test_unet_materialize_matches(trained_unet, rng):
    model, noisy, __ = trained_unet
    frozen = materialize(model)
    x = noisy[:4]
    assert np.allclose(frozen(x), model(x), atol=1e-5)
    from repro.nn import SpectralConv2d

    assert not any(isinstance(m, SpectralConv2d) for m in frozen.modules())
