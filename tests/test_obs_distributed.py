"""Distributed observability suite: trace context propagation, remote
span merging, the live telemetry endpoint and timeline analysis.

The contract under test is the observability tentpole: spans minted in
coordinator threads, TCP workers and forked pool children stitch into
ONE trace (same trace id, zero orphans); the coordinator exposes live
``/metrics`` + ``/status``; and the timeline analyzer reconstructs the
per-chunk lease schedule — critical path, per-worker utilization and
straggler detection — from nothing but the exported spans.
"""

import json
import re
import urllib.request

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer, new_span_id, new_trace_id, read_jsonl
from repro.obs.server import MetricsServer, prometheus_from_json_export
from repro.obs.timeline import analyze_spans, analyze_trace, render_gantt, render_report
from repro.obs.trace import NULL_TRACER, Span


# -- trace/span identity ----------------------------------------------------


def test_id_minting_formats():
    trace_id, span_id = new_trace_id(), new_span_id()
    assert re.fullmatch(r"[0-9a-f]{32}", trace_id)
    assert re.fullmatch(r"[0-9a-f]{16}", span_id)
    assert new_trace_id() != trace_id  # random, not sequential
    assert new_span_id() != span_id


def test_spans_carry_their_tracers_trace_id():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            pass
    assert root.trace_id == tracer.trace_id == child.trace_id
    assert re.fullmatch(r"[0-9a-f]{32}", root.trace_id)


def test_span_to_dict_marks_roots_explicitly():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    root_dict = next(d for d in tracer.to_dicts() if d["name"] == "root")
    child_dict = next(d for d in tracer.to_dicts() if d["name"] == "child")
    assert root_dict["root"] is True and root_dict["parent_id"] is None
    assert child_dict["root"] is False
    assert child_dict["parent_id"] == root_dict["span_id"]


def test_span_round_trips_through_export_and_from_dict(tmp_path):
    tracer = Tracer()
    with tracer.span("root", codec="sz"):
        with tracer.span("child") as child:
            child.set(ratio=2.0)
    path = str(tmp_path / "trace.jsonl")
    tracer.export_jsonl(path)
    for row in read_jsonl(path):
        span = Span.from_dict(row)
        assert span.to_dict() == row  # exact structural round-trip
    rebuilt = Span.from_dict(next(r for r in read_jsonl(path) if r["name"] == "root"))
    assert rebuilt.parent_id is None and rebuilt.trace_id == tracer.trace_id


def test_from_dict_honours_root_flag_over_stale_parent():
    payload = {
        "span_id": "a" * 16,
        "parent_id": "b" * 16,
        "root": True,  # explicit marker wins over a stale parent field
        "name": "x",
    }
    assert Span.from_dict(payload).parent_id is None


# -- inject / extract -------------------------------------------------------


def test_inject_anchors_at_current_span():
    tracer = Tracer()
    assert tracer.inject() == {"trace_id": tracer.trace_id, "parent_span_id": None}
    with tracer.span("work") as span:
        ctx = tracer.inject()
        assert ctx == {"trace_id": tracer.trace_id, "parent_span_id": span.span_id}
    assert tracer.inject(span)["parent_span_id"] == span.span_id


@pytest.mark.parametrize(
    "carrier",
    [None, "nope", 42, {}, {"trace_id": ""}, {"trace_id": 7}, {"trace": "x"},
     {"trace_id": "t", "parent_span_id": 9}],
)
def test_extract_rejects_malformed_carriers(carrier):
    assert Tracer.extract(carrier) is None


def test_extract_accepts_bare_context_and_trace_field():
    ctx = {"trace_id": "t" * 32, "parent_span_id": "p" * 16}
    assert Tracer.extract(ctx) == ctx
    assert Tracer.extract({"type": "lease", "trace": ctx}) == ctx
    assert Tracer.extract({"type": "lease"}) is None


def test_remote_context_constructor_adopts_trace_id():
    parent = Tracer()
    with parent.span("serve") as serve:
        ctx = parent.inject()
    child = Tracer(remote_context=ctx)
    assert child.trace_id == parent.trace_id
    with child.span("remote.work") as span:
        pass
    assert span.trace_id == parent.trace_id
    assert span.parent_id == serve.span_id  # parented across the seam


def test_remote_parent_used_only_when_stack_empty():
    tracer = Tracer()
    ctx = {"trace_id": "f" * 32, "parent_span_id": "e" * 16}
    with tracer.span("detached", remote_parent=ctx) as detached:
        with tracer.span("nested", remote_parent=ctx) as nested:
            pass
    assert detached.parent_id == "e" * 16 and detached.trace_id == "f" * 32
    # the local stack wins: the span nests where it actually runs
    assert nested.parent_id == detached.span_id


# -- merge_remote -----------------------------------------------------------


def test_merge_remote_reparents_batch_roots_under_parent():
    remote = Tracer()
    with remote.span("remote.outer"):
        with remote.span("remote.inner"):
            pass
    local = Tracer()
    with local.span("supervisor.task") as task:
        pass
    adopted = local.merge_remote(remote.to_dicts(), parent=task)
    by_name = {s.name: s for s in adopted}
    assert by_name["remote.outer"].parent_id == task.span_id
    assert by_name["remote.outer"].trace_id == task.trace_id
    # intra-batch links survive the reparenting
    assert by_name["remote.inner"].parent_id == by_name["remote.outer"].span_id
    assert by_name["remote.inner"] in local.finished


def test_merge_remote_without_parent_keeps_shipped_links():
    parent = Tracer()
    with parent.span("distrib.serve") as serve:
        ctx = parent.inject()
    worker = Tracer(remote_context=ctx)
    with worker.span("worker.lease"):
        pass
    adopted = parent.merge_remote(worker.to_dicts())
    assert adopted[0].parent_id == serve.span_id  # wire contract: untouched


def test_merge_remote_dedupes_by_span_id():
    remote = Tracer()
    with remote.span("once"):
        pass
    local = Tracer()
    first = local.merge_remote(remote.to_dicts())
    second = local.merge_remote(remote.to_dicts())  # re-shipped batch
    assert len(first) == 1 and second == []
    assert len(local.find("once")) == 1


def test_merge_remote_skips_own_spans():
    """A shared-tracer harness (in-process test workers) re-ships spans
    the receiver already owns; ids it minted itself must not duplicate."""
    tracer = Tracer()
    with tracer.span("mine"):
        pass
    assert tracer.merge_remote(tracer.to_dicts()) == []
    assert len(tracer.find("mine")) == 1


def test_merge_remote_tolerates_garbage():
    tracer = Tracer()
    assert tracer.merge_remote([]) == []
    assert tracer.merge_remote([None, "x", {}, {"name": "no-id"}]) == []


def test_dicts_since_is_an_incremental_cursor():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    batch, cursor = tracer.dicts_since(0)
    assert [d["name"] for d in batch] == ["a"]
    assert tracer.dicts_since(cursor)[0] == []
    with tracer.span("b"):
        pass
    batch, cursor = tracer.dicts_since(cursor)
    assert [d["name"] for d in batch] == ["b"]


def test_null_tracer_propagation_api_is_inert():
    assert NULL_TRACER.inject() is None
    assert NULL_TRACER.extract({"trace_id": "x"}) is None
    assert NULL_TRACER.merge_remote([{"span_id": "s"}]) == []
    assert NULL_TRACER.dicts_since(5) == ([], 0)
    with NULL_TRACER.span("x", remote_parent={"trace_id": "t"}):
        pass


# -- Prometheus exposition (satellite: header dedupe + grammar) -------------

#: one exposition line: comment, blank, or sample per the text format
_EXPOSITION_LINE = re.compile(
    r"^(#\s(HELP|TYPE)\s[a-zA-Z_:][a-zA-Z0-9_:]*\s.*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?\s[0-9eE+\-.]+)$"
)


def _assert_valid_exposition(text: str) -> None:
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        assert _EXPOSITION_LINE.match(line), f"invalid exposition line: {line!r}"


def test_prometheus_headers_emitted_once_per_name():
    registry = MetricsRegistry()
    registry.counter("events_total", kind="a").inc(1)
    registry.counter("events_total", kind="b").inc(2)
    registry.histogram("latency_seconds", stage="x").observe(0.1)
    registry.histogram("latency_seconds", stage="y").observe(0.2)
    text = registry.to_prometheus()
    assert text.count("# TYPE events_total counter") == 1
    assert text.count("# HELP events_total ") == 1
    assert text.count("# TYPE latency_seconds summary") == 1
    assert 'events_total{kind="a"} 1' in text
    assert 'events_total{kind="b"} 2' in text
    _assert_valid_exposition(text)


def test_prometheus_describe_attaches_help_text():
    registry = MetricsRegistry()
    registry.describe("workers", "workers currently connected")
    registry.gauge("workers").set(2)
    text = registry.to_prometheus()
    assert "# HELP workers workers currently connected" in text
    # undescribed metrics fall back to a generated help line
    registry.counter("other_total").inc()
    assert "# HELP other_total repro runtime metric other_total" in registry.to_prometheus()
    _assert_valid_exposition(registry.to_prometheus())


def test_prometheus_help_escapes_newlines_and_backslashes():
    registry = MetricsRegistry()
    registry.describe("weird", "line one\nline two \\ slash")
    registry.gauge("weird").set(1)
    text = registry.to_prometheus()
    assert "# HELP weird line one\\nline two \\\\ slash" in text
    _assert_valid_exposition(text)


def test_prometheus_from_json_export_round_trip():
    registry = MetricsRegistry()
    registry.counter("events_total", kind="a").inc(3)
    registry.gauge("ratio").set(2.5)
    registry.histogram("latency_seconds", stage="z").observe(0.5)
    text = prometheus_from_json_export(registry.to_json())
    assert 'events_total{kind="a"} 3' in text
    assert "# TYPE latency_seconds summary" in text
    assert 'latency_seconds{stage="z",quantile="0.5"} 0.5' in text
    assert 'latency_seconds_count{stage="z"} 1' in text
    _assert_valid_exposition(text)
    assert prometheus_from_json_export({"metrics": []}) == ""


# -- live telemetry endpoint ------------------------------------------------


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.read(), response.headers


def test_metrics_server_serves_metrics_status_healthz():
    status_doc = {"workers_connected": 2, "chunks_done": 1}
    with obs.capture() as (_, metrics):
        metrics.counter("events_total").inc(3)
        with MetricsServer(status_fn=lambda: dict(status_doc)) as server:
            host, port = server.address
            base = f"http://{host}:{port}"
            code, body, headers = _get(f"{base}/metrics")
            assert code == 200
            assert "text/plain" in headers["Content-Type"]
            assert b"events_total 3" in body
            code, body, _ = _get(f"{base}/status")
            assert code == 200 and json.loads(body) == status_doc
            code, body, _ = _get(f"{base}/healthz")
            assert code == 200 and body == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{base}/nope")
            assert excinfo.value.code == 404


def test_metrics_server_tracks_registry_installed_after_start():
    """Per-request registry lookup: enable order must not matter."""
    server = MetricsServer()
    host, port = server.start()
    try:
        code, body, _ = _get(f"http://{host}:{port}/metrics")
        assert code == 200 and body == b""  # NullMetrics: empty exposition
        with obs.capture() as (_, metrics):
            metrics.counter("late_total").inc()
            _, body, _ = _get(f"http://{host}:{port}/metrics")
            assert b"late_total 1" in body
    finally:
        server.stop()


def test_metrics_server_failing_status_fn_degrades_to_500():
    def boom():
        raise RuntimeError("status exploded")

    with MetricsServer(status_fn=boom) as server:
        host, port = server.address
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"http://{host}:{port}/status")
        assert excinfo.value.code == 500


# -- timeline analysis ------------------------------------------------------


def _chunk_span(chunk, worker, enqueued, granted, accepted, run_s, lease=1):
    return {
        "span_id": new_span_id(),
        "parent_id": "r" * 16,
        "root": False,
        "name": "distrib.chunk",
        "start_unix": accepted,
        "duration_s": 0.0,
        "trace_id": "t" * 32,
        "attributes": {
            "chunk": chunk,
            "worker": worker,
            "lease": lease,
            "queue_s": granted - enqueued,
            "run_s": run_s,
            "transfer_s": max(0.0, (accepted - granted) - run_s),
            "enqueued_unix": enqueued,
            "granted_unix": granted,
            "accepted_unix": accepted,
        },
    }


def _synthetic_trace():
    root = {
        "span_id": "r" * 16,
        "parent_id": None,
        "root": True,
        "name": "distrib.serve",
        "start_unix": 100.0,
        "duration_s": 10.0,
        "trace_id": "t" * 32,
        "attributes": {},
    }
    chunks = [
        _chunk_span(0, "w0", 100.0, 100.1, 101.2, 1.0),
        _chunk_span(1, "w1", 100.0, 100.1, 101.3, 1.1),
        _chunk_span(2, "w0", 100.0, 101.3, 107.5, 6.0),  # straggler
        _chunk_span(3, "w1", 100.0, 101.4, 102.7, 1.2),
    ]
    return [root] + chunks


def test_analyze_spans_builds_timeline_report():
    report = analyze_spans(_synthetic_trace())
    assert report["trace_id"] == "t" * 32
    assert report["n_spans"] == 5 and report["n_roots"] == 1
    assert report["orphans"]["count"] == 0
    assert report["root"]["name"] == "distrib.serve"
    assert report["wall_seconds"] == pytest.approx(10.0)
    # per-worker utilization over the run wall
    assert report["workers"]["w0"]["chunks"] == 2
    assert report["workers"]["w0"]["busy_s"] == pytest.approx(7.0)
    assert report["workers"]["w0"]["utilization"] == pytest.approx(0.7)
    assert report["workers"]["w1"]["utilization"] == pytest.approx(0.23)
    # phase aggregate
    assert report["phase_seconds"]["run"] == pytest.approx(9.3)
    # straggler: 6.0s vs median 1.15s
    assert [s["chunk"] for s in report["stragglers"]] == [2]
    assert report["stragglers"][0]["ratio_to_median"] == pytest.approx(6.0 / 1.15)
    # critical path starts at the dominant root
    assert report["critical_path"][0]["name"] == "distrib.serve"
    # the whole report survives JSON
    assert json.loads(json.dumps(report)) == report


def test_analyze_spans_detects_orphans():
    spans = _synthetic_trace()
    spans.append(
        {
            "span_id": "o" * 16,
            "parent_id": "z" * 16,  # parent never shipped
            "root": False,
            "name": "lost.child",
            "start_unix": 101.0,
            "duration_s": 0.1,
            "attributes": {},
        }
    )
    report = analyze_spans(spans)
    assert report["orphans"]["count"] == 1
    assert report["orphans"]["spans"][0]["name"] == "lost.child"


def test_analyze_spans_straggler_threshold_is_tunable():
    report = analyze_spans(_synthetic_trace(), straggler_k=10.0)
    assert report["stragglers"] == []
    with pytest.raises(ValueError):
        analyze_spans(_synthetic_trace(), straggler_k=0.0)


def test_analyze_spans_empty_and_malformed_input():
    report = analyze_spans([])
    assert report["n_spans"] == 0 and report["critical_path"] == []
    assert report["orphans"]["count"] == 0 and report["workers"] == {}
    # non-dict and id-less entries are evidence to skip, not errors
    assert analyze_spans([None, "x", {"name": "no-id"}])["n_spans"] == 0


def test_analyze_trace_reads_exported_file(tmp_path):
    tracer = Tracer()
    with tracer.span("pipeline.execute_chunked"):
        with tracer.span("distrib.serve"):
            pass
    path = str(tmp_path / "trace.jsonl")
    tracer.export_jsonl(path)
    report = analyze_trace(path)
    assert report["n_spans"] == 2 and report["orphans"]["count"] == 0
    assert report["trace_id"] == tracer.trace_id
    assert [p["name"] for p in report["critical_path"]] == [
        "pipeline.execute_chunked",
        "distrib.serve",
    ]


def test_render_gantt_and_report_shapes():
    report = analyze_spans(_synthetic_trace())
    gantt = render_gantt(report, width=40)
    lines = gantt.splitlines()
    assert len(lines) == 5  # header + 4 chunks
    assert "w0" in lines[1] and "=" in lines[1]
    assert all(len(line) == len(lines[0]) for line in lines[1:])
    with pytest.raises(ValueError):
        render_gantt(report, width=8)
    assert render_gantt({"chunks": []}) == "(no distrib.chunk spans in trace)"
    text = render_report(report)
    assert "orphans: 0" in text
    assert "straggler: chunk 2 on w0" in text
    assert "critical path: distrib.serve" in text


def test_render_report_without_chunks_says_no_stragglers():
    text = render_report(analyze_spans([]))
    assert "stragglers: none" in text


# -- timeline robustness: degenerate spans from merged traces ---------------


def test_analyze_spans_clamps_negative_durations():
    """Clock skew in merged remote spans can yield duration_s < 0; a span
    must never end before it starts (and never drag the wall negative)."""
    spans = _synthetic_trace()
    spans.append(
        {
            "span_id": "n" * 16,
            "parent_id": "r" * 16,
            "root": False,
            "name": "skewed.child",
            "start_unix": 105.0,
            "duration_s": -3.0,
            "trace_id": "t" * 32,
            "attributes": {},
        }
    )
    report = analyze_spans(spans)
    assert report["wall_seconds"] == pytest.approx(10.0)
    assert all(0.0 <= w["utilization"] <= 1.0 for w in report["workers"].values())


def test_analyze_spans_zero_duration_instant_spans():
    """A trace of only instant spans (duration 0) has a well-defined wall."""
    spans = [
        {
            "span_id": f"{i}" * 16,
            "parent_id": None,
            "root": True,
            "name": f"instant.{i}",
            "start_unix": 100.0 + i,
            "duration_s": 0.0,
            "trace_id": "t" * 32,
            "attributes": {},
        }
        for i in range(3)
    ]
    report = analyze_spans(spans)
    assert report["wall_seconds"] == pytest.approx(2.0)
    assert report["start_unix"] == pytest.approx(100.0)


def test_analyze_spans_ignores_epoch_zero_spans_for_wall():
    """Merged spans missing start_unix decode as 0.0; letting epoch zero
    into the origin would inflate the wall by decades and zero every
    utilization figure."""
    spans = _synthetic_trace()
    spans.append(
        {
            "span_id": "u" * 16,
            "parent_id": "r" * 16,
            "root": False,
            "name": "undated.merged",
            "start_unix": 0.0,
            "duration_s": 0.5,
            "trace_id": "t" * 32,
            "attributes": {},
        }
    )
    report = analyze_spans(spans)
    assert report["wall_seconds"] == pytest.approx(10.0)
    assert report["start_unix"] == pytest.approx(100.0)
    assert report["workers"]["w0"]["utilization"] == pytest.approx(0.7)


def test_analyze_spans_all_undated_falls_back_gracefully():
    spans = [
        {
            "span_id": "z" * 16,
            "parent_id": None,
            "root": True,
            "name": "undated.root",
            "start_unix": 0.0,
            "duration_s": 1.5,
            "trace_id": "t" * 32,
            "attributes": {},
        }
    ]
    report = analyze_spans(spans)
    assert report["wall_seconds"] == pytest.approx(1.5)


def test_render_gantt_end_before_start_rows_stay_monotonic():
    """Accepted-before-granted timestamps (skewed clocks) and negative
    run_s must not let the transfer loop walk backwards over the bar."""
    root = _synthetic_trace()[0]
    weird = [
        root,
        # accepted before granted: transfer range must be empty, not negative
        _chunk_span(0, "w0", 100.0, 109.0, 101.0, 0.5),
        # negative run phase from a skewed phase split
        _chunk_span(1, "w1", 100.0, 100.5, 103.0, -2.0),
        # zero-duration chunk at the very end of the axis
        _chunk_span(2, "w0", 110.0, 110.0, 110.0, 0.0),
    ]
    report = analyze_spans(weird)
    gantt = render_gantt(report, width=40)
    lines = gantt.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])
    # every row still paints at least one run cell
    for line in lines[1:]:
        assert "=" in line
