"""Fault-tolerance suite: retry schedules, chaos injection, the
supervised process pool, and checkpoint-resume.

The contract under test is the robustness tentpole: a chunked run
survives killed workers, hung tasks and poison chunks without losing
certification, and a killed run resumes bit-identically from its
checkpoint journal at *any* kill point.
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.compress.sz import SZCompressor
from repro.core.errorflow import ErrorFlowAnalyzer
from repro.core.pipeline import InferencePipeline
from repro.core.planner import TolerancePlanner
from repro.exceptions import ConfigurationError, IntegrityError
from repro.io import CheckpointJournal, digest_array, digest_bytes
from repro.obs import audit_capture
from repro.resilience import (
    CHAOS_ENV_VAR,
    ChaosError,
    ChaosInjector,
    ChaosRule,
    CircuitBreaker,
    RetryPolicy,
    SupervisedPool,
    corrupt_result,
    fork_available,
    retry_call,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="supervised pool requires fork"
)

#: fast schedule so pool tests never sleep for real
FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.05, jitter=0.0)


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """Tests control chaos explicitly; the environment must not leak in."""
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)


# -- RetryPolicy ------------------------------------------------------------


def test_retry_schedule_doubles_then_saturates():
    policy = RetryPolicy(max_retries=6, base_delay=0.1, max_delay=0.8, jitter=0.0)
    assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4, 0.8, 0.8, 0.8])


def test_retry_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(max_retries=4, base_delay=0.1, max_delay=2.0, jitter=0.25, seed=3)
    again = RetryPolicy(max_retries=4, base_delay=0.1, max_delay=2.0, jitter=0.25, seed=3)
    for attempt in range(4):
        delay = policy.delay(attempt)
        assert delay == again.delay(attempt)  # pure function of (seed, attempt)
        base = min(2.0, 0.1 * 2**attempt)
        assert base <= delay <= base * 1.25


def test_retry_different_seeds_decorrelate():
    delays_a = list(RetryPolicy(jitter=0.5, seed=1).delays())
    delays_b = list(RetryPolicy(jitter=0.5, seed=2).delays())
    assert delays_a != delays_b


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"base_delay": -0.1},
        {"max_delay": -1.0},
        {"jitter": -0.5},
    ],
)
def test_retry_policy_rejects_bad_config(kwargs):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


def test_retry_call_recovers_from_transient_failure():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise ValueError("transient")
        return "ok"

    slept = []
    policy = RetryPolicy(max_retries=3, base_delay=0.5, jitter=0.0)
    assert retry_call(flaky, policy, sleep=slept.append) == "ok"
    assert len(calls) == 3
    assert slept == [0.5, 1.0]  # exponential schedule actually consulted


def test_retry_call_exhausts_budget_and_reraises():
    attempts = []
    notified = []

    def always_fails():
        attempts.append(1)
        raise ValueError("persistent")

    with pytest.raises(ValueError, match="persistent"):
        retry_call(
            always_fails,
            RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0),
            on_retry=lambda attempt, exc: notified.append(attempt),
            sleep=lambda _: None,
        )
    assert len(attempts) == 3  # first try + 2 retries
    assert notified == [0, 1]


# -- chaos spec parsing -----------------------------------------------------


def test_chaos_spec_grammar():
    injector = ChaosInjector.from_spec("kill@1, raise@2:all, hang@0=5, slow@*:2=0.1")
    assert injector.rules == [
        ChaosRule(action="kill", task=1, attempts=1, param=0.1),
        ChaosRule(action="raise", task=2, attempts=None, param=0.1),
        ChaosRule(action="hang", task=0, attempts=1, param=5.0),
        ChaosRule(action="slow", task=None, attempts=2, param=0.1),
    ]


@pytest.mark.parametrize(
    "spec",
    ["kill", "explode@1", "kill@x", "kill@1:maybe", "kill@1:0", "hang@1=soon"],
)
def test_chaos_spec_rejects_malformed(spec):
    with pytest.raises(ConfigurationError):
        ChaosInjector.from_spec(spec)


def test_chaos_from_env(monkeypatch):
    assert ChaosInjector.from_env() is None
    monkeypatch.setenv(CHAOS_ENV_VAR, "raise@3")
    injector = ChaosInjector.from_env()
    assert injector.rules == [ChaosRule(action="raise", task=3, param=0.1)]


def test_chaos_rule_matching_respects_attempt_budget():
    once = ChaosRule(action="raise", task=2, attempts=1)
    assert once.matches(2, 0) and not once.matches(2, 1)
    assert not once.matches(3, 0)
    forever = ChaosRule(action="raise", task=None, attempts=None)
    assert forever.matches(0, 0) and forever.matches(7, 9)


def test_chaos_raise_fires_only_on_matching_attempt():
    injector = ChaosInjector.from_spec("raise@4")
    with pytest.raises(ChaosError):
        injector.before_task(4, 0)
    injector.before_task(4, 1)  # retry attempt passes clean
    injector.before_task(5, 0)  # other tasks untouched


def test_corrupt_result_poisons_arrays_not_originals():
    original = np.ones((8, 8), dtype=np.float32)
    injector = ChaosInjector.from_spec("corrupt@0")
    poisoned = injector.after_task(0, 0, original)
    assert np.isnan(poisoned).any()
    assert not np.isnan(original).any()  # copy semantics
    assert injector.after_task(1, 0, original) is original  # non-matching task


def test_corrupt_result_reaches_outputs_attribute():
    class Boxed:
        def __init__(self):
            self.outputs = np.ones(16, dtype=np.float32)

    box = Boxed()
    poisoned = corrupt_result(box, fraction=0.2)
    assert np.isnan(poisoned.outputs).any()
    assert not np.isnan(box.outputs).any()


# -- CircuitBreaker ---------------------------------------------------------


def test_circuit_breaker_trips_at_threshold():
    breaker = CircuitBreaker(threshold=3)
    assert not breaker.record_fault("a") and not breaker.record_fault("b")
    assert breaker.record_fault("c")  # this one tripped it
    assert breaker.tripped and breaker.reason == "c"
    assert not breaker.record_fault("d")  # already tripped; not "the" trip


def test_circuit_breaker_rejects_silly_threshold():
    with pytest.raises(ConfigurationError):
        CircuitBreaker(threshold=0)


# -- SupervisedPool ---------------------------------------------------------


def _square(x):
    return x * x


def test_pool_happy_path_ordered_results():
    pool = SupervisedPool(_square, workers=2, retry=FAST_RETRY)
    report = pool.run(list(range(10)))
    assert report.results() == [x * x for x in range(10)]
    assert report.executor == "process"
    assert report.retries == 0 and report.respawns == 0
    assert report.quarantined == [] and not report.breaker_tripped


def test_pool_inline_when_single_worker():
    pool = SupervisedPool(_square, workers=1, retry=FAST_RETRY)
    report = pool.run([1, 2, 3])
    assert report.results() == [1, 4, 9]
    assert report.executor == "inline"


def test_pool_empty_payloads():
    report = SupervisedPool(_square, workers=2, retry=FAST_RETRY).run([])
    assert report.results() == [] and report.outcomes == {}


def test_pool_respawns_after_worker_kill():
    chaos = ChaosInjector.from_spec("kill@1")
    with obs.capture() as (_, metrics):
        pool = SupervisedPool(_square, workers=2, retry=FAST_RETRY, chaos=chaos)
        report = pool.run(list(range(6)))
        snapshot = metrics.counter_snapshot()
    assert report.results() == [x * x for x in range(6)]
    assert report.respawns == 1
    assert report.retries == 1
    assert report.outcomes[1].attempts == 2
    assert snapshot["worker_restarts_total"][(("pool", "supervised"),)] == 1
    assert snapshot["chunk_retries_total"][(("pool", "supervised"),)] == 1


def test_pool_retries_transient_exception():
    chaos = ChaosInjector.from_spec("raise@0")
    report = SupervisedPool(_square, workers=2, retry=FAST_RETRY, chaos=chaos).run(
        [3, 4]
    )
    assert report.results() == [9, 16]
    assert report.retries == 1 and report.respawns == 0  # no process died


def test_pool_quarantines_poison_task():
    chaos = ChaosInjector.from_spec("raise@2:all")  # fails on every attempt
    with obs.capture() as (_, metrics):
        pool = SupervisedPool(_square, workers=2, retry=FAST_RETRY, chaos=chaos)
        report = pool.run(list(range(5)))
        snapshot = metrics.counter_snapshot()
    assert report.quarantined == [2]
    outcome = report.outcomes[2]
    assert outcome.quarantined and outcome.result is None
    assert "injected failure" in outcome.error
    assert outcome.attempts == FAST_RETRY.max_retries + 1
    assert report.results() == [0, 1, None, 9, 16]
    assert snapshot["chunk_retries_total"][(("pool", "supervised"),)] == 2


def test_pool_deadline_kills_hung_worker():
    chaos = ChaosInjector.from_spec("hang@0=60")
    pool = SupervisedPool(
        _square, workers=2, retry=FAST_RETRY, chaos=chaos, task_timeout=0.5
    )
    report = pool.run([5, 6])
    assert report.results() == [25, 36]
    assert report.respawns == 1  # the hung worker was killed and replaced
    assert report.outcomes[0].attempts == 2


def test_pool_circuit_breaker_degrades_to_inline():
    chaos = ChaosInjector.from_spec("kill@*:all")  # every worker dies, always
    with obs.capture() as (_, metrics):
        pool = SupervisedPool(
            _square, workers=2, retry=RetryPolicy(max_retries=20, base_delay=0.0, jitter=0.0),
            chaos=chaos, breaker_threshold=3,
        )
        report = pool.run(list(range(8)))
        snapshot = metrics.counter_snapshot()
    assert report.breaker_tripped
    # chaos models *worker* faults and is never applied inline, so the
    # degraded serial pass completes every task
    assert report.results() == [x * x for x in range(8)]
    # both workers can die in the same liveness sweep, so the trip can
    # land one respawn past the threshold
    assert report.respawns >= 3
    assert snapshot["circuit_breaker_trips_total"][(("pool", "supervised"),)] == 1
    assert all(outcome.inline for outcome in report.outcomes.values() if outcome.attempts)


def test_pool_validate_rejects_corrupt_result_then_retry_succeeds():
    chaos = ChaosInjector.from_spec("corrupt@1")  # first attempt only

    def make_field(x):
        return np.full(32, float(x), dtype=np.float32)

    def validate(task_id, result):
        if np.isnan(result).any():
            raise IntegrityError(f"NaN in task {task_id} result")

    pool = SupervisedPool(
        make_field, workers=2, retry=FAST_RETRY, chaos=chaos, validate=validate
    )
    report = pool.run([0, 1, 2])
    assert report.retries == 1 and report.quarantined == []
    assert report.outcomes[1].attempts == 2
    for task_id, outcome in report.outcomes.items():
        assert not np.isnan(outcome.result).any()
        assert outcome.result[0] == float(task_id)


def test_pool_on_result_fires_once_per_success():
    seen = []
    chaos = ChaosInjector.from_spec("raise@1,raise@3:all")
    pool = SupervisedPool(_square, workers=2, retry=FAST_RETRY, chaos=chaos)
    pool.run(list(range(5)), on_result=lambda tid, res, out: seen.append((tid, res)))
    assert sorted(seen) == [(0, 0), (1, 1), (2, 4), (4, 16)]  # 3 quarantined


def test_pool_merges_worker_counter_deltas():
    def counting_task(x):
        obs.get_metrics().counter("supervised_test_work_total").inc()
        return x

    with obs.capture() as (_, metrics):
        SupervisedPool(counting_task, workers=2, retry=FAST_RETRY).run(list(range(7)))
        snapshot = metrics.counter_snapshot()
    # increments happened in forked children; deltas rode back with results
    assert snapshot["supervised_test_work_total"][()] == 7


def test_pool_stitches_child_spans_into_parent_trace():
    def traced_task(x):
        with obs.get_tracer().span("child.work", value=x):
            return x * x

    with obs.capture() as (tracer, _):
        with tracer.span("test.run") as root:
            report = SupervisedPool(traced_task, workers=2, retry=FAST_RETRY).run(
                [1, 2, 3]
            )
        task_spans = tracer.find("supervisor.task")
        child_spans = tracer.find("child.work")
    assert len(task_spans) == 3 and len(child_spans) == 3
    task_ids = {span.span_id for span in task_spans}
    for child in child_spans:
        # forked-child spans reparent under the task span that ran them
        assert child.parent_id in task_ids
        assert child.trace_id == root.trace_id
    for task in task_spans:
        assert task.trace_id == root.trace_id
    assert sorted(span.attributes["value"] for span in child_spans) == [1, 2, 3]
    # the child-measured wall rides back on the outcome
    assert all(
        isinstance(outcome.seconds, float) and outcome.seconds >= 0.0
        for outcome in report.outcomes.values()
    )


def test_pool_rejects_nonpositive_timeout():
    with pytest.raises(ConfigurationError):
        SupervisedPool(_square, workers=2, task_timeout=0.0)


# -- pipeline integration ---------------------------------------------------


@pytest.fixture(scope="module")
def chunked_setup(trained_spectral_mlp):
    x = np.linspace(0, 2 * np.pi, 32)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)
    planner = TolerancePlanner(ErrorFlowAnalyzer(trained_spectral_mlp))
    plan = planner.plan(1e-2, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(trained_spectral_mlp, SZCompressor(), plan)
    serial = pipeline.execute_chunked(fields, chunk_size=8, chunk_axis=1, workers=1)
    return pipeline, fields, serial


def _chunked(pipeline, fields, **kwargs):
    return pipeline.execute_chunked(fields, chunk_size=8, chunk_axis=1, **kwargs)


def test_pipeline_survives_sigkill_and_hang(chunked_setup):
    """The acceptance scenario: a killed worker and a hung task, and the
    assembled result is still bit-identical to the serial run."""
    pipeline, fields, serial = chunked_setup
    chaos = ChaosInjector.from_spec("kill@1,hang@2=30")
    result = _chunked(
        pipeline, fields, workers=2, executor="process", chaos=chaos,
        task_timeout=3.0,
    )
    assert np.array_equal(result.outputs, serial.outputs)
    assert np.array_equal(result.reference_outputs, serial.reference_outputs)
    supervision = result.extra["supervision"]
    assert supervision["respawns"] == 2  # one SIGKILL, one deadline kill
    assert supervision["retries"] == 2
    assert supervision["quarantined"] == []
    # no loss of certification
    assert result.qoi_error("linf", relative=False) <= pipeline.plan.qoi_tolerance


def test_pipeline_quarantine_degrades_to_lossless(chunked_setup):
    pipeline, fields, serial = chunked_setup
    chaos = ChaosInjector.from_spec("raise@1:all")  # chunk 1 is a poison pill
    result = _chunked(
        pipeline, fields, workers=2, executor="process", chaos=chaos,
        max_task_retries=1,
    )
    supervision = result.extra["supervision"]
    assert supervision["quarantined"] == [1]
    assert supervision["degraded_chunks"] == [1]
    assert result.extra["integrity"]["degraded"]
    # the quarantined chunk re-ran losslessly in the parent: outputs are
    # finite, complete, and the tolerance still holds
    assert result.outputs.shape == serial.outputs.shape
    assert np.isfinite(result.outputs).all()
    assert result.qoi_error("linf", relative=False) <= pipeline.plan.qoi_tolerance
    # untouched chunks match the serial run exactly
    rows_per_chunk = serial.outputs.shape[0] // 4
    assert np.array_equal(
        result.outputs[:rows_per_chunk], serial.outputs[:rows_per_chunk]
    )


def test_pipeline_chaos_requires_process_executor(chunked_setup):
    pipeline, fields, _ = chunked_setup
    with pytest.raises(ConfigurationError, match="process executor"):
        _chunked(
            pipeline, fields, workers=1, chaos=ChaosInjector.from_spec("raise@0")
        )


def test_pipeline_audit_adopted_across_faults(chunked_setup, tmp_path):
    pipeline, fields, _ = chunked_setup
    chaos = ChaosInjector.from_spec("kill@1")
    with audit_capture(registry=str(tmp_path / "runs.jsonl")) as auditor:
        _chunked(
            pipeline, fields, workers=2, executor="process", chaos=chaos
        )
        records = list(auditor.records)
    assert len(records) == 4  # one per chunk, despite the kill/retry
    assert sorted(record.run_id for record in records) == [
        f"run-{i:04d}" for i in range(1, 5)
    ]


# -- checkpoint / resume ----------------------------------------------------


def test_checkpoint_journal_roundtrip(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "ck"))
    data = np.arange(12, dtype=np.float32).reshape(3, 4)
    manifest = {"fingerprint": {"plan": "p"}, "chunk_digests": [digest_array(data)]}
    assert journal.begin(manifest) == {}
    entry = journal.record(
        0, outputs=data, reference_outputs=data + 1, blob_bytes=b"blob-bytes",
        entry={"input_digest": digest_array(data)},
    )
    payload = journal.load(entry)
    assert np.array_equal(payload["outputs"], data)
    assert np.array_equal(payload["reference_outputs"], data + 1)
    assert payload["blob_bytes"] == b"blob-bytes"
    # resume sees the completed chunk
    completed = journal.begin(manifest, resume=True)
    assert set(completed) == {0}


def test_checkpoint_rejects_fingerprint_mismatch(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "ck"))
    data = np.zeros(4, dtype=np.float32)
    journal.begin({"fingerprint": {"plan": "a"}, "chunk_digests": [digest_array(data)]})
    with pytest.raises(IntegrityError, match="different run"):
        CheckpointJournal(str(tmp_path / "ck")).begin(
            {"fingerprint": {"plan": "b"}, "chunk_digests": [digest_array(data)]},
            resume=True,
        )


def test_checkpoint_rejects_changed_inputs(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "ck"))
    data = np.zeros(4, dtype=np.float32)
    journal.begin({"fingerprint": {"plan": "a"}, "chunk_digests": [digest_array(data)]})
    with pytest.raises(IntegrityError, match="data changed"):
        CheckpointJournal(str(tmp_path / "ck")).begin(
            {
                "fingerprint": {"plan": "a"},
                "chunk_digests": [digest_array(data + 1)],
            },
            resume=True,
        )


def test_checkpoint_drops_tampered_artifact(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "ck"))
    data = np.arange(8, dtype=np.float32)
    manifest = {"fingerprint": {}, "chunk_digests": [digest_array(data)]}
    journal.begin(manifest)
    entry = journal.record(
        0, outputs=data, reference_outputs=data, blob_bytes=b"x",
        entry={"input_digest": digest_array(data)},
    )
    artifact = tmp_path / "ck" / entry["artifact"]
    blob = bytearray(artifact.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    artifact.write_bytes(bytes(blob))
    # the tampered entry is silently dropped: the chunk gets recomputed
    assert CheckpointJournal(str(tmp_path / "ck")).begin(manifest, resume=True) == {}


def test_pipeline_resume_skips_completed_chunks(chunked_setup, tmp_path):
    pipeline, fields, serial = chunked_setup
    ck = str(tmp_path / "ck")
    full = _chunked(pipeline, fields, workers=1, checkpoint=ck)
    assert full.extra["checkpoint"]["computed_chunks"] == 4
    # simulate a crash after two chunks: keep only the first 2 journal lines
    journal_path = os.path.join(ck, "journal.jsonl")
    with open(journal_path, encoding="utf-8") as handle:
        lines = handle.readlines()
    assert len(lines) == 4
    with open(journal_path, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:2])
    resumed = _chunked(pipeline, fields, workers=1, checkpoint=ck, resume=True)
    assert resumed.extra["checkpoint"]["replayed_chunks"] == 2
    assert resumed.extra["checkpoint"]["computed_chunks"] == 2
    assert np.array_equal(resumed.outputs, full.outputs)
    assert np.array_equal(resumed.reference_outputs, full.reference_outputs)
    assert np.array_equal(resumed.outputs, serial.outputs)


def test_pipeline_resume_tolerates_torn_journal_tail(chunked_setup, tmp_path):
    pipeline, fields, _ = chunked_setup
    ck = str(tmp_path / "ck")
    full = _chunked(pipeline, fields, workers=1, checkpoint=ck)
    journal_path = os.path.join(ck, "journal.jsonl")
    with open(journal_path, "ab") as handle:
        handle.write(b'{"chunk": 3, "artifact": "chu')  # writer died mid-append
    resumed = _chunked(pipeline, fields, workers=1, checkpoint=ck, resume=True)
    assert resumed.extra["checkpoint"]["replayed_chunks"] == 4
    assert np.array_equal(resumed.outputs, full.outputs)


def test_pipeline_resume_rejects_different_plan(chunked_setup, tmp_path):
    pipeline, fields, _ = chunked_setup
    ck = str(tmp_path / "ck")
    _chunked(pipeline, fields, workers=1, checkpoint=ck)
    planner = TolerancePlanner(ErrorFlowAnalyzer(pipeline.model))
    other_plan = planner.plan(1e-3, norm="linf", quant_fraction=0.5)
    other = InferencePipeline(pipeline.model, SZCompressor(), other_plan)
    with pytest.raises(IntegrityError, match="different run"):
        _chunked(other, fields, workers=1, checkpoint=ck, resume=True)


def test_pipeline_resume_requires_checkpoint(chunked_setup):
    pipeline, fields, _ = chunked_setup
    with pytest.raises(ConfigurationError, match="checkpoint"):
        _chunked(pipeline, fields, workers=1, resume=True)


# -- resume is bit-identical at every kill point ----------------------------


@pytest.fixture(scope="module")
def baseline_checkpoint(chunked_setup, tmp_path_factory):
    """One uninterrupted checkpointed run with auditing: the oracle."""
    pipeline, fields, _ = chunked_setup
    ck = str(tmp_path_factory.mktemp("baseline") / "ck")
    with audit_capture() as auditor:
        full = _chunked(pipeline, fields, workers=1, checkpoint=ck)
        verdicts = [record.verdict for record in auditor.records]
    return ck, full, verdicts


@settings(max_examples=8, deadline=None)
@given(kill_point=st.integers(min_value=0, max_value=4), torn=st.booleans())
def test_resume_bit_identical_across_kill_points(
    chunked_setup, baseline_checkpoint, kill_point, torn
):
    """Property: for every prefix of the journal (any kill point, with or
    without a torn trailing line) the resumed run reproduces the
    uninterrupted run bit-for-bit — same outputs, same per-chunk audit
    verdicts."""
    pipeline, fields, _ = chunked_setup
    baseline_ck, full, full_verdicts = baseline_checkpoint
    with tempfile.TemporaryDirectory() as scratch:
        ck = os.path.join(scratch, "ck")
        shutil.copytree(baseline_ck, ck)
        journal_path = os.path.join(ck, "journal.jsonl")
        with open(journal_path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:kill_point])
            if torn:
                handle.write('{"chunk": 9, "artifact": "chunk')  # mid-append kill
        with audit_capture() as auditor:
            resumed = _chunked(pipeline, fields, workers=1, checkpoint=ck, resume=True)
            verdicts = [record.verdict for record in auditor.records]
    assert resumed.extra["checkpoint"]["replayed_chunks"] == kill_point
    assert np.array_equal(resumed.outputs, full.outputs)
    assert np.array_equal(resumed.reference_outputs, full.reference_outputs)
    assert verdicts == full_verdicts  # same per-chunk audit decisions


# -- hard-kill end-to-end: a really killed process resumes ------------------

_KILL_SCRIPT = textwrap.dedent(
    """
    import json, os, signal, sys, threading, time

    import numpy as np

    from repro.compress.sz import SZCompressor
    from repro.core.errorflow import ErrorFlowAnalyzer
    from repro.core.pipeline import InferencePipeline
    from repro.core.planner import TolerancePlanner
    from repro.nn import Identity, SpectralLinear, Sequential, Tanh

    mode, checkpoint, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

    rng = np.random.default_rng(3)
    model = Sequential(
        SpectralLinear(5, 16, rng=rng, alpha_init=1.2), Tanh(),
        SpectralLinear(16, 3, rng=rng, alpha_init=1.2), Identity(),
    )
    model.eval()
    x = np.linspace(0, 2 * np.pi, 48)
    xx, yy = np.meshgrid(x, x)
    fields = np.stack(
        [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    ).astype(np.float32)
    plan = TolerancePlanner(ErrorFlowAnalyzer(model)).plan(
        1e-2, norm="linf", quant_fraction=0.5
    )
    pipeline = InferencePipeline(model, SZCompressor(), plan)

    if mode == "killed":
        journal = os.path.join(checkpoint, "journal.jsonl")

        def assassin():
            while True:
                try:
                    with open(journal, "rb") as handle:
                        complete = handle.read().count(b"\\n")
                except OSError:
                    complete = 0
                if complete >= 2:
                    os.kill(os.getpid(), signal.SIGKILL)
                time.sleep(0.001)

        threading.Thread(target=assassin, daemon=True).start()

    result = pipeline.execute_chunked(
        fields, chunk_size=8, chunk_axis=1, workers=1,
        checkpoint=checkpoint, resume=(mode == "resume"),
    )
    if mode == "killed":
        time.sleep(10)  # the assassin always wins; we never reach save
    np.save(out_path, result.outputs)
    with open(out_path + ".meta.json", "w") as handle:
        json.dump(result.extra["checkpoint"], handle)
    """
)


@pytest.mark.integration
def test_hard_killed_run_resumes_bit_identically(tmp_path):
    """End-to-end: SIGKILL a real checkpointed process mid-run, resume it
    in a fresh process, and get the uninterrupted run's bytes."""
    script = tmp_path / "killable.py"
    script.write_text(_KILL_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    env.pop(CHAOS_ENV_VAR, None)

    def run(mode, checkpoint, out):
        return subprocess.run(
            [sys.executable, str(script), mode, checkpoint, out],
            env=env, capture_output=True, text=True, timeout=300,
        )

    full = run("full", str(tmp_path / "ck_full"), str(tmp_path / "full.npy"))
    assert full.returncode == 0, full.stderr

    killed = run("killed", str(tmp_path / "ck"), str(tmp_path / "dead.npy"))
    assert killed.returncode == -signal.SIGKILL  # actually died mid-run
    assert not (tmp_path / "dead.npy").exists()
    journal = tmp_path / "ck" / "journal.jsonl"
    assert journal.exists()  # partial progress was durably journaled

    resumed = run("resume", str(tmp_path / "ck"), str(tmp_path / "resumed.npy"))
    assert resumed.returncode == 0, resumed.stderr
    meta = (tmp_path / "resumed.npy.meta.json").read_text()
    assert '"resumed": true' in meta
    assert np.array_equal(
        np.load(tmp_path / "resumed.npy"), np.load(tmp_path / "full.npy")
    )


# -- digest helpers ---------------------------------------------------------


def test_digest_array_distinguishes_views():
    data = np.arange(6, dtype=np.float32)
    assert digest_array(data) != digest_array(data.reshape(2, 3))
    assert digest_array(data) != digest_array(data.astype(np.float64))
    assert digest_array(data) == digest_array(data.copy())


def test_digest_bytes_is_stable():
    assert digest_bytes(b"abc") == digest_bytes(b"abc")
    assert digest_bytes(b"abc") != digest_bytes(b"abd")
