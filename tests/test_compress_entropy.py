"""Tests for the bitstream and Huffman entropy-coding stages."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.bitstream import BitReader, pack_codes
from repro.compress.huffman import _decode_reference, huffman_decode, huffman_encode
from repro.exceptions import CompressionError


# -- bitstream ------------------------------------------------------------------


def test_pack_codes_roundtrip_via_reader():
    values = np.array([0b101, 0b1, 0b11110000], dtype=np.uint64)
    lengths = np.array([3, 1, 8])
    payload, total_bits = pack_codes(values, lengths)
    assert total_bits == 12
    reader = BitReader(payload, total_bits)
    assert reader.read(3) == 0b101
    assert reader.read(1) == 0b1
    assert reader.read(8) == 0b11110000
    assert reader.remaining == 0


def test_pack_codes_empty():
    payload, bits = pack_codes(np.array([], dtype=np.uint64), np.array([], dtype=np.int64))
    assert payload == b"" and bits == 0


def test_pack_codes_rejects_mismatched_shapes():
    with pytest.raises(CompressionError):
        pack_codes(np.zeros(3, dtype=np.uint64), np.ones(2, dtype=np.int64))


def test_pack_codes_rejects_bad_lengths():
    with pytest.raises(CompressionError):
        pack_codes(np.zeros(1, dtype=np.uint64), np.array([0]))
    with pytest.raises(CompressionError):
        pack_codes(np.zeros(1, dtype=np.uint64), np.array([40]))


def test_bitreader_exhaustion():
    payload, bits = pack_codes(np.array([1], dtype=np.uint64), np.array([1]))
    reader = BitReader(payload, bits)
    reader.read(1)
    with pytest.raises(CompressionError):
        reader.read(1)


def test_bitreader_peek_pads_with_zeros():
    payload, bits = pack_codes(np.array([0b1], dtype=np.uint64), np.array([1]))
    reader = BitReader(payload, bits)
    assert reader.peek16() == 0b1000000000000000


# -- huffman -------------------------------------------------------------------


@given(
    data=st.lists(st.integers(-50, 50), min_size=0, max_size=500),
)
@settings(max_examples=60, deadline=None)
def test_huffman_roundtrip(data):
    symbols = np.asarray(data, dtype=np.int64)
    assert np.array_equal(huffman_decode(huffman_encode(symbols)), symbols)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_huffman_roundtrip_peaked_distribution(seed):
    rng = np.random.default_rng(seed)
    symbols = np.round(rng.standard_normal(5000) * 2).astype(np.int64)
    assert np.array_equal(huffman_decode(huffman_encode(symbols)), symbols)


def test_huffman_escape_path(rng):
    symbols = np.round(rng.standard_normal(2000) * 2).astype(np.int64)
    symbols[rng.choice(2000, 20, replace=False)] = rng.integers(-(2**29), 2**29, 20)
    blob = huffman_encode(symbols, max_alphabet=16)
    assert np.array_equal(huffman_decode(blob), symbols)


def test_huffman_compresses_skewed_data(rng):
    symbols = np.zeros(10000, dtype=np.int64)
    symbols[rng.choice(10000, 100, replace=False)] = 1
    blob = huffman_encode(symbols)
    assert len(blob) < 10000 * 8 / 20  # > 20x on a near-constant stream


def test_huffman_single_symbol():
    symbols = np.full(100, 7, dtype=np.int64)
    assert np.array_equal(huffman_decode(huffman_encode(symbols)), symbols)


def test_huffman_empty():
    assert huffman_decode(huffman_encode(np.array([], dtype=np.int64))).size == 0


def test_huffman_rejects_oversized_symbols():
    with pytest.raises(CompressionError):
        huffman_encode(np.array([2**40], dtype=np.int64))


def test_huffman_rejects_bad_magic():
    with pytest.raises(CompressionError):
        huffman_decode(b"XXXX" + b"\x00" * 16)


def test_huffman_many_distinct_lengths():
    # Exponentially skewed counts force a wide range of code lengths and
    # exercise the length-limiting fix-up.
    symbols = np.concatenate([np.full(2**i, i, dtype=np.int64) for i in range(18)])
    assert np.array_equal(huffman_decode(huffman_encode(symbols)), symbols)


# -- vectorized decoder vs retained scalar reference ----------------------------


@given(data=st.lists(st.integers(-50, 50), min_size=0, max_size=500))
@settings(max_examples=60, deadline=None)
def test_vectorized_decode_matches_reference(data):
    blob = huffman_encode(np.asarray(data, dtype=np.int64))
    assert np.array_equal(huffman_decode(blob), _decode_reference(blob))


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_vectorized_decode_matches_reference_escape_heavy(seed):
    rng = np.random.default_rng(seed)
    symbols = np.round(rng.standard_normal(1500) * 2).astype(np.int64)
    # Tiny alphabet forces a large escaped fraction with extreme values.
    symbols[rng.choice(1500, 150, replace=False)] = rng.integers(
        -(2**31) + 1, 2**31 - 1, 150
    )
    blob = huffman_encode(symbols, max_alphabet=8)
    assert np.array_equal(huffman_decode(blob), _decode_reference(blob))
    assert np.array_equal(huffman_decode(blob), symbols)


def test_vectorized_decode_matches_reference_empty():
    blob = huffman_encode(np.empty(0, dtype=np.int64))
    assert np.array_equal(huffman_decode(blob), _decode_reference(blob))


def test_vectorized_decode_matches_reference_large_peaked(rng):
    symbols = np.round(rng.normal(0.0, 0.7, size=60_000)).astype(np.int64)
    blob = huffman_encode(symbols)
    assert np.array_equal(huffman_decode(blob), _decode_reference(blob))


def test_vectorized_decode_shorter_than_one_block(rng):
    # Fewer symbols than the 16-wide expansion block exercises the tail.
    for n in (1, 2, 15, 16, 17):
        symbols = rng.integers(-3, 3, n)
        blob = huffman_encode(symbols)
        assert np.array_equal(huffman_decode(blob), symbols)
        assert np.array_equal(huffman_decode(blob), _decode_reference(blob))


# -- vectorized BitReader vs retained scalar reference --------------------------


@given(
    seed=st.integers(0, 2**31 - 1),
    n_codes=st.integers(1, 40),
)
@settings(max_examples=40, deadline=None)
def test_bitreader_read_matches_reference(seed, n_codes):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 33, n_codes)
    values = np.array(
        [int(rng.integers(0, 2**l)) for l in lengths], dtype=np.uint64
    )
    payload, total_bits = pack_codes(values, lengths)
    vec = BitReader(payload, total_bits)
    ref = BitReader(payload, total_bits)
    for length in lengths:
        assert vec.peek16() == ref._peek16_reference()
        assert vec.read(int(length)) == ref._read_reference(int(length))
    assert vec.remaining == ref.remaining == 0


def test_bitreader_read_zero_bits():
    payload, bits = pack_codes(np.array([0b101], dtype=np.uint64), np.array([3]))
    reader = BitReader(payload, bits)
    assert reader.read(0) == 0
    assert reader.position == 0
    assert reader.read(3) == 0b101
