"""Integration tests: trained workloads + codecs + quantization end to end.

These exercise the paper's full Fig. 1 pipeline on the three scientific
tasks and assert its headline claims:

* the Eq. (3) bound covers the achieved QoI error for every format;
* the end-to-end pipeline keeps the QoI error inside the user tolerance;
* PSN training yields a dramatically tighter bound than the baselines.
"""

import numpy as np
import pytest

from repro import InferencePipeline, TolerancePlanner, load_workload
from repro.compress import MGARDCompressor, SZCompressor, ZFPCompressor
from repro.quant import BF16, FP16, INT8, TF32, materialize, quantize_model

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def h2():
    return load_workload("h2combustion")


@pytest.fixture(scope="module")
def borghesi():
    return load_workload("borghesi")


def test_workload_training_converged(h2):
    assert h2.final_train_loss < 5e-2
    assert h2.variant == "psn"


def test_workload_cache_roundtrip(h2):
    again = load_workload("h2combustion")
    assert np.array_equal(
        h2.model.state_dict()["0.raw_weight"], again.model.state_dict()["0.raw_weight"]
    )


def test_psn_gain_much_tighter_than_plain(h2):
    plain = load_workload("h2combustion", variant="plain")
    assert h2.analyzer.gain() < plain.analyzer.gain()


@pytest.mark.parametrize("fmt", [TF32, FP16, BF16, INT8], ids=lambda f: f.name)
def test_quantization_bound_holds_on_h2(h2, fmt):
    model = h2.qoi_model()
    model.eval()
    x = h2.dataset.test_inputs[:128]
    reference = materialize(model)(x)
    quantized = quantize_model(model, fmt)
    achieved = np.linalg.norm(quantized(x) - reference, axis=1).max()
    bound = h2.analyzer.quantization_bound(fmt)
    assert achieved <= bound
    # the paper reports roughly one order of magnitude of slack
    assert bound <= achieved * 50


@pytest.mark.parametrize("fmt", [FP16, INT8], ids=lambda f: f.name)
def test_quantization_bound_holds_on_borghesi(borghesi, fmt):
    model = borghesi.qoi_model()
    model.eval()
    x = borghesi.dataset.test_inputs[:128]
    reference = materialize(model)(x)
    quantized = quantize_model(model, fmt)
    achieved = np.linalg.norm(quantized(x) - reference, axis=1).max()
    assert achieved <= borghesi.analyzer.quantization_bound(fmt)


def test_borghesi_more_sensitive_than_h2(h2, borghesi):
    """Paper Section IV-B.2: BorghesiFlame amplifies input error ~10x more."""
    from repro.core import probe_sensitivity

    rng = np.random.default_rng(3)
    h2_report = probe_sensitivity(h2.model, h2.dataset.test_inputs[:200], 1e-3, rng=rng)
    bf_report = probe_sensitivity(
        borghesi.model, borghesi.dataset.test_inputs[:200], 1e-3, rng=rng
    )
    assert bf_report.amplification > h2_report.amplification


@pytest.mark.parametrize(
    "codec_cls", [SZCompressor, ZFPCompressor, MGARDCompressor], ids=lambda c: c.name
)
def test_end_to_end_pipeline_within_tolerance(h2, codec_cls):
    tolerance = 1e-2
    plan = TolerancePlanner(h2.analyzer).plan(tolerance, norm="linf", quant_fraction=0.5)
    pipeline = InferencePipeline(h2.model, codec_cls(), plan)
    result = pipeline.execute(h2.dataset.fields)
    assert result.qoi_error("linf", relative=False) <= tolerance
    assert result.compression_ratio > 1.0


def test_pipeline_l2_mode_end_to_end(borghesi):
    tolerance = 5e-2
    plan = TolerancePlanner(borghesi.analyzer).plan(tolerance, norm="l2", quant_fraction=0.3)
    pipeline = InferencePipeline(borghesi.model, SZCompressor(), plan)
    result = pipeline.execute(borghesi.dataset.fields)
    assert result.qoi_error("l2", relative=False) <= tolerance


def test_compression_bound_holds_on_real_codec_errors(h2):
    """Feed actual SZ reconstructions (not synthetic noise) through Eq. (5)."""
    from repro.compress import ErrorBoundMode

    codec = SZCompressor()
    fields = h2.dataset.fields
    reconstruction, __ = codec.roundtrip(fields, 1e-3, ErrorBoundMode.ABS)
    samples_ref = fields.reshape(fields.shape[0], -1).T.astype(np.float32)
    samples_new = reconstruction.reshape(fields.shape[0], -1).T.astype(np.float32)
    h2.model.eval()
    delta_y = h2.model(samples_new) - h2.model(samples_ref)
    achieved = np.linalg.norm(delta_y, axis=1).max()
    input_l2 = np.linalg.norm(samples_new - samples_ref, axis=1).max()
    assert achieved <= h2.analyzer.compression_bound(input_l2)


def test_workload_unknown_name():
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        load_workload("mnist")
    with pytest.raises(ConfigurationError):
        load_workload("h2combustion", variant="dropout")
