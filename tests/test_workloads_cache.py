"""Workload weight-cache robustness: corrupt caches retrain, never crash.

These reproduce the original seed failure — a corrupt ``.npz`` in the
cache directory crashed ``load_workload`` with ``zipfile.BadZipFile`` —
and pin the recovery behaviour: validate on load, delete the bad file,
retrain, and write the replacement atomically.
"""

import os

import numpy as np
import pytest

from repro.workloads import load_workload


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def _cache_file(cache_dir, epochs=1):
    return cache_dir / f"h2combustion-psn-e{epochs}-s1-seed0.npz"


def test_corrupt_cache_is_deleted_and_retrained(cache_dir):
    path = _cache_file(cache_dir)
    path.write_bytes(b"PK\x03\x04 this is not a real zip archive")
    with pytest.warns(RuntimeWarning, match="corrupt or stale"):
        workload = load_workload("h2combustion", epochs=1)
    assert np.isfinite(workload.final_train_loss)
    # the corrupt file was replaced by a valid cache
    archive = np.load(path)
    assert "__loss__" in archive.files


def test_truncated_cache_recovers(cache_dir):
    first = load_workload("h2combustion", epochs=1)
    path = _cache_file(cache_dir)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.warns(RuntimeWarning):
        again = load_workload("h2combustion", epochs=1)
    assert np.allclose(
        first.model.state_dict()["0.raw_weight"],
        again.model.state_dict()["0.raw_weight"],
    )


def test_cache_with_nonfinite_weights_rejected(cache_dir):
    workload = load_workload("h2combustion", epochs=1)
    path = _cache_file(cache_dir)
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    first_key = next(key for key in state if key != "__loss__")
    state[first_key] = np.full_like(state[first_key], np.nan)
    np.savez(path, **state)
    with pytest.warns(RuntimeWarning, match="non-finite"):
        again = load_workload("h2combustion", epochs=1)
    for value in again.model.state_dict().values():
        assert np.all(np.isfinite(value))
    assert np.allclose(
        workload.model.state_dict()[first_key], again.model.state_dict()[first_key]
    )


def test_cache_write_is_atomic(cache_dir):
    load_workload("h2combustion", epochs=1)
    leftovers = [p for p in os.listdir(cache_dir) if p.endswith(".tmp")]
    assert not leftovers


def test_valid_cache_is_reused(cache_dir):
    first = load_workload("h2combustion", epochs=1)
    path = _cache_file(cache_dir)
    mtime = path.stat().st_mtime_ns
    second = load_workload("h2combustion", epochs=1)
    assert path.stat().st_mtime_ns == mtime  # no rewrite, no retrain
    assert np.array_equal(
        first.model.state_dict()["0.raw_weight"],
        second.model.state_dict()["0.raw_weight"],
    )
