"""Tests for affine quantization, model quantization and granular schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QuantizationError
from repro.nn import Conv2d, GlobalAvgPool2d, Linear, ReLU, Sequential, SpectralLinear, Tanh
from repro.quant import (
    BF16,
    FP16,
    FP32,
    INT8,
    Granularity,
    calibrate_minmax,
    dequantize_affine,
    granular_quantize,
    granular_step_size,
    materialize,
    quantizable_layers,
    quantize_affine,
    quantize_model,
)


# -- affine primitives --------------------------------------------------------


@given(seed=st.integers(0, 2**31 - 1), bits=st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_affine_roundtrip_error_below_half_scale(seed, bits):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(200) * rng.uniform(0.1, 10.0)
    params = calibrate_minmax(values, bits=bits)
    reconstructed = dequantize_affine(quantize_affine(values, params), params)
    assert np.max(np.abs(reconstructed - values)) <= params.scale / 2 + 1e-9


def test_affine_codes_in_range(rng):
    values = rng.standard_normal(100)
    params = calibrate_minmax(values, bits=8)
    codes = quantize_affine(values, params)
    assert codes.min() >= 0 and codes.max() <= 255


def test_affine_rejects_empty():
    with pytest.raises(QuantizationError):
        calibrate_minmax(np.array([]))


def test_affine_constant_tensor():
    params = calibrate_minmax(np.full(5, 2.0))
    codes = quantize_affine(np.full(5, 2.0), params)
    assert np.allclose(dequantize_affine(codes, params), 2.0)


# -- materialization ------------------------------------------------------------


def test_materialize_preserves_outputs(trained_spectral_mlp, rng):
    frozen = materialize(trained_spectral_mlp)
    x = rng.uniform(-1, 1, (32, 5)).astype(np.float32)
    trained_spectral_mlp.eval()
    assert np.allclose(frozen(x), trained_spectral_mlp(x), atol=1e-5)


def test_materialize_lowers_spectral_layers(trained_spectral_mlp):
    frozen = materialize(trained_spectral_mlp)
    assert not any(isinstance(m, SpectralLinear) for m in frozen.modules())


def test_materialize_is_independent_copy(trained_spectral_mlp):
    frozen = materialize(trained_spectral_mlp)
    __, layer = quantizable_layers(frozen)[0]
    layer.weight.data[...] = 0.0
    # original model unaffected
    first = next(iter(trained_spectral_mlp))
    assert np.any(first.effective_weight() != 0.0)


# -- model quantization -----------------------------------------------------------


def test_quantize_model_reduces_memory(trained_spectral_mlp):
    quantized = quantize_model(trained_spectral_mlp, FP16)
    assert quantized.compression_of_weights == pytest.approx(2.0)
    quantized8 = quantize_model(trained_spectral_mlp, INT8)
    assert quantized8.compression_of_weights == pytest.approx(4.0)


def test_quantize_model_fp32_is_lossless(trained_spectral_mlp, rng):
    quantized = quantize_model(trained_spectral_mlp, FP32)
    x = rng.uniform(-1, 1, (16, 5)).astype(np.float32)
    assert np.allclose(quantized(x), materialize(trained_spectral_mlp)(x))
    assert all(step == 0.0 for step in quantized.step_sizes)


def test_quantize_model_output_close_for_fp16(trained_spectral_mlp, rng):
    quantized = quantize_model(trained_spectral_mlp, FP16)
    x = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    reference = materialize(trained_spectral_mlp)(x)
    delta = np.linalg.norm(quantized(x) - reference)
    assert 0 < delta < 1e-2 * np.linalg.norm(reference) + 1e-6


def test_quantize_model_mixed_formats(trained_spectral_mlp):
    quantized = quantize_model(trained_spectral_mlp, [FP16, INT8, BF16])
    assert [fmt.name for fmt in quantized.formats] == ["fp16", "int8", "bf16"]


def test_quantize_model_wrong_format_count(trained_spectral_mlp):
    with pytest.raises(QuantizationError):
        quantize_model(trained_spectral_mlp, [FP16])


def test_quantize_model_without_layers():
    with pytest.raises(QuantizationError):
        quantize_model(Sequential(ReLU()), FP16)


def test_quantized_model_describe(trained_spectral_mlp):
    quantized = quantize_model(trained_spectral_mlp, FP16)
    text = quantized.describe()
    assert "fp16" in text
    assert len(text.splitlines()) == 4  # header + 3 layers


def test_quantizable_layers_order(rng):
    model = Sequential(
        Conv2d(3, 4, 3, rng=rng), ReLU(), GlobalAvgPool2d(), Linear(4, 2, rng=rng)
    )
    names = [name for name, __ in quantizable_layers(model)]
    assert names == ["0", "3"]


# -- granular quantization ----------------------------------------------------------


def test_granular_per_row_tighter_than_per_tensor(rng):
    # rows with very different scales: per-row calibration must win
    matrix = rng.standard_normal((16, 32)) * np.logspace(-2, 1, 16)[:, None]
    per_tensor = granular_quantize(matrix, granularity=Granularity.PER_TENSOR)
    per_row = granular_quantize(matrix, granularity=Granularity.PER_ROW)
    assert per_row.step_rms < per_tensor.step_rms
    error_tensor = np.abs(per_tensor.reconstructed - matrix).max()
    error_row = np.abs(per_row.reconstructed - matrix).max()
    assert error_row <= error_tensor


def test_granular_block_group_count(rng):
    matrix = rng.standard_normal((64, 64))
    result = granular_quantize(matrix, granularity=Granularity.BLOCK, block_size=32)
    assert result.n_groups == 4


def test_granular_per_column(rng):
    matrix = rng.standard_normal((8, 6))
    result = granular_quantize(matrix, granularity=Granularity.PER_COLUMN)
    assert result.n_groups == 6


def test_granular_rejects_non_2d():
    with pytest.raises(QuantizationError):
        granular_quantize(np.zeros(8))


def test_granular_rejects_bad_block_size(rng):
    with pytest.raises(QuantizationError):
        granular_quantize(np.zeros((4, 4)), granularity=Granularity.BLOCK, block_size=0)


def test_granular_step_size_matches_quantize(rng):
    matrix = rng.standard_normal((12, 12))
    estimated = granular_step_size(matrix, granularity=Granularity.PER_ROW)
    actual = granular_quantize(matrix, granularity=Granularity.PER_ROW).step_rms
    assert estimated == pytest.approx(actual)


def test_granular_reconstruction_error_bounded(rng):
    matrix = rng.standard_normal((10, 10))
    result = granular_quantize(matrix, bits=8, granularity=Granularity.PER_TENSOR)
    scale = result.group_params[0].scale
    assert np.abs(result.reconstructed - matrix).max() <= scale / 2 + 1e-12
