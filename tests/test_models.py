"""Tests for the model zoo: topologies, FLOPs targets, registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models import (
    MODEL_REGISTRY,
    ZOO_INPUT_SHAPES,
    borghesi_net,
    build_mlp,
    build_model,
    h2_reaction_net,
    mlp_flops,
    mlp_large,
    mlp_medium,
    mlp_small,
    model_flops,
    resnet,
    resnet18,
)
from repro.nn import Linear, SpectralLinear


def test_h2_net_topology(rng):
    model = h2_reaction_net(rng=rng)
    out = model(rng.uniform(-1, 1, (4, 9)).astype(np.float32))
    assert out.shape == (4, 9)
    linears = [m for m in model.modules() if isinstance(m, SpectralLinear)]
    assert [l.out_features for l in linears] == [50, 50, 9]


def test_borghesi_net_topology(rng):
    model = borghesi_net(rng=rng)
    out = model(rng.uniform(-1, 1, (4, 13)).astype(np.float32))
    assert out.shape == (4, 3)
    linears = [m for m in model.modules() if isinstance(m, SpectralLinear)]
    assert len(linears) == 9  # 8 hidden + output


def test_build_mlp_plain_variant(rng):
    model = build_mlp(5, [7], 2, spectral=False, rng=rng)
    assert any(isinstance(m, Linear) for m in model.modules())
    assert not any(isinstance(m, SpectralLinear) for m in model.modules())


def test_mlp_zoo_flops_match_paper():
    """Fig. 2/9: mlp_s ~ 0.5M, mlp_m ~ 4.2M, mlp_l ~ 33.7M FLOPs."""
    small = model_flops(mlp_small(), (256,))
    medium = model_flops(mlp_medium(), (512,))
    large = model_flops(mlp_large(), (1024,))
    assert 0.4e6 < small < 0.65e6
    assert 3.5e6 < medium < 5.0e6
    assert 28e6 < large < 40e6


def test_mlp_flops_formula():
    assert mlp_flops([4, 8, 2]) == 2 * (4 * 8 + 8 * 2)


def test_resnet_depth_validation(rng):
    with pytest.raises(ConfigurationError):
        resnet(9, rng=rng)
    with pytest.raises(ConfigurationError):
        resnet(7, rng=rng)


@pytest.mark.parametrize("depth", [8, 14])
def test_resnet_forward_shape(depth, rng):
    model = resnet(depth, rng=rng)
    out = model(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
    assert out.shape == (2, 10)


def test_resnet_depth_increases_flops(rng):
    flops8 = model_flops(resnet(8, rng=rng), (3, 32, 32))
    flops20 = model_flops(resnet(20, rng=rng), (3, 32, 32))
    assert flops20 > 2 * flops8


def test_resnet18_forward(rng):
    model = resnet18(in_channels=13, base_width=8, rng=rng)
    out = model(rng.uniform(-1, 1, (2, 13, 16, 16)).astype(np.float32))
    assert out.shape == (2, 10)


def test_resnet18_spectral_flag(rng):
    from repro.nn import BatchNorm2d, SpectralConv2d

    spectral = resnet18(base_width=8, rng=rng, spectral=True)
    assert any(isinstance(m, SpectralConv2d) for m in spectral.modules())
    assert not any(isinstance(m, BatchNorm2d) for m in spectral.modules())
    plain = resnet18(base_width=8, rng=rng, spectral=False)
    assert any(isinstance(m, BatchNorm2d) for m in plain.modules())


def test_model_flops_counts_conv_layers(rng):
    from repro.nn import Conv2d, Sequential

    layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
    flops = model_flops(Sequential(layer), (3, 16, 16))
    assert flops == 2 * 3 * 9 * 8 * 16 * 16


def test_registry_builds_every_model(rng):
    for name in MODEL_REGISTRY:
        model = build_model(name, rng=rng)
        shape = ZOO_INPUT_SHAPES[name]
        out = model(rng.uniform(-1, 1, (2,) + shape).astype(np.float32))
        assert out.shape[0] == 2


def test_registry_unknown_model():
    with pytest.raises(ValueError):
        build_model("alexnet")
