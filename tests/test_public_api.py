"""Tests on the package surface: exceptions, exports, docstrings."""

import importlib
import inspect

import pytest

import repro
from repro.exceptions import (
    CompressionError,
    ConfigurationError,
    PlanningError,
    QuantizationError,
    ReproError,
    ShapeError,
    ToleranceError,
    TrainingError,
)

_SUBPACKAGES = (
    "repro.nn",
    "repro.quant",
    "repro.compress",
    "repro.core",
    "repro.physics",
    "repro.datasets",
    "repro.models",
    "repro.perf",
    "repro.io",
    "repro.resilience",
    "repro.distrib",
)


def test_every_library_error_derives_from_repro_error():
    for exc in (
        CompressionError,
        ConfigurationError,
        PlanningError,
        QuantizationError,
        ShapeError,
        ToleranceError,
        TrainingError,
    ):
        assert issubclass(exc, ReproError)


def test_value_errors_are_also_value_errors():
    """Callers catching ValueError keep working for validation failures."""
    for exc in (ShapeError, ConfigurationError, ToleranceError, PlanningError):
        assert issubclass(exc, ValueError)


def test_version_is_exposed():
    assert repro.__version__


@pytest.mark.parametrize("module_name", _SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", _SUBPACKAGES)
def test_public_callables_have_docstrings(module_name):
    """Every public class and function carries documentation."""
    module = importlib.import_module(module_name)
    missing = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_top_level_convenience_exports():
    assert repro.load_workload is not None
    assert repro.TolerancePlanner is not None
    assert repro.InferencePipeline is not None
    assert repro.ErrorFlowAnalyzer is not None
