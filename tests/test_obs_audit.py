"""Error-budget audit layer: recorder, registry, auditor switchboard.

Covers the dual-path lockstep recorder (per-layer observed error vs the
predicted Inequality (3) envelope), AuditRecord round-trips through the
JSONL registry, diffing/drift detection, the pipeline wiring behind the
off-by-default null-object switch, and the audit metrics.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.compress import SZCompressor
from repro.core import ErrorFlowAnalyzer, InferencePipeline, TolerancePlanner
from repro.exceptions import IntegrityError, ShapeError
from repro.nn import Identity, Linear, ReLU, Sequential, Tanh
from repro.obs.audit import (
    NULL_AUDITOR,
    AuditRecord,
    Auditor,
    LayerAudit,
    LayerwiseErrorRecorder,
    VERDICT_LOOSE,
    VERDICT_OK,
    VERDICT_VIOLATION,
    classify,
)
from repro.obs.registry import RunRegistry
from repro.quant import BF16, FP16, INT8, TF32, STANDARD_FORMATS, quantize_model

_FORMATS = {"tf32": TF32, "fp16": FP16, "bf16": BF16, "int8": INT8}


@pytest.fixture(autouse=True)
def _pristine_auditor():
    """Every test starts and ends with the null auditor installed."""
    obs.disable_audit()
    yield
    obs.disable_audit()


def _record(
    qoi_tightness=0.5,
    verdict=VERDICT_OK,
    layers=(),
    weight_version=1,
    run_id="",
):
    return AuditRecord(
        qoi_predicted=1.0,
        qoi_observed=qoi_tightness,
        qoi_tightness=qoi_tightness,
        verdict=verdict,
        input_error_l2=1e-4,
        input_error_linf=1e-5,
        weight_version=weight_version,
        layers=list(layers),
        run_id=run_id,
        codec="sz",
        fmt="fp16",
        norm="linf",
    )


def _layer(index, name, tightness, verdict=VERDICT_OK):
    return LayerAudit(
        index=index,
        name=name,
        observed_l2=tightness,
        observed_linf=tightness / 2,
        predicted_bound=1.0,
        tightness=tightness,
        verdict=verdict,
    )


# -- classify ----------------------------------------------------------------


def test_classify_verdicts():
    assert classify(0.5, 1.0) == (0.5, VERDICT_OK)
    tightness, verdict = classify(2.0, 1.0)
    assert tightness == 2.0 and verdict == VERDICT_VIOLATION
    tightness, verdict = classify(0.001, 1.0)
    assert verdict == VERDICT_LOOSE
    # exactly attained bounds are ok, not violations
    assert classify(1.0, 1.0)[1] == VERDICT_OK


def test_classify_zero_bound_edges():
    # both zero: exactly tight, not a violation
    assert classify(0.0, 0.0) == (0.0, VERDICT_OK)
    tightness, verdict = classify(1e-3, 0.0)
    assert tightness == float("inf") and verdict == VERDICT_VIOLATION


# -- lockstep recorder -------------------------------------------------------


@pytest.mark.parametrize("name", sorted(_FORMATS))
def test_layerwise_observed_never_exceeds_envelope(trained_spectral_mlp, name):
    """Acceptance criterion: per-layer tightness <= 1.0 on a PSN MLP with
    SZ-compressed inputs, for every Table-I format."""
    fmt = _FORMATS[name]
    quantized = quantize_model(trained_spectral_mlp, fmt)
    recorder = LayerwiseErrorRecorder(trained_spectral_mlp, quantized)
    assert recorder.supports_layerwise()

    rng = np.random.default_rng(99)
    clean = rng.uniform(-1, 1, (64, 5)).astype(np.float32)
    codec = SZCompressor()
    blob = codec.compress(clean, 1e-3)
    perturbed = codec.decompress(blob)

    record = recorder.audit(clean, perturbed)
    assert record.layerwise
    assert len(record.layers) == 3
    for layer in record.layers:
        assert layer.verdict != VERDICT_VIOLATION
        assert layer.observed_l2 <= layer.predicted_bound * (1 + 1e-6)
        assert layer.observed_linf <= layer.observed_l2 + 1e-12
    assert record.qoi_tightness <= 1.0 + 1e-6
    assert record.violations == []


def test_layer_bounds_are_monotone_prefix_of_combined(trained_spectral_mlp):
    """The last trajectory element equals the closed-form combined bound."""
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    bounds = analyzer.layer_bounds(1e-3, FP16)
    assert len(bounds) == 3
    assert bounds[-1] == pytest.approx(analyzer.combined_bound(1e-3, FP16))
    assert all(b > 0 for b in bounds)


def test_recorder_detects_tampered_model(trained_spectral_mlp):
    """Breaking the quantized model after analysis must raise VIOLATION —
    the audit exists to catch exactly this class of silent drift."""
    quantized = quantize_model(trained_spectral_mlp, FP16)
    # sabotage: scale one materialized weight tensor well past any format
    quantized.model[2].weight.data = quantized.model[2].weight.data * 3.0
    recorder = LayerwiseErrorRecorder(trained_spectral_mlp, quantized)
    rng = np.random.default_rng(5)
    clean = rng.uniform(-1, 1, (32, 5)).astype(np.float32)
    record = recorder.audit(clean, clean)
    assert record.verdict == VERDICT_VIOLATION
    assert record.violations


def test_recorder_shape_mismatch_raises(trained_spectral_mlp):
    quantized = quantize_model(trained_spectral_mlp, FP16)
    recorder = LayerwiseErrorRecorder(trained_spectral_mlp, quantized)
    with pytest.raises(ShapeError):
        recorder.audit(np.zeros((4, 5)), np.zeros((3, 5)))


def test_recorder_falls_back_to_qoi_for_residual_models(rng):
    from repro.nn.residual import ResidualBlock

    model = Sequential(
        Linear(6, 6, rng=rng),
        ReLU(),
        ResidualBlock(Sequential(Linear(6, 6, rng=rng), Tanh())),
        Linear(6, 2, rng=rng),
        Identity(),
    )
    model.eval()
    quantized = quantize_model(model, FP16)
    recorder = LayerwiseErrorRecorder(model, quantized, quant_safety=2.0)
    assert not recorder.supports_layerwise()
    x = rng.uniform(-1, 1, (8, 6)).astype(np.float32)
    record = recorder.audit(x, x)
    assert not record.layerwise
    assert record.layers == []
    assert record.qoi_predicted > 0
    assert record.verdict != VERDICT_VIOLATION


# -- record serialization ----------------------------------------------------


def test_audit_record_round_trip():
    record = _record(layers=[_layer(0, "0", 0.4), _layer(1, "2", 0.6)])
    record.metadata = {"compression_ratio": 3.5}
    clone = AuditRecord.from_dict(record.to_dict())
    assert clone == record


def test_violations_property():
    ok = _record()
    assert ok.violations == []
    layered = _record(
        verdict=VERDICT_VIOLATION,
        layers=[_layer(0, "0", 0.4), _layer(1, "2", 2.0, VERDICT_VIOLATION)],
    )
    assert layered.violations == ["2"]
    qoi_only = _record(verdict=VERDICT_VIOLATION)
    assert qoi_only.violations == ["qoi"]


# -- registry ----------------------------------------------------------------


def test_registry_assigns_sequential_run_ids(tmp_path):
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    assert len(registry) == 0
    first = registry.append(_record())
    second = registry.append(_record())
    assert first["run_id"] == "run-0001"
    assert second["run_id"] == "run-0002"
    assert registry.run_ids() == ["run-0001", "run-0002"]
    # records carrying an id keep it
    third = registry.append(_record(run_id="import-7"))
    assert third["run_id"] == "import-7"


def test_registry_get_by_id_and_index(tmp_path):
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    registry.append(_record(qoi_tightness=0.1))
    registry.append(_record(qoi_tightness=0.2))
    assert registry.get("run-0002")["qoi_tightness"] == 0.2
    assert registry.get(0)["qoi_tightness"] == 0.1
    assert registry.get(-1)["qoi_tightness"] == 0.2
    with pytest.raises(KeyError):
        registry.get("run-9999")
    with pytest.raises(KeyError):
        registry.get(7)


def test_registry_round_trip_preserves_record(tmp_path):
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    record = _record(layers=[_layer(0, "0", 0.4)])
    registry.append(record)
    loaded = AuditRecord.from_dict(registry.get("run-0001"))
    record.run_id = "run-0001"
    assert loaded == record


def test_registry_tolerates_torn_trailing_line(tmp_path):
    path = tmp_path / "reg.jsonl"
    registry = RunRegistry(str(path))
    registry.append(_record())
    with open(path, "a") as handle:
        handle.write('{"run_id": "run-0002", "qoi_tigh')  # crashed writer
    assert registry.run_ids() == ["run-0001"]


def test_registry_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "reg.jsonl"
    registry = RunRegistry(str(path))
    registry.append(_record())
    registry.append(_record())
    lines = path.read_text().splitlines()
    lines[0] = lines[0][:20]  # corrupt a non-final record
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(IntegrityError):
        registry.runs()


# -- diff / drift ------------------------------------------------------------


def _two_run_registry(tmp_path, tightness_a, tightness_b, versions=(1, 2)):
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    registry.append(
        _record(
            layers=[_layer(i, str(i), t) for i, t in enumerate(tightness_a)],
            weight_version=versions[0],
        )
    )
    registry.append(
        _record(
            layers=[_layer(i, str(i), t) for i, t in enumerate(tightness_b)],
            weight_version=versions[1],
        )
    )
    return registry


def test_diff_reports_tightness_delta_and_weight_versions(tmp_path):
    registry = _two_run_registry(tmp_path, [0.4, 0.5], [0.45, 0.8])
    diff = registry.diff("run-0001", "run-0002", threshold=0.2)
    assert diff["weights_changed"]
    assert diff["weight_version_a"] == 1 and diff["weight_version_b"] == 2
    rows = {row["name"]: row for row in diff["layers"]}
    assert rows["0"]["delta"] == pytest.approx(0.05)
    assert not rows["0"]["regressed"]  # +12.5% < 20% threshold
    assert rows["1"]["regressed"]  # +60% > 20% threshold
    assert diff["regressions"] == ["1"]


def test_diff_flags_new_violations(tmp_path):
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    registry.append(_record(layers=[_layer(0, "0", 0.9)]))
    registry.append(
        _record(layers=[_layer(0, "0", 1.5, VERDICT_VIOLATION)], weight_version=2)
    )
    diff = registry.diff(0, 1)
    assert diff["new_violations"] == ["0"]
    assert diff["regressions"] == ["0"]


def test_diff_reports_structure_changes(tmp_path):
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    registry.append(_record(layers=[_layer(0, "0", 0.4), _layer(1, "extra", 0.4)]))
    registry.append(_record(layers=[_layer(0, "0", 0.4)]))
    diff = registry.diff(0, 1)
    assert diff["structure_changed"] == ["extra"]


def test_detect_drift_needs_two_runs(tmp_path):
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    assert registry.detect_drift() is None
    registry.append(_record())
    assert registry.detect_drift() is None
    registry.append(_record())
    drift = registry.detect_drift()
    assert drift is not None and drift["regressions"] == []


# -- auditor switchboard -----------------------------------------------------


def test_default_auditor_is_null():
    auditor = obs.get_auditor()
    assert auditor is NULL_AUDITOR
    assert not auditor.enabled
    assert auditor.records == []
    assert auditor.violation_count == 0


def test_enable_disable_audit(tmp_path):
    auditor = obs.enable_audit(registry=str(tmp_path / "reg.jsonl"), label="x")
    assert obs.get_auditor() is auditor and auditor.enabled
    assert isinstance(auditor.registry, RunRegistry)
    obs.disable_audit()
    assert obs.get_auditor() is NULL_AUDITOR


def test_audit_capture_restores_previous():
    outer = obs.enable_audit()
    with obs.audit_capture() as inner:
        assert obs.get_auditor() is inner
    assert obs.get_auditor() is outer


def test_audit_capture_restores_on_exception():
    with pytest.raises(RuntimeError):
        with obs.audit_capture():
            raise RuntimeError("boom")
    assert obs.get_auditor() is NULL_AUDITOR


def test_record_run_backfills_run_id_and_label(tmp_path):
    auditor = Auditor(
        registry=RunRegistry(str(tmp_path / "reg.jsonl")), label="nightly"
    )
    record = auditor.record_run(_record())
    assert record.run_id == "run-0001"
    assert record.label == "nightly"
    assert record.created_unix > 0
    assert auditor.records == [record]


def test_record_run_emits_metrics(tmp_path):
    with obs.capture() as (__, metrics):
        auditor = Auditor()
        auditor.record_run(_record(layers=[_layer(0, "0", 0.4)]))
        auditor.record_run(
            _record(
                qoi_tightness=2.0,
                verdict=VERDICT_VIOLATION,
                layers=[_layer(0, "0", 2.0, VERDICT_VIOLATION)],
            )
        )
        assert metrics.value("audit_runs_total") == 2
        assert metrics.value("audit_violations_total") == 1
        # mirrored into the resilience contract-violation family
        assert metrics.value(
            "contract_violations_total", stage="audit", codec="sz"
        ) == 1
        assert metrics.value(
            "audit_tightness_ratio", fmt="fp16", codec="sz"
        ) == pytest.approx(2.0)
        assert metrics.histogram("audit_layer_tightness").count == 2
    assert auditor.violation_count == 1


# -- pipeline wiring ---------------------------------------------------------


def _pipeline(trained_spectral_mlp, tolerance=1e-3):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    plan = TolerancePlanner(analyzer).plan(tolerance, norm="linf")
    return InferencePipeline(trained_spectral_mlp, SZCompressor(), plan)


def _fields(rng, rows=48):
    # (V, H, W) layout whose default reshape yields (H*W, V) samples
    return rng.uniform(-1, 1, (5, rows, 4)).astype(np.float32)


def test_pipeline_audit_disabled_is_inert(trained_spectral_mlp, rng, monkeypatch):
    """With the null auditor installed the audit path must never run —
    asserted by making every entry point explode if touched."""
    import repro.obs.audit as audit_module

    def _boom(*args, **kwargs):
        raise AssertionError("audit path entered while disabled")

    monkeypatch.setattr(audit_module, "LayerwiseErrorRecorder", _boom)
    monkeypatch.setattr(NULL_AUDITOR.__class__, "record_run", _boom)
    pipeline = _pipeline(trained_spectral_mlp)
    result = pipeline.execute(_fields(rng))
    assert "audit" not in result.extra


def test_pipeline_audit_records_run(trained_spectral_mlp, rng, tmp_path):
    path = tmp_path / "reg.jsonl"
    pipeline = _pipeline(trained_spectral_mlp)
    with obs.audit_capture(registry=str(path), label="unit") as auditor:
        result = pipeline.execute(_fields(rng))
    assert len(auditor.records) == 1
    record = auditor.records[0]
    assert record.run_id == "run-0001"
    assert record.codec == "sz" and record.norm == "linf"
    assert record.label == "unit"
    assert record.layerwise and len(record.layers) == 3
    assert record.metadata["samples"] == 192
    payload = result.extra["audit"]
    assert payload["run_id"] == "run-0001"
    assert payload["qoi_tightness"] <= 1.0 + 1e-6
    # persisted and identical
    assert RunRegistry(str(path)).get("run-0001") == record.to_dict()


def test_pipeline_audit_chunked_one_record_per_chunk(
    trained_spectral_mlp, rng, tmp_path
):
    path = tmp_path / "reg.jsonl"
    pipeline = _pipeline(trained_spectral_mlp)
    with obs.audit_capture(registry=str(path)) as auditor:
        pipeline.execute_chunked(_fields(rng), chunk_size=16, workers=2, chunk_axis=1)
    assert len(auditor.records) == 3
    registry = RunRegistry(str(path))
    assert len(registry) == 3
    assert sorted(registry.run_ids()) == ["run-0001", "run-0002", "run-0003"]
    for run in registry.runs():
        assert run["verdict"] != VERDICT_VIOLATION


def test_pipeline_audit_failure_degrades_to_warning(
    trained_spectral_mlp, rng, monkeypatch, capsys
):
    """A broken audit must never kill the pipeline run it observes."""
    from repro.exceptions import ToleranceError

    pipeline = _pipeline(trained_spectral_mlp)

    def _raise(*args, **kwargs):
        raise ToleranceError("synthetic audit failure")

    monkeypatch.setattr(
        LayerwiseErrorRecorder, "audit", _raise
    )
    with obs.audit_capture() as auditor:
        result = pipeline.execute(_fields(rng))
    assert auditor.records == []
    assert "audit" not in result.extra
    assert "audit skipped" in capsys.readouterr().err


def test_pipeline_audit_weight_version_tracks_model(
    trained_spectral_mlp, rng, tmp_path
):
    """Registry diff between runs with different weight versions reports
    the version change (acceptance criterion)."""
    path = tmp_path / "reg.jsonl"
    pipeline = _pipeline(trained_spectral_mlp)
    fields = _fields(rng)
    with obs.audit_capture(registry=str(path)):
        pipeline.execute(fields)
        # a weight update (e.g. fine-tuning step) bumps the version
        layer = trained_spectral_mlp[0]
        layer.raw_weight.data = layer.raw_weight.data * 1.001
        pipeline.execute(fields)
    registry = RunRegistry(str(path))
    diff = registry.diff("run-0001", "run-0002")
    assert diff["weights_changed"]
    assert diff["weight_version_b"] > diff["weight_version_a"]


def test_registry_append_handles_numpy_values(tmp_path):
    """Provenance metadata often carries numpy scalars; the registry's
    JSON encoding must absorb them."""
    registry = RunRegistry(str(tmp_path / "reg.jsonl"))
    record = _record()
    record.metadata = {"ratio": np.float32(3.5), "rows": np.int64(12)}
    registry.append(record)
    loaded = registry.get(0)
    assert loaded["metadata"] == {"ratio": 3.5, "rows": 12}
    json.dumps(loaded)  # fully JSON-native after the round trip
