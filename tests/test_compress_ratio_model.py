"""Tests for the entropy-based compression-ratio estimator (ref. [28])."""

import numpy as np
import pytest

from repro.compress import ErrorBoundMode, RatioEstimator, SZCompressor
from repro.exceptions import CompressionError


@pytest.fixture
def estimator(smooth_field_2d):
    return RatioEstimator(smooth_field_2d)


def test_ratio_monotone_in_tolerance(estimator):
    tolerances = np.logspace(-6, -1, 8)
    ratios = estimator.ratio_curve(tolerances)
    assert np.all(np.diff(ratios) >= -1e-9)
    assert ratios[-1] > ratios[0]


def test_ratio_tracks_actual_sz(smooth_field_2d, estimator):
    codec = SZCompressor()
    for tolerance in (1e-2, 1e-4):
        predicted = estimator.ratio(tolerance)
        actual = codec.compress(
            smooth_field_2d, tolerance, ErrorBoundMode.ABS
        ).compression_ratio
        assert predicted == pytest.approx(actual, rel=0.5)


def test_ratio_prediction_is_fast(estimator):
    import time

    start = time.perf_counter()
    for tolerance in np.logspace(-6, -1, 20):
        estimator.ratio(float(tolerance))
    assert time.perf_counter() - start < 1.0


def test_bits_per_value_bounded_below(estimator):
    # even at an absurdly loose tolerance, headers keep bpv positive
    assert estimator.bits_per_value(1e6) > 0.1


def test_escape_regime_at_tight_tolerance(estimator):
    """Tight bounds spread codes beyond the alphabet: bpv must reflect it."""
    loose = estimator.bits_per_value(1e-2)
    tight = estimator.bits_per_value(1e-8)
    assert tight > 3 * loose


def test_estimator_validation(smooth_field_2d, estimator):
    with pytest.raises(CompressionError):
        RatioEstimator(np.empty(0))
    with pytest.raises(CompressionError):
        estimator.ratio(0.0)


def test_estimator_respects_interpolation_mode(smooth_field_2d):
    linear = RatioEstimator(smooth_field_2d, SZCompressor(interpolation="linear"))
    dynamic = RatioEstimator(smooth_field_2d, SZCompressor(interpolation="dynamic"))
    # smooth data: the dynamic (cubic-capable) hierarchy has smaller
    # residuals, hence better predicted ratios
    assert dynamic.ratio(1e-3) > linear.ratio(1e-3)
