"""Tests for the persistent benchmark history and its regression gates.

The contract under test: runs are compared **only** where the config
fingerprint says they measured the same thing (volatile derived keys
stripped, ``cpu_count`` kept); the detector's median/MAD statistics gate
on evidence, not noise (min-rep guard widens the band, the MAD floor
absorbs jitter); and ``repro bench diff`` turns a flagged regression
into a nonzero exit code — the CI perf gate.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.history import (
    BenchRegistry,
    config_fingerprint,
    describe_bench_diff,
    detect_regressions,
    stable_config,
)


def _row(seconds, reps_s=None, backend="fused_warm", **config):
    base = {"model": "m", "batch": 1, "backend": backend, "cpu_count": 8}
    base.update(config)
    row = {"path": "forward", "config": base, "seconds": seconds,
           "throughput_samples_s": 1.0 / seconds}
    if reps_s is not None:
        row["reps_s"] = reps_s
    return row


# -- fingerprinting ----------------------------------------------------------


def test_stable_config_strips_measured_outcomes_keeps_identity():
    config = {
        "backend": "fused_warm",
        "cpu_count": 8,
        "quick": True,
        "speedup_vs_reference": 3.2,
        "overhead_vs_off": 0.05,
        "endpoint_overhead_vs_on": 0.01,
        "journal_overhead": 0.002,
        "source_disk_hits": 1,
        "lowerings": 1,
        "compiles": 1,
    }
    assert stable_config(config) == {
        "backend": "fused_warm",
        "cpu_count": 8,
        "quick": True,
    }
    assert stable_config("not a dict") == {}


def test_fingerprint_invariant_to_volatile_keys_sensitive_to_identity():
    base = _row(1.0)
    noisy = _row(1.0, speedup_vs_reference=9.9, lowerings=3)
    key = config_fingerprint(base["path"], base["config"])
    assert config_fingerprint(noisy["path"], noisy["config"]) == key
    # identity-bearing changes move the fingerprint
    other_host = _row(1.0, cpu_count=64)
    assert config_fingerprint(other_host["path"], other_host["config"]) != key
    other_backend = _row(1.0, backend="reference")
    assert config_fingerprint(other_backend["path"], other_backend["config"]) != key


# -- the regression detector --------------------------------------------------


def _norm(rows):
    from repro.perf.history import _normalize_row

    return [_normalize_row(r) for r in rows]


def test_identical_runs_flag_nothing():
    rows = _norm([_row(1.0, [1.0, 1.01, 0.99]), _row(0.5, [0.5, 0.51, 0.49],
                                                     backend="reference")])
    report = detect_regressions(rows, rows)
    assert report["compared"] == 2 and report["uncompared"] == 0
    assert report["regressions"] == [] and report["improvements"] == []
    assert all(entry["verdict"] == "ok" for entry in report["rows"])


def test_thirty_percent_slowdown_is_flagged():
    baseline = _norm([_row(1.0, [1.0, 1.001, 0.999])])
    inflated = _norm([_row(1.3, [1.3, 1.301, 1.299])])
    report = detect_regressions(baseline, inflated)
    assert [e["verdict"] for e in report["rows"]] == ["regression"]
    entry = report["regressions"][0]
    assert entry["relative"] == pytest.approx(0.3, abs=1e-3)
    assert not entry["sparse"]
    # and the mirror image is an improvement, not a regression
    report = detect_regressions(inflated, baseline)
    assert len(report["improvements"]) == 1 and report["regressions"] == []


def test_min_rep_guard_doubles_the_threshold():
    baseline = _norm([_row(1.0, [1.0, 1.0])])  # 2 reps < min_reps=3
    slowed = _norm([_row(1.3, [1.3, 1.3])])
    report = detect_regressions(baseline, slowed, threshold=0.20)
    entry = report["rows"][0]
    assert entry["sparse"] and entry["threshold"] == pytest.approx(0.40)
    assert entry["verdict"] == "ok"  # +30% under the widened ±40% band
    worse = _norm([_row(1.5, [1.5, 1.5])])
    assert detect_regressions(baseline, worse)["regressions"]


def test_mad_noise_floor_absorbs_jittery_rows():
    """+30% relative but within the candidate's own rep scatter: not flagged."""
    baseline = _norm([_row(0.010, [0.010, 0.0101, 0.0099])])
    jittery = _norm([_row(0.013, [0.013, 0.020, 0.008])])
    report = detect_regressions(baseline, jittery)
    entry = report["rows"][0]
    assert entry["mad_floor_s"] > entry["candidate_s"] - entry["baseline_s"]
    assert entry["verdict"] == "ok"


def test_rows_without_reps_fall_back_to_seconds():
    baseline = _norm([_row(1.0)])
    inflated = _norm([_row(1.3)])
    report = detect_regressions(baseline, inflated)
    entry = report["rows"][0]
    assert entry["reps"] == [0, 0] and entry["sparse"]
    assert entry["baseline_s"] == 1.0 and entry["candidate_s"] == 1.3


def test_disjoint_fingerprints_are_uncompared_not_errors():
    a = _norm([_row(1.0, cpu_count=8)])
    b = _norm([_row(1.0, cpu_count=128)])
    report = detect_regressions(a, b)
    assert report["compared"] == 0 and report["uncompared"] == 2


def test_detector_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        detect_regressions([], [], threshold=0.0)


def test_describe_bench_diff_marks_verdicts():
    baseline = _norm([_row(1.0, [1.0] * 3)])
    inflated = _norm([_row(1.3, [1.3] * 3)])
    text = describe_bench_diff(detect_regressions(baseline, inflated))
    assert "!! forward[fused_warm]" in text
    assert "+30.0%" in text and "regressions: 1" in text
    ok = describe_bench_diff(detect_regressions(baseline, baseline))
    assert "!!" not in ok and "regressions: 0" in ok


# -- the registry -------------------------------------------------------------


def test_registry_records_sequential_run_ids(tmp_path):
    registry = BenchRegistry(str(tmp_path / "hist.jsonl"))
    assert registry.runs() == []
    first = registry.record([_row(1.0)], bench="bench_forward", label="seed",
                            git_rev="abc1234")
    second = registry.record([_row(1.0)], bench="bench_forward")
    assert first["run_id"] == "bench-0001" and second["run_id"] == "bench-0002"
    runs = registry.runs()
    assert [r["run_id"] for r in runs] == ["bench-0001", "bench-0002"]
    assert runs[0]["label"] == "seed" and runs[0]["git_rev"] == "abc1234"
    assert runs[0]["rows"][0]["key"] == config_fingerprint(
        "forward", _row(1.0)["config"]
    )


def test_registry_get_by_id_and_index(tmp_path):
    registry = BenchRegistry(str(tmp_path / "hist.jsonl"))
    registry.record([_row(1.0)], bench="a")
    registry.record([_row(2.0)], bench="b")
    assert registry.get("bench-0002")["bench"] == "b"
    assert registry.get(-1)["bench"] == "b"
    assert registry.get("0")["bench"] == "a"
    with pytest.raises(KeyError):
        registry.get("bench-9999")
    with pytest.raises(KeyError):
        registry.get(7)


def test_registry_record_rejects_empty_or_malformed(tmp_path):
    registry = BenchRegistry(str(tmp_path / "hist.jsonl"))
    with pytest.raises(ValueError):
        registry.record([], bench="x")
    with pytest.raises(ValueError):
        registry.record([{"no_path": True}, "junk"], bench="x")


def test_registry_tolerates_torn_trailing_line(tmp_path):
    path = tmp_path / "hist.jsonl"
    registry = BenchRegistry(str(path))
    registry.record([_row(1.0)], bench="bench_forward")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"run_id": "bench-tor')  # crashed writer
    assert [r["run_id"] for r in registry.runs()] == ["bench-0001"]
    with pytest.raises(KeyError):
        registry.get("bench-tor")


def test_registry_diff_end_to_end(tmp_path):
    registry = BenchRegistry(str(tmp_path / "hist.jsonl"))
    registry.record([_row(1.0, [1.0] * 4)], bench="bench_forward")
    registry.record([_row(1.0, [1.0] * 4)], bench="bench_forward")
    registry.record([_row(1.35, [1.35] * 4)], bench="bench_forward")
    same = registry.diff("bench-0001", "bench-0002")
    assert same["regressions"] == [] and same["compared"] == 1
    drift = registry.diff("bench-0001", "bench-0003")
    assert len(drift["regressions"]) == 1
    assert drift["run_a"] == "bench-0001" and drift["run_b"] == "bench-0003"


# -- the CLI gate -------------------------------------------------------------


def _write_rows(tmp_path, name, scale=1.0):
    rows = [_row(0.002 * scale, [0.002 * scale] * 4),
            _row(0.001 * scale, [0.001 * scale] * 4, backend="reference")]
    path = tmp_path / name
    path.write_text(json.dumps(rows))
    return str(path)


def test_cli_bench_record_report_diff_roundtrip(tmp_path, capsys):
    registry = str(tmp_path / "hist.jsonl")
    rows = _write_rows(tmp_path, "rows.json")
    assert main(["bench", "record", rows, "--registry", registry,
                 "--label", "run-a"]) == 0
    assert main(["bench", "record", rows, "--registry", registry]) == 0
    capsys.readouterr()

    assert main(["bench", "report", registry]) == 0
    out = capsys.readouterr().out
    assert "bench-0001" in out and "run-a" in out

    # identical runs: the gate passes
    assert main(["bench", "diff", "--registry", registry]) == 0
    assert "regressions: 0" in capsys.readouterr().out


def test_cli_bench_diff_flags_inflated_run(tmp_path, capsys):
    registry = str(tmp_path / "hist.jsonl")
    base = _write_rows(tmp_path, "base.json")
    slow = _write_rows(tmp_path, "slow.json", scale=1.3)
    assert main(["bench", "record", base, "--registry", registry]) == 0
    assert main(["bench", "record", slow, "--registry", registry]) == 0
    code = main(["bench", "diff", "bench-0001", "bench-0002",
                 "--registry", registry])
    out = capsys.readouterr().out
    assert code == 1
    assert "!!" in out and "+30.0%" in out


def test_cli_bench_diff_no_comparable_rows_passes(tmp_path, capsys):
    """Cross-machine fingerprints never match: the CI diff against a
    committed baseline must degrade to exit 0, not a false gate."""
    registry = str(tmp_path / "hist.jsonl")
    a = tmp_path / "a.json"
    a.write_text(json.dumps([_row(1.0, cpu_count=8)]))
    b = tmp_path / "b.json"
    b.write_text(json.dumps([_row(1.0, cpu_count=96)]))
    assert main(["bench", "record", str(a), "--registry", registry]) == 0
    assert main(["bench", "record", str(b), "--registry", registry]) == 0
    assert main(["bench", "diff", "--registry", registry]) == 0
    assert "no comparable rows" in capsys.readouterr().out


def test_cli_bench_diff_needs_two_runs(tmp_path, capsys):
    registry = str(tmp_path / "hist.jsonl")
    assert main(["bench", "diff", "--registry", registry]) == 1
    rows = _write_rows(tmp_path, "rows.json")
    assert main(["bench", "record", rows, "--registry", registry]) == 0
    assert main(["bench", "diff", "--registry", registry]) == 1


def test_cli_bench_record_accepts_wrapped_rows_and_defaults_bench(tmp_path, capsys):
    registry = str(tmp_path / "hist.jsonl")
    path = tmp_path / "BENCH_pr10.json"
    path.write_text(json.dumps({"rows": [_row(1.0)]}))
    assert main(["bench", "record", str(path), "--registry", registry]) == 0
    run = BenchRegistry(registry).get(-1)
    assert run["bench"] == "BENCH_pr10"


def test_cli_bench_record_rejects_rowless_file(tmp_path):
    registry = str(tmp_path / "hist.jsonl")
    path = tmp_path / "empty.json"
    path.write_text("[]")
    assert main(["bench", "record", str(path), "--registry", registry]) == 1
