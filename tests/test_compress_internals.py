"""White-box property tests on the codecs' internal transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.mgard import MGARDCompressor, _lift_forward, _lift_inverse, _plan
from repro.compress.sz import SZCompressor, _refinement_plan, _target_slices
from repro.compress.zfp import ZFPCompressor, _block_join, _block_split, _dct_matrix
from repro.compress import ErrorBoundMode
from repro.exceptions import CompressionError


# -- MGARD lifting --------------------------------------------------------------


@given(n=st.integers(2, 33), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_lifting_is_exactly_invertible_1d(n, seed):
    rng = np.random.default_rng(seed)
    signal = rng.standard_normal(n)
    even = signal[0::2].copy()
    odd = signal[1::2].copy()
    _lift_forward(even, odd, axis=0)
    _lift_inverse(even, odd, axis=0)
    assert np.allclose(even, signal[0::2], atol=1e-12)
    assert np.allclose(odd, signal[1::2], atol=1e-12)


@given(
    shape=st.tuples(st.integers(2, 17), st.integers(2, 17)),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_mgard_full_transform_invertible(shape, seed):
    """forward + inverse with *unquantized* details is the identity."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    codec = MGARDCompressor(n_levels=4)
    work, steps = codec._forward(data)
    recon = codec._inverse(work.copy(), shape, steps)
    assert np.allclose(recon, data, atol=1e-10)


def test_mgard_plan_strides_terminate():
    steps = _plan((5, 3), n_levels=8)
    # every step halves one axis's population; the plan must be finite
    # and stop refining axes that ran out of points
    assert len(steps) < 16
    axes = [axis for __, axis, __ in steps]
    assert set(axes) <= {0, 1}


# -- ZFP internals -----------------------------------------------------------------


def test_dct_matrix_is_orthonormal():
    matrix = _dct_matrix()
    assert np.allclose(matrix @ matrix.T, np.eye(4), atol=1e-12)


@given(
    shape=st.tuples(st.integers(1, 13), st.integers(1, 13)),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_block_split_join_roundtrip(shape, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    blocks, padded_shape = _block_split(data, block_dims=2)
    restored = _block_join(blocks, padded_shape, shape, block_dims=2)
    assert np.array_equal(restored, data)


def test_block_split_pads_with_edge_values():
    data = np.arange(6.0).reshape(1, 6)
    blocks, padded_shape = _block_split(data, block_dims=2)
    assert padded_shape == (4, 8)
    # bottom rows replicate the single source row
    assert np.array_equal(blocks[0][1], blocks[0][0])


# -- SZ internals --------------------------------------------------------------------


def test_refinement_plan_covers_every_point():
    """Anchors + all refinement targets must partition the grid."""
    shape = (13, 9)
    stride = 8
    covered = np.zeros(shape, dtype=bool)
    covered[tuple(slice(0, size, stride) for size in shape)] = True
    for axis, step in _refinement_plan(shape, stride):
        target, __, __ = _target_slices(shape, axis, step)
        region = covered[target]
        assert not region.any(), "a point was refined twice"
        covered[target] = True
    assert covered.all(), "some points were never coded"


def test_sz_outlier_path(rng):
    """Residuals too large for 32-bit codes go through the outlier store."""
    data = rng.standard_normal((40, 40))
    data[13, 17] = 1e9  # a spike the interpolator cannot predict
    codec = SZCompressor()
    reconstruction, blob = codec.roundtrip(data, 1e-7, ErrorBoundMode.ABS)
    assert np.abs(reconstruction - data).max() <= 1e-7
    assert reconstruction[13, 17] == pytest.approx(1e9)


# -- failure injection -----------------------------------------------------------------


@pytest.mark.parametrize(
    "codec", [SZCompressor(), ZFPCompressor(), MGARDCompressor()], ids=lambda c: c.name
)
def test_truncated_payload_raises_cleanly(codec, smooth_field_2d):
    blob = codec.compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    blob.payload = blob.payload[: len(blob.payload) // 2]
    with pytest.raises((CompressionError, ValueError)):
        codec.decompress(blob)


def test_sz_detects_misaligned_stream(smooth_field_2d):
    codec = SZCompressor()
    blob = codec.compress(smooth_field_2d, 1e-3, ErrorBoundMode.ABS)
    blob.shape = (smooth_field_2d.shape[0] // 2, smooth_field_2d.shape[1])
    with pytest.raises((CompressionError, ValueError)):
        codec.decompress(blob)
