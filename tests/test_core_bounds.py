"""Tests for the bound machinery: graph extraction, Eq. (3), soundness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ErrorFlowAnalyzer,
    compression_gain,
    extract_spec,
    mlp_combined_bound,
    propagate,
    sigma_tilde,
    step_sizes_for,
)
from repro.core.graph import LinearSpec, ResidualSpec
from repro.exceptions import ConfigurationError
from repro.nn import (
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU,
    Sequential,
    SpectralLinear,
    Tanh,
)
from repro.quant import BF16, FP16, FP32, INT8, TF32


# -- graph extraction ------------------------------------------------------------


def test_extract_spec_mlp(tiny_mlp):
    spec = extract_spec(tiny_mlp)
    assert spec.n_input == 6
    assert spec.n_layers == 3
    dims = [(s.n_in, s.n_out) for s in spec.linear_specs()]
    assert dims == [(6, 12), (12, 12), (12, 4)]


def test_extract_spec_uses_alpha_for_psn(rng):
    model = Sequential(SpectralLinear(4, 4, rng=rng, alpha_init=1.5), Tanh())
    spec = extract_spec(model)
    assert spec.linear_specs()[0].sigma == pytest.approx(1.5)


def test_extract_spec_folds_batchnorm(rng):
    conv = Conv2d(3, 4, 3, rng=rng)
    bn = BatchNorm2d(4)
    bn.running_var[:] = 0.25  # scale 1/sqrt(0.25) = 2
    model = Sequential(conv, bn, ReLU(), GlobalAvgPool2d(), Linear(4, 2, rng=rng))
    spec = extract_spec(model, n_input=3 * 8 * 8)
    folded_sigma = spec.linear_specs()[0].sigma
    from repro.nn import spectral_norm

    unfolded = spectral_norm(conv.matricized_weight())
    assert folded_sigma == pytest.approx(2.0 * unfolded, rel=1e-3)


def test_extract_spec_residual_block(rng):
    model = Sequential(BasicBlock(4, 8, stride=2, rng=rng), GlobalAvgPool2d(), Linear(8, 2, rng=rng))
    spec = extract_spec(model, n_input=4 * 8 * 8)
    kinds = [type(item).__name__ for item in spec.chain.items]
    assert kinds == ["ResidualSpec", "LinearSpec"]
    block = spec.chain.items[0]
    assert block.shortcut is not None  # projection skip


def test_extract_spec_records_activation_lipschitz(rng):
    from repro.nn import LeakyReLU

    model = Sequential(Linear(3, 3, rng=rng), LeakyReLU(2.0), Linear(3, 3, rng=rng), Identity())
    spec = extract_spec(model)
    assert spec.linear_specs()[0].lipschitz_after == 2.0
    assert spec.linear_specs()[1].lipschitz_after == 1.0


def test_extract_spec_rejects_non_sequential(rng):
    with pytest.raises(ConfigurationError):
        extract_spec(Linear(3, 3, rng=rng))


def test_extract_spec_rejects_model_without_linears():
    with pytest.raises(ConfigurationError):
        extract_spec(Sequential(ReLU()))


# -- Eq. (3) literal vs recurrence --------------------------------------------------


@given(
    seed=st.integers(0, 2**31 - 1),
    n_layers=st.integers(1, 5),
    dx=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_recurrence_equals_literal_eq3(seed, n_layers, dx):
    """The graph recurrence must reproduce Inequality (3) exactly on chains."""
    rng = np.random.default_rng(seed)
    dims = rng.integers(2, 30, size=n_layers + 1).tolist()
    layers = []
    for i in range(n_layers):
        layers.append(Linear(dims[i], dims[i + 1], rng=rng))
        layers.append(Tanh())
    model = Sequential(*layers)
    analyzer = ErrorFlowAnalyzer(model)
    sigmas = analyzer.layer_sigmas()
    steps = analyzer.step_sizes(FP16)
    literal = mlp_combined_bound(sigmas, steps, dims, dx)
    recurrence = analyzer.combined_bound(dx, FP16)
    assert np.isclose(literal, recurrence, rtol=1e-9)


def test_sigma_tilde_formula():
    assert sigma_tilde(2.0, 0.0, 10, 20) == 2.0
    expected = 2.0 + 0.1 * np.sqrt(10) / np.sqrt(3)
    assert sigma_tilde(2.0, 0.1, 10, 20) == pytest.approx(expected)


def test_mlp_combined_bound_validates_inputs():
    with pytest.raises(ConfigurationError):
        mlp_combined_bound([1.0], [0.1, 0.2], [2, 3], 0.0)


def test_bound_monotone_in_input_error(trained_spectral_mlp):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    bounds = [analyzer.combined_bound(dx, FP16) for dx in (0.0, 1e-4, 1e-2, 1.0)]
    assert all(a < b for a, b in zip(bounds, bounds[1:]))


def test_bound_ordering_across_formats(trained_spectral_mlp):
    """Fig. 5/6 ordering: TF32 ~= FP16 < BF16 < INT8."""
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    tf32 = analyzer.quantization_bound(TF32)
    fp16 = analyzer.quantization_bound(FP16)
    bf16 = analyzer.quantization_bound(BF16)
    int8 = analyzer.quantization_bound(INT8)
    assert tf32 == pytest.approx(fp16, rel=1e-6)
    assert bf16 > 5 * fp16
    assert int8 > bf16


def test_fp32_quantization_bound_is_zero(trained_spectral_mlp):
    analyzer = ErrorFlowAnalyzer(trained_spectral_mlp)
    assert analyzer.quantization_bound(FP32) == 0.0


def test_compression_gain_composes_residual(rng):
    """Identity-skip block: gain = 1 + prod(sigma); chain multiplies."""
    body = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 4, rng=rng))
    from repro.nn import ResidualBlock

    model = Sequential(ResidualBlock(body), Linear(4, 2, rng=rng), Identity())
    spec = extract_spec(model)
    sigmas = [s.sigma for s in spec.linear_specs()]
    expected = (1.0 + sigmas[0] * sigmas[1]) * sigmas[2]
    assert compression_gain(spec) == pytest.approx(expected, rel=1e-9)


def test_propagate_signal_seeded_with_sqrt_n0(tiny_mlp):
    spec = extract_spec(tiny_mlp)
    steps = step_sizes_for(spec, None)
    state = propagate(spec, input_error_l2=0.0, steps=steps)
    assert state.delta == 0.0
    assert state.signal > 0.0


def test_step_sizes_for_mixed_formats(tiny_mlp):
    spec = extract_spec(tiny_mlp)
    steps = step_sizes_for(spec, [FP16, None, INT8])
    values = [steps[id(s)] for s in spec.linear_specs()]
    assert values[0] > 0 and values[1] == 0.0 and values[2] > 0


def test_step_sizes_for_wrong_count(tiny_mlp):
    spec = extract_spec(tiny_mlp)
    with pytest.raises(ConfigurationError):
        step_sizes_for(spec, [FP16])
