"""Tests for the sampling profiler and its observability wiring.

The contract under test is the cost model the module docstring promises:
**exactly zero** when profiling is off (no sampler thread, no
tracemalloc, the null singleton) and a **metered** duty cycle at or
below ``max_overhead`` when on.  On top of that: folded-stack
aggregation must be a pure multiset sum (order/partition invariant —
the property remote shipping relies on), speedscope exports must be
structurally valid, and pipeline executions must attach their profile
window only when a profiler is live.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.compress import SZCompressor
from repro.core import ErrorFlowAnalyzer, InferencePipeline, TolerancePlanner
from repro.obs.prof import (
    NULL_PROFILER,
    SamplingProfiler,
    StackAccumulator,
    diff_rows,
    disable_profile,
    enable_profile,
    get_profiler,
    memory_snapshot,
    memory_top_diff,
    profile_capture,
    write_profile,
)
from repro.obs.server import MetricsServer

_SAMPLER = "repro-prof-sampler"


def _sampler_threads():
    return [t for t in threading.enumerate() if t.name == _SAMPLER]


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Every test starts and ends with profiling globally off."""
    disable_profile()
    yield
    disable_profile()
    assert _sampler_threads() == []


def _busy(stop: threading.Event) -> None:
    x = np.ones((64, 64))
    while not stop.is_set():
        x = x @ x / 64.0


# -- folded-stack aggregation ------------------------------------------------


ROW_STRATEGY = st.lists(
    st.tuples(
        st.sampled_from(["main;a:f", "main;a:f;b:g", "w0;c:h", "w1;c:h;d:i"]),
        st.integers(1, 50),
    ),
    max_size=30,
)


@given(rows=ROW_STRATEGY, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_merge_rows_is_order_and_partition_invariant(rows, seed):
    """Aggregation is a multiset sum: any shuffle, any batching, one answer."""
    rng = np.random.default_rng(seed)
    direct = StackAccumulator()
    direct.merge_rows([list(r) for r in rows])

    shuffled = [list(rows[i]) for i in rng.permutation(len(rows))]
    pieces = StackAccumulator()
    while shuffled:
        take = int(rng.integers(1, len(shuffled) + 1))
        pieces.merge_rows(shuffled[:take])
        shuffled = shuffled[take:]

    assert direct.snapshot() == pieces.snapshot()
    assert direct.total() == sum(count for _, count in rows)


def test_add_and_rows_roundtrip():
    acc = StackAccumulator()
    acc.add("main", ("mod:f", "mod:g"), count=2)
    acc.add("main", ("mod:f", "mod:g"))
    acc.add("w0", ("mod:h",))
    assert acc.snapshot() == {"main;mod:f;mod:g": 3, "w0;mod:h": 1}
    assert acc.rows() == [["main;mod:f;mod:g", 3], ["w0;mod:h", 1]]
    top = acc.top(1)
    assert top[0]["samples"] == 3 and top[0]["fraction"] == pytest.approx(0.75)


def test_merge_rows_skips_malformed_evidence():
    acc = StackAccumulator()
    acc.merge_rows([["main;a:f", 2], None, ["x"], ["main;a:f", "NaNish"], ["b;c", 0]])
    assert acc.snapshot() == {"main;a:f": 2}


def test_diff_rows_returns_only_fresh_samples():
    baseline = {"main;a:f": 3, "main;b:g": 5}
    current = {"main;a:f": 7, "main;b:g": 5, "w0;c:h": 1}
    assert diff_rows(current, baseline) == [["main;a:f", 4], ["w0;c:h", 1]]
    assert diff_rows(baseline, baseline) == []


def test_to_folded_format():
    acc = StackAccumulator()
    assert acc.to_folded() == ""
    acc.add("main", ("mod:f", "mod:g"), count=4)
    assert acc.to_folded() == "main;mod:f;mod:g 4\n"


def test_to_speedscope_is_structurally_valid():
    acc = StackAccumulator()
    acc.add("main", ("a:f", "a:g"), count=3)
    acc.add("main", ("a:f",), count=1)
    acc.add("w0", ("b:h",), count=2)
    doc = acc.to_speedscope(name="t")
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    n_frames = len(doc["shared"]["frames"])
    assert n_frames == 3
    assert len(doc["profiles"]) == 2  # one per thread
    for profile in doc["profiles"]:
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        assert profile["endValue"] == sum(profile["weights"])
        for sample in profile["samples"]:
            assert sample and all(0 <= idx < n_frames for idx in sample)
    # the whole document survives JSON
    assert json.loads(json.dumps(doc)) == doc


# -- the off state: exactly zero ---------------------------------------------


def test_off_by_default_is_null_and_spawns_nothing():
    import tracemalloc

    assert get_profiler() is NULL_PROFILER
    assert not get_profiler().enabled
    assert _sampler_threads() == []
    assert not tracemalloc.is_tracing()
    # null hooks are inert and allocation-shaped like the live ones
    assert NULL_PROFILER.begin_window() is None
    assert NULL_PROFILER.end_window(None) == {}
    assert NULL_PROFILER.overhead_fraction() == 0.0
    assert NULL_PROFILER.start() is NULL_PROFILER
    assert "off" in NULL_PROFILER.render_hot()


def test_profile_capture_installs_and_restores():
    before = get_profiler()
    with profile_capture(hz=200.0) as profiler:
        assert get_profiler() is profiler
        assert profiler.enabled and profiler.running
        assert len(_sampler_threads()) == 1
    assert get_profiler() is before
    assert not profiler.running
    assert _sampler_threads() == []


def test_profile_capture_restores_on_exception():
    with pytest.raises(RuntimeError):
        with profile_capture():
            raise RuntimeError("boom")
    assert get_profiler() is NULL_PROFILER
    assert _sampler_threads() == []


def test_enable_disable_roundtrip_returns_stopped_instance():
    profiler = enable_profile(hz=300.0)
    assert get_profiler() is profiler
    stopped = disable_profile()
    assert stopped is profiler and not stopped.running
    assert get_profiler() is NULL_PROFILER
    # idempotent: disabling again is a no-op on the null singleton
    assert disable_profile() is NULL_PROFILER


def test_profiler_rejects_bad_rates():
    with pytest.raises(ValueError):
        SamplingProfiler(hz=0)
    with pytest.raises(ValueError):
        SamplingProfiler(max_overhead=0.0)
    with pytest.raises(ValueError):
        SamplingProfiler(max_overhead=1.5)


# -- the on state: samples collected, overhead metered ------------------------


def test_profiler_samples_a_busy_thread():
    stop = threading.Event()
    worker = threading.Thread(target=_busy, args=(stop,), name="busy-w", daemon=True)
    worker.start()
    try:
        with profile_capture(hz=400.0) as profiler:
            deadline = time.perf_counter() + 5.0
            while profiler.stacks.total() < 5 and time.perf_counter() < deadline:
                time.sleep(0.01)
    finally:
        stop.set()
        worker.join(timeout=5.0)
    assert profiler.stacks.total() >= 5
    folded = profiler.stacks.to_folded()
    assert "busy-w;" in folded
    # root-first folded stacks name module:qualname frames
    assert "_busy" in folded


def test_measured_overhead_stays_under_governor_cap():
    stop = threading.Event()
    worker = threading.Thread(target=_busy, args=(stop,), daemon=True)
    worker.start()
    try:
        with profile_capture(hz=100.0, max_overhead=0.05) as profiler:
            time.sleep(0.6)
            overhead = profiler.overhead_fraction()
            samples = profiler.stats["samples"]
    finally:
        stop.set()
        worker.join(timeout=5.0)
    assert samples > 0
    assert overhead <= 0.05, f"sampler duty cycle {overhead:.4f} above the 5% cap"


def test_end_window_reports_only_delta_samples():
    profiler = SamplingProfiler(hz=100.0)
    profiler.stacks.add("main", ("a:f",), count=10)  # pre-window history
    window = profiler.begin_window()
    profiler.stacks.add("main", ("a:f",), count=3)
    profiler.stacks.add("main", ("b:g",), count=1)
    out = profiler.end_window(window)
    assert out["samples"] == 4
    assert {row["stack"]: row["samples"] for row in out["hot"]} == {
        "main;a:f": 3,
        "main;b:g": 1,
    }
    assert "memory" not in out
    stages = {"inference": [{"location": "x:1", "size_diff_kb": 1.0, "count_diff": 2}]}
    assert profiler.end_window(profiler.begin_window(), stages)["memory"] is stages


def test_render_hot_mentions_rate_and_overhead():
    profiler = SamplingProfiler(hz=123.0)
    assert profiler.render_hot() == "(no samples yet)\n"
    profiler.stacks.add("main", ("a:f",), count=2)
    text = profiler.render_hot()
    assert "123 hz" in text and "main;a:f" in text and "overhead" in text


# -- tracemalloc stage diffs --------------------------------------------------


def test_memory_snapshot_none_when_not_tracing():
    assert memory_snapshot() is None
    assert memory_top_diff(None, None) == []


def test_memory_profiler_attaches_allocation_diffs():
    with profile_capture(hz=50.0, memory=True) as profiler:
        import tracemalloc

        assert tracemalloc.is_tracing()
        before = memory_snapshot()
        keep = [bytearray(64 * 1024) for _ in range(32)]
        after = memory_snapshot()
        rows = memory_top_diff(before, after, top=5)
    assert not profiler.running
    import tracemalloc

    assert not tracemalloc.is_tracing()  # capture started it, capture stops it
    assert rows and len(rows) <= 5
    top = rows[0]
    assert set(top) == {"location", "size_diff_kb", "count_diff"}
    assert any(row["size_diff_kb"] > 1000.0 for row in rows), rows
    del keep


# -- file export --------------------------------------------------------------


def test_write_profile_selects_format_by_extension(tmp_path):
    profiler = SamplingProfiler()
    profiler.stacks.add("main", ("a:f", "a:g"), count=2)

    folded_path = tmp_path / "out.folded"
    assert write_profile(profiler, str(folded_path)) == "folded"
    assert folded_path.read_text() == "main;a:f;a:g 2\n"

    ss_path = tmp_path / "out.speedscope.json"
    assert write_profile(profiler, str(ss_path)) == "speedscope"
    doc = json.loads(ss_path.read_text())
    assert doc["name"] == "out.speedscope.json"
    assert [f["name"] for f in doc["shared"]["frames"]] == ["a:f", "a:g"]


# -- pipeline integration -----------------------------------------------------


@pytest.fixture
def pipeline(trained_spectral_mlp):
    plan = TolerancePlanner(ErrorFlowAnalyzer(trained_spectral_mlp)).plan(
        1e-2, norm="linf", quant_fraction=0.5
    )
    return InferencePipeline(trained_spectral_mlp, SZCompressor(), plan)


@pytest.fixture
def fields(rng):
    x = np.linspace(0, 2 * np.pi, 32)
    xx, yy = np.meshgrid(x, x)
    planes = [np.sin((i + 1) * xx) * np.cos(yy) * 0.8 for i in range(5)]
    return np.stack(planes).astype(np.float32)


def test_execute_attaches_profile_only_when_enabled(pipeline, fields):
    result = pipeline.execute(fields)
    assert "profile" not in result.extra

    with profile_capture(hz=200.0):
        result = pipeline.execute(fields)
    profile = result.extra["profile"]
    assert profile["hz"] == 200.0
    assert profile["seconds"] > 0
    assert profile["samples"] >= 0 and isinstance(profile["hot"], list)
    assert 0.0 <= profile["overhead_fraction"] <= 0.05


def test_execute_memory_stages_recorded_with_memory_profiler(pipeline, fields):
    with profile_capture(hz=100.0, memory=True):
        result = pipeline.execute(fields)
    memory = result.extra["profile"].get("memory", {})
    assert set(memory) <= {"store_load", "inference"}
    for rows in memory.values():
        for row in rows:
            assert set(row) == {"location", "size_diff_kb", "count_diff"}


def test_execute_chunked_attaches_profile_window(pipeline, fields):
    with profile_capture(hz=200.0):
        result = pipeline.execute_chunked(fields, chunk_size=16, chunk_axis=1)
    assert "profile" in result.extra
    assert result.extra["profile"]["seconds"] > 0


def test_fused_kernel_frames_attributed_in_folded_export(pipeline, fields):
    """A profiled run through the compiled backend keeps its synthetic
    kernel filename, so backend time is attributable in the flamegraph."""
    with profile_capture(hz=800.0) as profiler:
        deadline = time.perf_counter() + 10.0
        while time.perf_counter() < deadline:
            pipeline.execute(fields)
            folded = profiler.stacks.to_folded()
            if "_fused_forward" in folded:
                break
    assert "_fused_forward" in folded, folded[-2000:]


# -- /profile endpoint --------------------------------------------------------


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.read()


def test_metrics_server_serves_profile_route():
    with MetricsServer() as server:
        host, port = server.address
        base = f"http://{host}:{port}"
        code, body = _get(f"{base}/profile")
        assert code == 200 and b"profiling off" in body
        with profile_capture(hz=100.0) as profiler:
            profiler.stacks.add("main", ("mod:hotspot",), count=9)
            code, body = _get(f"{base}/profile")
            assert code == 200 and b"mod:hotspot" in body


def test_metrics_server_profile_fn_override():
    with MetricsServer(profile_fn=lambda: "custom profile body\n") as server:
        host, port = server.address
        code, body = _get(f"http://{host}:{port}/profile")
        assert code == 200 and body == b"custom profile body\n"


# -- distributed shipping: METRICS frames carry folded-stack deltas -----------


def test_worker_metrics_frames_carry_profile_deltas():
    from repro.distrib.protocol import msg_metrics

    message = msg_metrics("w0", profile=[["w0;a:f", 2]])
    assert message["profile"] == [["w0;a:f", 2]]
    assert "profile" not in msg_metrics("w0")


def test_coordinator_merges_remote_profile_rows_with_registry_guard():
    """Cross-process rows merge; same-registry (thread-harness) rows do
    not — those samples are already in this process's accumulator."""
    from repro.distrib.coordinator import ShardCoordinator
    from repro.distrib.protocol import msg_metrics, registry_token

    with profile_capture(hz=50.0) as profiler:
        local = msg_metrics(
            "w-local", registry=registry_token(), profile=[["w;a:f", 5]]
        )
        remote = msg_metrics(
            "w-remote", registry="other-process", profile=[["w;a:f", 5]]
        )
        handle = ShardCoordinator._handle_metrics
        handle(object(), "w-local", local)
        assert profiler.stacks.snapshot().get("w;a:f") is None
        handle(object(), "w-remote", remote)
        assert profiler.stacks.snapshot().get("w;a:f") == 5
    # profiling off: remote rows are dropped, not accumulated
    ShardCoordinator._handle_metrics(object(), "w-remote", remote)
    assert get_profiler() is NULL_PROFILER
