"""Tests for the physics substrates: kinetics, turbulence, flow fields."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.physics import (
    H2Mechanism,
    MOLAR_MASS,
    SPECIES,
    advect_scalar,
    box_filter,
    gradient,
    lamb_oseen_vortex,
    mixture_fraction_jet,
    synthesize_scalar,
    synthesize_velocity,
)
from repro.datasets.combustion import mass_fractions_from_mixture


# -- H2 kinetics ---------------------------------------------------------------


def test_species_count_matches_paper():
    # nine-species hydrogen mechanism (paper Section IV-A.1)
    assert len(SPECIES) == 9
    assert "H2" in SPECIES and "N2" in SPECIES


def test_production_rates_conserve_mass(rng):
    """Every elementary reaction is mass balanced, so sum_i omega_i = 0."""
    mechanism = H2Mechanism()
    z = rng.uniform(0, 1, (50,))
    c = rng.uniform(0, 1, (50,))
    y = mass_fractions_from_mixture(z, c)
    rates = mechanism.production_rates(y)
    assert np.allclose(rates.sum(axis=-1), 0.0, atol=1e-12 * np.abs(rates).max())


def test_nitrogen_is_inert(rng):
    mechanism = H2Mechanism()
    y = mass_fractions_from_mixture(rng.uniform(0, 1, 20), rng.uniform(0, 1, 20))
    rates = mechanism.production_rates(y)
    n2 = SPECIES.index("N2")
    assert np.all(rates[..., n2] == 0.0)


def test_fuel_consumed_where_burning():
    mechanism = H2Mechanism()
    y = mass_fractions_from_mixture(np.array([0.17]), np.array([0.5]))
    rates = mechanism.production_rates(y)
    h2, h2o = SPECIES.index("H2"), SPECIES.index("H2O")
    assert rates[0, h2] < 0.0  # fuel consumed
    assert rates[0, h2o] > 0.0  # water produced


def test_cold_pure_streams_are_inactive():
    mechanism = H2Mechanism()
    # pure oxidizer, no fuel and no radicals: nothing can react
    y = mass_fractions_from_mixture(np.array([0.0]), np.array([0.0]))
    rates = mechanism.production_rates(y)
    assert np.abs(rates).max() < 1e-8 * mechanism.density


def test_temperature_increases_with_progress():
    mechanism = H2Mechanism()
    cold = mass_fractions_from_mixture(np.array([0.3]), np.array([0.0]))
    hot = mass_fractions_from_mixture(np.array([0.3]), np.array([1.0]))
    assert mechanism.temperature(hot)[0] > mechanism.temperature(cold)[0]


def test_production_rates_shape_checked():
    with pytest.raises(ShapeError):
        H2Mechanism().production_rates(np.zeros((4, 5)))


def test_mass_fractions_sum_to_one(rng):
    y = mass_fractions_from_mixture(rng.uniform(0, 1, 100), rng.uniform(0, 1, 100))
    assert np.allclose(y.sum(axis=-1), 1.0, atol=1e-12)
    assert np.all(y >= 0.0)


# -- turbulence -----------------------------------------------------------------


def test_scalar_field_normalized(rng):
    field = synthesize_scalar((64, 64), rng)
    assert abs(field.std() - 1.0) < 1e-9
    assert field.shape == (64, 64)


def test_scalar_field_has_decaying_spectrum(rng):
    field = synthesize_scalar((128, 128), rng, slope=5.0 / 3.0)
    spectrum = np.abs(np.fft.fft2(field)) ** 2
    k = np.fft.fftfreq(128, d=1.0 / 128)
    kk = np.sqrt(k[:, None] ** 2 + k[None, :] ** 2)
    low = spectrum[(kk > 1) & (kk < 4)].mean()
    high = spectrum[(kk > 16) & (kk < 32)].mean()
    assert low > 10 * high  # energy concentrated at large scales


def test_velocity_field_is_divergence_free(rng):
    u, v = synthesize_velocity((96, 96), rng)
    divergence = np.gradient(u, axis=1) + np.gradient(v, axis=0)
    # interior divergence is zero to discretization accuracy
    inner = divergence[2:-2, 2:-2]
    assert np.abs(inner).max() < 0.1 * max(np.abs(u).max(), np.abs(v).max())


def test_gradient_matches_numpy(rng):
    field = rng.standard_normal((16, 16))
    ours = gradient(field)
    theirs = np.gradient(field)
    for a, b in zip(ours, theirs):
        assert np.array_equal(a, b)


# -- flow fields -----------------------------------------------------------------


def test_vortex_is_tangential():
    u, v = lamb_oseen_vortex((64, 64))
    # at the point right of center, flow should be mostly vertical
    assert abs(v[32, 48]) > abs(u[32, 48])
    # velocity magnitude decays far from the core
    speed = np.sqrt(u**2 + v**2)
    assert speed[32, 40] > speed[32, 63]


def test_vortex_center_is_stagnant():
    u, v = lamb_oseen_vortex((65, 65))
    speed = np.sqrt(u**2 + v**2)
    assert speed[32, 32] < speed.max() * 0.1


def test_advect_scalar_preserves_range(rng):
    scalar = mixture_fraction_jet((48, 48))
    u, v = lamb_oseen_vortex((48, 48))
    advected = advect_scalar(scalar, u, v, steps=20)
    assert advected.min() >= scalar.min() - 1e-9
    assert advected.max() <= scalar.max() + 1e-9
    # the vortex must actually deform the interface
    assert np.abs(advected - scalar).max() > 0.1


def test_box_filter_smooths(rng):
    field = rng.standard_normal((64, 64))
    filtered = box_filter(field, 5)
    assert filtered.std() < field.std()
    assert np.allclose(box_filter(field, 1), field)


def test_mixture_fraction_jet_profile():
    z = mixture_fraction_jet((64, 32))
    assert z.shape == (64, 32)
    assert z[32, 16] > 0.9  # core
    assert z[2, 16] < 0.1  # ambient
    assert np.all((z >= 0) & (z <= 1))
