"""Worker-pool execution for the chunked I/O and pipeline hot paths.

The heavy kernels (interpolation passes, ``np.packbits``/gathers in the
entropy stage, matmuls in inference) are numpy calls that release the
GIL, so a thread pool overlaps chunk work on multi-core hosts without
any serialization cost for the arrays.

Guarantees:

* **order preservation** — :func:`parallel_map` returns results in the
  order of its inputs regardless of completion order, so parallel and
  serial execution produce identical assembled arrays;
* **fail-fast** — the first task exception propagates to the caller,
  and not-yet-started pending tasks are cancelled instead of running to
  completion (no wasted work, no delayed error surfacing);
* **observability** — each task runs under a ``pool.task`` trace span
  carrying the pool label, item index and worker-thread name (the tracer
  keeps a thread-local span stack, so worker spans become per-task
  roots), and the pool reports ``pool_tasks_total``,
  ``pool_task_seconds``, ``pool_workers`` and ``pool_utilization``
  through the metrics registry.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, Iterable

from ..obs import get_metrics, get_tracer

__all__ = ["resolve_workers", "parallel_map", "WorkerPool"]


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request.

    ``None`` or ``1`` mean serial execution; ``0`` or negative mean "one
    per CPU"; anything else is taken literally.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


def _run_task(fn: Callable, item, index: int, label: str):
    tracer = get_tracer()
    start = time.perf_counter()
    with tracer.span(
        "pool.task",
        pool=label,
        index=index,
        worker=threading.current_thread().name,
    ):
        result = fn(item)
    return result, time.perf_counter() - start


def _collect_fail_fast(futures: list, label: str = "pool") -> list:
    """Gather future results in submit order, cancelling on first failure.

    Blocks until the first exception (or until everything finishes); on
    failure, not-yet-started futures are cancelled so queued work never
    runs, already-running tasks are awaited (the pool must be quiescent
    before the caller tears it down), and the earliest-submitted failure
    re-raises.
    """
    __, not_done = wait(futures, return_when=FIRST_EXCEPTION)
    if not any(
        future.done() and not future.cancelled() and future.exception() is not None
        for future in futures
    ):
        return [future.result() for future in futures]
    cancelled = sum(future.cancel() for future in not_done)
    wait(not_done)  # quiesce: in-flight tasks may still finish or fail
    if cancelled:
        get_metrics().counter(
            "pool_tasks_cancelled_total", pool=label
        ).inc(cancelled)
    failed = next(
        future
        for future in futures
        if future.done() and not future.cancelled() and future.exception() is not None
    )
    raise failed.exception()


def parallel_map(
    fn: Callable,
    items: Iterable,
    workers: int | None = None,
    label: str = "pool",
) -> list:
    """Map ``fn`` over ``items``, preserving input order in the results.

    With ``workers`` resolved to 1 (the default) this is a plain loop —
    no pool, no thread hop — so serial callers pay nothing.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    metrics = get_metrics()
    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers, thread_name_prefix=label) as pool:
        futures = [
            pool.submit(_run_task, fn, item, index, label)
            for index, item in enumerate(items)
        ]
        # Collect in submit order: result order matches input order, the
        # first failure raises, and queued-but-unstarted tasks are
        # cancelled rather than run to completion.
        outcomes = _collect_fail_fast(futures, label)
    wall = time.perf_counter() - wall_start

    busy = 0.0
    task_seconds = metrics.histogram("pool_task_seconds", pool=label)
    for __, seconds in outcomes:
        busy += seconds
        task_seconds.observe(seconds)
    metrics.counter("pool_tasks_total", pool=label).inc(len(outcomes))
    metrics.gauge("pool_workers", pool=label).set(workers)
    if wall > 0:
        metrics.gauge("pool_utilization", pool=label).set(busy / (wall * workers))
    return [result for result, __ in outcomes]


class WorkerPool:
    """A streaming variant of :func:`parallel_map` for producer loops.

    :class:`~repro.io.chunked.ChunkedArrayWriter` submits chunk stores as
    data arrives and only needs completion (plus error propagation) at
    close time; this wraps a :class:`ThreadPoolExecutor` with exactly
    that surface.  With ``workers <= 1`` submissions run inline, so the
    serial path has no pool at all.
    """

    def __init__(self, workers: int | None = None, label: str = "pool") -> None:
        self.workers = resolve_workers(workers)
        self.label = label
        self._executor: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=self.workers, thread_name_prefix=label)
            if self.workers > 1
            else None
        )
        self._futures: list = []
        self._submitted = 0

    @property
    def is_parallel(self) -> bool:
        return self._executor is not None

    def submit(self, fn: Callable, item) -> None:
        """Run ``fn(item)`` (inline when serial, pooled otherwise)."""
        index = self._submitted
        self._submitted += 1
        if self._executor is None:
            fn(item)
            return
        self._futures.append(
            self._executor.submit(_run_task, fn, item, index, self.label)
        )

    def drain(self) -> None:
        """Wait for all submitted work; re-raise the first task failure.

        On failure, queued-but-unstarted submissions are cancelled (the
        error surfaces immediately; no wasted work behind it)."""
        if self._executor is None:
            return
        try:
            outcomes = _collect_fail_fast(self._futures, self.label)
        finally:
            self._futures = []
        metrics = get_metrics()
        task_seconds = metrics.histogram("pool_task_seconds", pool=self.label)
        for __, seconds in outcomes:
            task_seconds.observe(seconds)
        metrics.counter("pool_tasks_total", pool=self.label).inc(len(outcomes))
        metrics.gauge("pool_workers", pool=self.label).set(self.workers)

    def shutdown(self) -> None:
        """Release the pool threads (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        try:
            if exc_type is None:
                self.drain()
        finally:
            self.shutdown()
