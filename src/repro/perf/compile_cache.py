"""Content-addressed two-level cache for compiled forward kernels.

Modeled on Aesara's ``ModuleCache`` / PyTensor's numba linker: compiled
artifacts are addressed purely by *content* — what they compute — never
by identity, so every process that lowers the same model structure lands
on the same key.  Two levels, two lifetimes:

* **source level** (keyed by :func:`structure_key` — the lowered
  program's structural signature plus the backend name): the generated
  kernel *source text*.  Structure outlives weights, so this level is
  shared on disk between processes (distributed workers, forked pools,
  repeat CLI runs) via lock-free atomic JSON files.
* **kernel level** (keyed by :func:`kernel_key` — structure plus the
  content fingerprint of every bound constant plus the model's weight
  version): the *bound callable*.  Closures over live weight arrays are
  process-local by nature, so this level is an in-memory LRU only.

A weight update (optimizer step, re-quantization) changes the kernel key
— the stale closure is simply never addressed again — while the source
entry keeps serving, so the re-compile costs one ``exec`` rather than a
fresh codegen pass.  Hits and misses are mirrored to the metrics
registry as ``backend_cache_{hits,misses}_total{level=memory|disk}``,
matching the ``cache_*_total`` convention of :mod:`repro.perf.cache`.

The disk directory defaults to ``~/.cache/repro/kernels`` and is
overridden (or disabled, with an empty value) by
``REPRO_COMPILE_CACHE_DIR``.  Disk writes go through tmp-file +
``os.replace`` so concurrent writers at worst do duplicate work, never
serve a torn file; stored entries carry the full structural signature
and are validated against it on load, so a hash collision or truncated
payload degrades to a re-generation, not a wrong kernel.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from ..obs import get_logger, get_metrics
from .cache import array_fingerprint

__all__ = [
    "CompileCache",
    "get_compile_cache",
    "kernel_key",
    "structure_key",
]

_FORMAT_VERSION = 1
_ENV_DIR = "REPRO_COMPILE_CACHE_DIR"
_DEFAULT_DIR = Path.home() / ".cache" / "repro" / "kernels"


def structure_key(signature: str, backend: str) -> str:
    """Content address of a generated source: program structure + backend."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(backend.encode())
    digest.update(b"\x00")
    digest.update(signature.encode())
    return digest.hexdigest()


def kernel_key(
    signature: str,
    backend: str,
    constants,
    weight_version: int,
) -> str:
    """Content address of a bound kernel.

    Includes the fingerprint of every bound array (two same-shaped models
    with different weights must not collide in a shared cache) *and* the
    weight version counter, the cheap signal optimizer steps bump.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(structure_key(signature, backend).encode())
    digest.update(f"|v{weight_version}".encode())
    for name, value in constants:
        digest.update(f"|{name}=".encode())
        fingerprint, shape, dtype = array_fingerprint(value)
        digest.update(f"{fingerprint}:{shape}:{dtype}".encode())
    return digest.hexdigest()


def _resolve_directory(directory) -> "Path | None":
    if directory is not None:
        return Path(directory) if directory else None
    env = os.environ.get(_ENV_DIR)
    if env is not None:
        return Path(env) if env else None
    return _DEFAULT_DIR


class CompileCache:
    """Two-level (memory kernel LRU + disk source store) compile cache.

    ``directory=None`` (the default) resolves via ``REPRO_COMPILE_CACHE_DIR``
    falling back to ``~/.cache/repro/kernels``; pass ``directory=""`` for a
    memory-only cache (tests, read-only filesystems).
    """

    def __init__(self, directory=None, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.directory = _resolve_directory(directory)
        self.maxsize = maxsize
        self._kernels: OrderedDict = OrderedDict()
        self._sources: dict = {}
        self._lock = threading.RLock()
        self.stats = {
            "kernel_hits": 0,
            "kernel_misses": 0,
            "source_memory_hits": 0,
            "source_disk_hits": 0,
            "source_disk_misses": 0,
            "source_generated": 0,
        }

    def _publish_hit_ratios(self) -> None:
        """Mirror per-level hit ratios as gauges (ops-plane visibility)."""
        metrics = get_metrics()
        if not metrics.enabled:
            return
        hits, misses = self.stats["kernel_hits"], self.stats["kernel_misses"]
        if hits + misses:
            metrics.gauge("backend_cache_hit_ratio", level="memory").set(
                hits / (hits + misses)
            )
        disk_hits = self.stats["source_disk_hits"]
        disk_misses = self.stats["source_disk_misses"]
        if disk_hits + disk_misses:
            metrics.gauge("backend_cache_hit_ratio", level="disk").set(
                disk_hits / (disk_hits + disk_misses)
            )

    # -- kernel level (in-memory LRU of bound callables) ---------------

    def get_kernel(self, key: str):
        """The bound callable for ``key``, or ``None`` on a miss."""
        with self._lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                self._kernels.move_to_end(key)
                self.stats["kernel_hits"] += 1
                get_metrics().counter("backend_cache_hits_total", level="memory").inc()
                self._publish_hit_ratios()
                return kernel
            self.stats["kernel_misses"] += 1
            get_metrics().counter("backend_cache_misses_total", level="memory").inc()
            self._publish_hit_ratios()
            return None

    def put_kernel(self, key: str, kernel) -> None:
        with self._lock:
            self._kernels[key] = kernel
            self._kernels.move_to_end(key)
            while len(self._kernels) > self.maxsize:
                self._kernels.popitem(last=False)

    # -- source level (memory dict + disk JSON per structure) ----------

    def get_source(self, key: str, signature: str, backend: str) -> "str | None":
        """Cached generated source for a program structure, or ``None``.

        The stored signature is compared against the caller's: a digest
        collision or corrupt file reads as a miss, never a wrong kernel.
        """
        with self._lock:
            source = self._sources.get(key)
        if source is not None:
            self.stats["source_memory_hits"] += 1
            return source
        source = self._load_disk(key, signature, backend)
        if source is not None:
            with self._lock:
                self._sources[key] = source
            self.stats["source_disk_hits"] += 1
            get_metrics().counter("backend_cache_hits_total", level="disk").inc()
            self._publish_hit_ratios()
            return source
        if self.directory is not None:
            self.stats["source_disk_misses"] += 1
            get_metrics().counter("backend_cache_misses_total", level="disk").inc()
            self._publish_hit_ratios()
        return None

    def put_source(self, key: str, signature: str, backend: str, source: str) -> None:
        with self._lock:
            self._sources[key] = source
        self.stats["source_generated"] += 1
        self._store_disk(key, signature, backend, source)

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _load_disk(self, key: str, signature: str, backend: str) -> "str | None":
        if self.directory is None:
            return None
        path = self._entry_path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != _FORMAT_VERSION
            or entry.get("signature") != signature
            or entry.get("backend") != backend
            or not isinstance(entry.get("source"), str)
        ):
            return None
        return entry["source"]

    def _store_disk(self, key: str, signature: str, backend: str, source: str) -> None:
        if self.directory is None:
            return
        entry = {
            "version": _FORMAT_VERSION,
            "signature": signature,
            "backend": backend,
            "source": source,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(key)
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(entry))
            os.replace(tmp, path)
        except OSError as exc:  # read-only/full filesystem: memory still serves
            get_logger().warning(
                "compile cache disk write failed", path=str(self.directory), error=str(exc)
            )

    # -- maintenance ---------------------------------------------------

    def clear(self, *, disk: bool = False) -> None:
        """Drop in-memory entries; with ``disk=True`` also unlink disk files."""
        with self._lock:
            self._kernels.clear()
            self._sources.clear()
        if disk and self.directory is not None:
            try:
                for path in self.directory.glob("*.json"):
                    path.unlink(missing_ok=True)
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self._kernels)


_CACHE: "CompileCache | None" = None
_CACHE_LOCK = threading.Lock()


def get_compile_cache() -> CompileCache:
    """The process-global compile cache (created lazily)."""
    global _CACHE
    with _CACHE_LOCK:
        if _CACHE is None:
            _CACHE = CompileCache()
        return _CACHE


def reset_compile_cache() -> None:
    """Drop the process-global cache so the next access re-reads the env.

    Test seam: ``REPRO_COMPILE_CACHE_DIR`` changes only take effect on a
    fresh singleton.
    """
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = None
