"""Content-keyed memoization for the repeatedly evaluated analysis kernels.

The planner sweeps formats and allocation fractions; every sweep point
re-derives quantities that only depend on the *weights* — per-layer
spectral norms (200-step power iterations), Table-I step sizes, Eq. (3)
propagations — and every chunked decode re-derives the same canonical
Huffman tables from the same lengths header.  This module provides the
shared memo tables those paths consult:

* :class:`Memo` — a named, bounded (LRU), thread-safe memo whose hit and
  miss totals are mirrored into the :mod:`repro.obs` metrics registry as
  ``cache_hits_total{cache=}`` / ``cache_misses_total{cache=}``;
* :func:`array_fingerprint` — a content key for numpy arrays (BLAKE2b
  digest plus shape and dtype), so caches keyed on weight *content* stay
  correct under any mutation, including in-place edits the
  version counters cannot see;
* :func:`cached_spectral_norm` / :func:`cached_average_step_size` — the
  two weight-derived kernels the error-flow layer evaluates repeatedly.

Invalidation is structural, not temporal: content-keyed entries can never
go stale (a changed array is a different key), and version-keyed entries
(see :meth:`repro.nn.module.Module.weight_version`) are invalidated by
the optimizer bumping the parameter version counters on every step.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

from ..obs import get_metrics

__all__ = [
    "Memo",
    "array_fingerprint",
    "cached_spectral_norm",
    "cached_average_step_size",
    "get_memo",
    "registered_memos",
    "clear_all_caches",
]


class Memo:
    """A named, bounded, thread-safe LRU memo table.

    ``get(key, compute)`` returns the cached value for ``key`` or calls
    ``compute()`` and stores the result.  Hits and misses are counted
    locally (:attr:`hits` / :attr:`misses`) and mirrored into the global
    metrics registry, labelled with the memo's name, so a traced run
    shows exactly which caches carried the workload.
    """

    def __init__(self, name: str, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, compute: Callable):
        """Cached value for ``key``, computing (and storing) it on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                get_metrics().counter("cache_hits_total", cache=self.name).inc()
                return self._entries[key]
            self.misses += 1
            get_metrics().counter("cache_misses_total", cache=self.name).inc()
        # Compute outside the lock: concurrent misses on the same key may
        # compute twice, but the kernels cached here are pure, so the
        # duplicate work is benign and the lock never guards user code.
        value = compute()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop all entries (the hit/miss totals are retained)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Memo({self.name!r}, size={len(self)}, hits={self.hits}, misses={self.misses})"


_MEMOS: dict[str, Memo] = {}
_MEMOS_LOCK = threading.Lock()


def get_memo(name: str, maxsize: int = 256) -> Memo:
    """The process-global memo registered under ``name`` (created lazily)."""
    with _MEMOS_LOCK:
        memo = _MEMOS.get(name)
        if memo is None:
            memo = _MEMOS[name] = Memo(name, maxsize=maxsize)
        return memo


def registered_memos() -> dict[str, Memo]:
    """Snapshot of every registered memo, keyed by name."""
    with _MEMOS_LOCK:
        return dict(_MEMOS)


def clear_all_caches() -> None:
    """Empty every registered memo (used between test cases/benchmarks)."""
    with _MEMOS_LOCK:
        memos = list(_MEMOS.values())
    for memo in memos:
        memo.clear()


def array_fingerprint(array: np.ndarray) -> tuple:
    """Content key for an array: (BLAKE2b-128 digest, shape, dtype).

    Two arrays with equal bytes, shape and dtype map to the same key;
    any mutation — including in-place writes — changes it.  Hashing runs
    at memory bandwidth, orders of magnitude cheaper than the power
    iterations and rounding passes it deduplicates.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(array.view(np.uint8).reshape(-1), digest_size=16)
    return (digest.hexdigest(), array.shape, str(array.dtype))


def cached_spectral_norm(matrix: np.ndarray) -> float:
    """:func:`repro.nn.spectral.spectral_norm` memoized on matrix content.

    One power-iteration pass per distinct weight matrix per process: the
    planner's format sweeps, repeated analyzer constructions and
    per-feature bound loops all hit the same entry.
    """
    from ..nn.spectral import spectral_norm

    memo = get_memo("spectral_norm")
    key = array_fingerprint(matrix)
    return memo.get(key, lambda: spectral_norm(matrix))


def cached_average_step_size(weights: np.ndarray, fmt) -> float:
    """:func:`repro.quant.stepsize.average_step_size` memoized on content.

    Keyed by the (frozen, hashable) format plus the weight fingerprint,
    so a 19-point ``auto_plan`` fraction search evaluates each
    (layer, format) pair's Table-I step exactly once.
    """
    from ..quant.stepsize import average_step_size

    memo = get_memo("step_size")
    key = (fmt, array_fingerprint(weights))
    return memo.get(key, lambda: average_step_size(weights, fmt))
