"""GPU hardware profiles for the execution-throughput model.

The paper benchmarks on NVIDIA V100 (Summit), AMD MI250X (Frontier) and
an RTX 3080 Ti (the only device with native TF32/BF16).  The numpy
substrate cannot reproduce tensor-core silicon, so per-format execution
speedups are encoded as calibrated profiles reflecting the paper's
Fig. 9 observations: FP16 up to ~4.5x, INT8 similar, TF32/BF16 marginal,
and emulated formats slightly *slower* than FP32.

Numerical behaviour (what the error bounds consume) is bit-exact in
:mod:`repro.quant.formats` regardless of profile; profiles only drive the
throughput axes of the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

__all__ = ["GPUProfile", "V100", "RTX3080TI", "MI250X", "GPU_PROFILES", "get_gpu"]


@dataclass(frozen=True)
class GPUProfile:
    """Execution characteristics of one accelerator.

    Attributes
    ----------
    name:
        Device name.
    fp32_tflops:
        Effective sustained FP32 throughput (TFLOP/s) for these
        inference workloads.
    format_speedup:
        Relative execution speedup per numeric format (FP32 = 1.0).
        Formats absent from the map are unsupported on the device.
    native_formats:
        Formats with hardware support; others in ``format_speedup`` are
        emulated (the paper notes V100/MI250X emulate BF16).
    """

    name: str
    fp32_tflops: float
    format_speedup: dict[str, float] = field(default_factory=dict)
    native_formats: frozenset[str] = frozenset()

    def supports(self, fmt_name: str) -> bool:
        return fmt_name in self.format_speedup

    def is_native(self, fmt_name: str) -> bool:
        return fmt_name in self.native_formats

    def speedup(self, fmt_name: str) -> float:
        try:
            return self.format_speedup[fmt_name]
        except KeyError:
            raise ConfigurationError(
                f"format {fmt_name!r} is not supported on {self.name}"
            ) from None


V100 = GPUProfile(
    name="V100",
    fp32_tflops=14.0,
    format_speedup={"fp32": 1.0, "fp16": 3.9, "bf16": 0.85, "int8": 3.6},
    native_formats=frozenset({"fp32", "fp16", "int8"}),
)

RTX3080TI = GPUProfile(
    name="RTX3080Ti",
    fp32_tflops=30.0,
    format_speedup={"fp32": 1.0, "tf32": 1.25, "fp16": 4.5, "bf16": 1.3, "int8": 4.2},
    native_formats=frozenset({"fp32", "tf32", "fp16", "bf16", "int8"}),
)

MI250X = GPUProfile(
    name="MI250X",
    fp32_tflops=24.0,
    format_speedup={"fp32": 1.0, "fp16": 3.4, "bf16": 0.9, "int8": 3.5},
    native_formats=frozenset({"fp32", "fp16", "int8"}),
)

GPU_PROFILES: dict[str, GPUProfile] = {
    profile.name.lower(): profile for profile in (V100, RTX3080TI, MI250X)
}


def get_gpu(name: str) -> GPUProfile:
    """Look up a profile by name (case-insensitive)."""
    try:
        return GPU_PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(GPU_PROFILES))
        raise ConfigurationError(f"unknown GPU {name!r}; known: {known}") from None
