"""Execution-throughput model (paper Figs. 2 and 9).

Maps a model's per-sample FLOPs and a weight format onto predicted
execution throughput for a GPU profile, and provides real wall-clock
measurement of the numpy substrate for the FP32 reference point.

The paper expresses execution throughput as *data ingestion* GB/s — how
many bytes of input data the model chews through per second — so the
model converts via the per-sample input footprint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.module import Module
from ..obs import get_tracer
from .hardware import GPUProfile

__all__ = ["ExecutionModel", "StageBreakdown", "measure_inference_seconds"]


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage share of inference time (Fig. 2)."""

    load_seconds: float
    preprocess_seconds: float
    execute_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.preprocess_seconds + self.execute_seconds

    def fractions(self) -> dict[str, float]:
        total = self.total_seconds
        return {
            "load": self.load_seconds / total,
            "preprocess": self.preprocess_seconds / total,
            "execute": self.execute_seconds / total,
        }

    @classmethod
    def from_phases(cls, phases: dict[str, float]) -> "StageBreakdown":
        """Build a breakdown from measured phase durations.

        Accepts the ``phases`` dict of a :class:`~repro.perf.timer.Stopwatch`
        (possibly built via ``Stopwatch.from_spans``), so the Fig. 2
        figure path can consume real telemetry instead of only the
        analytic model.  Missing stages count as zero.
        """
        return cls(
            load_seconds=float(phases.get("load", 0.0)),
            preprocess_seconds=float(phases.get("preprocess", 0.0)),
            execute_seconds=float(phases.get("execute", 0.0)),
        )


class ExecutionModel:
    """Analytic throughput model for one GPU profile.

    Parameters
    ----------
    gpu:
        Hardware profile supplying FP32 TFLOPs and per-format speedups.
    efficiency:
        Fraction of peak sustained by small-batch inference kernels.
    preprocess_rate_gbps:
        Host-side preprocessing bandwidth (normalization, layout).
    """

    def __init__(
        self,
        gpu: GPUProfile,
        efficiency: float = 0.35,
        preprocess_rate_gbps: float = 12.0,
        overhead_flops: float = 4e5,
    ) -> None:
        if not 0 < efficiency <= 1:
            raise ConfigurationError(f"efficiency must be in (0, 1], got {efficiency}")
        self.gpu = gpu
        self.efficiency = float(efficiency)
        self.preprocess_rate_gbps = float(preprocess_rate_gbps)
        # Per-sample fixed cost (kernel launch, memory traffic) expressed
        # in FLOP equivalents: tiny MLPs are overhead-bound, so their
        # throughput does not scale with 1/FLOPs — the effect that makes
        # model execution the H2 pipeline bottleneck in the paper's Fig. 10.
        self.overhead_flops = float(overhead_flops)

    def samples_per_second(self, flops_per_sample: int, fmt_name: str = "fp32") -> float:
        """Predicted inference rate for a model of the given cost."""
        if flops_per_sample <= 0:
            raise ConfigurationError("flops_per_sample must be positive")
        sustained = self.gpu.fp32_tflops * 1e12 * self.efficiency
        effective_flops = flops_per_sample + self.overhead_flops
        return sustained * self.gpu.speedup(fmt_name) / effective_flops

    def data_throughput_gbps(
        self, flops_per_sample: int, bytes_per_sample: int, fmt_name: str = "fp32"
    ) -> float:
        """Input-data ingestion rate (the y-axis of Fig. 9)."""
        rate = self.samples_per_second(flops_per_sample, fmt_name)
        return rate * bytes_per_sample / 1e9

    def stage_breakdown(
        self,
        flops_per_sample: int,
        bytes_per_sample: int,
        n_samples: int,
        disk_bandwidth_gbps: float = 2.8,
        fmt_name: str = "fp32",
    ) -> StageBreakdown:
        """Load / preprocess / execute time split (Fig. 2)."""
        total_bytes = bytes_per_sample * n_samples
        load = total_bytes / (disk_bandwidth_gbps * 1e9)
        preprocess = total_bytes / (self.preprocess_rate_gbps * 1e9)
        execute = n_samples / self.samples_per_second(flops_per_sample, fmt_name)
        return StageBreakdown(load, preprocess, execute)


def measure_inference_seconds(
    model: Module,
    input_shape: tuple[int, ...],
    batch_size: int = 16,
    repeats: int = 3,
    rng: np.random.Generator | None = None,
) -> float:
    """Wall-clock seconds per batch on the numpy substrate (median).

    This is the real measured cost of the reference implementation; the
    analytic model handles format speedups (numpy executes every format
    in float arithmetic, so formats do not change its wall-clock).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    model.eval()
    tracer = get_tracer()
    with tracer.span(
        "perf.measure_inference", batch_size=batch_size, repeats=repeats
    ) as span:
        batch = rng.uniform(-1.0, 1.0, size=(batch_size,) + input_shape).astype(np.float32)
        model(batch)  # warm-up
        timings = []
        for repeat in range(repeats):
            with tracer.span("execute", repeat=repeat):
                start = time.perf_counter()
                model(batch)
                timings.append(time.perf_counter() - start)
        median = float(np.median(timings))
        span.set(median_seconds=median)
    return median
