"""Minimal wall-clock measurement helpers.

``Stopwatch`` now shares its source of truth with the observability
layer: give it a tracer and every lap becomes a span (so the Fig. 2
benchmark and production traces aggregate the *same* measurements), or
build one from recorded spans with :meth:`Stopwatch.from_spans`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager recording elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


class _Lap:
    """One lap of a :class:`Stopwatch` phase (context manager)."""

    __slots__ = ("_stopwatch", "_name", "_start", "_span")

    def __init__(self, stopwatch: "Stopwatch", name: str) -> None:
        self._stopwatch = stopwatch
        self._name = name
        self._start = 0.0
        self._span = None

    def __enter__(self) -> "_Lap":
        depths = self._stopwatch._depths
        depths[self._name] = depths.get(self._name, 0) + 1
        if self._stopwatch.tracer is not None:
            self._span = self._stopwatch.tracer.span(self._name)
            self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        if self._span is not None:
            self._span.__exit__(*exc_info)
        depths = self._stopwatch._depths
        depths[self._name] -= 1
        # Reentrant laps of the same phase: the outermost lap already
        # includes the inner laps' time, so only it may accumulate —
        # otherwise nested laps double-count the phase.
        if depths[self._name] == 0:
            phases = self._stopwatch.phases
            phases[self._name] = phases.get(self._name, 0.0) + elapsed
            del depths[self._name]


@dataclass
class Stopwatch:
    """Accumulates named phase durations across repeated laps.

    Parameters
    ----------
    phases:
        Accumulated seconds per phase name.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when given, every lap
        also opens a span of the same name, so stopwatch totals and the
        trace tree are two views of one measurement.
    """

    phases: dict[str, float] = field(default_factory=dict)
    tracer: object | None = None
    _depths: dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    def lap(self, name: str) -> _Lap:
        """Context manager adding this lap's time to phase ``name``.

        Nested/reentrant laps of the same name are counted once (the
        outermost lap's duration); laps that exit via an exception still
        record the time spent inside them.
        """
        return _Lap(self, name)

    def total(self) -> float:
        return sum(self.phases.values())

    def fractions(self) -> dict[str, float]:
        total = self.total()
        if total == 0:
            return {name: 0.0 for name in self.phases}
        return {name: seconds / total for name, seconds in self.phases.items()}

    @classmethod
    def from_spans(cls, source) -> "Stopwatch":
        """Build a stopwatch from recorded spans (one phase per name).

        ``source`` may be a :class:`~repro.obs.trace.Tracer`, an iterable
        of :class:`~repro.obs.trace.Span`, or an iterable of dicts as
        produced by JSONL export.  To mirror :meth:`lap`'s reentrancy
        rule, a span nested under an ancestor of the same name is
        skipped — the ancestor's duration already contains it.
        """
        spans = getattr(source, "finished", source)
        rows = []
        for span in spans:
            if isinstance(span, dict):
                rows.append((span["span_id"], span["parent_id"], span["name"], span["duration_s"]))
            else:
                rows.append((span.span_id, span.parent_id, span.name, span.duration_s))
        names = {span_id: name for span_id, __, name, __dur in rows}
        parents = {span_id: parent for span_id, parent, __, __dur in rows}
        watch = cls()
        for span_id, parent_id, name, duration in rows:
            ancestor = parent_id
            shadowed = False
            while ancestor is not None:
                if names.get(ancestor) == name:
                    shadowed = True
                    break
                ancestor = parents.get(ancestor)
            if not shadowed:
                watch.phases[name] = watch.phases.get(name, 0.0) + duration
        return watch
