"""Minimal wall-clock measurement helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager recording elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulates named phase durations across repeated laps."""

    phases: dict[str, float] = field(default_factory=dict)

    def lap(self, name: str):
        """Context manager adding this lap's time to phase ``name``."""
        stopwatch = self

        class _Lap:
            def __enter__(self) -> None:
                self._start = time.perf_counter()

            def __exit__(self, *exc_info) -> None:
                elapsed = time.perf_counter() - self._start
                stopwatch.phases[name] = stopwatch.phases.get(name, 0.0) + elapsed

        return _Lap()

    def total(self) -> float:
        return sum(self.phases.values())

    def fractions(self) -> dict[str, float]:
        total = self.total()
        if total == 0:
            return {name: 0.0 for name in self.phases}
        return {name: seconds / total for name, seconds in self.phases.items()}
