"""I/O throughput model for compressed reads (paper Figs. 7, 8).

Reading compressed data costs (a) pulling ``size / ratio`` bytes off the
filesystem at the disk bandwidth and (b) decompressing back to ``size``
bytes.  Effective throughput is the harmonic composition of the two.

Codec decompression rates follow the paper's observations: ZFP
decompresses fast and *stays* fast across tolerances; SZ and MGARD slow
down at tight tolerances (more quantization bins to decode), which is why
their effective I/O throughput dips below the raw-disk baseline there
(Fig. 7 caption).  We model that with a rate that scales with a power of
the achieved compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["CodecSpeed", "IOModel", "DEFAULT_CODEC_SPEEDS"]


@dataclass(frozen=True)
class CodecSpeed:
    """Decompression-rate model for one codec.

    ``rate(ratio) = base_rate * min(1, (ratio / ratio_ref)) ** exponent``
    in GB/s of *decompressed output*; ``exponent = 0`` gives a constant
    rate (ZFP-like stability).
    """

    base_rate_gbps: float
    ratio_ref: float = 8.0
    exponent: float = 0.5

    def rate(self, compression_ratio: float) -> float:
        if compression_ratio <= 0:
            raise ConfigurationError("compression ratio must be positive")
        scale = min(1.0, compression_ratio / self.ratio_ref) ** self.exponent
        return self.base_rate_gbps * scale


#: Calibrated to reproduce Fig. 7's shapes on a 2.8 GB/s Lustre baseline.
DEFAULT_CODEC_SPEEDS: dict[str, CodecSpeed] = {
    "zfp": CodecSpeed(base_rate_gbps=20.0, exponent=0.0),
    "sz": CodecSpeed(base_rate_gbps=35.0, ratio_ref=8.0, exponent=0.5),
    "mgard": CodecSpeed(base_rate_gbps=25.0, ratio_ref=8.0, exponent=0.6),
}


class IOModel:
    """Effective read throughput for raw and compressed data.

    Parameters
    ----------
    disk_bandwidth_gbps:
        Raw filesystem read bandwidth; the paper's baseline is 2.8 GB/s.
    codec_speeds:
        Per-codec decompression models.
    """

    def __init__(
        self,
        disk_bandwidth_gbps: float = 2.8,
        codec_speeds: dict[str, CodecSpeed] | None = None,
    ) -> None:
        if disk_bandwidth_gbps <= 0:
            raise ConfigurationError("disk bandwidth must be positive")
        self.disk_bandwidth_gbps = float(disk_bandwidth_gbps)
        self.codec_speeds = dict(DEFAULT_CODEC_SPEEDS if codec_speeds is None else codec_speeds)

    @property
    def baseline_gbps(self) -> float:
        """Throughput of reading uncompressed data."""
        return self.disk_bandwidth_gbps

    def throughput_gbps(self, codec_name: str, compression_ratio: float) -> float:
        """Effective GB/s of original data delivered per second.

        ``1 / (1 / (ratio * disk_bw) + 1 / decompress_rate)``.
        """
        try:
            speed = self.codec_speeds[codec_name.lower()]
        except KeyError:
            known = ", ".join(sorted(self.codec_speeds))
            raise ConfigurationError(
                f"no speed model for codec {codec_name!r}; known: {known}"
            ) from None
        read_time = 1.0 / (compression_ratio * self.disk_bandwidth_gbps)
        decompress_time = 1.0 / speed.rate(compression_ratio)
        return 1.0 / (read_time + decompress_time)

    def speedup(self, codec_name: str, compression_ratio: float) -> float:
        """Throughput gain over the uncompressed baseline."""
        return self.throughput_gbps(codec_name, compression_ratio) / self.baseline_gbps
