"""Performance layer: hardware models, caching and parallel execution.

* throughput models (:class:`IOModel`, :class:`ExecutionModel`) feed the
  planner's Fig. 10 trade-off;
* :mod:`~repro.perf.cache` memoizes the repeatedly evaluated analysis
  kernels (spectral norms, step sizes, Huffman decode tables);
* :mod:`~repro.perf.parallel` provides the order-preserving worker pool
  behind chunked I/O and ``InferencePipeline.execute_chunked``.
"""

from .cache import (
    Memo,
    array_fingerprint,
    cached_average_step_size,
    cached_spectral_norm,
    clear_all_caches,
    get_memo,
    registered_memos,
)
from .compile_cache import (
    CompileCache,
    get_compile_cache,
    kernel_key,
    reset_compile_cache,
    structure_key,
)
from .execmodel import ExecutionModel, StageBreakdown, measure_inference_seconds
from .hardware import GPU_PROFILES, MI250X, RTX3080TI, V100, GPUProfile, get_gpu
from .iomodel import DEFAULT_CODEC_SPEEDS, CodecSpeed, IOModel
from .parallel import WorkerPool, parallel_map, resolve_workers
from .timer import Stopwatch, Timer

__all__ = [
    "DEFAULT_CODEC_SPEEDS",
    "CodecSpeed",
    "CompileCache",
    "ExecutionModel",
    "GPUProfile",
    "GPU_PROFILES",
    "IOModel",
    "MI250X",
    "Memo",
    "RTX3080TI",
    "StageBreakdown",
    "Stopwatch",
    "Timer",
    "V100",
    "WorkerPool",
    "array_fingerprint",
    "cached_average_step_size",
    "cached_spectral_norm",
    "clear_all_caches",
    "get_compile_cache",
    "get_gpu",
    "get_memo",
    "kernel_key",
    "measure_inference_seconds",
    "parallel_map",
    "registered_memos",
    "reset_compile_cache",
    "resolve_workers",
    "structure_key",
]
