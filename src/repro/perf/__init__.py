"""Performance models: hardware profiles, I/O and execution throughput."""

from .execmodel import ExecutionModel, StageBreakdown, measure_inference_seconds
from .hardware import GPU_PROFILES, MI250X, RTX3080TI, V100, GPUProfile, get_gpu
from .iomodel import DEFAULT_CODEC_SPEEDS, CodecSpeed, IOModel
from .timer import Stopwatch, Timer

__all__ = [
    "DEFAULT_CODEC_SPEEDS",
    "CodecSpeed",
    "ExecutionModel",
    "GPUProfile",
    "GPU_PROFILES",
    "IOModel",
    "MI250X",
    "RTX3080TI",
    "StageBreakdown",
    "Stopwatch",
    "Timer",
    "V100",
    "get_gpu",
    "measure_inference_seconds",
]
