"""Persistent benchmark history: a JSONL registry with regression gates.

``BENCH_*.json`` files used to be written once per PR and go dark; this
module gives them a trajectory.  A :class:`BenchRegistry` appends one
JSONL record per benchmark *run* (same atomic-append / torn-trailing-line
discipline as :class:`repro.obs.registry.RunRegistry`), each holding the
unified rows emitted by ``benchmarks/benchutils.py``.  Rows are keyed by
a **config fingerprint** — a content hash of ``(path, config)`` with
measured/derived keys (speedups, overheads, cache-hit counts) stripped —
so two runs are compared only where they measured the same thing on a
comparably shaped host (``cpu_count`` stays in the fingerprint on
purpose: cross-machine timings are not comparable evidence).

The regression detector is deliberately robust rather than clever:

* the per-row statistic is the **median of the recorded rep times**
  (falling back to the row's best-of ``seconds`` when reps are absent);
* a slowdown is flagged only when the relative change exceeds
  ``threshold`` **and** the absolute change clears ``mad_k`` scaled
  median-absolute-deviations of the noisier run (timing noise must not
  gate CI);
* a **min-rep guard** doubles the relative threshold when either side
  has fewer than ``min_reps`` reps — sparse evidence earns a wider
  confidence band, not a free pass.

``repro bench record|report|diff`` is the CLI surface; ``bench diff``
exits nonzero on a flagged regression, which is the CI perf gate.
"""

from __future__ import annotations

import hashlib
import json
import statistics
import time

from ..io.serialization import append_jsonl, read_jsonl_records

__all__ = [
    "BenchRegistry",
    "DEFAULT_BENCH_THRESHOLD",
    "DEFAULT_MAD_K",
    "DEFAULT_MIN_REPS",
    "config_fingerprint",
    "describe_bench_diff",
    "detect_regressions",
    "stable_config",
]

DEFAULT_BENCH_THRESHOLD = 0.20
DEFAULT_MIN_REPS = 3
DEFAULT_MAD_K = 3.0

#: MAD -> sigma for normally distributed noise
_MAD_SCALE = 1.4826

#: config keys that are measured outcomes, not run identity
_VOLATILE_PREFIXES = ("speedup", "overhead", "endpoint_overhead", "journal_overhead")
_VOLATILE_KEYS = frozenset({"source_disk_hits", "lowerings", "compiles"})


def stable_config(config: dict) -> dict:
    """The identity-bearing subset of a bench row's config."""
    if not isinstance(config, dict):
        return {}
    return {
        key: value
        for key, value in config.items()
        if key not in _VOLATILE_KEYS
        and not any(str(key).startswith(prefix) for prefix in _VOLATILE_PREFIXES)
    }


def config_fingerprint(path: str, config: dict) -> str:
    """Content address of what a bench row measured."""
    payload = json.dumps(
        {"path": path, "config": stable_config(config)},
        sort_keys=True,
        default=str,
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def _normalize_row(row: dict) -> "dict | None":
    if not isinstance(row, dict) or "path" not in row or "seconds" not in row:
        return None
    config = row.get("config") if isinstance(row.get("config"), dict) else {}
    reps = row.get("reps_s")
    reps = [float(r) for r in reps if r is not None] if isinstance(reps, list) else []
    out = {
        "path": str(row["path"]),
        "config": config,
        "key": config_fingerprint(str(row["path"]), config),
        "seconds": float(row["seconds"]),
        "reps_s": reps,
    }
    for field, value in row.items():
        if str(field).startswith("throughput") and value is not None:
            out[field] = value
    return out


def _row_stats(row: dict) -> "tuple[float, float, int]":
    """(median seconds, scaled MAD, rep count) for one normalized row."""
    reps = [r for r in row.get("reps_s", []) if r > 0]
    if reps:
        med = statistics.median(reps)
        mad = (
            _MAD_SCALE * statistics.median([abs(r - med) for r in reps])
            if len(reps) >= 2
            else 0.0
        )
        return med, mad, len(reps)
    return float(row.get("seconds") or 0.0), 0.0, 0


def detect_regressions(
    rows_a: list,
    rows_b: list,
    *,
    threshold: float = DEFAULT_BENCH_THRESHOLD,
    min_reps: int = DEFAULT_MIN_REPS,
    mad_k: float = DEFAULT_MAD_K,
) -> dict:
    """Compare two row sets keyed by config fingerprint.

    Returns ``{"rows": [...], "regressions": [...], "improvements": [...],
    "uncompared": n}``; a row regresses when candidate median exceeds the
    baseline median by more than the (possibly widened) relative
    threshold *and* the absolute gap clears the MAD noise floor.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    a_by_key = {row["key"]: row for row in rows_a}
    b_by_key = {row["key"]: row for row in rows_b}
    shared = sorted(set(a_by_key) & set(b_by_key))
    rows, regressions, improvements = [], [], []
    for key in shared:
        row_a, row_b = a_by_key[key], b_by_key[key]
        med_a, mad_a, n_a = _row_stats(row_a)
        med_b, mad_b, n_b = _row_stats(row_b)
        if med_a <= 0 or med_b <= 0:
            continue
        relative = med_b / med_a - 1.0
        sparse = min(n_a, n_b) < min_reps
        effective = threshold * (2.0 if sparse else 1.0)
        noise_floor = mad_k * max(mad_a, mad_b)
        verdict = "ok"
        if relative > effective and (med_b - med_a) > noise_floor:
            verdict = "regression"
        elif relative < -effective and (med_a - med_b) > noise_floor:
            verdict = "improvement"
        entry = {
            "key": key,
            "path": row_a["path"],
            "config": stable_config(row_a.get("config", {})),
            "baseline_s": med_a,
            "candidate_s": med_b,
            "relative": relative,
            "threshold": effective,
            "mad_floor_s": noise_floor,
            "reps": [n_a, n_b],
            "sparse": sparse,
            "verdict": verdict,
        }
        rows.append(entry)
        if verdict == "regression":
            regressions.append(entry)
        elif verdict == "improvement":
            improvements.append(entry)
    uncompared = len(set(a_by_key) ^ set(b_by_key))
    return {
        "rows": rows,
        "regressions": regressions,
        "improvements": improvements,
        "compared": len(rows),
        "uncompared": uncompared,
    }


def _row_label(entry: dict) -> str:
    config = entry.get("config", {})
    qualifier = (
        config.get("backend")
        or config.get("impl")
        or config.get("executor")
        or config.get("cache")
        or config.get("journal")
        or config.get("telemetry")
    )
    path = entry.get("path", "?")
    return f"{path}[{qualifier}]" if qualifier else str(path)


def describe_bench_diff(diff: dict) -> str:
    """Human-readable summary of a :func:`detect_regressions` report."""
    lines = [
        f"compared {diff.get('compared', 0)} row(s), "
        f"{diff.get('uncompared', 0)} without a counterpart"
    ]
    for entry in diff.get("rows", []):
        marker = {"regression": "!!", "improvement": "++"}.get(entry["verdict"], "  ")
        sparse = " (sparse reps)" if entry.get("sparse") else ""
        lines.append(
            f"{marker} {_row_label(entry):<44} "
            f"{entry['baseline_s'] * 1e3:>9.3f}ms -> {entry['candidate_s'] * 1e3:>9.3f}ms "
            f"({entry['relative'] * 100:+.1f}%, gate ±{entry['threshold'] * 100:.0f}%{sparse})"
        )
    n_reg = len(diff.get("regressions", []))
    lines.append(
        f"regressions: {n_reg}, improvements: {len(diff.get('improvements', []))}"
    )
    return "\n".join(lines)


class BenchRegistry:
    """Append-only JSONL history of benchmark runs.

    One line per run: ``{"run_id": "bench-0001", "bench": ..., "label":
    ..., "git_rev": ..., "recorded_unix": ..., "rows": [...]}`` where
    every row carries its config fingerprint.  Reads tolerate a torn
    trailing line (a crashed writer loses at most its own record).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def runs(self) -> list:
        records = read_jsonl_records(self.path)
        return [r for r in records if isinstance(r, dict) and r.get("run_id")]

    def record(
        self,
        rows: list,
        *,
        bench: str,
        label: str = "",
        git_rev: str = "",
        recorded_unix: "float | None" = None,
    ) -> dict:
        normalized = [r for r in (_normalize_row(row) for row in rows) if r]
        if not normalized:
            raise ValueError("bench record requires at least one row with path/seconds")
        run = {
            "run_id": f"bench-{len(self.runs()) + 1:04d}",
            "bench": str(bench),
            "label": str(label),
            "git_rev": str(git_rev),
            "recorded_unix": float(recorded_unix if recorded_unix is not None else time.time()),
            "rows": normalized,
        }
        append_jsonl(self.path, run)
        return run

    def get(self, key) -> dict:
        """A run by id (``bench-0003``) or integer index (``-1`` = latest)."""
        runs = self.runs()
        if isinstance(key, int) or (isinstance(key, str) and key.lstrip("-").isdigit()):
            index = int(key)
            try:
                return runs[index]
            except IndexError:
                raise KeyError(
                    f"no bench run at index {index} (registry holds {len(runs)})"
                ) from None
        for run in runs:
            if run.get("run_id") == key:
                return run
        known = ", ".join(r.get("run_id", "?") for r in runs[-10:]) or "none"
        raise KeyError(f"no bench run {key!r} in {self.path} (recent: {known})")

    def diff(
        self,
        run_a,
        run_b,
        *,
        threshold: float = DEFAULT_BENCH_THRESHOLD,
        min_reps: int = DEFAULT_MIN_REPS,
        mad_k: float = DEFAULT_MAD_K,
    ) -> dict:
        """Baseline-vs-candidate regression report between two runs."""
        baseline = self.get(run_a)
        candidate = self.get(run_b)
        report = detect_regressions(
            baseline.get("rows", []),
            candidate.get("rows", []),
            threshold=threshold,
            min_reps=min_reps,
            mad_k=mad_k,
        )
        report["run_a"] = baseline.get("run_id")
        report["run_b"] = candidate.get("run_id")
        return report
