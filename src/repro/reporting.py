"""Human-readable model and analysis reports.

:func:`describe_model` renders the layer table a practitioner checks
before reduction: per-layer type, shape, parameter count, spectral norm
and the Table-I step sizes; :func:`describe_analysis` summarizes what the
error-flow analyzer would answer for every standard format.
"""

from __future__ import annotations

import numpy as np

from .core.errorflow import ErrorFlowAnalyzer
from .nn.module import Module
from .quant.formats import STANDARD_FORMATS
from .quant.quantizer import quantizable_layers
from .quant.stepsize import average_step_size

__all__ = ["describe_model", "describe_analysis"]


def describe_model(model: Module) -> str:
    """Layer-by-layer report of a trained network.

    Includes every weight-bearing layer's qualified name, class, weight
    shape, parameter count, effective spectral norm and FP16/INT8 step
    sizes, plus model totals.
    """
    from .nn.spectral import spectral_norm

    lines = [
        f"{'layer':<28} {'type':<16} {'weight shape':<16} "
        f"{'params':>8} {'sigma':>8} {'q fp16':>10} {'q int8':>10}"
    ]
    total_params = 0
    for name, layer in quantizable_layers(model):
        weights = np.asarray(layer.effective_weight(), dtype=np.float64)
        sigma = getattr(layer, "spectral_alpha", None)
        if sigma is None:
            sigma = spectral_norm(weights)
        weight_param = getattr(layer, "weight", None) or layer.raw_weight
        params = weight_param.size + (layer.bias.size if layer.bias is not None else 0)
        total_params += params
        lines.append(
            f"{name:<28} {type(layer).__name__:<16} {str(weight_param.shape):<16} "
            f"{params:>8d} {sigma:>8.3f} "
            f"{average_step_size(weights, STANDARD_FORMATS['fp16']):>10.2e} "
            f"{average_step_size(weights, STANDARD_FORMATS['int8']):>10.2e}"
        )
    other = model.num_parameters() - total_params
    lines.append(f"weight parameters: {total_params}   other (bias/norm/psn): {other}")
    return "\n".join(lines)


def describe_analysis(
    analyzer: ErrorFlowAnalyzer, reference_norm: float | None = None
) -> str:
    """Summarize the analyzer's answers for every standard format.

    Parameters
    ----------
    analyzer:
        A (possibly calibrated) error-flow analyzer.
    reference_norm:
        Optional QoI norm to express bounds relatively.
    """
    lines = [
        f"layers: {len(analyzer.layer_sigmas())}   "
        f"Eq.(5) gain: {analyzer.gain():.4g}   "
        f"calibrated: {analyzer.is_calibrated}"
    ]
    header = f"{'format':>6} {'quant bound':>12}"
    if reference_norm:
        header += f" {'relative':>10}"
    lines.append(header)
    for name in ("tf32", "fp16", "bf16", "int8"):
        bound = analyzer.quantization_bound(STANDARD_FORMATS[name])
        row = f"{name:>6} {bound:>12.3e}"
        if reference_norm:
            row += f" {bound / reference_norm:>10.3e}"
        lines.append(row)
    return "\n".join(lines)
