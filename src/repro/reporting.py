"""Human-readable model and analysis reports.

:func:`describe_model` renders the layer table a practitioner checks
before reduction: per-layer type, shape, parameter count, spectral norm
and the Table-I step sizes; :func:`describe_analysis` summarizes what the
error-flow analyzer would answer for every standard format;
:func:`describe_audit` and :func:`describe_audit_diff` render one audit
record and the tightness comparison of two registered runs.
"""

from __future__ import annotations

import numpy as np

from .core.errorflow import ErrorFlowAnalyzer
from .nn.module import Module
from .quant.formats import STANDARD_FORMATS
from .quant.quantizer import quantizable_layers
from .quant.stepsize import average_step_size

__all__ = [
    "describe_analysis",
    "describe_audit",
    "describe_audit_diff",
    "describe_model",
]


def describe_model(model: Module) -> str:
    """Layer-by-layer report of a trained network.

    Includes every weight-bearing layer's qualified name, class, weight
    shape, parameter count, effective spectral norm and FP16/INT8 step
    sizes, plus model totals.
    """
    from .nn.spectral import spectral_norm

    lines = [
        f"{'layer':<28} {'type':<16} {'weight shape':<16} "
        f"{'params':>8} {'sigma':>8} {'q fp16':>10} {'q int8':>10}"
    ]
    total_params = 0
    for name, layer in quantizable_layers(model):
        weights = np.asarray(layer.effective_weight(), dtype=np.float64)
        sigma = getattr(layer, "spectral_alpha", None)
        if sigma is None:
            sigma = spectral_norm(weights)
        weight_param = getattr(layer, "weight", None) or layer.raw_weight
        params = weight_param.size + (layer.bias.size if layer.bias is not None else 0)
        total_params += params
        lines.append(
            f"{name:<28} {type(layer).__name__:<16} {str(weight_param.shape):<16} "
            f"{params:>8d} {sigma:>8.3f} "
            f"{average_step_size(weights, STANDARD_FORMATS['fp16']):>10.2e} "
            f"{average_step_size(weights, STANDARD_FORMATS['int8']):>10.2e}"
        )
    other = model.num_parameters() - total_params
    lines.append(f"weight parameters: {total_params}   other (bias/norm/psn): {other}")
    return "\n".join(lines)


def describe_analysis(
    analyzer: ErrorFlowAnalyzer, reference_norm: float | None = None
) -> str:
    """Summarize the analyzer's answers for every standard format.

    Parameters
    ----------
    analyzer:
        A (possibly calibrated) error-flow analyzer.
    reference_norm:
        Optional QoI norm to express bounds relatively.
    """
    lines = [
        f"layers: {len(analyzer.layer_sigmas())}   "
        f"Eq.(5) gain: {analyzer.gain():.4g}   "
        f"calibrated: {analyzer.is_calibrated}"
    ]
    header = f"{'format':>6} {'quant bound':>12}"
    if reference_norm:
        header += f" {'relative':>10}"
    lines.append(header)
    for name in ("tf32", "fp16", "bf16", "int8"):
        bound = analyzer.quantization_bound(STANDARD_FORMATS[name])
        row = f"{name:>6} {bound:>12.3e}"
        if reference_norm:
            row += f" {bound / reference_norm:>10.3e}"
        lines.append(row)
    return "\n".join(lines)


def describe_audit(record: dict) -> str:
    """Render one audit record (an ``AuditRecord.to_dict()`` payload).

    Per-layer rows show the observed L2 error at each segment end, the
    predicted cumulative Inequality (3) envelope, their ratio
    (*tightness*: 1.0 = bound exactly attained, >1 = violated) and the
    verdict; a summary line carries the QoI-level result and provenance.
    """
    lines = [
        f"audit {record.get('run_id') or '(unregistered)'}"
        f"  codec={record.get('codec', '?')} fmt={record.get('fmt', '?')}"
        f" norm={record.get('norm', '?')}"
        f" weights=v{record.get('weight_version', '?')}"
    ]
    if record.get("layers"):
        lines.append(
            f"{'layer':<12} {'observed L2':>12} {'bound':>12} "
            f"{'tightness':>10} {'verdict':>10}"
        )
        for layer in record["layers"]:
            lines.append(
                f"{layer['name']:<12} {layer['observed_l2']:>12.4e} "
                f"{layer['predicted_bound']:>12.4e} "
                f"{layer['tightness']:>10.3f} {layer['verdict']:>10}"
            )
    else:
        lines.append("(no per-layer envelope: QoI-only audit)")
    lines.append(
        f"QoI: observed {record.get('qoi_observed', 0.0):.4e}"
        f" / predicted {record.get('qoi_predicted', 0.0):.4e}"
        f" = tightness {record.get('qoi_tightness', 0.0):.3f}"
        f"  [{record.get('verdict', '?')}]"
    )
    return "\n".join(lines)


def describe_audit_diff(diff: dict) -> str:
    """Render a registry diff (:meth:`~repro.obs.registry.RunRegistry.diff`).

    Flags every layer whose tightness regressed more than the diff's
    threshold and every newly violated bound; the weight-version line
    distinguishes "the model changed" from "the bound quality changed".
    """
    changed = "changed" if diff.get("weights_changed") else "unchanged"
    lines = [
        f"audit diff {diff.get('run_a', '?')} -> {diff.get('run_b', '?')}"
        f"  (weights {changed}:"
        f" v{diff.get('weight_version_a', '?')} -> v{diff.get('weight_version_b', '?')})"
    ]
    if diff.get("layers"):
        lines.append(
            f"{'layer':<12} {'tight A':>10} {'tight B':>10} {'delta':>10} {'':>12}"
        )
        for row in diff["layers"]:
            flag = ""
            if row.get("regressed"):
                flag = f"REGRESSED +{row['relative'] * 100.0:.0f}%"
            lines.append(
                f"{row['name']:<12} {row['tightness_a']:>10.3f} "
                f"{row['tightness_b']:>10.3f} {row['delta']:>+10.3f} {flag:>12}"
            )
    qoi = diff.get("qoi", {})
    lines.append(
        f"QoI tightness: {qoi.get('tightness_a', 0.0):.3f} -> "
        f"{qoi.get('tightness_b', 0.0):.3f} ({qoi.get('delta', 0.0):+.3f})"
    )
    threshold = diff.get("threshold", 0.0)
    if diff.get("regressions"):
        lines.append(
            f"tightness regressed >{threshold * 100.0:.0f}% at: "
            + ", ".join(diff["regressions"])
        )
    if diff.get("new_violations"):
        lines.append("NEW VIOLATIONS at: " + ", ".join(diff["new_violations"]))
    if diff.get("structure_changed"):
        lines.append(
            "layers present in only one run: " + ", ".join(diff["structure_changed"])
        )
    if not (diff.get("regressions") or diff.get("new_violations")):
        lines.append(f"no drift beyond {threshold * 100.0:.0f}% threshold")
    return "\n".join(lines)
