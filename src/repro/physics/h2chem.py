"""Reduced hydrogen-oxygen reaction kinetics (9 species).

The paper's first workload is a surrogate for the chemical source terms of
a 9-species hydrogen mechanism (ref. [1]).  This module implements a
compact H2-O2 mechanism with Arrhenius kinetics so the dataset generator
can produce physically-shaped (mass fractions -> reaction rates) training
pairs: the species set matches the paper's mechanism and the rates span
the many orders of magnitude that make error control non-trivial.

Rate coefficients are representative of the Li/O'Conaire H2 mechanisms
(irreversible forward rates); this is a *surrogate-generating* model, not
a certified kinetics library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError

__all__ = ["SPECIES", "MOLAR_MASS", "H2Mechanism"]

#: Species order used throughout the combustion workload.
SPECIES: tuple[str, ...] = ("H2", "O2", "H2O", "H", "O", "OH", "HO2", "H2O2", "N2")

#: Molar masses in g/mol.
MOLAR_MASS = np.array([2.016, 31.998, 18.015, 1.008, 15.999, 17.007, 33.006, 34.014, 28.014])

_R_CAL = 1.987  # cal/(mol K)


@dataclass(frozen=True)
class _Reaction:
    """One irreversible elementary reaction with Arrhenius rate."""

    reactants: tuple[int, ...]
    products: tuple[int, ...]
    log_a: float  # log10 of pre-exponential factor (cm^3, mol, s units)
    beta: float  # temperature exponent
    ea: float  # activation energy, cal/mol
    third_body: bool = False

    def rate_constant(self, temperature: np.ndarray) -> np.ndarray:
        return (
            10.0**self.log_a
            * temperature**self.beta
            * np.exp(-self.ea / (_R_CAL * temperature))
        )


_I = {name: index for index, name in enumerate(SPECIES)}

_REACTIONS: tuple[_Reaction, ...] = (
    # chain branching / propagation
    _Reaction((_I["H"], _I["O2"]), (_I["O"], _I["OH"]), 13.3, 0.0, 16440.0),
    _Reaction((_I["O"], _I["H2"]), (_I["H"], _I["OH"]), 4.7, 2.67, 6290.0),
    _Reaction((_I["OH"], _I["H2"]), (_I["H"], _I["H2O"]), 8.3, 1.51, 3430.0),
    _Reaction((_I["O"], _I["H2O"]), (_I["OH"], _I["OH"]), 6.5, 2.02, 13400.0),
    # dissociation / recombination (third body)
    _Reaction((_I["H2"],), (_I["H"], _I["H"]), 19.7, -1.4, 104380.0, third_body=True),
    _Reaction((_I["H"], _I["OH"]), (_I["H2O"],), 22.4, -2.0, 0.0, third_body=True),
    _Reaction((_I["H"], _I["O2"]), (_I["HO2"],), 18.0, -0.8, 0.0, third_body=True),
    # HO2 chemistry
    _Reaction((_I["HO2"], _I["H"]), (_I["OH"], _I["OH"]), 13.8, 0.0, 295.0),
    _Reaction((_I["HO2"], _I["H"]), (_I["H2"], _I["O2"]), 13.2, 0.0, 823.0),
    _Reaction((_I["HO2"], _I["OH"]), (_I["H2O"], _I["O2"]), 13.5, 0.0, -497.0),
    _Reaction((_I["HO2"], _I["HO2"]), (_I["H2O2"], _I["O2"]), 11.6, 0.0, -1093.0),
    # H2O2 chemistry
    _Reaction((_I["H2O2"],), (_I["OH"], _I["OH"]), 14.1, 0.0, 48430.0, third_body=True),
    _Reaction((_I["H2O2"], _I["H"]), (_I["H2O"], _I["OH"]), 13.4, 0.0, 3970.0),
    _Reaction((_I["H2O2"], _I["OH"]), (_I["H2O"], _I["HO2"]), 12.0, 0.0, 427.0),
)


class H2Mechanism:
    """Evaluate net species production rates from mass fractions.

    Parameters
    ----------
    density:
        Mixture mass density in g/cm^3 (constant-density approximation).
    t_unburnt, t_burnt:
        Temperature is reconstructed from the water mass fraction as a
        progress variable, interpolating between these limits [K].
    """

    n_species = len(SPECIES)

    def __init__(
        self,
        density: float = 2.5e-4,
        t_unburnt: float = 700.0,
        t_burnt: float = 2400.0,
    ) -> None:
        self.density = float(density)
        self.t_unburnt = float(t_unburnt)
        self.t_burnt = float(t_burnt)

    def temperature(self, mass_fractions: np.ndarray) -> np.ndarray:
        """Progress-variable temperature model based on Y(H2O)."""
        progress = np.clip(mass_fractions[..., _I["H2O"]] / 0.25, 0.0, 1.0)
        return self.t_unburnt + (self.t_burnt - self.t_unburnt) * progress

    def concentrations(self, mass_fractions: np.ndarray) -> np.ndarray:
        """Molar concentrations [mol/cm^3] from mass fractions."""
        return self.density * mass_fractions / MOLAR_MASS

    def production_rates(self, mass_fractions: np.ndarray) -> np.ndarray:
        """Net mass production rate of each species [g/(cm^3 s)].

        Parameters
        ----------
        mass_fractions:
            Array of shape ``(..., 9)``; values are clipped to ``[0, 1]``.

        Returns
        -------
        Array of shape ``(..., 9)``; N2 is inert and gets rate 0.
        """
        mass_fractions = np.asarray(mass_fractions, dtype=np.float64)
        if mass_fractions.shape[-1] != self.n_species:
            raise ShapeError(
                f"expected trailing dimension {self.n_species}, got {mass_fractions.shape}"
            )
        y = np.clip(mass_fractions, 0.0, 1.0)
        conc = self.concentrations(y)
        temperature = self.temperature(y)
        third_body = conc.sum(axis=-1)
        molar_rates = np.zeros_like(conc)
        for reaction in _REACTIONS:
            rate = reaction.rate_constant(temperature)
            for index in reaction.reactants:
                rate = rate * conc[..., index]
            if reaction.third_body:
                rate = rate * third_body
            for index in reaction.reactants:
                molar_rates[..., index] -= rate
            for index in reaction.products:
                molar_rates[..., index] += rate
        return molar_rates * MOLAR_MASS
