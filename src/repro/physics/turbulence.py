"""Spectral synthesis of turbulent fields.

The Borghesi-flame and combustion workloads need scalar and velocity
fields with realistic spatial correlation (what makes scientific data
compressible).  Fields are synthesized in Fourier space with a
Kolmogorov-like power spectrum ``E(k) ~ k^-slope`` and random phases —
the standard kinematic-simulation construction.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["synthesize_scalar", "synthesize_velocity", "gradient"]


def _radial_wavenumbers(shape: tuple[int, ...]) -> np.ndarray:
    axes = [np.fft.fftfreq(size, d=1.0 / size) for size in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.sqrt(sum(grid**2 for grid in grids))


def _spectral_noise(
    shape: tuple[int, ...], slope: float, cutoff: float, rng: np.random.Generator
) -> np.ndarray:
    """Real random field with amplitude spectrum ``k^(-slope/2)``."""
    k = _radial_wavenumbers(shape)
    amplitude = np.zeros_like(k)
    nonzero = k > 0
    amplitude[nonzero] = k[nonzero] ** (-slope / 2.0)
    if cutoff > 0:
        amplitude *= np.exp(-((k / cutoff) ** 2))
    phases = rng.uniform(0.0, 2.0 * np.pi, size=shape)
    spectrum = amplitude * np.exp(1j * phases)
    field = np.real(np.fft.ifftn(spectrum))
    std = field.std()
    if std == 0:
        raise ConfigurationError("degenerate spectrum produced a constant field")
    return field / std


def synthesize_scalar(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    slope: float = 5.0 / 3.0,
    cutoff_fraction: float = 0.5,
) -> np.ndarray:
    """Zero-mean, unit-variance scalar field with a ``k^-slope`` spectrum.

    Parameters
    ----------
    shape:
        Grid shape (any dimensionality).
    rng:
        Random generator for the spectral phases.
    slope:
        Energy-spectrum exponent; 5/3 mimics inertial-range turbulence.
    cutoff_fraction:
        Gaussian spectral cutoff as a fraction of the Nyquist wavenumber
        (controls the smallest resolved scale).
    """
    cutoff = cutoff_fraction * min(shape) / 2.0
    return _spectral_noise(shape, slope, cutoff, rng)


def synthesize_velocity(
    shape: tuple[int, int],
    rng: np.random.Generator,
    slope: float = 5.0 / 3.0,
) -> tuple[np.ndarray, np.ndarray]:
    """2-D divergence-free velocity field from a random streamfunction.

    ``u = d(psi)/dy, v = -d(psi)/dx`` is exactly solenoidal, which is the
    property that matters for advected-scalar realism.
    """
    streamfunction = synthesize_scalar(shape, rng, slope=slope + 2.0)
    # With axis 0 = y and axis 1 = x: u = dpsi/dy, v = -dpsi/dx, so the
    # discrete divergence du/dx + dv/dy cancels exactly in the interior
    # (central differences commute).
    u = np.gradient(streamfunction, axis=0)
    v = -np.gradient(streamfunction, axis=1)
    return u, v


def gradient(field: np.ndarray, spacing: float = 1.0) -> list[np.ndarray]:
    """Central-difference gradient along every axis."""
    return list(np.gradient(field, spacing))
