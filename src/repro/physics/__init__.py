"""Physics substrates: reduced H2 kinetics, turbulence synthesis, flow fields."""

from .fields import advect_scalar, box_filter, lamb_oseen_vortex, mixture_fraction_jet
from .h2chem import MOLAR_MASS, SPECIES, H2Mechanism
from .turbulence import gradient, synthesize_scalar, synthesize_velocity

__all__ = [
    "H2Mechanism",
    "MOLAR_MASS",
    "SPECIES",
    "advect_scalar",
    "box_filter",
    "gradient",
    "lamb_oseen_vortex",
    "mixture_fraction_jet",
    "synthesize_scalar",
    "synthesize_velocity",
]
