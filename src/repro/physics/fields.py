"""Analytic flow structures and filtering helpers for dataset synthesis."""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["lamb_oseen_vortex", "advect_scalar", "box_filter", "mixture_fraction_jet"]


def lamb_oseen_vortex(
    shape: tuple[int, int],
    circulation: float = 8.0,
    core_radius: float = 0.15,
    center: tuple[float, float] = (0.5, 0.5),
) -> tuple[np.ndarray, np.ndarray]:
    """Velocity field of a single Lamb-Oseen vortex on the unit square.

    The paper's hydrogen-combustion dataset features "a single vortex
    structure positioned at the center" as the turbulence source; this is
    that structure.
    """
    ny, nx = shape
    y = (np.arange(ny) + 0.5) / ny - center[0]
    x = (np.arange(nx) + 0.5) / nx - center[1]
    dy, dx = np.meshgrid(y, x, indexing="ij")
    radius_sq = dx**2 + dy**2
    radius = np.sqrt(radius_sq) + 1e-12
    tangential = (
        circulation
        / (2.0 * np.pi * radius)
        * (1.0 - np.exp(-radius_sq / core_radius**2))
    )
    u = -tangential * dy / radius
    v = tangential * dx / radius
    return u, v


def advect_scalar(
    scalar: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    dt: float = 0.02,
    steps: int = 10,
) -> np.ndarray:
    """Semi-Lagrangian advection of a scalar by a static velocity field.

    Cheap but stable: each step traces characteristics backwards and
    samples with bilinear interpolation (``scipy.ndimage.map_coordinates``).
    Used to wrap a mixture-fraction interface around the central vortex.
    """
    ny, nx = scalar.shape
    yy, xx = np.meshgrid(np.arange(ny, dtype=np.float64), np.arange(nx, dtype=np.float64), indexing="ij")
    out = scalar.astype(np.float64)
    for __ in range(steps):
        depart_y = yy - dt * v * ny
        depart_x = xx - dt * u * nx
        out = ndimage.map_coordinates(
            out, [depart_y, depart_x], order=1, mode="nearest"
        )
    return out


def box_filter(field: np.ndarray, width: int) -> np.ndarray:
    """Top-hat (box) filter, the standard LES filtering operation."""
    if width <= 1:
        return field.astype(np.float64)
    return ndimage.uniform_filter(field.astype(np.float64), size=width, mode="nearest")


def mixture_fraction_jet(
    shape: tuple[int, int], jet_width: float = 0.25, steepness: float = 12.0
) -> np.ndarray:
    """Planar-jet mixture-fraction profile: 1 in the core, 0 outside."""
    ny, __ = shape
    y = (np.arange(ny) + 0.5) / ny - 0.5
    profile = 0.5 * (
        np.tanh(steepness * (y + jet_width / 2)) - np.tanh(steepness * (y - jet_width / 2))
    )
    return np.repeat(profile[:, None], shape[1], axis=1)
