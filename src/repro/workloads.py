"""Ready-made trained workloads: dataset + model + analyzer bundles.

The paper's experiments all start from *trained* networks (Fig. 1).  This
module trains the three task models deterministically and caches the
weights on disk, so examples, tests and benchmarks share identical
models without retraining.

Each task offers three training variants (the comparison lines of
Figs. 3 and 4):

* ``psn`` — parameterized spectral normalization + spectral penalty
  (the paper's method);
* ``plain`` — ordinary layers, no regularization (the "baseline");
* ``weight_decay`` — ordinary layers with L2 weight decay (the
  "baseline w. weight decay").
"""

from __future__ import annotations

import os
import tempfile
import warnings
import zipfile
from dataclasses import dataclass

import numpy as np

from .core.errorflow import ErrorFlowAnalyzer
from .datasets import ScientificDataset, make_borghesi_flame, make_eurosat, make_h2_combustion
from .exceptions import ConfigurationError
from .models import borghesi_net, h2_reaction_net, resnet18
from .nn import SGD, Adam, CrossEntropyLoss, MSELoss, Sequential, Trainer

__all__ = ["TrainedWorkload", "load_workload", "WORKLOAD_NAMES", "VARIANTS"]

WORKLOAD_NAMES = ("h2combustion", "borghesi", "eurosat")
VARIANTS = ("psn", "plain", "weight_decay")

_CACHE_ENV = "REPRO_CACHE_DIR"


def _cache_dir() -> str:
    path = os.environ.get(_CACHE_ENV)
    if path is None:
        path = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), ".cache")
    os.makedirs(path, exist_ok=True)
    return path


@dataclass
class TrainedWorkload:
    """A dataset, its trained surrogate and the pre-built analyzer."""

    name: str
    variant: str
    dataset: ScientificDataset
    model: Sequential
    analyzer: ErrorFlowAnalyzer
    final_train_loss: float

    def reference_outputs(self, inputs: np.ndarray | None = None) -> np.ndarray:
        """Full-precision model outputs on (default: test) inputs."""
        self.model.eval()
        if inputs is None:
            inputs = self.dataset.test_inputs
        return self.model(inputs)

    def qoi_model(self) -> Sequential:
        """The network producing the quantity of interest.

        For EuroSAT the paper takes the *final feature map* (the global
        average-pooled features before the classifier) as the QoI, "as it
        is essential not only for classification but also for downstream
        tasks" (Section III-C); regression tasks use the full model.
        """
        if self.name == "eurosat":
            return Sequential(*list(self.model)[:-1])
        return self.model

    def qoi_analyzer(self) -> ErrorFlowAnalyzer:
        """Error-flow analyzer matching :meth:`qoi_model`."""
        if self.name == "eurosat":
            n_input = int(np.prod(self.dataset.train_inputs.shape[1:]))
            return ErrorFlowAnalyzer(self.qoi_model(), n_input=n_input)
        return self.analyzer


def _build_model(name: str, variant: str, rng: np.random.Generator) -> Sequential:
    spectral = variant == "psn"
    if name == "h2combustion":
        return h2_reaction_net(rng=rng, spectral=spectral)
    if name == "borghesi":
        return borghesi_net(rng=rng, spectral=spectral)
    if name == "eurosat":
        return resnet18(
            in_channels=13, base_width=16, rng=rng, spectral=spectral, alpha_init=0.8
        )
    raise ConfigurationError(f"unknown workload {name!r}; known: {WORKLOAD_NAMES}")


def _make_dataset(name: str, rng: np.random.Generator, small: bool) -> ScientificDataset:
    if name == "h2combustion":
        return make_h2_combustion(grid=64 if small else 96, rng=rng)
    if name == "borghesi":
        return make_borghesi_flame(grid=64 if small else 96, rng=rng)
    if name == "eurosat":
        return make_eurosat(
            n_per_class=12 if small else 24, image_size=24 if small else 32, rng=rng
        )
    raise ConfigurationError(f"unknown workload {name!r}; known: {WORKLOAD_NAMES}")


def _train(
    name: str,
    variant: str,
    model: Sequential,
    dataset: ScientificDataset,
    epochs: int,
    rng: np.random.Generator,
) -> float:
    weight_decay = 1e-4 if variant == "weight_decay" else 0.0
    spectral_weights = {"h2combustion": 1e-4, "borghesi": 1e-3, "eurosat": 3e-4}
    spectral_weight = spectral_weights[name] if variant == "psn" else 0.0
    if name == "h2combustion":
        # Paper Section IV-A.1: compact Tanh net trained with standard SGD.
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=weight_decay)
        loss = MSELoss()
    elif name == "borghesi":
        # Paper Section IV-A.2: 8-hidden-layer MLP trained with Adam.
        optimizer = Adam(model.parameters(), lr=2e-3, weight_decay=weight_decay)
        loss = MSELoss()
    else:
        # Paper Section IV-A.3 trains with SGD on the real EuroSAT; on the
        # small synthetic substrate Adam is required for the BN-free
        # spectral ResNet to converge (documented substitution).
        optimizer = Adam(model.parameters(), lr=3e-3, weight_decay=weight_decay)
        loss = CrossEntropyLoss()
    trainer = Trainer(model, loss, optimizer, spectral_weight=spectral_weight)
    batch_size = 16 if name == "eurosat" else 128
    history = trainer.fit(
        dataset.train_inputs, dataset.train_targets, epochs=epochs, batch_size=batch_size, rng=rng
    )
    return history.train_loss[-1]


def _load_cached_state(cache_file: str, model: Sequential) -> float | None:
    """Restore model weights from a cached ``.npz``; None if unusable.

    On real storage a cache file can be truncated, bit-flipped or simply
    stale (written by an older model layout).  Any such corruption is
    detected here, the bad file is deleted, and the caller retrains —
    a corrupt cache must never crash (or silently poison) a run.
    """
    try:
        with np.load(cache_file) as archive:
            state = {key: archive[key] for key in archive.files if key != "__loss__"}
            loss = (
                float(archive["__loss__"]) if "__loss__" in archive.files else float("nan")
            )
        for key, value in state.items():
            if not np.all(np.isfinite(value)):
                raise ValueError(f"cached weight {key!r} contains non-finite values")
        model.load_state_dict(state)
        return loss
    except (zipfile.BadZipFile, KeyError, ValueError, OSError, EOFError) as exc:
        warnings.warn(
            f"workload cache {os.path.basename(cache_file)!r} is corrupt or "
            f"stale ({type(exc).__name__}: {exc}); deleting and retraining",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            os.unlink(cache_file)
        except OSError:
            pass
        return None


def _save_cached_state(cache_file: str, payload: dict) -> None:
    """Write the weight cache atomically (temp file + ``os.replace``).

    Mirrors ``DatasetStore.put``: a crashed or concurrent writer can
    never leave a torn ``.npz`` for the next run to trip over.
    """
    directory = os.path.dirname(cache_file)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(temp_path, cache_file)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


def _default_epochs(name: str) -> int:
    epochs = {"h2combustion": 60, "borghesi": 40, "eurosat": 30}.get(name)
    if epochs is None:
        raise ConfigurationError(f"unknown workload {name!r}; known: {WORKLOAD_NAMES}")
    return epochs


def load_workload(
    name: str,
    variant: str = "psn",
    epochs: int | None = None,
    small: bool = True,
    use_cache: bool = True,
    seed: int = 0,
) -> TrainedWorkload:
    """Load (or train and cache) one of the paper's three workloads.

    Parameters
    ----------
    name:
        ``h2combustion``, ``borghesi`` or ``eurosat``.
    variant:
        ``psn`` (the paper's method), ``plain`` or ``weight_decay``.
    epochs:
        Training epochs; defaults to a per-task setting that reaches a
        useful fit on the numpy substrate.
    small:
        Use reduced grids / image counts (fast enough for CI); ``False``
        builds the larger configuration.
    use_cache:
        Reuse weights cached on disk from a previous identical call.
    """
    if variant not in VARIANTS:
        raise ConfigurationError(f"unknown variant {variant!r}; known: {VARIANTS}")
    if epochs is None:
        epochs = _default_epochs(name)
    data_rng = np.random.default_rng(seed)
    dataset = _make_dataset(name, data_rng, small)
    model_rng = np.random.default_rng(seed + 1)
    model = _build_model(name, variant, model_rng)

    cache_file = os.path.join(
        _cache_dir(), f"{name}-{variant}-e{epochs}-s{int(small)}-seed{seed}.npz"
    )
    final_loss = None
    if use_cache and os.path.exists(cache_file):
        final_loss = _load_cached_state(cache_file, model)
    if final_loss is None:
        # Rebuild in case a partially-applied corrupt cache touched weights.
        model = _build_model(name, variant, np.random.default_rng(seed + 1))
        train_rng = np.random.default_rng(seed + 2)
        final_loss = _train(name, variant, model, dataset, epochs, train_rng)
        if use_cache:
            payload = dict(model.state_dict())
            payload["__loss__"] = np.asarray(final_loss)
            _save_cached_state(cache_file, payload)
    model.eval()
    n_input = int(np.prod(dataset.train_inputs.shape[1:]))
    analyzer = ErrorFlowAnalyzer(model, n_input=n_input)
    return TrainedWorkload(
        name=name,
        variant=variant,
        dataset=dataset,
        model=model,
        analyzer=analyzer,
        final_train_loss=final_loss,
    )
