"""Post-training quantization: numeric formats, step sizes and quantizers."""

from .affine import AffineParams, calibrate_minmax, dequantize_affine, quantize_affine
from .formats import (
    BF16,
    FP16,
    FP32,
    INT8,
    STANDARD_FORMATS,
    TF32,
    FloatFormat,
    IntFormat,
    NumericFormat,
    get_format,
)
from .granular import Granularity, GranularResult, granular_quantize, granular_step_size
from .quantizer import QuantizedModel, materialize, quantizable_layers, quantize_model
from .stepsize import average_step_size, elementwise_step_size

__all__ = [
    "BF16",
    "FP16",
    "FP32",
    "INT8",
    "STANDARD_FORMATS",
    "TF32",
    "AffineParams",
    "FloatFormat",
    "Granularity",
    "GranularResult",
    "IntFormat",
    "NumericFormat",
    "QuantizedModel",
    "average_step_size",
    "calibrate_minmax",
    "dequantize_affine",
    "elementwise_step_size",
    "get_format",
    "granular_quantize",
    "granular_step_size",
    "materialize",
    "quantizable_layers",
    "quantize_model",
]
