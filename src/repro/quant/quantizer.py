"""Post-training weight quantization of whole models.

The pipeline of Fig. 1 takes a trained network and, for a chosen numeric
format, stores every weight tensor in that format.  Spectrally-normalized
layers are first *materialized* — their effective weight
``alpha * W / sigma(W)`` becomes a plain dense/conv kernel — so that the
quantized model is an ordinary inference network.

Per-layer mixed precision (a Section IV-D extension) is supported by
passing a format per quantizable layer.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import QuantizationError
from ..obs import get_metrics, get_tracer
from ..nn.conv import Conv2d, SpectralConv2d
from ..nn.linear import Linear, SpectralLinear
from ..nn.module import Module
from ..nn.residual import ResidualBlock
from ..nn.sequential import Sequential
from .formats import FP32, NumericFormat
from .stepsize import average_step_size

__all__ = ["QuantizedModel", "materialize", "quantizable_layers", "quantize_model"]


def _materialize_leaf(module: Module) -> Module:
    """Clone a module, lowering spectral layers to plain ones.

    Non-spectral containers are deep-copied and their children lowered
    recursively, so custom composites (e.g. U-Net levels) materialize
    correctly too.
    """
    if isinstance(module, SpectralLinear):
        plain = Linear(module.in_features, module.out_features, bias=module.bias is not None)
        plain.weight.data = module.effective_weight().astype(np.float32)
        if module.bias is not None:
            plain.bias.data = module.bias.data.copy()
        return plain
    if isinstance(module, SpectralConv2d):
        plain = Conv2d(
            module.in_channels,
            module.out_channels,
            module.kernel_size,
            stride=module.stride,
            padding=module.padding,
            bias=module.bias is not None,
        )
        plain.set_matricized_weight(module.effective_weight().astype(np.float32))
        if module.bias is not None:
            plain.bias.data = module.bias.data.copy()
        return plain
    clone = copy.deepcopy(module)
    for name in list(clone._modules):
        clone.register_module(name, materialize(clone._modules[name]))
    return clone


def materialize(model: Module) -> Module:
    """Deep copy of ``model`` with every spectral layer lowered to plain.

    The copy shares no state with the original, so quantizing it never
    perturbs the trained network.
    """
    if isinstance(model, Sequential):
        return Sequential(*(materialize(layer) for layer in model))
    if isinstance(model, ResidualBlock):
        clone = ResidualBlock(
            materialize(model.body),
            shortcut=None if model.shortcut is None else materialize(model.shortcut),
            post_activation=(
                None if model.post_activation is None else materialize(model.post_activation)
            ),
        )
        for attr in ("in_channels", "out_channels", "stride"):
            if hasattr(model, attr):
                object.__setattr__(clone, attr, getattr(model, attr))
        return clone
    return _materialize_leaf(model)


def quantizable_layers(model: Module) -> list[tuple[str, Module]]:
    """Weight-bearing leaves in forward order, with qualified names."""
    found: list[tuple[str, Module]] = []

    def visit(module: Module, prefix: str) -> None:
        if isinstance(module, (Linear, SpectralLinear, Conv2d, SpectralConv2d)):
            found.append((prefix.rstrip("."), module))
            return
        for name, child in module._modules.items():
            visit(child, f"{prefix}{name}.")

    visit(model, "")
    return found


@dataclass
class QuantizedModel:
    """A quantized inference network plus its quantization metadata.

    Attributes
    ----------
    model:
        Materialized model with weights stored in the target format(s).
    formats:
        Format applied to each quantizable layer, in forward order.
    step_sizes:
        Table-I average step ``q_l`` per quantizable layer.
    original_bytes / quantized_bytes:
        Weight storage footprint before/after quantization.
    """

    model: Module
    formats: list[NumericFormat]
    step_sizes: list[float]
    layer_names: list[str]
    original_bytes: int
    quantized_bytes: int
    extra: dict = field(default_factory=dict)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.model(x)

    @property
    def compression_of_weights(self) -> float:
        """Weight memory reduction factor (>= 1)."""
        if self.quantized_bytes == 0:
            return float("inf")
        return self.original_bytes / self.quantized_bytes

    def describe(self) -> str:
        lines = ["layer                          format  step q"]
        for name, fmt, q in zip(self.layer_names, self.formats, self.step_sizes):
            lines.append(f"{name:<30} {fmt.name:>6}  {q:.3e}")
        return "\n".join(lines)


def quantize_model(
    model: Module,
    fmt: NumericFormat | Sequence[NumericFormat],
    quantize_shortcuts: bool = True,
) -> QuantizedModel:
    """Weight-only post-training quantization.

    Parameters
    ----------
    model:
        Trained network (may contain spectral layers; they are
        materialized first).  Left untouched.
    fmt:
        A single format for every layer, or one format per quantizable
        layer in forward order (mixed precision).
    quantize_shortcuts:
        When ``False``, 1x1 projection shortcuts stay in FP32 (ablation
        knob; the paper quantizes everything).

    Returns
    -------
    QuantizedModel
        Independent inference model plus step-size metadata for the bound.
    """
    with get_tracer().span("quant.quantize_model") as span:
        quantized = _quantize_model_impl(model, fmt, quantize_shortcuts)
        span.set(
            layers=len(quantized.layer_names),
            formats=",".join(sorted({f.name for f in quantized.formats})),
            original_bytes=quantized.original_bytes,
            quantized_bytes=quantized.quantized_bytes,
        )
    metrics = get_metrics()
    metrics.counter("quantizations_total").inc()
    for fmt_name, step in zip((f.name for f in quantized.formats), quantized.step_sizes):
        metrics.histogram("quant_step_size", fmt=fmt_name).observe(step)
    return quantized


def _quantize_model_impl(
    model: Module,
    fmt: NumericFormat | Sequence[NumericFormat],
    quantize_shortcuts: bool,
) -> QuantizedModel:
    frozen = materialize(model)
    frozen.eval()
    layers = quantizable_layers(frozen)
    if not layers:
        raise QuantizationError("model has no quantizable layers")
    if isinstance(fmt, NumericFormat):
        per_layer = [fmt] * len(layers)
    else:
        per_layer = list(fmt)
        if len(per_layer) != len(layers):
            raise QuantizationError(
                f"got {len(per_layer)} formats for {len(layers)} quantizable layers"
            )

    names: list[str] = []
    formats: list[NumericFormat] = []
    steps: list[float] = []
    original_bytes = 0
    quantized_bytes = 0
    for (name, layer), layer_fmt in zip(layers, per_layer):
        weights = layer.weight.data
        original_bytes += weights.size * 4
        in_shortcut = ".shortcut." in f".{name}." or name.startswith("shortcut")
        if not quantize_shortcuts and in_shortcut:
            layer_fmt = FP32
        quantized_bytes += int(weights.size * layer_fmt.storage_bits / 8)
        if not layer_fmt.is_identity:
            layer.weight.data = layer_fmt.quantize(weights).astype(np.float32)
        names.append(name)
        formats.append(layer_fmt)
        steps.append(average_step_size(weights, layer_fmt) if not layer_fmt.is_identity else 0.0)

    return QuantizedModel(
        model=frozen,
        formats=formats,
        step_sizes=steps,
        layer_names=names,
        original_bytes=original_bytes,
        quantized_bytes=quantized_bytes,
    )
