"""Uniform affine quantization primitives (integer codes + scale/zero point).

:class:`~repro.quant.formats.IntFormat` rounds values in one shot; this
module exposes the underlying code/scale representation, which is what a
deployment stack actually stores and what the granular (block/row/column)
schemes parameterize per group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import QuantizationError

__all__ = ["AffineParams", "calibrate_minmax", "quantize_affine", "dequantize_affine"]


@dataclass(frozen=True)
class AffineParams:
    """Scale and zero point for one quantization group.

    Reconstruction is ``value = (code - zero_point) * scale``.
    """

    scale: float
    zero_point: int
    bits: int

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def code_min(self) -> int:
        return 0

    @property
    def code_max(self) -> int:
        return self.levels - 1


def calibrate_minmax(values: np.ndarray, bits: int = 8) -> AffineParams:
    """Max calibration: span the grid across ``[min(values), max(values)]``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise QuantizationError("cannot calibrate an empty tensor")
    if bits < 2:
        raise QuantizationError(f"affine quantization needs >= 2 bits, got {bits}")
    low = float(values.min())
    high = float(values.max())
    if high == low:
        # Degenerate constant tensor: any positive scale reproduces it.
        return AffineParams(scale=1.0, zero_point=int(round(-low)), bits=bits)
    scale = (high - low) / (2**bits - 1)
    zero_point = int(round(-low / scale))
    return AffineParams(scale=scale, zero_point=zero_point, bits=bits)


def quantize_affine(values: np.ndarray, params: AffineParams) -> np.ndarray:
    """Map floats to integer codes in ``[0, 2^bits - 1]``."""
    values = np.asarray(values, dtype=np.float64)
    codes = np.round(values / params.scale) + params.zero_point
    return np.clip(codes, params.code_min, params.code_max).astype(np.int64)


def dequantize_affine(codes: np.ndarray, params: AffineParams) -> np.ndarray:
    """Reconstruct floats from integer codes."""
    codes = np.asarray(codes, dtype=np.int64)
    return (codes - params.zero_point).astype(np.float64) * params.scale
