"""Average quantization step sizes — the formulas of Table I.

The error bound of Inequality (3) consumes one scalar per layer: the
average quantization step ``q_l = q(W^(l))``.  For floating-point formats
the per-element step is ``2^(-m) * 2^floor(log2 |W_ij|)`` (the ulp at the
element's binade) and the table aggregates it in root-mean-square form;
for INT8 affine quantization the step is the grid pitch over the weight
range.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import QuantizationError
from .formats import FloatFormat, IntFormat, NumericFormat

__all__ = ["average_step_size", "elementwise_step_size"]


def elementwise_step_size(weights: np.ndarray, fmt: NumericFormat) -> np.ndarray:
    """Per-element rounding step for ``weights`` under ``fmt``.

    Float formats: the ulp at each element's binade, with the exponent
    clamped at the format's minimum normal exponent (Table I clamps FP16
    at -14).  Zero entries have step 0.  Integer formats: constant
    ``(max - min) / 2^bits`` everywhere (Table I, INT8 row).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if isinstance(fmt, FloatFormat):
        steps = np.zeros_like(weights)
        nonzero = weights != 0.0
        if np.any(nonzero):
            exponent = np.floor(np.log2(np.abs(weights[nonzero])))
            exponent = np.maximum(exponent, float(fmt.min_normal_exponent))
            steps[nonzero] = np.exp2(exponent - fmt.mantissa_bits)
        return steps
    if isinstance(fmt, IntFormat):
        if weights.size == 0:
            return np.zeros_like(weights)
        pitch = (float(weights.max()) - float(weights.min())) / fmt.levels
        return np.full_like(weights, pitch)
    raise QuantizationError(f"no step-size rule for format {fmt!r}")


def average_step_size(weights: np.ndarray, fmt: NumericFormat) -> float:
    """Table I: the average (RMS) quantization step ``q(W)``.

    * TF32: ``2^-10 * sqrt(mean 2^(2 floor(log2 |W_ij|)))``
    * FP16: same with the exponent clamped at -14
    * BF16: ``2^-7  * sqrt(mean 2^(2 floor(log2 |W_ij|)))``
    * INT8: ``2^-8  * (max W - min W)``

    The RMS aggregation matches how the steps enter the bound: the
    quantization noise variance per weight is ``q_ij^2 / 12``, so the
    layer-level scalar must preserve the mean square.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        return 0.0
    if isinstance(fmt, IntFormat):
        return float(weights.max() - weights.min()) / fmt.levels
    steps = elementwise_step_size(weights, fmt)
    return float(np.sqrt(np.mean(steps**2)))
