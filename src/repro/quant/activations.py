"""Activation quantization (paper Section III-B).

The paper focuses on weight-only quantization but notes: "The error
introduced by activation quantization can be addressed similarly to
compression error by applying Equation (5), while excluding all layers
preceding the affected activation."  This module implements exactly that:

* :class:`QuantizedActivationModel` runs inference with hidden
  activations rounded to a numeric format after chosen layers;
* :func:`activation_rounding_bound` gives the pointwise rounding error a
  format introduces on a bounded activation vector, which the analyzer
  amplifies through the remaining layers per Eq. (5).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import QuantizationError
from ..nn.module import Module
from ..nn.sequential import Sequential
from .formats import FloatFormat, IntFormat, NumericFormat

__all__ = ["QuantizedActivationModel", "activation_rounding_bound"]


def activation_rounding_bound(
    fmt: NumericFormat, activation_linf: float, n_activations: int
) -> float:
    """L2 bound on the rounding error of one activation vector.

    Parameters
    ----------
    fmt:
        Format the activations are stored in between layers.
    activation_linf:
        Upper bound on ``max |h_i|`` (e.g. 1.0 right after a Tanh).
    n_activations:
        Width of the activation vector.

    Returns
    -------
    float
        ``||h - round(h)||_2`` worst case: float formats round within
        half an ulp at the activation's own binade; integer formats use
        the max-calibrated grid over ``[-activation_linf, activation_linf]``.
    """
    if activation_linf < 0:
        raise QuantizationError("activation_linf must be non-negative")
    if isinstance(fmt, FloatFormat):
        if fmt.is_identity or activation_linf == 0.0:
            return 0.0
        exponent = max(
            float(np.floor(np.log2(activation_linf))), float(fmt.min_normal_exponent)
        )
        ulp = 2.0 ** (exponent - fmt.mantissa_bits)
        return float(ulp / 2.0 * np.sqrt(n_activations))
    if isinstance(fmt, IntFormat):
        pitch = 2.0 * activation_linf / fmt.levels
        return float(pitch / 2.0 * np.sqrt(n_activations))
    raise QuantizationError(f"no activation rounding rule for {fmt!r}")


class QuantizedActivationModel:
    """Inference wrapper rounding hidden activations to a format.

    Parameters
    ----------
    model:
        A :class:`Sequential` inference network (materialize spectral
        models first).
    fmt:
        Storage format for the activations between layers.
    after_layers:
        Indices of layers whose *outputs* are quantized; default: every
        layer except the last (the QoI itself stays full precision).
    """

    def __init__(
        self,
        model: Module,
        fmt: NumericFormat,
        after_layers: list[int] | None = None,
    ) -> None:
        if not isinstance(model, Sequential):
            raise QuantizationError("activation quantization expects a Sequential model")
        self.model = model
        self.fmt = fmt
        if after_layers is None:
            after_layers = list(range(len(model) - 1))
        self.after_layers = set(int(i) for i in after_layers)
        bad = [i for i in self.after_layers if not 0 <= i < len(model)]
        if bad:
            raise QuantizationError(f"layer indices out of range: {bad}")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.model.eval()
        out = x
        for index, layer in enumerate(self.model):
            out = layer(out)
            if index in self.after_layers and not self.fmt.is_identity:
                out = self.fmt.quantize(out).astype(np.float32)
        return out
