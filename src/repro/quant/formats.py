"""Bit-exact emulation of the numerical formats in the paper (Table I).

Weight-only post-training quantization stores each weight in a reduced
format.  Because the error bound depends only on the rounding step size
(mantissa width for floats, range/levels for INT8), software emulation of
the rounding reproduces exactly the perturbation real hardware storage
introduces:

======  ========  ========  =====================================
format  exponent  mantissa  notes
======  ========  ========  =====================================
FP32    8         23        identity for float32 inputs
TF32    8         10        float32 range, FP16 precision
FP16    5         10        subnormals below 2^-14, max 65504
BF16    8         7         float32 range, 8-bit mantissa budget
INT8    --        --        uniform affine, 256 levels (max calib)
======  ========  ========  =====================================

Custom formats (e.g. the "more mantissa bits" 16-bit formats the paper's
conclusion advocates) are a :class:`FloatFormat` with chosen widths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import QuantizationError

__all__ = [
    "NumericFormat",
    "FloatFormat",
    "IntFormat",
    "FP32",
    "TF32",
    "FP16",
    "BF16",
    "INT8",
    "STANDARD_FORMATS",
    "get_format",
]


@dataclass(frozen=True)
class NumericFormat:
    """Common interface: a name, a storage width and a rounding rule."""

    name: str
    storage_bits: int

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round ``values`` to this format and return them as float64."""
        raise NotImplementedError

    @property
    def is_identity(self) -> bool:
        return False

    def memory_ratio(self) -> float:
        """Storage footprint relative to FP32."""
        return self.storage_bits / 32.0


@dataclass(frozen=True)
class FloatFormat(NumericFormat):
    """A binary floating-point format defined by its bit widths.

    Rounding is round-to-nearest-even on the mantissa at the element's own
    binade, values below the minimum normal exponent fall into the
    subnormal grid (fixed absolute step), and values beyond the
    representable maximum saturate.
    """

    exponent_bits: int
    mantissa_bits: int

    def __post_init__(self) -> None:
        if self.exponent_bits < 2 or self.mantissa_bits < 1:
            raise QuantizationError(
                f"degenerate float format e{self.exponent_bits}m{self.mantissa_bits}"
            )

    @property
    def min_normal_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number (e.g. -14 for FP16)."""
        return 2 - 2 ** (self.exponent_bits - 1)

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent (e.g. 15 for FP16)."""
        return 2 ** (self.exponent_bits - 1) - 1

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return float(
            2.0**self.max_exponent * (2.0 - 2.0**-self.mantissa_bits)
        )

    def quantize(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = values.copy()
        nonzero = out != 0.0
        if not np.any(nonzero):
            return out
        magnitude = np.abs(out[nonzero])
        exponent = np.floor(np.log2(magnitude))
        exponent = np.maximum(exponent, float(self.min_normal_exponent))
        ulp = np.exp2(exponent - self.mantissa_bits)
        # numpy rounds half to even, matching IEEE round-to-nearest-even at
        # the binade granularity we emulate.
        rounded = np.round(out[nonzero] / ulp) * ulp
        limit = self.max_value
        rounded = np.clip(rounded, -limit, limit)
        out[nonzero] = rounded
        return out

    @property
    def is_identity(self) -> bool:
        # FP32 inputs round-trip through a 23-bit mantissa untouched.
        return self.mantissa_bits >= 23 and self.exponent_bits >= 8


@dataclass(frozen=True)
class IntFormat(NumericFormat):
    """Uniform affine integer quantization with max calibration.

    The quantization grid spans ``[min(W), max(W)]`` with ``2**bits``
    levels (paper Section III-A: uniform affine transformation with max
    calibration).  The grid is computed per call, i.e. per weight tensor.
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise QuantizationError(f"integer format needs >= 2 bits, got {self.bits}")

    @property
    def levels(self) -> int:
        return 2**self.bits

    def quantize(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values.copy()
        low = float(values.min())
        high = float(values.max())
        if high == low:
            return values.copy()
        scale = (high - low) / (self.levels - 1)
        codes = np.clip(np.round((values - low) / scale), 0, self.levels - 1)
        return codes * scale + low


FP32 = FloatFormat(name="fp32", storage_bits=32, exponent_bits=8, mantissa_bits=23)
TF32 = FloatFormat(name="tf32", storage_bits=19, exponent_bits=8, mantissa_bits=10)
FP16 = FloatFormat(name="fp16", storage_bits=16, exponent_bits=5, mantissa_bits=10)
BF16 = FloatFormat(name="bf16", storage_bits=16, exponent_bits=8, mantissa_bits=7)
INT8 = IntFormat(name="int8", storage_bits=8, bits=8)

STANDARD_FORMATS: dict[str, NumericFormat] = {
    fmt.name: fmt for fmt in (FP32, TF32, FP16, BF16, INT8)
}


def get_format(name: str) -> NumericFormat:
    """Look up a standard format by name (case-insensitive)."""
    try:
        return STANDARD_FORMATS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(STANDARD_FORMATS))
        raise QuantizationError(f"unknown format {name!r}; known: {known}") from None
