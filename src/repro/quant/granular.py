"""Granular (block/row/column-wise) affine quantization.

Section VI of the paper flags block-, column- and row-wise schemes as the
natural refinement of per-tensor affine quantization: grouping weights and
giving each group its own scale captures the local dynamic range, cutting
the effective step size.  This module implements those schemes for the
ablation benchmark; the error bound consumes the RMS of the per-group
steps via :func:`granular_step_size`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..exceptions import QuantizationError
from .affine import AffineParams, calibrate_minmax, dequantize_affine, quantize_affine

__all__ = ["Granularity", "GranularResult", "granular_quantize", "granular_step_size"]


class Granularity(Enum):
    """How weights are grouped for shared quantization parameters."""

    PER_TENSOR = "per_tensor"
    PER_ROW = "per_row"
    PER_COLUMN = "per_column"
    BLOCK = "block"


@dataclass
class GranularResult:
    """Reconstructed weights plus per-group parameters and step sizes."""

    reconstructed: np.ndarray
    group_params: list[AffineParams]
    step_rms: float

    @property
    def n_groups(self) -> int:
        return len(self.group_params)


def _group_slices(
    shape: tuple[int, int], granularity: Granularity, block_size: int
) -> list[tuple[slice, slice]]:
    rows, cols = shape
    if granularity is Granularity.PER_TENSOR:
        return [(slice(0, rows), slice(0, cols))]
    if granularity is Granularity.PER_ROW:
        return [(slice(r, r + 1), slice(0, cols)) for r in range(rows)]
    if granularity is Granularity.PER_COLUMN:
        return [(slice(0, rows), slice(c, c + 1)) for c in range(cols)]
    if granularity is Granularity.BLOCK:
        if block_size <= 0:
            raise QuantizationError("block granularity requires a positive block_size")
        slices = []
        for r in range(0, rows, block_size):
            for c in range(0, cols, block_size):
                slices.append(
                    (slice(r, min(r + block_size, rows)), slice(c, min(c + block_size, cols)))
                )
        return slices
    raise QuantizationError(f"unknown granularity {granularity!r}")


def granular_quantize(
    matrix: np.ndarray,
    bits: int = 8,
    granularity: Granularity = Granularity.PER_TENSOR,
    block_size: int = 32,
) -> GranularResult:
    """Quantize a 2-D weight matrix with one affine grid per group.

    Returns the dequantized reconstruction (what inference multiplies by),
    the per-group parameters, and the RMS step size across elements —
    directly usable as the layer's ``q_l`` in the error bound.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise QuantizationError(f"granular quantization expects 2-D weights, got {matrix.shape}")
    reconstructed = np.empty_like(matrix)
    params: list[AffineParams] = []
    weighted_sq = 0.0
    for row_slice, col_slice in _group_slices(matrix.shape, granularity, block_size):
        group = matrix[row_slice, col_slice]
        group_params = calibrate_minmax(group, bits=bits)
        codes = quantize_affine(group, group_params)
        reconstructed[row_slice, col_slice] = dequantize_affine(codes, group_params)
        params.append(group_params)
        weighted_sq += group_params.scale**2 * group.size
    step_rms = float(np.sqrt(weighted_sq / matrix.size))
    return GranularResult(reconstructed=reconstructed, group_params=params, step_rms=step_rms)


def granular_step_size(
    matrix: np.ndarray,
    bits: int = 8,
    granularity: Granularity = Granularity.PER_TENSOR,
    block_size: int = 32,
) -> float:
    """RMS quantization step of a granular scheme without reconstructing."""
    matrix = np.asarray(matrix, dtype=np.float64)
    weighted_sq = 0.0
    for row_slice, col_slice in _group_slices(matrix.shape, granularity, block_size):
        group = matrix[row_slice, col_slice]
        low, high = float(group.min()), float(group.max())
        scale = (high - low) / (2**bits - 1) if high > low else 0.0
        weighted_sq += scale**2 * group.size
    return float(np.sqrt(weighted_sq / matrix.size))
