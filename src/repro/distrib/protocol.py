"""Wire protocol for distributed shard scheduling.

Frames are length-prefixed UTF-8 JSON: a 4-byte big-endian payload
length followed by one JSON object.  JSON keeps every message
inspectable with ``tcpdump``/``nc`` during an incident; the length
prefix makes framing trivial and torn connections unambiguous (a
connection that dies mid-frame raises :class:`ProtocolError` instead of
yielding half a message).

Message flow (worker-initiated, one request in flight per worker)::

    worker                          coordinator
      | -- HELLO(fingerprint) -->       |    versioned handshake
      | <-- WELCOME / REFUSE --         |
      | -- LEASE_REQUEST -->            |
      | <-- LEASE / WAIT / DRAIN --     |
      | -- HEARTBEAT(lease) -->         |    one-way, no reply
      | -- METRICS(delta, spans) -->    |    one-way, no reply
      | -- RESULT(chunk, entry) -->     |
      | <-- RESULT_ACK(status) --       |
      | ...                             |
      | <-- DRAIN --                    |    run complete / shutting down

Trace context rides the same frames: HELLO carries the worker's local
context (diagnostic), WELCOME and LEASE carry the coordinator's
``{"trace_id", "parent_span_id"}`` so worker-side spans parent under the
coordinator's serve span, and RESULT/METRICS carry finished worker span
dicts back for :meth:`~repro.obs.trace.Tracer.merge_remote` to stitch
into the coordinator's trace.  All telemetry fields are optional —
an untraced peer simply omits them.

The HELLO carries the plan fingerprint, the manifest digest (fingerprint
+ per-chunk input digests) and the model-weights digest, so two peers
can only exchange work when they agree on *the exact same computation* —
the same identity check :class:`~repro.io.checkpoint.CheckpointJournal`
enforces on resume.  Heartbeats are deliberately fire-and-forget: every
other request gets exactly one reply, so the client never has to
demultiplex interleaved responses.

Chunk artifacts (npz bytes) travel base64-encoded inside RESULT frames.
That is a ~33 % size tax, accepted for single-format simplicity; the
coordinator re-digests the decoded bytes, so transport corruption is
caught end-to-end regardless of encoding.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import socket
import struct
import threading

from ..exceptions import ProtocolError
from ..obs import get_metrics, json_default
from ..obs.metrics import encode_counter_delta

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FrameSocket",
    "encode_artifact",
    "decode_artifact",
    "fingerprints_equal",
    "manifest_identity",
    "msg_hello",
    "msg_welcome",
    "msg_refuse",
    "msg_lease_request",
    "msg_lease",
    "msg_wait",
    "msg_heartbeat",
    "msg_metrics",
    "msg_result",
    "msg_result_ack",
    "msg_drain",
    "registry_token",
]

#: bump on any incompatible message-shape change; HELLO/WELCOME carry it
#: (v2: METRICS frames + optional trace/spans telemetry fields)
PROTOCOL_VERSION = 2

_LENGTH = struct.Struct("!I")

#: hard ceiling on one frame — far above any sane chunk artifact, far
#: below anything that could exhaust memory from a single bad length
MAX_FRAME_BYTES = 1 << 30

_MESSAGE_TYPES = frozenset(
    {
        "hello",
        "welcome",
        "refuse",
        "lease_request",
        "lease",
        "wait",
        "heartbeat",
        "metrics",
        "result",
        "result_ack",
        "drain",
    }
)


def registry_token() -> str:
    """Identity of this process's live metrics registry.

    Stamped on METRICS frames so a receiver can recognise a delta that
    originated from its *own* registry (worker threads sharing the
    process-global registry in tests) and skip merging it — a registry's
    delta folded back into itself double-counts every series.
    """
    return f"{os.getpid()}:{id(get_metrics())}"


def encode_artifact(data: bytes) -> str:
    """Chunk artifact bytes -> JSON-safe base64 text."""
    return base64.b64encode(bytes(data)).decode("ascii")


def decode_artifact(text: str) -> bytes:
    """Base64 text -> artifact bytes; malformed input is a protocol error."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, AttributeError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"malformed artifact encoding: {exc}") from exc


def fingerprints_equal(left: dict, right: dict) -> bool:
    """Order-insensitive structural equality of two plan fingerprints."""
    try:
        return json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True)
    except (TypeError, ValueError):
        return False


def manifest_identity(manifest: dict) -> str:
    """Digest naming the exact computation a manifest describes.

    Covers the plan fingerprint *and* every per-chunk input digest, so
    two peers whose HELLO/WELCOME identities agree are provably chunking
    the same bytes under the same plan — the precondition for merging
    their results at all.
    """
    from ..io.checkpoint import digest_bytes

    payload = json.dumps(
        {
            "fingerprint": manifest.get("fingerprint"),
            "chunk_digests": manifest.get("chunk_digests"),
        },
        sort_keys=True,
    ).encode("utf-8")
    return digest_bytes(payload)


class FrameSocket:
    """Length-prefixed JSON framing over one TCP socket.

    Sends are serialized under a lock so the heartbeat thread and the
    result-submitting thread can share the connection; receives are
    single-threaded by construction (one reader per connection).  Byte
    counters land in ``distrib_bytes_sent_total`` /
    ``distrib_bytes_received_total`` labelled by role.
    """

    def __init__(self, sock: socket.socket, role: str = "coordinator") -> None:
        self._sock = sock
        self._role = role
        self._send_lock = threading.Lock()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not every transport has it
            pass

    @property
    def peer(self) -> str:
        try:
            name = self._sock.getpeername()
        except OSError:
            return "<disconnected>"
        if isinstance(name, tuple) and len(name) >= 2:
            return f"{name[0]}:{name[1]}"
        return str(name) or "<unnamed>"

    def settimeout(self, seconds: "float | None") -> None:
        self._sock.settimeout(seconds)

    def send(self, message: dict) -> None:
        data = json.dumps(
            message, separators=(",", ":"), default=json_default
        ).encode("utf-8")
        if len(data) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"refusing to send a {len(data)}-byte frame "
                f"(limit {MAX_FRAME_BYTES})"
            )
        frame = _LENGTH.pack(len(data)) + data
        with self._send_lock:
            self._sock.sendall(frame)
        get_metrics().counter("distrib_bytes_sent_total", role=self._role).inc(
            len(frame)
        )

    def recv(self) -> "dict | None":
        """One message, or ``None`` on a clean EOF between frames.

        A connection that closes *inside* a frame, an oversized length,
        undecodable JSON or an unknown message type all raise
        :class:`ProtocolError` — a peer that garbles the stream is
        indistinguishable from a hostile one and is treated the same.
        """
        header = self._recv_exact(_LENGTH.size, eof_ok=True)
        if header is None:
            return None
        (length,) = _LENGTH.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
            )
        data = self._recv_exact(length, eof_ok=False)
        get_metrics().counter(
            "distrib_bytes_received_total", role=self._role
        ).inc(_LENGTH.size + length)
        try:
            message = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"undecodable frame from {self.peer}: {exc}") from exc
        if not isinstance(message, dict):
            raise ProtocolError(f"frame from {self.peer} is not a JSON object")
        if message.get("type") not in _MESSAGE_TYPES:
            raise ProtocolError(
                f"unknown message type {message.get('type')!r} from {self.peer}"
            )
        return message

    def _recv_exact(self, n: int, eof_ok: bool) -> "bytes | None":
        buffer = bytearray()
        while len(buffer) < n:
            chunk = self._sock.recv(n - len(buffer))
            if not chunk:
                if eof_ok and not buffer:
                    return None
                raise ProtocolError(
                    f"connection to {self.peer} closed mid-frame "
                    f"({len(buffer)}/{n} bytes)"
                )
            buffer += chunk
        return bytes(buffer)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close best-effort
            pass


# -- message constructors ---------------------------------------------------
# Plain dicts, not classes: the wire format *is* the schema, and keeping
# construction next to the field names makes protocol drift reviewable.


def msg_hello(
    worker: str,
    fingerprint: dict,
    manifest_digest: str,
    weights: "str | None",
    trace: "dict | None" = None,
) -> dict:
    message = {
        "type": "hello",
        "proto": PROTOCOL_VERSION,
        "worker": worker,
        "fingerprint": fingerprint,
        "manifest_digest": manifest_digest,
        "weights": weights,
    }
    if trace:
        message["trace"] = trace
    return message


def msg_welcome(
    coordinator: str, n_chunks: int, lease_ttl: float, trace: "dict | None" = None
) -> dict:
    message = {
        "type": "welcome",
        "proto": PROTOCOL_VERSION,
        "coordinator": coordinator,
        "n_chunks": int(n_chunks),
        "lease_ttl": float(lease_ttl),
    }
    if trace:
        message["trace"] = trace
    return message


def msg_refuse(reason: str) -> dict:
    return {"type": "refuse", "reason": reason}


def msg_lease_request() -> dict:
    return {"type": "lease_request"}


def msg_lease(
    lease_id: int, chunks: "list[int]", ttl: float, trace: "dict | None" = None
) -> dict:
    message = {
        "type": "lease",
        "lease": int(lease_id),
        "chunks": [int(c) for c in chunks],
        "ttl": float(ttl),
    }
    if trace:
        message["trace"] = trace
    return message


def msg_wait(seconds: float) -> dict:
    return {"type": "wait", "seconds": float(seconds)}


def msg_heartbeat(lease_id: int) -> dict:
    return {"type": "heartbeat", "lease": int(lease_id)}


def msg_metrics(
    worker: str,
    delta: "dict | None" = None,
    spans: "list | None" = None,
    registry: "str | None" = None,
    profile: "list | None" = None,
) -> dict:
    """One-way worker telemetry push: counter deltas plus finished spans.

    ``registry`` identifies the sending process's metrics registry
    (``"pid:objectid"``); the coordinator skips merging deltas that came
    from its *own* registry — the in-process test harness runs workers as
    threads sharing the registry, and folding a shared registry's delta
    back into itself would double-count.  ``profile`` ships fresh
    folded-stack sample rows (``[[folded, count], ...]``) when the worker
    is running a sampling profiler; same double-count guard applies.
    """
    message: dict = {"type": "metrics", "worker": worker}
    if delta:
        message["delta"] = encode_counter_delta(delta)
    if spans:
        message["spans"] = spans
    if registry:
        message["registry"] = registry
    if profile:
        message["profile"] = profile
    return message


def msg_result(
    lease_id: int, chunk: int, entry: dict, artifact: str, spans: "list | None" = None
) -> dict:
    message = {
        "type": "result",
        "lease": int(lease_id),
        "chunk": int(chunk),
        "entry": entry,
        "artifact": artifact,
    }
    if spans:
        message["spans"] = spans
    return message


def msg_result_ack(chunk: int, status: str) -> dict:
    return {"type": "result_ack", "chunk": int(chunk), "status": status}


def msg_drain(reason: str) -> dict:
    return {"type": "drain", "reason": reason}
