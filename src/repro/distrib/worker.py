"""Worker agent: lease chunks from a coordinator, compute them locally.

A :class:`ShardWorker` is the remote half of distributed chunked
execution.  It holds the *same* fields, plan and model as the
coordinator (verified at handshake via the plan fingerprint, manifest
digest and weights digest), pulls leases over the wire, and runs each
leased chunk through the PR-6 machinery it already trusts:

* compute happens on a local :class:`~repro.resilience.supervisor.
  SupervisedPool`, so respawn / bounded retry / quarantine→lossless
  semantics apply per worker exactly as they do single-host;
* every completed chunk is journaled into a *local*
  :class:`~repro.io.checkpoint.CheckpointJournal` before its RESULT is
  sent — the artifact bytes on the wire are the journaled bytes, so the
  coordinator's merged journal is bit-identical to the worker's;
* a re-leased chunk the worker already computed is resent from the
  local journal, never recomputed (the coordinator dedups
  first-digest-wins);
* connects and reconnects go through :func:`~repro.resilience.retry.
  retry_call` under a :class:`~repro.resilience.retry.RetryPolicy`, so
  backoff schedules stay deterministic under test seeds.

Chaos: ``kill`` and ``disconnect`` rules are fired by the agent itself
(SIGKILL the whole process / sever the coordinator connection), keyed by
*chunk index* with one attempt counted per lease of that chunk.  All
other rules are forwarded to the supervised pool, translated so they
also match chunk indices rather than shard-relative positions.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import tempfile
import threading
import time

import numpy as np

from ..core.pipeline import split_chunks
from ..exceptions import IntegrityError, ProtocolError
from ..io.checkpoint import CheckpointJournal, digest_array, digest_bytes, digest_model
from ..obs import get_logger, get_metrics, get_profiler, get_tracer, json_default
from ..obs.prof import diff_rows
from ..obs.trace import Tracer
from ..resilience.inject import ChaosInjector, ChaosPartition
from ..resilience.retry import RetryPolicy, retry_call
from ..resilience.supervisor import SupervisedPool
from ..resilience.guards import screen_finite
from .protocol import (
    PROTOCOL_VERSION,
    FrameSocket,
    encode_artifact,
    manifest_identity,
    msg_heartbeat,
    msg_hello,
    msg_lease_request,
    msg_metrics,
    msg_result,
    registry_token,
)

__all__ = ["ShardWorker"]

_LOG = get_logger("distrib.worker")

#: consecutive connection losses tolerated before the agent gives up
_MAX_CONSECUTIVE_FAILURES = 10

#: cap on server-suggested wait naps, so drain is never far away
_MAX_WAIT_NAP = 1.0

#: period of the one-way METRICS telemetry push, per connection
_TELEMETRY_INTERVAL = 1.0


class _SpanShipper:
    """Cursor over the tracer's finished spans for incremental shipping.

    ``take()`` hands out each finished span exactly once (across the
    result path and the telemetry pusher thread, hence the lock).  Spans
    taken but never delivered are re-buffered via ``requeue`` so a
    partition flushes them to the local trace file instead of dropping
    them silently.
    """

    def __init__(self) -> None:
        tracer = get_tracer()
        self._lock = threading.Lock()
        self._cursor = len(tracer.finished)
        self._unsent: list = []

    def take(self) -> list:
        tracer = get_tracer()
        with self._lock:
            fresh, self._cursor = tracer.dicts_since(self._cursor)
            batch = self._unsent + fresh
            self._unsent = []
            return batch

    def requeue(self, spans: list) -> None:
        if not spans:
            return
        with self._lock:
            self._unsent = list(spans) + self._unsent

    def drain_unsent(self) -> list:
        """Everything taken-or-finished but not yet delivered."""
        return self.take()


class _TelemetryPusher:
    """Per-connection METRICS push thread: counter deltas + spans.

    One-way frames (no reply), so interleaving with the main loop's
    request/reply traffic is safe — FrameSocket serializes sends.  Send
    failures requeue the spans and stop the thread; the main loop
    notices the dead connection on its own.
    """

    def __init__(self, conn: FrameSocket, worker: str, shipper: _SpanShipper) -> None:
        self._conn = conn
        self._worker = worker
        self._shipper = shipper
        self._baseline = get_metrics().counter_snapshot()
        profiler = get_profiler()
        self._prof_baseline = profiler.stacks.snapshot() if profiler.enabled else {}
        self._stop = threading.Event()
        # push() is callable from the main loop (final flush) while the
        # pusher thread is live; serialize so the delta baseline advances
        # exactly once per shipped window
        self._push_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, name="distrib-telemetry", daemon=True
        )
        self._thread.start()

    def push(self) -> None:
        """One immediate push (also used for the final pre-drain flush)."""
        with self._push_lock:
            metrics = get_metrics()
            current = metrics.counter_snapshot()
            delta = metrics.counter_delta(current, self._baseline)
            spans = self._shipper.take()
            profiler = get_profiler()
            prof_current = profiler.stacks.snapshot() if profiler.enabled else {}
            profile_rows = diff_rows(prof_current, self._prof_baseline)
            if not delta and not spans and not profile_rows:
                return
            try:
                self._conn.send(
                    msg_metrics(
                        self._worker,
                        delta=delta,
                        spans=spans,
                        registry=registry_token(),
                        profile=profile_rows,
                    )
                )
                self._baseline = current
                self._prof_baseline = prof_current
            except OSError:
                self._shipper.requeue(spans)
                raise

    def _run(self) -> None:
        while not self._stop.wait(_TELEMETRY_INTERVAL):
            try:
                self.push()
            except OSError:
                return  # connection died; the main loop will notice

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class _TranslatedChaos:
    """Adapter mapping pool task positions back to chunk indices, so a
    ``raise@2`` rule means "chunk 2" in a distributed worker too."""

    def __init__(self, inner: ChaosInjector, chunk_ids: "list[int]") -> None:
        self._inner = inner
        self._chunk_ids = chunk_ids

    def before_task(self, task_id: int, attempt: int) -> None:
        self._inner.before_task(self._chunk_ids[task_id], attempt)

    def after_task(self, task_id: int, attempt: int, result):
        return self._inner.after_task(self._chunk_ids[task_id], attempt, result)


class _Heartbeat:
    """Background lease renewal; one per in-flight lease."""

    def __init__(self, conn: FrameSocket, lease_id: int, ttl: float) -> None:
        self._conn = conn
        self._lease_id = lease_id
        self._interval = max(0.05, ttl / 4.0)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"distrib-heartbeat-{lease_id}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._conn.send(msg_heartbeat(self._lease_id))
            except OSError:
                return  # connection died; the main loop will notice

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class ShardWorker:
    """One remote worker: connect, lease, compute, submit, repeat.

    Parameters mirror ``execute_chunked``'s chunking arguments — the
    worker must chunk the fields *identically* to the coordinator or the
    handshake digests will not match (which is the point).
    """

    def __init__(
        self,
        pipeline,
        fields: np.ndarray,
        chunk_size: int,
        *,
        chunk_axis: int = 0,
        samples_from_fields=None,
        name: "str | None" = None,
        workers: "int | None" = None,
        task_timeout: "float | None" = None,
        max_task_retries: int = 2,
        connect_retry: "RetryPolicy | None" = None,
        connect_timeout: float = 5.0,
        chaos: "ChaosInjector | None" = None,
        checkpoint: "str | None" = None,
    ) -> None:
        self.pipeline = pipeline
        self.chunks = split_chunks(np.asarray(fields), chunk_size, chunk_axis)
        self.digests = [digest_array(chunk) for chunk in self.chunks]
        self.manifest = pipeline._checkpoint_manifest(
            self.chunks, int(chunk_size), int(chunk_axis), self.digests
        )
        self.identity = manifest_identity(self.manifest)
        self.weights = digest_model(pipeline.model)
        self.name = name or f"worker-{os.getpid()}"
        self.samples_from_fields = samples_from_fields
        self.workers = workers
        self.task_timeout = task_timeout
        self.max_task_retries = int(max_task_retries)
        self.retry = connect_retry or RetryPolicy(
            max_retries=5, base_delay=0.2, max_delay=5.0
        )
        self.connect_timeout = float(connect_timeout)
        self.chaos = chaos
        self._chaos_attempts: "dict[int, int]" = {}
        directory = checkpoint or tempfile.mkdtemp(prefix="repro-worker-")
        self._journal = CheckpointJournal(directory)
        self._local: "dict[int, dict]" = self._journal.begin(
            self.manifest, resume=checkpoint is not None
        )
        #: spans that could not reach the coordinator survive here
        self.trace_buffer_path = os.path.join(directory, "trace-buffer.jsonl")
        self._welcome_trace: "dict | None" = None
        self._shipper: "_SpanShipper | None" = None
        self._pusher: "_TelemetryPusher | None" = None

    # -- main loop ---------------------------------------------------------

    def run(self, host: str, port: int) -> dict:
        """Serve leases until the coordinator drains this worker.

        Returns a summary dict.  Raises
        :class:`~repro.exceptions.IntegrityError` if the coordinator
        refuses the handshake (different plan/data/weights) and
        :class:`~repro.exceptions.ProtocolError` if the coordinator
        stays unreachable past the retry budget.
        """
        self.pipeline.model.eval()
        summary = {
            "worker": self.name,
            "leases": 0,
            "chunks_computed": 0,
            "chunks_resent": 0,
            "reconnects": 0,
            "partitions": 0,
            "results": {},
            "drained": None,
        }
        failures = 0
        self._shipper = _SpanShipper()
        conn = self._open(host, port)
        try:
            while True:
                try:
                    conn.send(msg_lease_request())
                    reply = self._recv(conn)
                    kind = reply["type"]
                    if kind == "drain":
                        summary["drained"] = reply.get("reason", "")
                        if self._pusher is not None:
                            try:
                                self._pusher.push()
                            except OSError:
                                pass  # flushed locally at close
                        break
                    if kind == "wait":
                        time.sleep(
                            min(float(reply.get("seconds", 0.25)), _MAX_WAIT_NAP)
                        )
                        continue
                    if kind != "lease":
                        raise ProtocolError(
                            f"expected lease/wait/drain, got {kind!r}"
                        )
                    summary["leases"] += 1
                    self._serve_lease(conn, reply, summary)
                    failures = 0
                except ChaosPartition as exc:
                    summary["partitions"] += 1
                    get_metrics().counter("distrib_partitions_total").inc()
                    _LOG.warning(
                        "injected partition; dropping connection",
                        worker=self.name,
                        error=str(exc),
                    )
                    self._close(conn, flush_reason="partition")
                    summary["reconnects"] += 1
                    conn = self._open(host, port)
                except (TimeoutError, OSError, ProtocolError) as exc:
                    failures += 1
                    if failures >= _MAX_CONSECUTIVE_FAILURES:
                        raise ProtocolError(
                            f"giving up after {failures} consecutive "
                            f"connection failures: {exc}"
                        ) from exc
                    _LOG.warning(
                        "lost coordinator connection; reconnecting",
                        worker=self.name,
                        error=str(exc),
                    )
                    self._close(conn, flush_reason="connection lost")
                    summary["reconnects"] += 1
                    conn = self._open(host, port)
        finally:
            self._close(conn)
        _LOG.info(
            "worker drained",
            worker=self.name,
            leases=summary["leases"],
            computed=summary["chunks_computed"],
            resent=summary["chunks_resent"],
            reason=summary["drained"],
        )
        return summary

    def _recv(self, conn: FrameSocket) -> dict:
        message = conn.recv()
        if message is None:
            raise ProtocolError("coordinator closed the connection")
        return message

    # -- connection --------------------------------------------------------

    def _open(self, host: str, port: int) -> FrameSocket:
        """Connect and attach the per-connection telemetry pusher."""
        conn = self._connect(host, port)
        if get_tracer().enabled or get_metrics().enabled:
            self._pusher = _TelemetryPusher(conn, self.name, self._shipper)
        return conn

    def _close(self, conn: FrameSocket, flush_reason: "str | None" = None) -> None:
        """Tear down a connection; on abnormal closes (``flush_reason``)
        spill undelivered spans to the local trace buffer instead of
        dropping them silently (they survive for post-mortem stitching,
        and ``trace_spans_dropped_total`` counts the loss)."""
        if self._pusher is not None:
            self._pusher.stop()
            self._pusher = None
        if flush_reason and self._shipper is not None:
            spans = self._shipper.drain_unsent()
            if spans:
                self._flush_spans_locally(spans, flush_reason)
        conn.close()

    def _flush_spans_locally(self, spans: list, reason: str) -> None:
        get_metrics().counter("trace_spans_dropped_total").inc(len(spans))
        try:
            with open(self.trace_buffer_path, "a", encoding="utf-8") as handle:
                for span in spans:
                    handle.write(
                        json.dumps(span, sort_keys=True, default=json_default)
                    )
                    handle.write("\n")
        except OSError as exc:  # pragma: no cover - disk loss is best-effort
            _LOG.warning(
                "could not buffer undelivered spans locally",
                worker=self.name,
                error=str(exc),
            )
            return
        _LOG.warning(
            "buffered undelivered spans locally",
            worker=self.name,
            spans=len(spans),
            reason=reason,
            path=self.trace_buffer_path,
        )

    def _connect(self, host: str, port: int) -> FrameSocket:
        """Connect + handshake under the retry policy (satellite: no
        ad-hoc sleeps — the backoff schedule is the deterministic
        :class:`RetryPolicy` one)."""

        def attempt() -> FrameSocket:
            sock = socket.create_connection(
                (host, int(port)), timeout=self.connect_timeout
            )
            conn = FrameSocket(sock, role="worker")
            conn.settimeout(30.0)
            try:
                conn.send(
                    msg_hello(
                        self.name,
                        self.manifest["fingerprint"],
                        self.identity,
                        self.weights,
                        trace=get_tracer().inject(),
                    )
                )
                reply = conn.recv()
            except BaseException:
                conn.close()
                raise
            if reply is None:
                conn.close()
                raise ProtocolError("coordinator closed during handshake")
            if reply["type"] == "refuse":
                conn.close()
                raise IntegrityError(
                    f"coordinator refused worker {self.name!r}: "
                    f"{reply.get('reason', 'no reason given')}"
                )
            if reply["type"] != "welcome" or reply.get("proto") != PROTOCOL_VERSION:
                conn.close()
                raise ProtocolError(
                    f"bad handshake reply {reply.get('type')!r} "
                    f"(proto {reply.get('proto')!r})"
                )
            # a hung coordinator should look like a lost one well before
            # our own lease could have expired twice over
            conn.settimeout(max(10.0, 4.0 * float(reply.get("lease_ttl", 5.0))))
            self._welcome_trace = Tracer.extract(reply)
            return conn

        def on_retry(attempt_no: int, exc: BaseException) -> None:
            get_metrics().counter("distrib_connect_retries_total").inc()
            _LOG.debug(
                "coordinator unreachable; backing off",
                worker=self.name,
                attempt=attempt_no,
                error=str(exc),
            )

        try:
            return retry_call(
                attempt,
                self.retry,
                retry_on=(OSError, ProtocolError),
                on_retry=on_retry,
            )
        except IntegrityError:
            raise
        except (OSError, ProtocolError) as exc:
            raise ProtocolError(
                f"could not reach coordinator at {host}:{port} after "
                f"{self.retry.max_retries + 1} attempts: {exc}"
            ) from exc

    # -- lease handling ----------------------------------------------------

    def _serve_lease(self, conn: FrameSocket, lease: dict, summary: dict) -> None:
        lease_id = int(lease["lease"])
        ttl = float(lease.get("ttl", 15.0))
        chunk_ids = [int(c) for c in lease.get("chunks", [])]
        for chunk in chunk_ids:
            if not 0 <= chunk < len(self.chunks):
                raise ProtocolError(f"leased unknown chunk {chunk}")
        heartbeat = _Heartbeat(conn, lease_id, ttl)
        try:
            tracer = get_tracer()
            lease_ctx = Tracer.extract(lease) or self._welcome_trace
            with tracer.span(
                "worker.lease",
                remote_parent=lease_ctx,
                worker=self.name,
                lease=lease_id,
                chunks=chunk_ids,
            ):
                # agent-level chaos first: a killed/partitioned worker
                # never reaches compute, exactly like the fault it
                # simulates
                for chunk in chunk_ids:
                    self._fire_agent_chaos(chunk)
                to_compute = [c for c in chunk_ids if c not in self._local]
                if to_compute:
                    self._compute(to_compute)
                    summary["chunks_computed"] += len(to_compute)
                summary["chunks_resent"] += len(chunk_ids) - len(to_compute)
            for chunk in chunk_ids:
                entry = self._local[chunk]
                data = self._artifact_bytes(entry)
                spans = self._shipper.take() if self._shipper else None
                conn.send(
                    msg_result(
                        lease_id, chunk, entry, encode_artifact(data), spans=spans
                    )
                )
                ack = self._recv(conn)
                if ack["type"] != "result_ack" or ack.get("chunk") != chunk:
                    raise ProtocolError(
                        f"expected ack for chunk {chunk}, got {ack!r}"
                    )
                status = str(ack.get("status", "unknown"))
                summary["results"][status] = summary["results"].get(status, 0) + 1
                if status == "rejected":
                    _LOG.error(
                        "coordinator rejected a result",
                        worker=self.name,
                        chunk=chunk,
                    )
        finally:
            heartbeat.stop()

    def _fire_agent_chaos(self, chunk: int) -> None:
        if self.chaos is None:
            return
        attempt = self._chaos_attempts.get(chunk, 0)
        self._chaos_attempts[chunk] = attempt + 1
        for rule in self.chaos.active_rules(chunk, attempt):
            if rule.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif rule.action == "disconnect":
                raise ChaosPartition(
                    f"injected partition on chunk {chunk} attempt {attempt}"
                )

    def _pool_chaos(self, chunk_ids: "list[int]"):
        if self.chaos is None:
            return None
        rules = [
            rule
            for rule in self.chaos.rules
            if rule.action not in ("kill", "disconnect")
        ]
        if not rules:
            return None
        return _TranslatedChaos(ChaosInjector(rules), chunk_ids)

    def _compute(self, chunk_ids: "list[int]") -> None:
        """PR-6 semantics, locally: supervised pool + journal + quarantine."""
        pipeline = self.pipeline

        def task_fn(index: int):
            return pipeline.execute(
                self.chunks[index], samples_from_fields=self.samples_from_fields
            )

        def validate(task_id: int, result) -> None:
            if pipeline.screen:
                screen_finite(result.outputs, stage="chunk", name="outputs")

        def on_result(task_id: int, result, outcome) -> None:
            index = chunk_ids[task_id]
            self._local[index] = pipeline._journal_chunk(
                self._journal,
                index,
                result,
                self.digests[index],
                attempts=outcome.attempts,
                seconds=outcome.seconds,
            )

        pool = SupervisedPool(
            task_fn,
            workers=self.workers,
            task_timeout=self.task_timeout,
            retry=RetryPolicy(max_retries=self.max_task_retries),
            chaos=self._pool_chaos(chunk_ids),
            validate=validate if pipeline.screen else None,
            label=self.name,
        )
        report = pool.run(chunk_ids, on_result=on_result)
        for position in report.quarantined:
            index = chunk_ids[position]
            outcome = report.outcomes[position]
            _LOG.warning(
                "quarantined chunk degrading to fallback-lossless in-process",
                worker=self.name,
                chunk=index,
                attempts=outcome.attempts,
            )
            started = time.perf_counter()
            result = pipeline.execute(
                self.chunks[index],
                samples_from_fields=self.samples_from_fields,
                force_lossless=True,
            )
            self._local[index] = pipeline._journal_chunk(
                self._journal,
                index,
                result,
                self.digests[index],
                attempts=outcome.attempts,
                quarantined=True,
                seconds=time.perf_counter() - started,
            )

    def _artifact_bytes(self, entry: dict) -> bytes:
        path = os.path.join(self._journal.path, entry["artifact"])
        with open(path, "rb") as handle:
            data = handle.read()
        if digest_bytes(data) != entry.get("artifact_digest"):
            raise IntegrityError(
                f"local artifact {path!r} digest mismatch: file changed "
                "since it was journaled"
            )
        return data
