"""Lease-based shard coordinator for distributed chunked execution.

The coordinator owns the chunk manifest of exactly one computation
(plan fingerprint + per-chunk input digests, the same identity a
:class:`~repro.io.checkpoint.CheckpointJournal` enforces) and serves it
to remote workers as *leases*: short-lived, heartbeat-renewed claims on
one or more chunk indices.  Robustness is lease-shaped end to end:

* a worker that crashes or partitions loses its connection — its leases
  are expired immediately and the chunks return to the pending queue;
* a worker that hangs stops heartbeating — its leases expire when their
  TTL lapses (straggler re-lease), and a late result from the original
  worker is deduplicated first-digest-wins;
* every RESULT is validated against the manifest (input digest) and its
  own declared artifact digest before it is accepted, so a mixed-plan or
  tampered result is rejected with :class:`~repro.exceptions.IntegrityError`
  semantics rather than merged;
* accepted results are journaled durably (``record_raw`` adopts the
  worker's artifact bytes verbatim), so a coordinator that is itself
  killed resumes from its journal without recomputing;
* SIGTERM maps to :meth:`ShardCoordinator.request_drain`: stop granting,
  let in-flight leases finish or expire, exit with a resumable journal;
* if no worker ever joins within ``worker_wait`` (or all workers
  abandon the run), the coordinator returns the unfinished chunks to the
  caller, which degrades to the local supervised pool.

The coordinator keeps accepted artifacts in memory only when running
without a journal (tests, small runs); with a checkpoint directory the
journal is the source of truth and memory stays flat.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..exceptions import ConfigurationError, IntegrityError, ProtocolError, ReproError
from ..io.checkpoint import digest_bytes
from ..obs import get_logger, get_metrics, get_profiler, get_tracer
from ..obs.metrics import decode_counter_delta
from .protocol import (
    PROTOCOL_VERSION,
    FrameSocket,
    decode_artifact,
    fingerprints_equal,
    manifest_identity,
    msg_drain,
    msg_lease,
    msg_refuse,
    msg_result_ack,
    msg_wait,
    msg_welcome,
    registry_token,
)

__all__ = ["DistribConfig", "DrainedError", "ShardCoordinator"]

_LOG = get_logger("distrib.coordinator")

#: scheduler poll period; bounds drain/expiry latency, not throughput
_TICK_SECONDS = 0.05

#: suggested client backoff when no shard is grantable right now
_WAIT_SECONDS = 0.25

#: result rejections tolerated per connection before it is cut off
_MAX_REJECTS_PER_CONNECTION = 3


class DrainedError(ReproError):
    """The coordinator drained (SIGTERM) before every chunk completed.

    The journal holds everything that finished; re-running with
    ``--resume`` continues from there.
    """


@dataclass
class DistribConfig:
    """Tunables for one coordinator run.

    ``shard_size`` defaults to 1 chunk per lease: the smallest
    reassignment unit, and the setting that makes chaos-test counters
    exact (one killed worker loses exactly one lease).  ``on_start``
    fires after the listening socket is bound, with the live
    :class:`ShardCoordinator` — callers use it to learn the ephemeral
    port, launch workers, or install signal handlers.

    ``metrics_port`` (``None`` = off) starts the live telemetry endpoint
    (:class:`~repro.obs.server.MetricsServer`) next to the coordinator:
    ``/metrics``, ``/status`` (live lease table) and ``/healthz`` on
    ``metrics_host``; ``0`` binds an ephemeral port, readable from
    ``coordinator.metrics_address`` inside ``on_start``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    lease_ttl: float = 15.0
    shard_size: int = 1
    expect_workers: int = 0
    worker_wait: float = 30.0
    on_start: "Optional[Callable]" = None
    metrics_host: str = "127.0.0.1"
    metrics_port: "Optional[int]" = None

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ConfigurationError(
                f"lease_ttl must be positive, got {self.lease_ttl}"
            )
        if self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.expect_workers < 0:
            raise ConfigurationError(
                f"expect_workers must be >= 0, got {self.expect_workers}"
            )
        if self.worker_wait < 0:
            raise ConfigurationError(
                f"worker_wait must be >= 0, got {self.worker_wait}"
            )
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ConfigurationError(
                f"metrics_port must be in [0, 65535], got {self.metrics_port}"
            )


@dataclass
class _Lease:
    lease_id: int
    worker: str
    conn_id: int
    outstanding: set
    granted_at: float
    deadline: float
    chunks: "tuple[int, ...]" = ()
    reassignment: bool = False


class ShardCoordinator:
    """Serve one chunk manifest as leases over TCP; merge the results.

    Thread model: an accept thread spawns one daemon thread per worker
    connection; :meth:`serve` runs the scheduler loop (lease expiry,
    completion/drain/degradation detection) in the calling thread.  All
    shared state lives behind one lock; connection threads do their
    blocking socket I/O outside it.
    """

    def __init__(
        self,
        manifest: dict,
        *,
        weights: "str | None" = None,
        journal=None,
        completed: "dict[int, dict] | set | None" = None,
        config: "DistribConfig | None" = None,
    ) -> None:
        if "fingerprint" not in manifest or "chunk_digests" not in manifest:
            raise ConfigurationError(
                "coordinator manifest requires 'fingerprint' and 'chunk_digests'"
            )
        self.manifest = manifest
        self.config = config or DistribConfig()
        self._fingerprint = manifest["fingerprint"]
        self._digests = list(manifest["chunk_digests"])
        self._identity = manifest_identity(manifest)
        self._weights = weights
        self._journal = journal

        self._lock = threading.Lock()
        self.n_chunks = len(self._digests)
        already = set(completed or ())
        #: entries accepted *this run* (resumed chunks replay elsewhere)
        self.accepted: "dict[int, dict]" = {}
        self._artifacts: "dict[int, bytes]" = {}
        self._done = set(already)
        self._pending = deque(i for i in range(self.n_chunks) if i not in already)
        self._leases: "dict[int, _Lease]" = {}
        self._chunk_lease: "dict[int, int]" = {}
        self._expired_chunks: set = set()
        self._lease_ids = itertools.count(1)
        self._conn_ids = itertools.count(1)
        self._conns: "dict[int, FrameSocket]" = {}
        self._live_workers = 0
        self._joined_ever = 0
        self._counts = {
            "leases_granted": 0,
            "leases_expired": 0,
            "leases_reassigned": 0,
            "accepted": 0,
            "duplicate": 0,
            "conflict": 0,
            "rejected": 0,
            "handshake_refused": 0,
        }
        self._drain = False
        self._drain_reason = ""
        self._closing = False
        self._started_at = 0.0
        self._started_unix = 0.0
        self._last_activity = 0.0
        self._listener: "socket.socket | None" = None
        self.address: "tuple[str, int] | None" = None

        # -- telemetry state (all guarded by self._lock) -------------------
        #: trace context anchoring this run (captured in start(), where
        #: the caller's pipeline.execute_chunked span is still current)
        self._trace_ctx: "dict | None" = None
        #: context of the live distrib.serve span, once serve() opens it
        self._serve_ctx: "dict | None" = None
        #: unix time each chunk (re)entered the pending queue / was granted
        self._enqueued_unix: "dict[int, float]" = {}
        self._granted_unix: "dict[int, float]" = {}
        #: grants per chunk — the /status "attempt" count
        self._attempts: "dict[int, int]" = {}
        #: worker that produced each accepted chunk
        self._chunk_worker: "dict[int, str]" = {}
        self._server = None
        self.metrics_address: "tuple[str, int] | None" = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "tuple[str, int]":
        """Bind, start accepting workers, return ``(host, port)``."""
        self._listener = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False
        )
        self.address = self._listener.getsockname()[:2]
        self._started_at = self._last_activity = time.monotonic()
        self._started_unix = time.time()
        # Anchor the run's trace here: the caller's pipeline span (if
        # any) is still current on this thread, so every span emitted
        # later from connection threads can parent under it.
        self._trace_ctx = get_tracer().inject()
        with self._lock:
            now = time.time()
            for chunk in self._pending:
                self._enqueued_unix[chunk] = now
        metrics = get_metrics()
        metrics.describe(
            "distrib_workers_connected", "workers currently connected to the coordinator"
        )
        metrics.describe("distrib_leases_active", "leases currently in flight")
        metrics.describe(
            "distrib_chunk_seconds", "per-chunk wall seconds split by phase"
        )
        if self.config.metrics_port is not None:
            from ..obs.server import MetricsServer

            self._server = MetricsServer(
                host=self.config.metrics_host,
                port=self.config.metrics_port,
                status_fn=self.status,
            )
            self.metrics_address = self._server.start()
            _LOG.info(
                "telemetry endpoint up",
                host=self.metrics_address[0],
                port=self.metrics_address[1],
            )
        threading.Thread(
            target=self._accept_loop, name="distrib-accept", daemon=True
        ).start()
        _LOG.info(
            "coordinator listening",
            host=self.address[0],
            port=self.address[1],
            chunks=self.n_chunks,
            completed=len(self._done),
            lease_ttl=self.config.lease_ttl,
        )
        if self.config.on_start is not None:
            self.config.on_start(self)
        return self.address

    def run(self) -> dict:
        """:meth:`start` + :meth:`serve` in one call (blocking)."""
        self.start()
        return self.serve()

    def request_drain(self, reason: str = "drain requested") -> None:
        """Graceful stop: no new leases; in-flight leases finish or expire."""
        with self._lock:
            self._drain = True
            self._drain_reason = reason
        _LOG.info("coordinator draining", reason=reason)

    def serve(self) -> dict:
        """Scheduler loop; returns the run summary when the run resolves.

        Resolution outcomes: ``complete`` (every chunk accepted),
        ``drained`` (drain requested and no lease is in flight),
        ``no_workers`` (nobody joined within ``worker_wait``) and
        ``abandoned`` (workers joined but all left and stayed away for
        ``worker_wait``) — the last two hand the unfinished chunks back
        to the caller for local degradation.
        """
        tracer = get_tracer()
        outcome = "complete"
        wait = self.config.worker_wait
        # The serve span is *live* for the whole scheduler loop (not an
        # instant span at resolution): its context is what worker-side
        # and connection-thread spans parent under, so it must exist
        # before the first lease resolves.
        serve_span = tracer.span(
            "distrib.serve", remote_parent=self._trace_ctx, chunks=self.n_chunks
        )
        with serve_span:
            if tracer.enabled:
                with self._lock:
                    self._serve_ctx = tracer.inject(serve_span)
            try:
                while True:
                    with self._lock:
                        now = time.monotonic()
                        self._expire_stale_leases(now)
                        if len(self._done) == self.n_chunks:
                            outcome = "complete"
                            break
                        if self._drain and not self._leases:
                            outcome = "drained"
                            break
                        if (
                            self._joined_ever == 0
                            and now - self._started_at >= wait
                        ):
                            outcome = "no_workers"
                            break
                        if (
                            self._joined_ever > 0
                            and self._live_workers == 0
                            and not self._leases
                            and now - self._last_activity >= wait
                        ):
                            outcome = "abandoned"
                            break
                    time.sleep(_TICK_SECONDS)
            finally:
                self._shutdown()
            summary = self.summary(outcome)
            serve_span.set(
                outcome=outcome,
                completed=summary["completed_chunks"],
                workers_joined=summary["workers_joined"],
                leases_granted=summary["leases_granted"],
                leases_expired=summary["leases_expired"],
                leases_reassigned=summary["leases_reassigned"],
            )
        _LOG.info(
            "coordinator finished",
            outcome=outcome,
            completed=summary["completed_chunks"],
            remaining=len(summary["remaining_chunks"]),
            workers=summary["workers_joined"],
        )
        return summary

    def summary(self, outcome: str) -> dict:
        with self._lock:
            remaining = sorted(set(range(self.n_chunks)) - self._done)
            return {
                "outcome": outcome,
                "address": list(self.address) if self.address else None,
                "workers_joined": self._joined_ever,
                "completed_chunks": len(self._done),
                "remaining_chunks": remaining,
                "results": {
                    key: self._counts[key]
                    for key in ("accepted", "duplicate", "conflict", "rejected")
                },
                "leases_granted": self._counts["leases_granted"],
                "leases_expired": self._counts["leases_expired"],
                "leases_reassigned": self._counts["leases_reassigned"],
                "handshake_refused": self._counts["handshake_refused"],
            }

    def status(self) -> dict:
        """Live run state for the ``/status`` endpoint (JSON-safe).

        Per-chunk state (``done`` / ``leased`` / ``pending``) with owner
        and grant count, the in-flight lease table with ages and TTL
        remainders, and the same counters :meth:`summary` reports — all
        under one lock acquisition so the document is a consistent cut.
        """
        with self._lock:
            now = time.monotonic()
            leases = [
                {
                    "lease": lease.lease_id,
                    "worker": lease.worker,
                    "chunks": sorted(lease.outstanding),
                    "age_s": round(now - lease.granted_at, 3),
                    "ttl_remaining_s": round(lease.deadline - now, 3),
                    "reassignment": lease.reassignment,
                }
                for lease in self._leases.values()
            ]
            chunk_to_lease = dict(self._chunk_lease)
            chunks = []
            for index in range(self.n_chunks):
                if index in self._done:
                    state, owner = "done", self._chunk_worker.get(index)
                elif index in chunk_to_lease:
                    lease = self._leases.get(chunk_to_lease[index])
                    state, owner = "leased", (lease.worker if lease else None)
                else:
                    state, owner = "pending", None
                chunks.append(
                    {
                        "chunk": index,
                        "state": state,
                        "owner": owner,
                        "attempts": self._attempts.get(index, 0),
                    }
                )
            return {
                "address": list(self.address) if self.address else None,
                "uptime_s": round(now - self._started_at, 3) if self._started_at else 0.0,
                "draining": self._drain,
                "workers_connected": self._live_workers,
                "workers_joined": self._joined_ever,
                "chunks_total": self.n_chunks,
                "chunks_done": len(self._done),
                "chunks_pending": len(self._pending),
                "leases_active": len(self._leases),
                "leases": leases,
                "chunks": chunks,
                "counts": dict(self._counts),
            }

    def payload(self, index: int) -> bytes:
        """Raw artifact bytes for an accepted chunk (journal-less mode)."""
        with self._lock:
            return self._artifacts[index]

    # -- networking --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection,
                args=(client,),
                name="distrib-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, client: socket.socket) -> None:
        conn = FrameSocket(client, role="coordinator")
        # Generous read deadline: heartbeats arrive every ttl/4, so a
        # silent connection this long is a hung worker, and dropping it
        # routes its chunks through the normal lease-expiry path.
        conn.settimeout(max(5.0, 4.0 * self.config.lease_ttl))
        worker = self._handshake(conn)
        if worker is None:
            conn.close()
            return
        conn_id = next(self._conn_ids)
        metrics = get_metrics()
        tracer = get_tracer()
        with self._lock:
            self._conns[conn_id] = conn
            self._live_workers += 1
            self._joined_ever += 1
            self._last_activity = time.monotonic()
            live = self._live_workers
        metrics.gauge("distrib_workers").inc()
        metrics.gauge("distrib_workers_connected").set(live)
        _LOG.info("worker joined", worker=worker, peer=conn.peer)
        rejects = 0
        try:
            while True:
                try:
                    message = conn.recv()
                except TimeoutError:
                    break  # hung worker: drop; leases expire via TTL
                if message is None:
                    break  # clean EOF
                with self._lock:
                    self._last_activity = time.monotonic()
                kind = message["type"]
                if kind == "lease_request":
                    conn.send(self._grant(worker, conn_id))
                elif kind == "heartbeat":
                    self._renew(message.get("lease"))
                elif kind == "metrics":
                    self._handle_metrics(worker, message)
                elif kind == "result":
                    spans = message.get("spans")
                    if spans and tracer.enabled:
                        tracer.merge_remote(spans)
                    with self._lock:
                        result_ctx = self._serve_ctx or self._trace_ctx
                    try:
                        with tracer.span(
                            "distrib.result",
                            remote_parent=result_ctx,
                            chunk=message.get("chunk"),
                            worker=worker,
                        ):
                            status = self._handle_result(worker, message)
                    except IntegrityError as exc:
                        status = "rejected"
                        rejects += 1
                        with self._lock:
                            self._counts["rejected"] += 1
                        metrics.counter(
                            "distrib_results_total", status="rejected"
                        ).inc()
                        _LOG.error(
                            "rejected result", worker=worker, error=str(exc)
                        )
                    conn.send(msg_result_ack(message.get("chunk", -1), status))
                    if rejects >= _MAX_REJECTS_PER_CONNECTION:
                        conn.send(msg_drain("too many rejected results"))
                        break
                else:
                    raise ProtocolError(
                        f"unexpected {kind!r} from worker {worker!r}"
                    )
        except (ProtocolError, OSError) as exc:
            _LOG.warning(
                "worker connection lost", worker=worker, error=str(exc)
            )
        finally:
            with self._lock:
                self._conns.pop(conn_id, None)
                self._live_workers -= 1
                self._last_activity = time.monotonic()
                # dead-worker detection: no reason to wait out the TTL
                self._expire_conn_leases(conn_id)
                live = self._live_workers
            metrics.gauge("distrib_workers").dec()
            metrics.gauge("distrib_workers_connected").set(live)
            conn.close()
            _LOG.info("worker left", worker=worker)

    def _handle_metrics(self, worker: str, message: dict) -> None:
        """One-way worker telemetry push: counter deltas + finished spans."""
        metrics = get_metrics()
        tracer = get_tracer()
        delta = message.get("delta")
        remote = message.get("registry") != registry_token()
        if delta and metrics.enabled and remote:
            metrics.merge_counter_deltas(decode_counter_delta(delta))
        spans = message.get("spans")
        if spans and tracer.enabled:
            tracer.merge_remote(spans)
        profile = message.get("profile")
        profiler = get_profiler()
        if profile and profiler.enabled and remote:
            # same double-count guard as counters: thread-harness workers
            # share this process's profiler, their samples are already here
            profiler.stacks.merge_rows(profile)

    def _handshake(self, conn: FrameSocket) -> "str | None":
        """Validate a HELLO; returns the worker name, or None if refused."""
        try:
            hello = conn.recv()
        except (ProtocolError, OSError, TimeoutError):
            return None
        if hello is None or hello.get("type") != "hello":
            return None
        worker = str(hello.get("worker", "?"))
        reason = None
        if hello.get("proto") != PROTOCOL_VERSION:
            reason = (
                f"protocol version {hello.get('proto')!r} != {PROTOCOL_VERSION}"
            )
        elif not fingerprints_equal(
            hello.get("fingerprint") or {}, self._fingerprint
        ):
            reason = "plan fingerprint mismatch: different plan/codec/chunking"
        elif hello.get("manifest_digest") != self._identity:
            reason = "manifest digest mismatch: different input data"
        elif (
            self._weights is not None
            and hello.get("weights") is not None
            and hello.get("weights") != self._weights
        ):
            reason = "model weights digest mismatch"
        if reason is not None:
            with self._lock:
                self._counts["handshake_refused"] += 1
            get_metrics().counter("distrib_handshakes_refused_total").inc()
            _LOG.warning("refused worker", worker=worker, reason=reason)
            try:
                conn.send(msg_refuse(reason))
            except OSError:
                pass
            return None
        try:
            with self._lock:
                trace_ctx = self._serve_ctx or self._trace_ctx
            conn.send(
                msg_welcome(
                    self._identity,
                    self.n_chunks,
                    self.config.lease_ttl,
                    trace=trace_ctx,
                )
            )
        except OSError:
            return None
        return worker

    # -- scheduling --------------------------------------------------------

    def _gate_open(self, now: float) -> bool:
        """Hold back grants until the expected fleet joins (or we give up
        waiting) so the first worker doesn't walk off with every shard."""
        if self.config.expect_workers <= 0:
            return True
        if self._joined_ever >= self.config.expect_workers:
            return True
        return now - self._started_at >= self.config.worker_wait

    def _grant(self, worker: str, conn_id: int) -> dict:
        with self._lock:
            now = time.monotonic()
            if self._drain:
                return msg_drain(self._drain_reason or "draining")
            if len(self._done) == self.n_chunks:
                return msg_drain("run complete")
            if not self._gate_open(now) or not self._pending:
                return msg_wait(_WAIT_SECONDS)
            chunks = []
            while self._pending and len(chunks) < self.config.shard_size:
                chunks.append(self._pending.popleft())
            lease_id = next(self._lease_ids)
            reassignment = any(c in self._expired_chunks for c in chunks)
            lease = _Lease(
                lease_id=lease_id,
                worker=worker,
                conn_id=conn_id,
                outstanding=set(chunks),
                granted_at=now,
                deadline=now + self.config.lease_ttl,
                chunks=tuple(chunks),
                reassignment=reassignment,
            )
            self._leases[lease_id] = lease
            granted_unix = time.time()
            for chunk in chunks:
                self._chunk_lease[chunk] = lease_id
                self._granted_unix[chunk] = granted_unix
                self._attempts[chunk] = self._attempts.get(chunk, 0) + 1
            self._counts["leases_granted"] += 1
            if reassignment:
                self._counts["leases_reassigned"] += 1
            active = len(self._leases)
            trace_ctx = self._serve_ctx or self._trace_ctx
        metrics = get_metrics()
        metrics.counter("distrib_leases_granted_total").inc()
        metrics.gauge("distrib_leases_active").set(active)
        if reassignment:
            metrics.counter("distrib_leases_reassigned_total").inc()
        _LOG.debug(
            "lease granted", lease=lease_id, worker=worker, chunks=chunks
        )
        return msg_lease(lease_id, chunks, self.config.lease_ttl, trace=trace_ctx)

    def _renew(self, lease_id) -> None:
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is not None:
                lease.deadline = time.monotonic() + self.config.lease_ttl

    def _expire_stale_leases(self, now: float) -> None:
        """TTL sweep (caller holds the lock)."""
        for lease_id in [
            i for i, lease in self._leases.items() if lease.deadline < now
        ]:
            self._expire_lease(lease_id, "ttl expired")

    def _expire_conn_leases(self, conn_id: int) -> None:
        """Release a dead connection's leases (caller holds the lock)."""
        for lease_id in [
            i
            for i, lease in self._leases.items()
            if lease.conn_id == conn_id
        ]:
            self._expire_lease(lease_id, "worker disconnected")

    def _expire_lease(self, lease_id: int, reason: str) -> None:
        lease = self._leases.pop(lease_id)
        returned = sorted(c for c in lease.outstanding if c not in self._done)
        requeued_unix = time.time()
        for chunk in reversed(returned):
            self._pending.appendleft(chunk)
            self._expired_chunks.add(chunk)
            self._chunk_lease.pop(chunk, None)
            # queue time restarts: the chunk is waiting again
            self._enqueued_unix[chunk] = requeued_unix
            self._granted_unix.pop(chunk, None)
        self._counts["leases_expired"] += 1
        metrics = get_metrics()
        metrics.counter("distrib_leases_expired_total").inc()
        metrics.gauge("distrib_leases_active").set(len(self._leases))
        self._emit_lease_span(lease, f"expired: {reason}")
        _LOG.warning(
            "lease expired",
            lease=lease_id,
            worker=lease.worker,
            reason=reason,
            returned=returned,
        )

    def _emit_lease_span(self, lease: _Lease, outcome: str) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        # Leases start and resolve on different threads, and Span's
        # active stack is thread-local — so emit one instant span at
        # resolution carrying the full lease lifetime as attributes,
        # parented under the live serve span via its trace context.
        with tracer.span(
            "distrib.lease",
            remote_parent=self._serve_ctx or self._trace_ctx,
            lease=lease.lease_id,
            worker=lease.worker,
            chunks=list(lease.chunks),
            outcome=outcome,
            reassignment=lease.reassignment,
            lease_seconds=round(time.monotonic() - lease.granted_at, 6),
        ):
            pass

    # -- result intake -----------------------------------------------------

    def _handle_result(self, worker: str, message: dict) -> str:
        chunk = message.get("chunk")
        if not isinstance(chunk, int) or not 0 <= chunk < self.n_chunks:
            raise ProtocolError(f"result for unknown chunk {chunk!r}")
        entry = message.get("entry")
        if not isinstance(entry, dict):
            raise ProtocolError(f"result for chunk {chunk} carries no entry")
        data = decode_artifact(message.get("artifact", ""))
        digest = digest_bytes(data)
        # Validation happens before any state change: a bad result must
        # not consume the chunk, and the sender sees a typed rejection.
        if entry.get("input_digest") != self._digests[chunk]:
            raise IntegrityError(
                f"chunk {chunk} result from {worker!r} was computed on "
                "different input bytes (mixed-plan or stale data)"
            )
        declared = entry.get("artifact_digest")
        if declared is not None and declared != digest:
            raise IntegrityError(
                f"chunk {chunk} artifact from {worker!r} does not match its "
                "declared digest (tampered or corrupted in transit)"
            )
        with self._lock:
            if chunk in self._done:
                known = (
                    self.accepted[chunk].get("artifact_digest")
                    if chunk in self.accepted
                    else None
                )
                if known is not None and known != digest:
                    # first-digest-wins: the straggler's bytes disagree
                    # with what was already certified and journaled
                    self._counts["conflict"] += 1
                    get_metrics().counter(
                        "distrib_results_total", status="conflict"
                    ).inc()
                    _LOG.warning(
                        "conflicting duplicate result dropped",
                        chunk=chunk,
                        worker=worker,
                    )
                    return "conflict"
                self._counts["duplicate"] += 1
                get_metrics().counter(
                    "distrib_results_total", status="duplicate"
                ).inc()
                return "duplicate"
            recorded = dict(entry)
            recorded["chunk"] = chunk
            recorded["artifact_digest"] = digest
            recorded["worker"] = worker
            if self._journal is not None:
                recorded = self._journal.record_raw(
                    chunk, data=data, entry=recorded
                )
            else:
                self._artifacts[chunk] = data
            self.accepted[chunk] = recorded
            self._done.add(chunk)
            self._chunk_worker[chunk] = worker
            try:
                self._pending.remove(chunk)
            except ValueError:
                pass
            lease_id = self._chunk_lease.pop(chunk, None)
            if lease_id is not None:
                lease = self._leases.get(lease_id)
                if lease is not None:
                    lease.outstanding.discard(chunk)
                    if not lease.outstanding:
                        del self._leases[lease_id]
                        self._emit_lease_span(lease, "completed")
            self._counts["accepted"] += 1
            active = len(self._leases)
            phases = self._chunk_phases(chunk, entry, lease_id, worker)
        metrics = get_metrics()
        metrics.counter("distrib_results_total", status="accepted").inc()
        metrics.gauge("distrib_leases_active").set(active)
        for phase in ("queue", "run", "transfer"):
            metrics.histogram("distrib_chunk_seconds", phase=phase).observe(
                phases[f"{phase}_s"]
            )
        _LOG.debug("result accepted", chunk=chunk, worker=worker)
        return "accepted"

    def _chunk_phases(self, chunk: int, entry: dict, lease_id, worker: str) -> dict:
        """Queue/run/transfer split for one accepted chunk (lock held).

        *queue* is pending-to-grant wait, *run* is the worker-measured
        task wall (``task_seconds``, falling back to the summed stage
        timings), *transfer* is whatever remains of grant-to-accept after
        the run — serialization, base64 and the wire.  Also emits the
        ``distrib.chunk`` instant span the timeline analyzer consumes.
        """
        accepted_unix = time.time()
        enqueued = self._enqueued_unix.get(chunk, self._started_unix)
        granted = self._granted_unix.get(chunk, accepted_unix)
        run_s = entry.get("task_seconds")
        if not isinstance(run_s, (int, float)) or run_s < 0:
            timings = entry.get("timings") or {}
            run_s = sum(
                v for v in timings.values() if isinstance(v, (int, float))
            )
        queue_s = max(0.0, granted - enqueued)
        transfer_s = max(0.0, (accepted_unix - granted) - run_s)
        phases = {
            "chunk": chunk,
            "worker": worker,
            "lease": lease_id,
            "queue_s": queue_s,
            "run_s": float(run_s),
            "transfer_s": transfer_s,
            "enqueued_unix": enqueued,
            "granted_unix": granted,
            "accepted_unix": accepted_unix,
            "attempts": self._attempts.get(chunk, 1),
        }
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "distrib.chunk",
                remote_parent=self._serve_ctx or self._trace_ctx,
                **phases,
            ):
                pass
        return phases

    # -- shutdown ----------------------------------------------------------

    def _shutdown(self) -> None:
        self._closing = True
        if self._server is not None:
            try:
                self._server.stop()
            except Exception:  # pragma: no cover - telemetry teardown
                pass
            self._server = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.send(msg_drain("coordinator shutting down"))
            except OSError:
                pass
            conn.close()
