"""Distributed chunked execution: lease-based shard scheduling over TCP.

The single-host story (PR 6) made chunked execution fault-tolerant and
resumable; this package shards it across machines without weakening a
single guarantee.  A :class:`~repro.distrib.coordinator.ShardCoordinator`
serves the chunk manifest as TTL leases over length-prefixed JSON frames
(:mod:`~repro.distrib.protocol`); each
:class:`~repro.distrib.worker.ShardWorker` runs its leased chunks on the
existing supervised pool and local checkpoint journal, and the
coordinator merges the journals — validating every result against the
plan fingerprint and per-chunk input digests, so mixed-plan or tampered
results are structurally impossible to merge.

Entry points: ``InferencePipeline.execute_chunked(executor="distributed")``
on the coordinator side, ``repro coordinate`` / ``repro worker`` on the
CLI.
"""

from .coordinator import DistribConfig, DrainedError, ShardCoordinator
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameSocket,
    decode_artifact,
    encode_artifact,
    fingerprints_equal,
    manifest_identity,
)
from .worker import ShardWorker

__all__ = [
    "DistribConfig",
    "DrainedError",
    "FrameSocket",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ShardCoordinator",
    "ShardWorker",
    "decode_artifact",
    "encode_artifact",
    "fingerprints_equal",
    "manifest_identity",
]
