"""Dataset containers, normalization and batching.

The paper normalizes all network inputs prior to training and inference
(Section III-B assumes inputs within ``[-1, 1]``); compression operates on
the normalized fields, so compressor tolerances and the bound's
``||Delta x||`` live in the same units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..exceptions import ShapeError

__all__ = ["MinMaxNormalizer", "ScientificDataset", "train_test_split", "batches"]


class MinMaxNormalizer:
    """Per-feature affine map onto ``[-1, 1]`` fitted on training data."""

    def __init__(self) -> None:
        self.low: np.ndarray | None = None
        self.high: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "MinMaxNormalizer":
        """Record per-feature min/max over all leading dimensions."""
        data = np.asarray(data, dtype=np.float64)
        flat = data.reshape(-1, data.shape[-1]) if data.ndim > 1 else data.reshape(-1, 1)
        self.low = flat.min(axis=0)
        self.high = flat.max(axis=0)
        degenerate = self.high <= self.low
        self.high = np.where(degenerate, self.low + 1.0, self.high)
        return self

    def _check_fitted(self) -> None:
        if self.low is None:
            raise ShapeError("normalizer used before fit()")

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=np.float64)
        return (2.0 * (data - self.low) / (self.high - self.low) - 1.0).astype(np.float32)

    def inverse(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=np.float64)
        return ((data + 1.0) / 2.0 * (self.high - self.low) + self.low).astype(np.float32)

    @property
    def scale(self) -> np.ndarray:
        """Per-feature multiplicative factor raw -> normalized."""
        self._check_fitted()
        return 2.0 / (self.high - self.low)


@dataclass
class ScientificDataset:
    """A complete workload: splits, normalized fields, and metadata.

    Attributes
    ----------
    name:
        Workload identifier (``h2combustion``, ``borghesi``, ``eurosat``).
    train_inputs, train_targets, test_inputs, test_targets:
        Normalized training/evaluation splits.
    fields:
        The normalized input data as stored on disk — what the compressor
        sees.  Shape ``(n_variables, *grid)`` for field workloads or
        ``(n_images, n_bands, H, W)`` for imagery.
    task:
        ``"regression"`` or ``"classification"``.
    input_normalizer, target_normalizer:
        Fitted normalizers (targets only for regression).
    """

    name: str
    train_inputs: np.ndarray
    train_targets: np.ndarray
    test_inputs: np.ndarray
    test_targets: np.ndarray
    fields: np.ndarray
    task: str = "regression"
    input_normalizer: MinMaxNormalizer | None = None
    target_normalizer: MinMaxNormalizer | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def n_inputs(self) -> int:
        return int(self.train_inputs.shape[-1])

    @property
    def n_outputs(self) -> int:
        if self.task == "classification":
            return int(self.train_targets.max()) + 1
        return int(self.train_targets.shape[-1])

    def fields_as_samples(self) -> np.ndarray:
        """Reshape the stored fields into network-input rows.

        For field workloads ``(V, *grid) -> (prod(grid), V)``; for imagery
        the fields are already per-sample and are returned unchanged.
        """
        if self.fields.ndim >= 2 and self.name != "eurosat":
            n_vars = self.fields.shape[0]
            return self.fields.reshape(n_vars, -1).T.astype(np.float32)
        return self.fields


def train_test_split(
    inputs: np.ndarray,
    targets: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into train and test subsets."""
    if len(inputs) != len(targets):
        raise ShapeError(f"inputs ({len(inputs)}) and targets ({len(targets)}) disagree")
    if not 0.0 < test_fraction < 1.0:
        raise ShapeError(f"test_fraction must be in (0, 1), got {test_fraction}")
    order = rng.permutation(len(inputs))
    n_test = max(1, int(len(inputs) * test_fraction))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return inputs[train_idx], targets[train_idx], inputs[test_idx], targets[test_idx]


def batches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield mini-batches, optionally shuffled."""
    n = len(inputs)
    order = np.arange(n) if rng is None else rng.permutation(n)
    for start in range(0, n, batch_size):
        index = order[start : start + batch_size]
        yield inputs[index], targets[index]
