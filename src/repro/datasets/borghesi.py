"""Synthetic Borghesi-flame dissipation-rate dataset (paper Section IV-A.2).

Reproduces the structure of the paper's second workload: dissipation-rate
profiling on an auto-igniting turbulent jet.  The DNS database itself is
proprietary; we synthesize a temporally-evolving-jet-like state — mixture
fraction ``Z`` and progress variable ``C`` carried by spectral turbulence
on a planar jet — and derive the same 13 thermochemical input variables
and 3 filtered dissipation-rate outputs the paper describes (mixture
fraction dissipation, progress-variable dissipation, cross dissipation).

The squared-gradient structure of the outputs makes this workload highly
sensitive to input perturbations, matching the paper's observation that
BorghesiFlame shows ~10x the QoI sensitivity of H2Combustion.
"""

from __future__ import annotations

import numpy as np

from ..physics.fields import box_filter, mixture_fraction_jet
from ..physics.turbulence import synthesize_scalar
from .loaders import MinMaxNormalizer, ScientificDataset, train_test_split

__all__ = ["INPUT_VARIABLES", "OUTPUT_VARIABLES", "make_borghesi_flame"]

INPUT_VARIABLES: tuple[str, ...] = (
    "Z",
    "C",
    "dZ_dx",
    "dZ_dy",
    "dC_dx",
    "dC_dy",
    "grad_Z_sq",
    "grad_C_sq",
    "grad_ZC",
    "Z_filtered",
    "C_filtered",
    "temperature",
    "density",
)

OUTPUT_VARIABLES: tuple[str, ...] = ("chi_Z", "chi_C", "chi_ZC")

_T_UNBURNT = 900.0  # K, diesel-relevant low-temperature condition
_T_BURNT = 2200.0
_DIFFUSIVITY = 0.15  # reference scalar diffusivity (arbitrary units)


def make_borghesi_flame(
    grid: int = 96,
    rng: np.random.Generator | None = None,
    test_fraction: float = 0.2,
    filter_width: int = 4,
) -> ScientificDataset:
    """Build the Borghesi-flame dissipation workload.

    Returns a dataset whose 13 inputs and 3 outputs follow the paper's
    description; ``fields`` holds the ``(13, grid, grid)`` normalized
    input planes for the compression experiments.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    shape = (grid, grid)

    z = mixture_fraction_jet(shape, jet_width=0.35, steepness=8.0)
    z = np.clip(z + 0.15 * synthesize_scalar(shape, rng, slope=5.0 / 3.0), 0.0, 1.0)
    ignition = np.clip(
        0.6 * np.exp(-(((z - 0.35) / 0.2) ** 2)) + 0.2 * synthesize_scalar(shape, rng),
        0.0,
        1.0,
    )
    c = np.clip(ignition, 0.0, 1.0)

    dz_dy, dz_dx = np.gradient(z)
    dc_dy, dc_dx = np.gradient(c)
    grad_z_sq = dz_dx**2 + dz_dy**2
    grad_c_sq = dc_dx**2 + dc_dy**2
    grad_zc = dz_dx * dc_dx + dz_dy * dc_dy

    temperature = _T_UNBURNT + (_T_BURNT - _T_UNBURNT) * c
    density = 1.0 / (temperature / _T_UNBURNT)  # ideal gas at fixed pressure

    # Temperature-dependent diffusivity couples the outputs nonlinearly to
    # the thermochemical state (D ~ T^1.7 transport scaling).
    diffusivity = _DIFFUSIVITY * (temperature / _T_UNBURNT) ** 1.7
    chi_z = box_filter(2.0 * diffusivity * grad_z_sq, filter_width)
    chi_c = box_filter(2.0 * diffusivity * grad_c_sq, filter_width)
    chi_zc = box_filter(2.0 * diffusivity * grad_zc, filter_width)

    planes = [
        z,
        c,
        dz_dx,
        dz_dy,
        dc_dx,
        dc_dy,
        grad_z_sq,
        grad_c_sq,
        grad_zc,
        box_filter(z, filter_width),
        box_filter(c, filter_width),
        temperature,
        density,
    ]
    inputs_raw = np.stack([plane.ravel() for plane in planes], axis=-1)
    targets_raw = np.stack([chi_z.ravel(), chi_c.ravel(), chi_zc.ravel()], axis=-1)

    input_norm = MinMaxNormalizer().fit(inputs_raw)
    target_norm = MinMaxNormalizer().fit(targets_raw)
    inputs = input_norm.transform(inputs_raw)
    targets = target_norm.transform(targets_raw)

    fields = (
        inputs.reshape(grid, grid, len(INPUT_VARIABLES)).transpose(2, 0, 1).copy()
    )
    train_x, train_y, test_x, test_y = train_test_split(inputs, targets, test_fraction, rng)
    return ScientificDataset(
        name="borghesi",
        train_inputs=train_x,
        train_targets=train_y,
        test_inputs=test_x,
        test_targets=test_y,
        fields=fields,
        task="regression",
        input_normalizer=input_norm,
        target_normalizer=target_norm,
        metadata={
            "grid": grid,
            "inputs": list(INPUT_VARIABLES),
            "outputs": list(OUTPUT_VARIABLES),
            "filter_width": filter_width,
        },
    )
