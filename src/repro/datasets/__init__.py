"""Synthetic scientific datasets reproducing the paper's three workloads."""

from .borghesi import INPUT_VARIABLES, OUTPUT_VARIABLES, make_borghesi_flame
from .combustion import make_h2_combustion, mass_fractions_from_mixture
from .eurosat import CLASS_NAMES, N_BANDS, make_eurosat
from .loaders import MinMaxNormalizer, ScientificDataset, batches, train_test_split

__all__ = [
    "CLASS_NAMES",
    "INPUT_VARIABLES",
    "MinMaxNormalizer",
    "N_BANDS",
    "OUTPUT_VARIABLES",
    "ScientificDataset",
    "batches",
    "make_borghesi_flame",
    "make_eurosat",
    "make_h2_combustion",
    "mass_fractions_from_mixture",
    "train_test_split",
]
