"""Synthetic EuroSAT-like multispectral imagery (paper Section IV-A.3).

EuroSAT is 16-bit Sentinel-2 imagery over 13 spectral bands with 10 land
use / land cover classes.  The real dataset is not redistributable here,
so images are generated procedurally: each class combines a distinctive
spectral signature (mean reflectance per band) with a class-specific
spatial texture (correlation length, anisotropy, blockiness), rendered as
16-bit samples — exercising the same ResNet + high-precision-input code
path the paper evaluates.

The paper resizes to 224x224; we default to 32x32 so the numpy ResNet
trains in seconds (documented substitution — the error theory depends on
layer spectra, not image resolution).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .loaders import MinMaxNormalizer, ScientificDataset

__all__ = ["CLASS_NAMES", "N_BANDS", "make_eurosat"]

CLASS_NAMES: tuple[str, ...] = (
    "AnnualCrop",
    "Forest",
    "HerbaceousVegetation",
    "Highway",
    "Industrial",
    "Pasture",
    "PermanentCrop",
    "Residential",
    "River",
    "SeaLake",
)

N_BANDS = 13

# Per-class band signature: base reflectance level per band (fraction of
# the 16-bit range).  Vegetation classes peak in the NIR bands (7-9),
# water absorbs NIR, built-up classes are spectrally flat and bright.
_BAND_AXIS = np.linspace(0.0, 1.0, N_BANDS)


def _signature(vis: float, nir: float, swir: float) -> np.ndarray:
    weights_nir = np.exp(-(((_BAND_AXIS - 0.6) / 0.18) ** 2))
    weights_swir = np.exp(-(((_BAND_AXIS - 0.95) / 0.15) ** 2))
    base = vis * (1.0 - weights_nir - weights_swir) + nir * weights_nir + swir * weights_swir
    return np.clip(base, 0.02, 0.95)


_SIGNATURES = np.stack(
    [
        _signature(0.22, 0.55, 0.30),  # AnnualCrop
        _signature(0.08, 0.45, 0.18),  # Forest
        _signature(0.15, 0.50, 0.25),  # HerbaceousVegetation
        _signature(0.30, 0.28, 0.33),  # Highway
        _signature(0.45, 0.40, 0.48),  # Industrial
        _signature(0.18, 0.48, 0.22),  # Pasture
        _signature(0.25, 0.52, 0.28),  # PermanentCrop
        _signature(0.40, 0.35, 0.42),  # Residential
        _signature(0.12, 0.15, 0.08),  # River
        _signature(0.10, 0.06, 0.04),  # SeaLake
    ]
)

# Texture parameters per class: (correlation length, anisotropy, blockiness)
_TEXTURES: tuple[tuple[float, float, float], ...] = (
    (2.0, 4.0, 0.0),  # AnnualCrop: striped rows
    (1.5, 1.0, 0.0),  # Forest: fine isotropic
    (2.5, 1.0, 0.0),  # HerbaceousVegetation
    (1.0, 6.0, 0.0),  # Highway: strongly anisotropic
    (1.5, 1.0, 0.8),  # Industrial: blocky
    (3.5, 1.0, 0.0),  # Pasture: smooth
    (2.0, 3.0, 0.2),  # PermanentCrop: semi-striped
    (1.2, 1.0, 0.9),  # Residential: very blocky
    (2.5, 2.5, 0.0),  # River: elongated
    (6.0, 1.0, 0.0),  # SeaLake: very smooth
)


def _texture(
    size: int, corr: float, anisotropy: float, blockiness: float, rng: np.random.Generator
) -> np.ndarray:
    noise = rng.standard_normal((size, size))
    smooth = ndimage.gaussian_filter(noise, sigma=(corr, corr / anisotropy), mode="wrap")
    std = smooth.std()
    if std > 0:
        smooth = smooth / std
    if blockiness > 0:
        block = max(2, size // 8)
        coarse = smooth[::block, ::block]
        blocked = np.kron(coarse, np.ones((block, block)))[:size, :size]
        smooth = (1 - blockiness) * smooth + blockiness * blocked
    return smooth


def make_eurosat(
    n_per_class: int = 24,
    image_size: int = 32,
    rng: np.random.Generator | None = None,
    test_fraction: float = 0.25,
) -> ScientificDataset:
    """Build the synthetic EuroSAT classification workload.

    Returns
    -------
    ScientificDataset
        ``train_inputs``: normalized images ``(N, 13, H, W)``;
        ``train_targets``: integer labels; ``fields``: the normalized test
        images (what the compressor ingests at inference time).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    images = []
    labels = []
    for class_id in range(len(CLASS_NAMES)):
        signature = _SIGNATURES[class_id]
        corr, anisotropy, blockiness = _TEXTURES[class_id]
        for __ in range(n_per_class):
            texture = _texture(image_size, corr, anisotropy, blockiness, rng)
            # Band loading: texture modulates each band proportionally to
            # its signature, plus band-independent sensor noise.
            image = (
                signature[:, None, None]
                * (1.0 + 0.25 * texture[None, :, :])
            )
            image = image + 0.01 * rng.standard_normal((N_BANDS, image_size, image_size))
            images.append(np.clip(image, 0.0, 1.0))
            labels.append(class_id)
    raw = np.stack(images)  # (N, 13, H, W) reflectances in [0, 1]
    labels = np.asarray(labels, dtype=np.int64)

    # Store as 16-bit counts like Sentinel-2, then normalize to [-1, 1].
    counts = (raw * 10000.0).astype(np.uint16)
    normalized = (counts.astype(np.float32) / 5000.0) - 1.0

    order = rng.permutation(len(normalized))
    n_test = max(1, int(len(normalized) * test_fraction))
    test_idx, train_idx = order[:n_test], order[n_test:]

    input_norm = MinMaxNormalizer()
    input_norm.low = np.zeros(N_BANDS)
    input_norm.high = np.full(N_BANDS, 10000.0)

    return ScientificDataset(
        name="eurosat",
        train_inputs=normalized[train_idx],
        train_targets=labels[train_idx],
        test_inputs=normalized[test_idx],
        test_targets=labels[test_idx],
        fields=normalized[test_idx].astype(np.float32),
        task="classification",
        input_normalizer=input_norm,
        metadata={
            "classes": list(CLASS_NAMES),
            "image_size": image_size,
            "n_bands": N_BANDS,
            "bit_depth": 16,
        },
    )
