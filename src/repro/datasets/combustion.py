"""Synthetic turbulent hydrogen-combustion dataset (paper Section IV-A.1).

Reproduces the structure of the Sandia 9-species H2 workload: a 2-D field
with a single central vortex wrapping a fuel/oxidizer interface; samples
are the per-grid-point mass fractions of the 9 species, targets are their
net reaction rates from the reduced mechanism.

The vortex-dominated structure makes the fields highly compressible even
at tight tolerances, which is exactly the behaviour the paper reports for
this dataset (Section IV-D).
"""

from __future__ import annotations

import numpy as np

from ..physics.fields import advect_scalar, lamb_oseen_vortex, mixture_fraction_jet
from ..physics.h2chem import SPECIES, H2Mechanism
from ..physics.turbulence import synthesize_scalar
from .loaders import MinMaxNormalizer, ScientificDataset, train_test_split

__all__ = ["mass_fractions_from_mixture", "make_h2_combustion"]

# Stream compositions (mass fractions): fuel = H2 diluted in N2,
# oxidizer = air.
_FUEL = {"H2": 0.28, "N2": 0.72}
_OXIDIZER = {"O2": 0.233, "N2": 0.767}
_Z_STOICH = 0.17


def mass_fractions_from_mixture(
    mixture_fraction: np.ndarray, progress: np.ndarray
) -> np.ndarray:
    """Flamelet-style state map ``(Z, c) -> 9 mass fractions``.

    Mixing is linear in ``Z``; combustion progress ``c`` converts the
    stoichiometrically available fuel/oxidizer into water and seeds the
    radical pool (H, O, OH, HO2, H2O2) with profiles peaked near the
    reaction zone, mimicking laminar-flamelet structure.
    """
    z = np.clip(np.asarray(mixture_fraction, dtype=np.float64), 0.0, 1.0)
    c = np.clip(np.asarray(progress, dtype=np.float64), 0.0, 1.0)

    y = {name: np.zeros_like(z) for name in SPECIES}
    y["H2"] = _FUEL["H2"] * z
    y["O2"] = _OXIDIZER["O2"] * (1.0 - z)
    y["N2"] = _FUEL["N2"] * z + _OXIDIZER["N2"] * (1.0 - z)

    # Burnable fraction: limited by the lean side.
    burnable = np.minimum(y["H2"], y["O2"] * (2 * 2.016 / 31.998))
    burned = burnable * c
    water = burned * (18.015 / 2.016)
    oxygen_used = burned * (31.998 / (2 * 2.016))
    y["H2"] = y["H2"] - burned
    y["O2"] = np.maximum(y["O2"] - oxygen_used, 0.0)
    y["H2O"] = water

    # Radical pool: peaked at the reaction zone (Z near stoichiometric,
    # c mid-range), orders of magnitude below the majors.
    zone = np.exp(-(((z - _Z_STOICH) / 0.08) ** 2)) * c * (1.0 - c) * 4.0
    y["OH"] = 8e-3 * zone
    y["H"] = 6e-4 * zone
    y["O"] = 2e-3 * zone
    y["HO2"] = 4e-4 * zone
    y["H2O2"] = 1e-4 * zone

    stacked = np.stack([y[name] for name in SPECIES], axis=-1)
    # Renormalize so each point sums to one (radicals perturb the budget).
    return stacked / stacked.sum(axis=-1, keepdims=True)


def _snapshot_state(
    shape: tuple[int, int],
    rng: np.random.Generator,
    advection_steps: int,
    kernel_growth: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Mixture fraction and progress variable after the given advection."""
    u, v = lamb_oseen_vortex(shape)
    z = mixture_fraction_jet(shape)
    z = advect_scalar(z, u, v, steps=advection_steps)
    z = np.clip(z + 0.02 * synthesize_scalar(shape, rng), 0.0, 1.0)
    ny, nx = shape
    yy, xx = np.meshgrid(
        (np.arange(ny) + 0.5) / ny - 0.5, (np.arange(nx) + 0.5) / nx - 0.5, indexing="ij"
    )
    radius = np.sqrt(xx**2 + yy**2)
    # Ignition kernel around the vortex core, growing as the flame wraps
    # (growth only applies to later snapshots of a time series).
    kernel_radius = 0.3 * (1.0 + kernel_growth)
    progress = np.clip(
        np.exp(-((radius / kernel_radius) ** 2)) + 0.05 * synthesize_scalar(shape, rng),
        0.0,
        1.0,
    )
    return z, progress


def make_h2_combustion(
    grid: int = 96,
    rng: np.random.Generator | None = None,
    test_fraction: float = 0.2,
    advection_steps: int = 25,
    n_snapshots: int = 1,
) -> ScientificDataset:
    """Build the hydrogen-combustion workload.

    Parameters
    ----------
    grid:
        Edge length of the square domain.
    rng:
        Random generator (small-scale turbulence and the split).
    test_fraction:
        Held-out fraction of grid points.
    advection_steps:
        Semi-Lagrangian steps wrapping the interface around the vortex
        (for time series: the steps of the *first* snapshot).
    n_snapshots:
        Number of consecutive time snapshots.  With more than one, the
        stored fields gain a leading time axis —
        ``(9, n_snapshots, grid, grid)`` — and the codecs exploit the
        temporal coherence between frames, the way in-situ HPC pipelines
        compress simulation output.

    Returns
    -------
    ScientificDataset
        Inputs: normalized 9 mass fractions; targets: normalized reaction
        rates; ``fields``: the normalized input data
        (``(9, grid, grid)`` for a single snapshot).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if n_snapshots < 1:
        raise ValueError("n_snapshots must be >= 1")
    shape = (grid, grid)
    mechanism = H2Mechanism()

    frames = []
    for snapshot in range(n_snapshots):
        z, progress = _snapshot_state(
            shape, rng, advection_steps + 3 * snapshot, kernel_growth=0.05 * snapshot
        )
        frames.append(mass_fractions_from_mixture(z, progress))  # (H, W, 9)
    mass_fractions = np.stack(frames)  # (T, H, W, 9)
    rates = mechanism.production_rates(mass_fractions)

    inputs_raw = mass_fractions.reshape(-1, len(SPECIES))
    targets_raw = rates.reshape(-1, len(SPECIES))

    input_norm = MinMaxNormalizer().fit(inputs_raw)
    target_norm = MinMaxNormalizer().fit(targets_raw)
    inputs = input_norm.transform(inputs_raw)
    targets = target_norm.transform(targets_raw)

    fields = inputs.reshape(n_snapshots, grid, grid, len(SPECIES)).transpose(3, 0, 1, 2)
    if n_snapshots == 1:
        fields = fields[:, 0]
    train_x, train_y, test_x, test_y = train_test_split(inputs, targets, test_fraction, rng)
    return ScientificDataset(
        name="h2combustion",
        train_inputs=train_x,
        train_targets=train_y,
        test_inputs=test_x,
        test_targets=test_y,
        fields=np.ascontiguousarray(fields),
        task="regression",
        input_normalizer=input_norm,
        target_normalizer=target_norm,
        metadata={
            "grid": grid,
            "species": list(SPECIES),
            "n_snapshots": n_snapshots,
        },
    )
