"""High-level error-flow analysis API (the heart of the paper's Fig. 1).

:class:`ErrorFlowAnalyzer` wraps a trained model and answers, *before any
quantization or compression happens*:

* how much does an input perturbation of a given size move the QoI
  (Eq. 5 compression bound);
* how much error does storing the weights in a given numeric format add
  (quantization bound);
* the combined Inequality (3) bound, in L2 or L-infinity, globally or per
  output feature;
* the inverse question the planner needs: given a QoI tolerance and a
  chosen format, how large may the input (compression) error be?
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..exceptions import ToleranceError
from ..nn.module import Module
from ..perf.cache import get_memo
from ..quant.formats import NumericFormat
from .bounds import (
    compression_gain,
    propagate,
    propagate_chain_trajectory,
    step_sizes_for,
)
from .graph import LinearSpec, NetworkSpec, extract_spec

__all__ = ["ErrorFlowAnalyzer"]

#: distinguishes analyzers in the shared bound-evaluation memo; a plain
#: monotone counter, never reused (unlike ``id()``)
_ANALYZER_TOKENS = itertools.count()


def _format_memo_key(fmt) -> object:
    """Hashable identity of a format argument (formats are frozen)."""
    if fmt is None or isinstance(fmt, NumericFormat):
        return fmt
    return tuple(fmt)


class ErrorFlowAnalyzer:
    """Pre-inference error estimation for a trained network.

    Parameters
    ----------
    model:
        Trained :class:`~repro.nn.sequential.Sequential` network.
    n_input:
        Total input dimensionality per sample (``prod`` of the input
        shape).  Defaults to the first layer's fan-in (correct for MLPs).
    quant_safety:
        Multiplier on the per-layer quantization steps ``q_l``.  The
        paper's quantization term is a Central-Limit-Theorem
        *concentration estimate* ("the norm concentrates around its
        mean", Section III-B): it covers the observed error in all of the
        paper's experiments, but for very narrow layers (a few tens of
        neurons) the fluctuation around the mean can exceed it.  The
        default 1.0 is paper-exact; raise it (e.g. 1.5) when a hard
        worst-case margin is required for small networks.

    Notes
    -----
    All bound methods return *absolute* error bounds on the QoI in the
    requested norm; divide by a reference output norm for the relative
    errors plotted in the paper's figures.  The compression term (Eq. 5)
    is a deterministic operator-norm bound and is never exceeded.
    """

    def __init__(
        self,
        model: Module,
        n_input: int | None = None,
        quant_safety: float = 1.0,
    ) -> None:
        if quant_safety <= 0:
            raise ToleranceError(f"quant_safety must be positive, got {quant_safety}")
        self.spec: NetworkSpec = extract_spec(model, n_input=n_input)
        self.quant_safety = float(quant_safety)
        self._model = model
        self._signal_caps: dict[int, float] | None = None
        self._n_input_arg = n_input
        self._token = next(_ANALYZER_TOKENS)
        self._weight_version = model.weight_version()
        self._cache_epoch = 0

    def _refresh_spec(self) -> None:
        """Re-extract the spec when the model's weights have changed.

        Staleness is detected through :meth:`Module.weight_version` (each
        ``Parameter.data`` assignment bumps a counter — e.g. an optimizer
        step).  A refresh drops calibration caps (they were measured
        against the old weights) and advances the memo epoch so stale
        bound evaluations can never be served.
        """
        current = self._model.weight_version()
        if current != self._weight_version:
            self.spec = extract_spec(self._model, n_input=self._n_input_arg)
            self._signal_caps = None
            self._weight_version = current
            self._cache_epoch += 1

    def _steps(self, fmt) -> dict[int, float]:
        steps = step_sizes_for(self.spec, fmt)
        if self.quant_safety != 1.0:
            steps = {key: value * self.quant_safety for key, value in steps.items()}
        return steps

    # -- calibration (data-driven tightening) --------------------------------
    def calibrate(self, inputs: np.ndarray, margin: float = 1.25) -> "ErrorFlowAnalyzer":
        """Tighten the quantization term with measured signal norms.

        Runs ``inputs`` through the model, records the max per-sample L2
        norm feeding each linear layer, and caps the recurrence's signal
        bound with ``measured * margin``.  The compression term (Eq. 5)
        is unaffected.  Returns ``self`` for chaining.
        """
        from .calibration import collect_signal_norms

        self._refresh_spec()
        norms = collect_signal_norms(self._model, inputs, margin=margin)
        linears = self.spec.linear_specs()
        if len(norms) != len(linears):  # pragma: no cover - traversal parity
            raise ToleranceError(
                f"calibration walked {len(norms)} linears, spec has {len(linears)}"
            )
        self._signal_caps = {id(spec): norm for spec, norm in zip(linears, norms)}
        self._cache_epoch += 1  # cached bounds were computed without caps
        return self

    def decalibrate(self) -> None:
        """Drop calibration and return to the paper's worst-case signals."""
        self._signal_caps = None
        self._cache_epoch += 1

    @property
    def is_calibrated(self) -> bool:
        return self._signal_caps is not None

    # -- basic properties ---------------------------------------------------
    @property
    def n_input(self) -> int:
        return self.spec.n_input

    def layer_sigmas(self) -> list[float]:
        """Per-layer spectral norms (after BN folding)."""
        self._refresh_spec()
        return [linear.sigma for linear in self.spec.linear_specs()]

    def gain(self) -> float:
        """Eq. (5) amplification ``sigma_s + prod sigma`` of the network.

        Memoized per (analyzer, weight version): planner sweeps call this
        for every candidate configuration but only pay the graph walk
        once per weight state.
        """
        self._refresh_spec()
        key = (self._token, "gain", self._weight_version, self._cache_epoch)
        return get_memo("bound_eval").get(key, lambda: compression_gain(self.spec))

    def step_sizes(self, fmt: NumericFormat | Sequence[NumericFormat]) -> list[float]:
        """Table-I steps ``q_l`` per layer for a format choice."""
        self._refresh_spec()
        steps = self._steps(fmt)
        return [steps[id(linear)] for linear in self.spec.linear_specs()]

    # -- L2 bounds ------------------------------------------------------------
    def compression_bound(self, input_error_l2: float) -> float:
        """Eq. (5): QoI L2 error from input error alone."""
        return self.gain() * float(input_error_l2)

    def quantization_bound(self, fmt: NumericFormat | Sequence[NumericFormat]) -> float:
        """Eq. (3) with ``||Delta x|| = 0``: weight-quantization error alone.

        Memoized per (analyzer, format, weight version, calibration
        epoch, safety factor) — the planner evaluates the same formats
        against many error-budget splits.
        """
        self._refresh_spec()
        key = (
            self._token,
            "quant",
            _format_memo_key(fmt),
            self._weight_version,
            self._cache_epoch,
            self.quant_safety,
        )

        def compute() -> float:
            steps = self._steps(fmt)
            return propagate(
                self.spec,
                input_error_l2=0.0,
                steps=steps,
                signal_caps=self._signal_caps,
            ).delta

        return get_memo("bound_eval").get(key, compute)

    def combined_bound(
        self,
        input_error_l2: float,
        fmt: NumericFormat | Sequence[NumericFormat] | None,
    ) -> float:
        """Full Inequality (3): compression and quantization together."""
        self._refresh_spec()
        steps = self._steps(fmt)
        return propagate(
            self.spec,
            input_error_l2=float(input_error_l2),
            steps=steps,
            signal_caps=self._signal_caps,
        ).delta

    def layer_bounds(
        self,
        input_error_l2: float,
        fmt: NumericFormat | Sequence[NumericFormat] | None,
    ) -> list[float]:
        """Cumulative Eq. (3) envelope after each linear layer.

        Element ``l`` bounds the L2 perturbation of the activation leaving
        layer ``l`` under the given input error and weight format; the
        last element equals :meth:`combined_bound`.  Chain (MLP-style)
        specs only — the audit layer uses this as the per-layer predicted
        envelope against which observed lockstep errors are compared.
        Raises :class:`~repro.exceptions.ConfigurationError` on residual
        graphs.
        """
        self._refresh_spec()
        steps = self._steps(fmt)
        trajectory = propagate_chain_trajectory(
            self.spec,
            input_error_l2=float(input_error_l2),
            steps=steps,
            signal_caps=self._signal_caps,
        )
        return [state.delta for state in trajectory]

    def layer_bounds_linf(
        self,
        input_error_linf: float,
        fmt: NumericFormat | Sequence[NumericFormat] | None,
    ) -> list[float]:
        """Per-layer envelope with an L-infinity input error."""
        input_l2 = float(input_error_linf) * np.sqrt(self.n_input)
        return self.layer_bounds(input_l2, fmt)

    # -- L-infinity bounds ----------------------------------------------------
    def combined_bound_linf(
        self,
        input_error_linf: float,
        fmt: NumericFormat | Sequence[NumericFormat] | None,
    ) -> float:
        """Inequality (3) with an L-infinity input error and output norm.

        Uses ``||Delta x||_2 <= sqrt(n_0) * ||Delta x||_inf`` on the way in
        and ``||Delta y||_inf <= ||Delta y||_2`` on the way out.
        """
        input_l2 = float(input_error_linf) * np.sqrt(self.n_input)
        return self.combined_bound(input_l2, fmt)

    def compression_bound_linf(self, input_error_linf: float) -> float:
        """Eq. (5) with L-infinity input error."""
        return self.compression_bound(float(input_error_linf) * np.sqrt(self.n_input))

    # -- per-feature bounds -----------------------------------------------------
    def per_feature_bounds(
        self,
        input_error_l2: float,
        fmt: NumericFormat | Sequence[NumericFormat] | None,
    ) -> np.ndarray:
        """Eq. (3) restricted to each output feature.

        The final layer's spectral norm is replaced by the L2 norm of the
        corresponding weight row (the exact operator norm of a single-row
        map), and its ``n_L`` becomes 1.
        """
        self._refresh_spec()
        linears = self.spec.linear_specs()
        last = linears[-1]
        if not isinstance(last, LinearSpec) or last.is_conv:
            raise ToleranceError(
                "per-feature bounds require a dense final layer"
            )
        steps = self._steps(fmt)
        bounds = np.empty(last.out_features, dtype=np.float64)
        original = (last.sigma, last.n_out, last.weights)
        try:
            for feature in range(last.out_features):
                row = original[2][feature : feature + 1, :]
                last.sigma = float(np.linalg.norm(row))
                last.n_out = 1
                last.weights = row
                row_steps = dict(steps)
                if steps[id(last)] > 0.0:
                    # Step size of the row under the same format family.
                    from ..quant.stepsize import average_step_size

                    fmt_last = fmt[-1] if isinstance(fmt, (list, tuple)) else fmt
                    row_steps[id(last)] = (
                        average_step_size(row, fmt_last) * self.quant_safety
                    )
                bounds[feature] = propagate(
                    self.spec,
                    input_error_l2=float(input_error_l2),
                    steps=row_steps,
                    signal_caps=self._signal_caps,
                ).delta
        finally:
            last.sigma, last.n_out, last.weights = original
        return bounds

    def per_feature_bounds_linf(
        self,
        input_error_linf: float,
        fmt: NumericFormat | Sequence[NumericFormat] | None,
    ) -> np.ndarray:
        """Per-feature bounds with an L-infinity input error."""
        input_l2 = float(input_error_linf) * np.sqrt(self.n_input)
        return self.per_feature_bounds(input_l2, fmt)

    # -- activation quantization (paper Section III-B remark) -----------------
    def activation_quantization_bound(
        self,
        fmt: NumericFormat,
        activation_linf: float = 1.0,
    ) -> float:
        """QoI error bound for storing hidden activations in ``fmt``.

        Per the paper: the rounding error injected after layer ``l`` is
        treated "similarly to compression error by applying Equation (5),
        while excluding all layers preceding the affected activation" —
        i.e. amplified by the product of the remaining spectral norms.

        Parameters
        ----------
        fmt:
            Activation storage format.
        activation_linf:
            Upper bound on individual activation magnitudes (1.0 after a
            Tanh; pass a measured value for unbounded activations).

        Notes
        -----
        Supported for chain (MLP-style) specs; residual graphs would need
        per-edge injection accounting.
        """
        from ..quant.activations import activation_rounding_bound

        self._refresh_spec()
        items = self.spec.chain.items
        if not all(isinstance(item, LinearSpec) for item in items):
            raise ToleranceError(
                "activation quantization bounds require a pure chain of linear layers"
            )
        suffix = 1.0
        total = 0.0
        # walk backwards: suffix accumulates sigma * C of the layers after
        # the injection point; the last layer's output is the QoI itself.
        for index in range(len(items) - 1, 0, -1):
            layer = items[index]
            suffix *= layer.sigma * layer.lipschitz_after
            injected = activation_rounding_bound(
                fmt, activation_linf, items[index - 1].out_features
            )
            total += suffix * injected
        return total

    # -- inversion (used by the planner) -------------------------------------
    def invert_compression_tolerance(
        self,
        qoi_tolerance_l2: float,
        fmt: NumericFormat | Sequence[NumericFormat] | None,
    ) -> float:
        """Largest ``||Delta x||_2`` keeping the Eq. (3) bound within budget.

        The bound is affine in the input error, so the inversion is exact:
        ``(tolerance - quantization_term) / gain``.  Raises
        :class:`ToleranceError` when the format alone exceeds the budget.
        """
        quant_term = self.quantization_bound(fmt) if fmt is not None else 0.0
        headroom = float(qoi_tolerance_l2) - quant_term
        if headroom <= 0.0:
            raise ToleranceError(
                f"quantization bound {quant_term:.3e} exceeds the QoI tolerance "
                f"{qoi_tolerance_l2:.3e}; no compression budget remains"
            )
        return headroom / self.gain()
