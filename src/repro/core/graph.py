"""Extraction of the spectral structure a model exposes to the bound.

The error bound of Inequality (3) consumes, per layer: the spectral norm
``sigma_W``, the layer dimensions ``(n_in, n_out)`` and the quantization
step ``q``.  This module walks a trained model and produces a
:class:`NetworkSpec` tree mirroring its structure:

* dense / conv layers (optionally fused with a following batch norm, whose
  inference scale multiplies the effective operator) become
  :class:`LinearSpec` nodes;
* activations contribute their Lipschitz constants;
* residual blocks become :class:`ResidualSpec` nodes carrying the
  shortcut spectral norm ``sigma_s`` of Eq. (1).

Spectral norms come from the layer's own ``alpha`` when it is trained with
parameterized spectral normalization (exact by construction) and from
power iteration otherwise.  Power iterations are memoized on weight
content (:func:`repro.perf.cache.cached_spectral_norm`), so repeated
extractions over unchanged weights — planner sweeps, re-built analyzers —
run exactly one iteration pass per layer per weight version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.activations import Activation
from ..nn.conv import Conv2d, SpectralConv2d
from ..nn.linear import Linear, SpectralLinear
from ..nn.module import Module
from ..nn.normalization import _BatchNormBase
from ..nn.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d
from ..nn.residual import ResidualBlock
from ..nn.sequential import Sequential
from ..perf.cache import cached_spectral_norm

__all__ = ["LinearSpec", "ChainSpec", "ResidualSpec", "NetworkSpec", "extract_spec"]


@dataclass
class LinearSpec:
    """One linear operator in the error-flow graph.

    ``weights`` is the effective matrix (BN folded) used for quantization
    step sizes; ``n_in`` / ``n_out`` are the effective dimensions entering
    the ``sqrt(n)`` factors (for convs: ``C * k^2`` and ``C_out * k^2``).
    """

    name: str
    sigma: float
    n_in: int
    n_out: int
    weights: np.ndarray
    lipschitz_after: float = 1.0
    is_conv: bool = False

    @property
    def out_features(self) -> int:
        return self.weights.shape[0]


@dataclass
class ChainSpec:
    """A sequential composition of spec nodes."""

    items: list = field(default_factory=list)

    def linear_specs(self) -> list[LinearSpec]:
        found: list[LinearSpec] = []
        for item in self.items:
            if isinstance(item, LinearSpec):
                found.append(item)
            else:
                found.extend(item.linear_specs())
        return found


@dataclass
class ResidualSpec:
    """A residual block: ``y = body(x) + shortcut(x)`` (Eq. 1)."""

    body: ChainSpec
    shortcut: ChainSpec | None  # None = identity skip (sigma_s = 1)
    lipschitz_after: float = 1.0

    def linear_specs(self) -> list[LinearSpec]:
        found = self.body.linear_specs()
        if self.shortcut is not None:
            found.extend(self.shortcut.linear_specs())
        return found


@dataclass
class NetworkSpec:
    """Root of the error-flow graph plus global input metadata."""

    chain: ChainSpec
    n_input: int

    def linear_specs(self) -> list[LinearSpec]:
        return self.chain.linear_specs()

    @property
    def n_layers(self) -> int:
        return len(self.linear_specs())

    @property
    def is_chain(self) -> bool:
        """True when the graph is a pure linear chain (no residual nodes).

        Chains support per-layer bound trajectories
        (:func:`~repro.core.bounds.propagate_chain_trajectory`) and hence
        layerwise auditing; residual graphs only expose the end-to-end
        bound.
        """
        return all(isinstance(item, LinearSpec) for item in self.chain.items)


def _layer_sigma(layer: Module, effective: np.ndarray) -> float:
    alpha = getattr(layer, "spectral_alpha", None)
    if alpha is not None:
        return float(alpha)
    return cached_spectral_norm(effective)


def _dense_spec(layer: Linear | SpectralLinear, name: str, bn_scale: np.ndarray | None) -> LinearSpec:
    effective = np.asarray(layer.effective_weight(), dtype=np.float64)
    if bn_scale is not None:
        effective = effective * bn_scale[:, None]
        sigma = cached_spectral_norm(effective)
    else:
        sigma = _layer_sigma(layer, effective)
    return LinearSpec(
        name=name,
        sigma=sigma,
        n_in=layer.in_features,
        n_out=layer.out_features,
        weights=effective,
    )


def _conv_spec(layer: Conv2d | SpectralConv2d, name: str, bn_scale: np.ndarray | None) -> LinearSpec:
    effective = np.asarray(layer.effective_weight(), dtype=np.float64)
    if bn_scale is not None:
        effective = effective * bn_scale[:, None]
        sigma = cached_spectral_norm(effective)
    else:
        sigma = _layer_sigma(layer, effective)
    k_sq = layer.kernel_size**2
    return LinearSpec(
        name=name,
        sigma=sigma,
        n_in=layer.in_channels * k_sq,
        n_out=layer.out_channels * k_sq,
        weights=effective,
        is_conv=True,
    )


def _extract_chain(model: Sequential, prefix: str) -> ChainSpec:
    chain = ChainSpec()
    layers = list(model)
    index = 0
    while index < len(layers):
        layer = layers[index]
        name = f"{prefix}{index}"
        if isinstance(layer, (Linear, SpectralLinear, Conv2d, SpectralConv2d)):
            bn_scale = None
            if index + 1 < len(layers) and isinstance(layers[index + 1], _BatchNormBase):
                bn = layers[index + 1]
                bn_scale = np.asarray(bn.inference_scale(), dtype=np.float64)
                index += 1  # consume the fused batch norm
            if isinstance(layer, (Conv2d, SpectralConv2d)):
                spec = _conv_spec(layer, name, bn_scale)
            else:
                spec = _dense_spec(layer, name, bn_scale)
            chain.items.append(spec)
        elif isinstance(layer, Activation):
            if chain.items and isinstance(chain.items[-1], (LinearSpec, ResidualSpec)):
                chain.items[-1].lipschitz_after *= layer.lipschitz
            # Leading activations are Lipschitz-1 no-ops for the bound
            # unless they exceed 1; fold them into the next linear via a
            # conservative pre-multiplier is unnecessary for C <= 1.
        elif isinstance(layer, ResidualBlock):
            chain.items.append(_extract_block(layer, name))
        elif hasattr(layer, "error_flow_spec"):
            # Extension hook (e.g. U-Net levels): the module supplies its
            # own spec subtree, recursing through _extract_chain.
            node = layer.error_flow_spec(_extract_chain, name)
            if isinstance(node, ChainSpec):
                chain.items.extend(node.items)
            else:
                chain.items.append(node)
        elif isinstance(layer, Sequential):
            nested = _extract_chain(layer, f"{name}.")
            chain.items.extend(nested.items)
        elif isinstance(layer, (MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten, _BatchNormBase)):
            # Pooling and flattening are 1-Lipschitz in L2 (max/avg pools
            # do not increase the L2 norm of a perturbation); a standalone
            # batch norm contributes its scale.
            if isinstance(layer, _BatchNormBase):
                scale = float(np.max(np.abs(layer.inference_scale())))
                if chain.items and isinstance(chain.items[-1], (LinearSpec, ResidualSpec)):
                    chain.items[-1].lipschitz_after *= scale
        else:
            raise ConfigurationError(
                f"error-flow extraction does not understand layer {type(layer).__name__}"
            )
        index += 1
    return chain


def _extract_block(block: ResidualBlock, prefix: str) -> ResidualSpec:
    if not isinstance(block.body, Sequential):
        raise ConfigurationError("residual body must be Sequential for extraction")
    body = _extract_chain(block.body, f"{prefix}.body.")
    shortcut = None
    if block.shortcut is not None:
        if not isinstance(block.shortcut, Sequential):
            raise ConfigurationError("residual shortcut must be Sequential for extraction")
        shortcut = _extract_chain(block.shortcut, f"{prefix}.shortcut.")
    lipschitz = 1.0
    if block.post_activation is not None and isinstance(block.post_activation, Activation):
        lipschitz = block.post_activation.lipschitz
    return ResidualSpec(body=body, shortcut=shortcut, lipschitz_after=lipschitz)


def extract_spec(model: Module, n_input: int | None = None) -> NetworkSpec:
    """Build the error-flow graph of a trained model.

    Parameters
    ----------
    model:
        A :class:`Sequential` model built from the layers of
        :mod:`repro.nn` (possibly containing residual blocks).
    n_input:
        Total input dimensionality (``prod`` of the per-sample input
        shape).  Defaults to the first layer's ``n_in`` — correct for
        MLPs; pass it explicitly for convolutional models.
    """
    if not isinstance(model, Sequential):
        raise ConfigurationError("extract_spec expects a Sequential model")
    chain = _extract_chain(model, "")
    specs = chain.linear_specs()
    if not specs:
        raise ConfigurationError("model contains no linear layers")
    if n_input is None:
        first = specs[0]
        n_input = first.weights.shape[1] if not first.is_conv else first.n_in
    return NetworkSpec(chain=chain, n_input=int(n_input))
