"""Empirical input-sensitivity probing (paper Section IV-B.2).

The paper characterizes each workload by how much a given input
perturbation moves the QoI: H2Combustion responds ~1:1, BorghesiFlame
amplifies by ~10x, EuroSAT sits in between.  This module measures that
amplification on real data so users can "leverage their empirical
knowledge of the data to determine appropriate compression tolerance
levels" (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.module import Module

__all__ = ["SensitivityReport", "probe_sensitivity", "empirical_lipschitz"]


@dataclass
class SensitivityReport:
    """Measured QoI response to controlled input perturbations."""

    perturbation: float
    qoi_change_l2_mean: float
    qoi_change_l2_max: float
    qoi_change_linf_max: float
    amplification: float  # mean relative QoI change per relative input change

    def describe(self) -> str:
        return (
            f"input perturbation {self.perturbation:.1e} -> QoI change "
            f"mean {self.qoi_change_l2_mean:.2e} / max {self.qoi_change_l2_max:.2e} "
            f"(amplification ~{self.amplification:.2f}x)"
        )


def empirical_lipschitz(
    model: Module,
    inputs: np.ndarray,
    rng: np.random.Generator | None = None,
    n_probes: int = 32,
    step: float = 1e-4,
) -> float:
    """Local Lipschitz estimate around ``inputs`` via random probing.

    For architectures the closed-form bound does not yet cover (the
    paper's Section VI names attention), this estimates
    ``max ||f(x + delta) - f(x)|| / ||delta||`` over random small
    perturbations.  It is a *lower* bound on the true local Lipschitz
    constant — useful for sizing compression tolerances experimentally,
    not a guarantee.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    model.eval()
    reference = model(inputs).reshape(len(inputs), -1)
    worst = 0.0
    for __ in range(n_probes):
        direction = rng.standard_normal(inputs.shape).astype(inputs.dtype)
        norms = np.linalg.norm(direction.reshape(len(inputs), -1), axis=1)
        norms = np.maximum(norms, 1e-30).reshape((-1,) + (1,) * (inputs.ndim - 1))
        delta = direction / norms * step
        outputs = model(inputs + delta).reshape(len(inputs), -1)
        gain = np.linalg.norm(outputs - reference, axis=1) / step
        worst = max(worst, float(gain.max()))
    return worst


def probe_sensitivity(
    model: Module,
    inputs: np.ndarray,
    perturbation: float,
    rng: np.random.Generator | None = None,
    n_trials: int = 5,
) -> SensitivityReport:
    """Measure the model's QoI response to uniform input noise.

    Parameters
    ----------
    model:
        Trained network (switched to eval mode).
    inputs:
        Representative input batch ``(N, ...)``.
    perturbation:
        Pointwise (L-infinity) amplitude of the injected noise, in the
        normalized input units.
    n_trials:
        Independent noise draws to average over.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    model.eval()
    reference = model(inputs)
    reference_flat = reference.reshape(len(reference), -1)
    reference_scale = float(np.linalg.norm(reference_flat, axis=1).mean())

    l2_changes = []
    linf_changes = []
    for __ in range(n_trials):
        noise = rng.uniform(-perturbation, perturbation, size=inputs.shape).astype(
            inputs.dtype
        )
        outputs = model(inputs + noise)
        delta = (outputs - reference).reshape(len(reference), -1)
        l2_changes.append(np.linalg.norm(delta, axis=1))
        linf_changes.append(np.abs(delta).max(axis=1))
    l2_all = np.concatenate(l2_changes)
    linf_all = np.concatenate(linf_changes)

    input_scale = float(np.linalg.norm(inputs.reshape(len(inputs), -1), axis=1).mean())
    relative_in = perturbation * np.sqrt(inputs[0].size) / max(input_scale, 1e-30)
    relative_out = float(l2_all.mean()) / max(reference_scale, 1e-30)
    return SensitivityReport(
        perturbation=float(perturbation),
        qoi_change_l2_mean=float(l2_all.mean()),
        qoi_change_l2_max=float(l2_all.max()),
        qoi_change_linf_max=float(linf_all.max()),
        amplification=relative_out / max(relative_in, 1e-30),
    )
