"""The paper's error bounds (Eq. 3 and Eq. 5) and their evaluation.

Two equivalent implementations are provided:

* :func:`mlp_combined_bound` — the *literal* Inequality (3) for an
  L-layer chain, used as the reference in tests;
* :func:`propagate` — a recurrence over the :class:`NetworkSpec` tree
  that reduces to Eq. (3) on chains and extends it compositionally to
  residual networks (each block contributes ``sigma_s + prod sigma`` to
  the gain, exactly Eq. (1)'s structure).

The recurrence tracks two scalars through the graph:

``delta``
    an upper bound on the L2 norm of the accumulated output perturbation;
``signal``
    an upper bound on the L2 norm of the (noisy) hidden activation
    ``||h~||_2``, seeded with ``sqrt(n_0)`` because inputs are normalized
    into ``[-1, 1]`` (paper Section III-B).

Per layer ``l`` with spectral norm ``sigma_l`` and step ``q_l``:

    delta <- C * (sigma_l * delta + q_l * sqrt(n_l) / (2 sqrt 3) * signal)
    signal <- C * sigma~_l * signal,   sigma~_l = sigma_l + q_l sqrt(min(n_{l-1}, n_l)) / sqrt(3)

Unrolling this on a chain yields Inequality (3) term by term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..perf.cache import cached_average_step_size
from ..quant.formats import NumericFormat
from .graph import ChainSpec, LinearSpec, NetworkSpec, ResidualSpec

__all__ = [
    "ErrorState",
    "sigma_tilde",
    "mlp_combined_bound",
    "compression_gain",
    "propagate",
    "propagate_chain_trajectory",
    "step_sizes_for",
]

_SQRT3 = float(np.sqrt(3.0))


def sigma_tilde(sigma: float, q: float, n_in: int, n_out: int) -> float:
    """Post-quantization spectral norm bound (paper Section III-B)."""
    return sigma + q * np.sqrt(min(n_in, n_out)) / _SQRT3


def mlp_combined_bound(
    sigmas: Sequence[float],
    steps: Sequence[float],
    dims: Sequence[int],
    input_error_l2: float,
    sigma_shortcut: float = 0.0,
) -> float:
    """Literal Inequality (3) for an L-layer dense chain.

    Parameters
    ----------
    sigmas:
        Spectral norms ``sigma_W^(l)`` for ``l = 1..L``.
    steps:
        Quantization steps ``q_l`` (0 for unquantized layers).
    dims:
        Layer widths ``n_0, n_1, ..., n_L`` (length ``L + 1``).
    input_error_l2:
        ``||Delta x||_2``.
    sigma_shortcut:
        ``sigma_s`` of the block's projection shortcut (0 for an MLP).
    """
    n_layers = len(sigmas)
    if len(steps) != n_layers or len(dims) != n_layers + 1:
        raise ConfigurationError(
            f"inconsistent bound inputs: {n_layers} sigmas, {len(steps)} steps, "
            f"{len(dims)} dims"
        )
    gain = sigma_shortcut + float(np.prod(sigmas))
    total = gain * input_error_l2
    n0 = dims[0]
    for l in range(1, n_layers + 1):
        before = 1.0
        for i in range(1, l):
            before *= sigma_tilde(sigmas[i - 1], steps[i - 1], dims[i - 1], dims[i])
        after = 1.0
        for j in range(l + 1, n_layers + 1):
            after *= sigmas[j - 1]
        total += before * after * steps[l - 1] * np.sqrt(n0 * dims[l]) / (2.0 * _SQRT3)
    return float(total)


@dataclass
class ErrorState:
    """The ``(delta, signal)`` pair tracked through the graph."""

    delta: float
    signal: float

    def copy(self) -> "ErrorState":
        return ErrorState(self.delta, self.signal)


def step_sizes_for(
    spec: NetworkSpec, fmt: NumericFormat | Sequence[NumericFormat] | None
) -> dict[int, float]:
    """Table-I step per linear spec (keyed by ``id`` of the spec node).

    Steps are memoized on (format, weight content), so planner sweeps
    that evaluate the same spec under many formats and fractions compute
    each rounding pass once.
    """
    linears = spec.linear_specs()
    if fmt is None:
        return {id(linear): 0.0 for linear in linears}
    if isinstance(fmt, NumericFormat):
        formats: list[NumericFormat] = [fmt] * len(linears)
    else:
        formats = list(fmt)
        if len(formats) != len(linears):
            raise ConfigurationError(
                f"got {len(formats)} formats for {len(linears)} linear layers"
            )
    steps = {}
    for linear, layer_fmt in zip(linears, formats):
        if layer_fmt is None or layer_fmt.is_identity:
            steps[id(linear)] = 0.0
        else:
            steps[id(linear)] = cached_average_step_size(linear.weights, layer_fmt)
    return steps


def _propagate_linear(
    node: LinearSpec,
    state: ErrorState,
    q: float,
    cap: float | None = None,
) -> ErrorState:
    lipschitz = node.lipschitz_after
    signal_in = state.signal if cap is None else min(state.signal, cap)
    quant_noise = q * np.sqrt(node.n_out) / (2.0 * _SQRT3) * signal_in
    delta = lipschitz * (node.sigma * state.delta + quant_noise)
    signal = lipschitz * sigma_tilde(node.sigma, q, node.n_in, node.n_out) * signal_in
    return ErrorState(delta=delta, signal=signal)


def _propagate_chain(
    node: ChainSpec,
    state: ErrorState,
    steps: dict[int, float],
    caps: dict[int, float] | None,
) -> ErrorState:
    for item in node.items:
        if isinstance(item, LinearSpec):
            cap = None if caps is None else caps.get(id(item))
            state = _propagate_linear(item, state, steps[id(item)], cap)
        elif isinstance(item, ResidualSpec):
            state = _propagate_residual(item, state, steps, caps)
        elif isinstance(item, ChainSpec):
            # nested chains come from extension hooks (e.g. U-Net levels)
            state = _propagate_chain(item, state, steps, caps)
        else:  # pragma: no cover - graph construction guarantees node types
            raise ConfigurationError(f"unknown spec node {type(item).__name__}")
    return state


def _propagate_residual(
    node: ResidualSpec,
    state: ErrorState,
    steps: dict[int, float],
    caps: dict[int, float] | None,
) -> ErrorState:
    body = _propagate_chain(node.body, state.copy(), steps, caps)
    if node.shortcut is None:
        skip = state.copy()  # identity: sigma_s = 1, no quantization noise
    else:
        skip = _propagate_chain(node.shortcut, state.copy(), steps, caps)
    lipschitz = node.lipschitz_after
    return ErrorState(
        delta=lipschitz * (body.delta + skip.delta),
        signal=lipschitz * (body.signal + skip.signal),
    )


def propagate(
    spec: NetworkSpec,
    input_error_l2: float,
    steps: dict[int, float],
    input_signal_l2: float | None = None,
    signal_caps: dict[int, float] | None = None,
) -> ErrorState:
    """Run the error recurrence over the whole graph.

    Parameters
    ----------
    spec:
        Network spec from :func:`~repro.core.graph.extract_spec`.
    input_error_l2:
        ``||Delta x||_2`` entering the network.
    steps:
        Per-spec quantization steps from :func:`step_sizes_for`.
    input_signal_l2:
        Bound on ``||x||_2``; defaults to ``sqrt(n_0)`` per the paper's
        normalized-input assumption.
    signal_caps:
        Optional per-linear upper bounds on the hidden-signal norm
        entering that layer (data-driven calibration, keyed by spec id).
        Without caps the recurrence uses the paper's worst-case
        ``prod sigma~ * sqrt(n_0)`` signal growth.

    Returns
    -------
    ErrorState
        ``delta`` is the Eq. (3) bound on ``||Delta y||_2``.
    """
    if input_signal_l2 is None:
        input_signal_l2 = float(np.sqrt(spec.n_input))
    state = ErrorState(delta=float(input_error_l2), signal=float(input_signal_l2))
    return _propagate_chain(spec.chain, state, steps, signal_caps)


def propagate_chain_trajectory(
    spec: NetworkSpec,
    input_error_l2: float,
    steps: dict[int, float],
    input_signal_l2: float | None = None,
    signal_caps: dict[int, float] | None = None,
) -> list[ErrorState]:
    """Intermediate recurrence states after each linear layer of a chain.

    The audit layer compares *observed* per-layer errors against the
    bound's predicted envelope, so it needs the recurrence's trajectory,
    not just its endpoint.  Element ``l`` bounds the perturbation of the
    activation leaving layer ``l`` (after that layer's activation
    function) — exactly the point where a lockstep dual-path forward can
    measure the real error.

    Only defined for pure chains (MLP-style specs): a residual graph has
    no single "after layer l" cut, so layerwise auditing falls back to
    the end-to-end bound there.  The final state's ``delta`` equals
    :func:`propagate`'s result exactly.
    """
    items = spec.chain.items
    if not all(isinstance(item, LinearSpec) for item in items):
        raise ConfigurationError(
            "layerwise bound trajectories require a pure chain of linear "
            "layers; residual graphs only support the end-to-end bound"
        )
    if input_signal_l2 is None:
        input_signal_l2 = float(np.sqrt(spec.n_input))
    state = ErrorState(delta=float(input_error_l2), signal=float(input_signal_l2))
    trajectory: list[ErrorState] = []
    for item in items:
        cap = None if signal_caps is None else signal_caps.get(id(item))
        state = _propagate_linear(item, state, steps[id(item)], cap)
        trajectory.append(state.copy())
    return trajectory


def compression_gain(spec: NetworkSpec) -> float:
    """Eq. (5) amplification factor: ``sigma_s + prod_l sigma_W^(l)``.

    Computed compositionally: a chain multiplies gains, a residual block
    adds its shortcut gain (1 for identity skips).
    """
    zero_steps = {id(linear): 0.0 for linear in spec.linear_specs()}
    state = propagate(spec, input_error_l2=1.0, steps=zero_steps, input_signal_l2=0.0)
    return state.delta
