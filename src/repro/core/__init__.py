"""The paper's contribution: error-flow analysis, planning, pipelines."""

from .bounds import (
    ErrorState,
    compression_gain,
    mlp_combined_bound,
    propagate,
    sigma_tilde,
    step_sizes_for,
)
from .errorflow import ErrorFlowAnalyzer
from .graph import ChainSpec, LinearSpec, NetworkSpec, ResidualSpec, extract_spec
from .pipeline import InferencePipeline, PipelineResult
from .planner import DEFAULT_FORMAT_RANKING, InferencePlan, TolerancePlanner
from .sensitivity import SensitivityReport, probe_sensitivity

__all__ = [
    "ChainSpec",
    "DEFAULT_FORMAT_RANKING",
    "ErrorFlowAnalyzer",
    "ErrorState",
    "InferencePipeline",
    "InferencePlan",
    "LinearSpec",
    "NetworkSpec",
    "PipelineResult",
    "ResidualSpec",
    "SensitivityReport",
    "TolerancePlanner",
    "compression_gain",
    "extract_spec",
    "mlp_combined_bound",
    "probe_sensitivity",
    "propagate",
    "sigma_tilde",
    "step_sizes_for",
]
