"""End-to-end error-bounded inference pipeline (paper Fig. 1).

``store -> (compressed blob) -> load -> decompress -> quantized model``

The pipeline wires a plan from :class:`~repro.core.planner.TolerancePlanner`
to a codec and a quantized model, measures wall-clock stage timings and
achieved errors, and verifies that the end-to-end QoI error stays inside
the user's tolerance — the paper's central claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..compress.base import CompressedBlob, Compressor, ErrorBoundMode
from ..exceptions import PlanningError
from ..nn.module import Module
from ..quant.quantizer import QuantizedModel, quantize_model
from .planner import InferencePlan

__all__ = ["PipelineResult", "InferencePipeline"]


@dataclass
class PipelineResult:
    """Everything measured in one pipeline execution."""

    outputs: np.ndarray
    reference_outputs: np.ndarray
    blob: CompressedBlob
    plan: InferencePlan
    compress_seconds: float
    decompress_seconds: float
    inference_seconds: float
    input_error_linf: float
    input_error_l2_max: float
    extra: dict = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        return self.blob.compression_ratio

    def qoi_error(self, norm: str = "linf", relative: bool = True) -> float:
        """Worst per-sample QoI error of this run."""
        delta = (self.outputs - self.reference_outputs).reshape(len(self.outputs), -1)
        reference = self.reference_outputs.reshape(len(self.reference_outputs), -1)
        if norm == "linf":
            errors = np.abs(delta).max(axis=1)
            scale = np.abs(reference).max()
        elif norm == "l2":
            errors = np.linalg.norm(delta, axis=1)
            scale = float(np.linalg.norm(reference, axis=1).max())
        else:
            raise ValueError(f"norm must be 'linf' or 'l2', got {norm!r}")
        worst = float(errors.max()) if errors.size else 0.0
        if relative:
            return worst / scale if scale > 0 else worst
        return worst


class InferencePipeline:
    """Error-bounded inference with lossy input reduction + weight quant.

    Parameters
    ----------
    model:
        Trained full-precision network.
    codec:
        Error-bounded compressor for the input data.
    plan:
        Allocation produced by the planner; fixes the weight format and
        the compressor tolerance.
    """

    def __init__(self, model: Module, codec: Compressor, plan: InferencePlan) -> None:
        self.model = model
        self.codec = codec
        self.plan = plan
        self.quantized: QuantizedModel = quantize_model(model, plan.fmt)
        self._mode = self._select_mode()

    def _select_mode(self) -> ErrorBoundMode:
        if self.plan.norm == "linf":
            return ErrorBoundMode.ABS
        if ErrorBoundMode.L2_ABS in self.codec.supported_modes:
            return ErrorBoundMode.L2_ABS
        raise PlanningError(
            f"codec {self.codec.name!r} does not support an L2 tolerance "
            "(the paper notes the same restriction for ZFP)"
        )

    def store(self, fields: np.ndarray) -> CompressedBlob:
        """Compress normalized input fields under the planned tolerance."""
        return self.codec.compress(fields, self.plan.input_tolerance, self._mode)

    def load(self, blob: CompressedBlob) -> np.ndarray:
        """Decompress fields back into network-ready arrays."""
        return self.codec.decompress(blob)

    def execute(
        self,
        fields: np.ndarray,
        samples_from_fields=None,
    ) -> PipelineResult:
        """Run the full pipeline on a normalized field array.

        Parameters
        ----------
        fields:
            Input data as stored (e.g. ``(V, H, W)`` variable planes or
            image batches).
        samples_from_fields:
            Callable reshaping fields into model-input samples; defaults
            to treating axis 0 as the variable axis of a field workload.

        Returns
        -------
        PipelineResult
            Outputs, reference (uncompressed FP32) outputs, timings and
            achieved input errors.
        """
        if samples_from_fields is None:
            samples_from_fields = lambda f: f.reshape(f.shape[0], -1).T.astype(np.float32)  # noqa: E731

        start = time.perf_counter()
        blob = self.store(fields)
        compress_seconds = time.perf_counter() - start

        start = time.perf_counter()
        reconstructed = self.load(blob)
        decompress_seconds = time.perf_counter() - start

        samples = samples_from_fields(reconstructed)
        start = time.perf_counter()
        outputs = self.quantized(samples)
        inference_seconds = time.perf_counter() - start

        self.model.eval()
        reference = self.model(samples_from_fields(fields))
        delta = samples_from_fields(fields) - samples
        return PipelineResult(
            outputs=outputs,
            reference_outputs=reference,
            blob=blob,
            plan=self.plan,
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            inference_seconds=inference_seconds,
            input_error_linf=float(np.abs(delta).max()) if delta.size else 0.0,
            input_error_l2_max=float(np.linalg.norm(delta, axis=1).max()) if delta.size else 0.0,
        )
