"""End-to-end error-bounded inference pipeline (paper Fig. 1).

``store -> (compressed blob) -> load -> decompress -> quantized model``

The pipeline wires a plan from :class:`~repro.core.planner.TolerancePlanner`
to a codec and a quantized model, measures wall-clock stage timings and
achieved errors, and verifies that the end-to-end QoI error stays inside
the user's tolerance — the paper's central claim.

Runtime guards make that claim *checked*, not assumed: decompressed
inputs and QoI outputs are screened for NaN/Inf, and the achieved input
error is compared against the planned tolerance, raising a structured
:class:`~repro.exceptions.ContractViolation` on breach.  A configurable
``on_corruption`` policy (``raise`` / ``recompress-from-source`` /
``fallback-lossless``) lets one corrupt decompression degrade a run
instead of killing it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..compress.base import CompressedBlob, Compressor, ErrorBoundMode
from ..exceptions import CompressionError, IntegrityError, PlanningError, ReproError
from ..nn.module import Module
from ..obs import get_auditor, get_logger, get_metrics, get_tracer
from ..perf.parallel import parallel_map, resolve_workers
from ..quant.quantizer import QuantizedModel, quantize_model
from ..resilience.guards import check_contract, screen_finite
from ..resilience.policy import (
    CorruptionPolicy,
    record_recovery,
    record_retry,
    resolve_policy,
)
from .planner import InferencePlan

__all__ = ["PipelineResult", "InferencePipeline"]


@dataclass
class PipelineResult:
    """Everything measured in one pipeline execution."""

    outputs: np.ndarray
    reference_outputs: np.ndarray
    blob: CompressedBlob
    plan: InferencePlan
    compress_seconds: float
    decompress_seconds: float
    inference_seconds: float
    input_error_linf: float
    input_error_l2_max: float
    extra: dict = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        return self.blob.compression_ratio

    def qoi_error(self, norm: str = "linf", relative: bool = True) -> float:
        """Worst per-sample QoI error of this run."""
        delta = (self.outputs - self.reference_outputs).reshape(len(self.outputs), -1)
        reference = self.reference_outputs.reshape(len(self.reference_outputs), -1)
        if norm == "linf":
            errors = np.abs(delta).max(axis=1)
            scale = np.abs(reference).max()
        elif norm == "l2":
            errors = np.linalg.norm(delta, axis=1)
            scale = float(np.linalg.norm(reference, axis=1).max())
        else:
            raise ValueError(f"norm must be 'linf' or 'l2', got {norm!r}")
        worst = float(errors.max()) if errors.size else 0.0
        if relative:
            return worst / scale if scale > 0 else worst
        return worst


class InferencePipeline:
    """Error-bounded inference with lossy input reduction + weight quant.

    Parameters
    ----------
    model:
        Trained full-precision network.
    codec:
        Error-bounded compressor for the input data.
    plan:
        Allocation produced by the planner; fixes the weight format and
        the compressor tolerance.
    on_corruption:
        Reaction when a decompressed input fails integrity screening:
        ``"raise"`` (default) propagates the typed error;
        ``"recompress-from-source"`` re-compresses the source fields and
        retries (bounded by ``max_retries``); ``"fallback-lossless"``
        swaps in a lossless blob of the source fields.
    max_retries:
        Recompression attempts before falling through to a lossless blob
        (recompress policy) or the error (raise policy).
    screen:
        Disable to skip NaN/Inf screening and contract checking
        (measurement-only runs on data known to be dirty).
    """

    def __init__(
        self,
        model: Module,
        codec: Compressor,
        plan: InferencePlan,
        on_corruption: "CorruptionPolicy | str" = CorruptionPolicy.RAISE,
        max_retries: int = 1,
        screen: bool = True,
    ) -> None:
        self.model = model
        self.codec = codec
        self.plan = plan
        self.on_corruption = resolve_policy(on_corruption)
        self.max_retries = int(max_retries)
        self.screen = screen
        self.quantized: QuantizedModel = quantize_model(model, plan.fmt)
        self._mode = self._select_mode()
        self._audit_recorder = None
        self._audit_lock = threading.Lock()

    def _select_mode(self) -> ErrorBoundMode:
        if self.plan.norm == "linf":
            return ErrorBoundMode.ABS
        if ErrorBoundMode.L2_ABS in self.codec.supported_modes:
            return ErrorBoundMode.L2_ABS
        raise PlanningError(
            f"codec {self.codec.name!r} does not support an L2 tolerance "
            "(the paper notes the same restriction for ZFP)"
        )

    def store(self, fields: np.ndarray) -> CompressedBlob:
        """Compress normalized input fields under the planned tolerance."""
        return self.codec.compress(fields, self.plan.input_tolerance, self._mode)

    def load(self, blob: CompressedBlob) -> np.ndarray:
        """Decompress fields back into network-ready arrays (screened)."""
        return self.codec.safe_decompress(blob, screen=self.screen)

    def _lossless_blob(self, fields: np.ndarray) -> CompressedBlob:
        """Degraded-mode blob: source fields stored uncompressed."""
        fields = np.asarray(fields)
        return CompressedBlob(
            codec=self.codec.name,
            payload=np.ascontiguousarray(fields).tobytes(),
            shape=fields.shape,
            dtype=str(fields.dtype),
            mode=self._mode,
            tolerance=float(self.plan.input_tolerance),
            metadata={"lossless": True, "degraded": True},
        )

    def _store_and_load(
        self, fields: np.ndarray
    ) -> tuple[CompressedBlob, np.ndarray, float, float, int, dict]:
        """Compress + decompress under the degradation policy.

        Returns ``(blob, reconstruction, compress_s, decompress_s,
        recoveries, spans)`` where ``recoveries`` counts policy
        activations and ``spans`` holds the compress/decompress trace
        spans for post-hoc attribute enrichment (observed errors are only
        measurable once the reconstruction is compared to the source).
        """
        tracer = get_tracer()
        predicted = float(self.plan.input_tolerance)
        recoveries = 0
        failure: Exception | None = None
        spans: dict = {}
        for attempt in range(self.max_retries + 1):
            if attempt:
                record_retry("pipeline")
            start = time.perf_counter()
            with tracer.span(
                "pipeline.compress",
                codec=self.codec.name,
                attempt=attempt,
                predicted_bound=predicted,
            ) as span:
                blob = self.store(fields)
                span.set(compression_ratio=blob.compression_ratio)
            spans["compress"] = span
            compress_seconds = time.perf_counter() - start
            start = time.perf_counter()
            span = tracer.span(
                "pipeline.decompress",
                codec=self.codec.name,
                attempt=attempt,
                predicted_bound=predicted,
            )
            try:
                with span:
                    reconstructed = self.load(blob)
                spans["decompress"] = span
                if recoveries:
                    record_recovery(self.on_corruption, "pipeline")
                return (
                    blob,
                    reconstructed,
                    compress_seconds,
                    time.perf_counter() - start,
                    recoveries,
                    spans,
                )
            except (IntegrityError, CompressionError) as exc:
                spans["decompress"] = span
                if self.on_corruption is CorruptionPolicy.RAISE:
                    raise
                failure = exc
                recoveries += 1
                if self.on_corruption is CorruptionPolicy.FALLBACK_LOSSLESS:
                    break
        # recompression kept failing (or the policy is lossless): degrade.
        record_retry("pipeline")
        blob = self._lossless_blob(fields)
        start = time.perf_counter()
        span = tracer.span(
            "pipeline.decompress",
            codec=self.codec.name,
            degraded=True,
            predicted_bound=predicted,
        )
        try:
            with span:
                reconstructed = self.load(blob)
        except (IntegrityError, CompressionError) as exc:
            raise IntegrityError(
                "pipeline could not recover a clean reconstruction even "
                f"losslessly (policy {self.on_corruption.value!r}): {exc}"
            ) from (failure or exc)
        spans["decompress"] = span
        record_recovery(self.on_corruption, "pipeline")
        return blob, reconstructed, 0.0, time.perf_counter() - start, recoveries, spans

    def execute(
        self,
        fields: np.ndarray,
        samples_from_fields=None,
    ) -> PipelineResult:
        """Run the full pipeline on a normalized field array.

        Parameters
        ----------
        fields:
            Input data as stored (e.g. ``(V, H, W)`` variable planes or
            image batches).
        samples_from_fields:
            Callable reshaping fields into model-input samples; defaults
            to treating axis 0 as the variable axis of a field workload.

        Returns
        -------
        PipelineResult
            Outputs, reference (uncompressed FP32) outputs, timings and
            achieved input errors.  ``extra["integrity"]`` records what
            the guards observed; ``extra["audit"]`` holds the layerwise
            predicted-vs-observed record when auditing is enabled.
        """
        if samples_from_fields is None:
            samples_from_fields = lambda f: f.reshape(f.shape[0], -1).T.astype(np.float32)  # noqa: E731

        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span(
            "pipeline.execute",
            codec=self.codec.name,
            norm=self.plan.norm,
            fmt=self.plan.fmt.name,
            policy=self.on_corruption.value,
        ) as root:
            if self.screen:
                screen_finite(fields, stage="source", name="fields")

            blob, reconstructed, compress_seconds, decompress_seconds, recoveries, spans = (
                self._store_and_load(fields)
            )

            samples = samples_from_fields(reconstructed)
            with tracer.span(
                "pipeline.inference",
                fmt=self.plan.fmt.name,
                samples=int(len(samples)),
                predicted_bound=float(self.plan.quant_bound),
            ) as inference_span:
                start = time.perf_counter()
                outputs = self.quantized(samples)
                inference_seconds = time.perf_counter() - start

            self.model.eval()
            reference_samples = samples_from_fields(fields)
            reference = self.model(reference_samples)
            delta = reference_samples - samples
            input_error_linf = float(np.abs(delta).max()) if delta.size else 0.0
            input_error_l2_max = (
                float(np.linalg.norm(delta, axis=1).max()) if delta.size else 0.0
            )

            integrity: dict = {
                "screened": self.screen,
                "policy": self.on_corruption.value,
                "recoveries": recoveries,
                "degraded": bool(blob.metadata.get("degraded", False)),
            }
            # The codec's contract is over the stored field array in its
            # native dtype — measure it there, not after the sample cast.
            if self.screen or tracer.enabled:
                field_delta = np.asarray(fields, dtype=np.float64) - np.asarray(
                    reconstructed, dtype=np.float64
                )
                if self._mode.is_pointwise:
                    achieved = float(np.abs(field_delta).max()) if field_delta.size else 0.0
                else:
                    achieved = float(np.linalg.norm(field_delta))
            else:
                achieved = float("nan")
            with tracer.span(
                "pipeline.guard",
                codec=self.codec.name,
                norm=self.plan.norm,
                predicted_bound=float(self.plan.input_tolerance),
                observed_error=achieved,
                contract_slack=float(self.plan.input_tolerance) - achieved,
                screened=self.screen,
            ) as guard_span:
                if self.screen:
                    screen_finite(outputs, stage="qoi", name="outputs")
                    integrity["input_contract"] = {
                        "norm": self.plan.norm,
                        "expected": float(self.plan.input_tolerance),
                        "achieved": achieved,
                    }
                    check_contract(
                        achieved,
                        self.plan.input_tolerance,
                        codec=self.codec.name,
                        stage="decompress",
                        norm=self.plan.norm,
                        slack=1e-9,
                    )

            result = PipelineResult(
                outputs=outputs,
                reference_outputs=reference,
                blob=blob,
                plan=self.plan,
                compress_seconds=compress_seconds,
                decompress_seconds=decompress_seconds,
                inference_seconds=inference_seconds,
                input_error_linf=input_error_linf,
                input_error_l2_max=input_error_l2_max,
                extra={"integrity": integrity},
            )

            if tracer.enabled or metrics.enabled:
                self._record_telemetry(
                    tracer, metrics, result, spans, inference_span, guard_span, root,
                    observed_input_error=achieved,
                )
            auditor = get_auditor()
            if auditor.enabled:
                self._audit_execution(auditor, result, reference_samples, samples)
        return result

    def _audit_execution(
        self,
        auditor,
        result: PipelineResult,
        reference_samples: np.ndarray,
        samples: np.ndarray,
    ) -> None:
        """Layerwise predicted-vs-observed audit of one execution.

        Only reached when a live auditor is installed (the disabled cost
        is one attribute check in :meth:`execute`).  Runs both models
        again with capture hooks — roughly doubling inference cost for
        the audited run — and never kills the run it observes: audit
        failures degrade to a warning.
        """
        try:
            # One audit at a time: the recorder attaches capture hooks to
            # the shared model, so concurrent chunk workers would observe
            # each other's activations.
            with self._audit_lock:
                record = self._audit_recorder_for(reference_samples, auditor).audit(
                    reference_samples, samples, loose_below=auditor.loose_below
                )
            record.codec = self.codec.name
            record.fmt = self.plan.fmt.name
            record.norm = self.plan.norm
            record.qoi_tolerance = float(self.plan.qoi_tolerance)
            record.input_tolerance = float(self.plan.input_tolerance)
            integrity = result.extra.get("integrity", {})
            record.metadata = {
                "compression_ratio": float(result.compression_ratio),
                "degraded": bool(integrity.get("degraded", False)),
                "recoveries": int(integrity.get("recoveries", 0)),
                "samples": int(len(samples)),
            }
            auditor.record_run(record)
            result.extra["audit"] = record.to_dict()
        except ReproError as exc:
            get_logger("pipeline").warning(
                "audit skipped: could not evaluate the layerwise envelope",
                error=str(exc),
            )

    def _audit_recorder_for(self, reference_samples: np.ndarray, auditor):
        """Cached lockstep recorder (spec extraction pays once per
        pipeline).  Caller must hold ``_audit_lock``."""
        if self._audit_recorder is None:
            from ..obs.audit import LayerwiseErrorRecorder

            n_input = int(np.prod(np.asarray(reference_samples).shape[1:]))
            self._audit_recorder = LayerwiseErrorRecorder(
                self.model,
                self.quantized,
                n_input=n_input or None,
                quant_safety=auditor.quant_safety,
            )
        return self._audit_recorder

    def execute_chunked(
        self,
        fields: np.ndarray,
        chunk_size: int,
        workers: int | None = None,
        chunk_axis: int = 0,
        samples_from_fields=None,
    ) -> PipelineResult:
        """Run the pipeline over chunks of ``fields``, optionally in parallel.

        ``fields`` is split along ``chunk_axis`` into slabs of
        ``chunk_size``; each slab runs the full compress → decompress →
        infer path independently.  With ``workers > 1`` slabs execute on
        a thread pool (the heavy kernels are numpy calls that release the
        GIL).  Results come back in input order regardless of completion
        order, so the assembled outputs are deterministic.

        Only pointwise (L-infinity) tolerances compose per chunk — the
        max over slab-wise maxima equals the global maximum.  An L2
        budget does not split this way, so L2 plans are rejected.

        When error auditing is enabled (:func:`repro.obs.enable_audit`)
        every chunk is audited as its own run: one
        :class:`~repro.obs.audit.AuditRecord` per chunk, appended to the
        registry from the worker thread that produced it.

        Parameters
        ----------
        fields:
            Input data as stored (same contract as :meth:`execute`).
        chunk_size:
            Slab extent along ``chunk_axis``.
        workers:
            ``None``/1 = serial, ``0`` = one per CPU, else literal.
        chunk_axis:
            Axis to split.  Pick the axis whose slabs map to contiguous
            blocks of model samples under ``samples_from_fields`` (axis 1
            for the default ``(V, H, W)`` field mapping, axis 0 for
            batch-of-images workloads).
        samples_from_fields:
            Same reshaping callable as :meth:`execute`, applied per chunk.

        Returns
        -------
        PipelineResult
            Concatenated outputs; stage timings are summed over chunks,
            input errors are slab-wise maxima (exact for pointwise
            norms), ``blob`` is the first chunk's blob, and
            ``extra["chunked"]`` holds the aggregate compression ratio
            and pool configuration.
        """
        if not self._mode.is_pointwise:
            raise PlanningError(
                "chunked execution requires a pointwise (linf) tolerance: "
                "an L2 error budget does not decompose across chunks"
            )
        fields = np.asarray(fields)
        chunk_size = int(chunk_size)
        if chunk_size <= 0:
            raise PlanningError(f"chunk_size must be positive, got {chunk_size}")
        extent = fields.shape[chunk_axis]
        if extent == 0:
            raise PlanningError("cannot chunk an empty field array")
        chunks = [
            np.ascontiguousarray(
                np.take(fields, np.arange(lo, min(lo + chunk_size, extent)), axis=chunk_axis)
            )
            for lo in range(0, extent, chunk_size)
        ]
        n_workers = resolve_workers(workers)
        # eval() once up front: worker threads must not mutate module state.
        self.model.eval()

        tracer = get_tracer()
        wall_start = time.perf_counter()
        with tracer.span(
            "pipeline.execute_chunked",
            codec=self.codec.name,
            chunks=len(chunks),
            chunk_size=chunk_size,
            workers=n_workers,
        ) as root:

            def run_chunk(chunk: np.ndarray) -> PipelineResult:
                with tracer.span("pipeline.chunk", rows=int(chunk.shape[chunk_axis])):
                    return self.execute(chunk, samples_from_fields=samples_from_fields)

            results = parallel_map(run_chunk, chunks, workers=workers, label="pipeline")
            wall_seconds = time.perf_counter() - wall_start

            raw_total = sum(
                int(np.prod(r.blob.shape)) * np.dtype(r.blob.dtype).itemsize
                for r in results
            )
            compressed_total = sum(len(r.blob.payload) for r in results)
            integrity = {
                "screened": self.screen,
                "policy": self.on_corruption.value,
                "recoveries": sum(r.extra["integrity"]["recoveries"] for r in results),
                "degraded": any(r.extra["integrity"]["degraded"] for r in results),
            }
            aggregate_ratio = (
                raw_total / compressed_total if compressed_total else float("inf")
            )
            root.set(compression_ratio=aggregate_ratio, wall_seconds=wall_seconds)

        return PipelineResult(
            outputs=np.concatenate([r.outputs for r in results], axis=0),
            reference_outputs=np.concatenate(
                [r.reference_outputs for r in results], axis=0
            ),
            blob=results[0].blob,
            plan=self.plan,
            compress_seconds=sum(r.compress_seconds for r in results),
            decompress_seconds=sum(r.decompress_seconds for r in results),
            inference_seconds=sum(r.inference_seconds for r in results),
            input_error_linf=max(r.input_error_linf for r in results),
            input_error_l2_max=max(r.input_error_l2_max for r in results),
            extra={
                "integrity": integrity,
                "chunked": {
                    "n_chunks": len(chunks),
                    "chunk_size": chunk_size,
                    "chunk_axis": chunk_axis,
                    "workers": n_workers,
                    "wall_seconds": wall_seconds,
                    "compression_ratio": aggregate_ratio,
                },
            },
        )

    def _record_telemetry(
        self,
        tracer,
        metrics,
        result: PipelineResult,
        spans: dict,
        inference_span,
        guard_span,
        root,
        observed_input_error: float,
    ) -> None:
        """Post-hoc span enrichment + counters (observability on only).

        Observed errors are only known once the reconstruction and the
        reference outputs exist, so the stage spans created earlier are
        completed here — every stage span carries both its predicted
        bound and the error actually observed.
        """
        qoi_error = result.qoi_error(self.plan.norm, relative=False)
        input_error = (
            result.input_error_linf
            if self._mode.is_pointwise
            else result.input_error_l2_max
        )
        if "compress" in spans:
            spans["compress"].set(observed_error=observed_input_error)
        if "decompress" in spans:
            spans["decompress"].set(observed_error=observed_input_error)
        inference_span.set(observed_error=qoi_error)
        guard_span.set(qoi_predicted_bound=float(self.plan.qoi_tolerance), qoi_observed_error=qoi_error)
        root.set(
            compression_ratio=result.compression_ratio,
            predicted_bound=float(self.plan.qoi_tolerance),
            observed_error=qoi_error,
            input_error=input_error,
            recoveries=result.extra["integrity"]["recoveries"],
            degraded=result.extra["integrity"]["degraded"],
        )
        metrics.counter("pipeline_executions_total", codec=self.codec.name).inc()
        for stage, seconds in (
            ("compress", result.compress_seconds),
            ("decompress", result.decompress_seconds),
            ("inference", result.inference_seconds),
        ):
            metrics.histogram("pipeline_stage_seconds", stage=stage).observe(seconds)
        metrics.gauge("pipeline_compression_ratio", codec=self.codec.name).set(
            result.compression_ratio
        )
        metrics.gauge("pipeline_qoi_error", norm=self.plan.norm).set(qoi_error)
