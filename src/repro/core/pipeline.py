"""End-to-end error-bounded inference pipeline (paper Fig. 1).

``store -> (compressed blob) -> load -> decompress -> quantized model``

The pipeline wires a plan from :class:`~repro.core.planner.TolerancePlanner`
to a codec and a quantized model, measures wall-clock stage timings and
achieved errors, and verifies that the end-to-end QoI error stays inside
the user's tolerance — the paper's central claim.

Runtime guards make that claim *checked*, not assumed: decompressed
inputs and QoI outputs are screened for NaN/Inf, and the achieved input
error is compared against the planned tolerance, raising a structured
:class:`~repro.exceptions.ContractViolation` on breach.  A configurable
``on_corruption`` policy (``raise`` / ``recompress-from-source`` /
``fallback-lossless``) lets one corrupt decompression degrade a run
instead of killing it.
"""

from __future__ import annotations

import io
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..compress.base import CompressedBlob, Compressor, ErrorBoundMode
from ..exceptions import (
    CompressionError,
    ConfigurationError,
    IntegrityError,
    PlanningError,
    ReproError,
)
from ..io.checkpoint import CheckpointJournal, digest_array, digest_model
from ..io.serialization import blob_from_bytes, blob_to_bytes
from ..nn.backend import CompiledForward, resolve_backend_name
from ..nn.module import Module
from ..obs import get_auditor, get_logger, get_metrics, get_profiler, get_tracer
from ..obs.audit import AuditRecord
from ..obs.prof import memory_snapshot, memory_top_diff
from ..perf.parallel import resolve_workers
from ..quant.quantizer import QuantizedModel, quantize_model
from ..resilience.guards import check_contract, screen_finite
from ..resilience.inject import ChaosInjector
from ..resilience.policy import (
    CorruptionPolicy,
    record_recovery,
    record_retry,
    resolve_policy,
)
from ..resilience.retry import RetryPolicy
from ..resilience.supervisor import SupervisedPool, fork_available
from .planner import InferencePlan

__all__ = ["PipelineResult", "InferencePipeline", "split_chunks"]


def split_chunks(
    fields: np.ndarray, chunk_size: int, chunk_axis: int = 0
) -> "list[np.ndarray]":
    """Split ``fields`` along ``chunk_axis`` into contiguous slabs.

    The one canonical chunking: ``execute_chunked`` and every
    distributed worker must produce identical slabs (and therefore
    identical per-chunk digests) or they are not running the same
    computation.
    """
    fields = np.asarray(fields)
    chunk_size = int(chunk_size)
    if chunk_size <= 0:
        raise PlanningError(f"chunk_size must be positive, got {chunk_size}")
    extent = fields.shape[chunk_axis]
    if extent == 0:
        raise PlanningError("cannot chunk an empty field array")
    return [
        np.ascontiguousarray(
            np.take(
                fields, np.arange(lo, min(lo + chunk_size, extent)), axis=chunk_axis
            )
        )
        for lo in range(0, extent, chunk_size)
    ]


@dataclass
class PipelineResult:
    """Everything measured in one pipeline execution."""

    outputs: np.ndarray
    reference_outputs: np.ndarray
    blob: CompressedBlob
    plan: InferencePlan
    compress_seconds: float
    decompress_seconds: float
    inference_seconds: float
    input_error_linf: float
    input_error_l2_max: float
    extra: dict = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        return self.blob.compression_ratio

    def qoi_error(self, norm: str = "linf", relative: bool = True) -> float:
        """Worst per-sample QoI error of this run."""
        delta = (self.outputs - self.reference_outputs).reshape(len(self.outputs), -1)
        reference = self.reference_outputs.reshape(len(self.reference_outputs), -1)
        if norm == "linf":
            errors = np.abs(delta).max(axis=1)
            scale = np.abs(reference).max()
        elif norm == "l2":
            errors = np.linalg.norm(delta, axis=1)
            scale = float(np.linalg.norm(reference, axis=1).max())
        else:
            raise ValueError(f"norm must be 'linf' or 'l2', got {norm!r}")
        worst = float(errors.max()) if errors.size else 0.0
        if relative:
            return worst / scale if scale > 0 else worst
        return worst


class InferencePipeline:
    """Error-bounded inference with lossy input reduction + weight quant.

    Parameters
    ----------
    model:
        Trained full-precision network.
    codec:
        Error-bounded compressor for the input data.
    plan:
        Allocation produced by the planner; fixes the weight format and
        the compressor tolerance.
    on_corruption:
        Reaction when a decompressed input fails integrity screening:
        ``"raise"`` (default) propagates the typed error;
        ``"recompress-from-source"`` re-compresses the source fields and
        retries (bounded by ``max_retries``); ``"fallback-lossless"``
        swaps in a lossless blob of the source fields.
    max_retries:
        Recompression attempts before falling through to a lossless blob
        (recompress policy) or the error (raise policy).
    screen:
        Disable to skip NaN/Inf screening and contract checking
        (measurement-only runs on data known to be dirty).
    backend:
        Execution backend for the forward passes: ``"auto"`` (default,
        resolves to ``"fused"``), ``"reference"``, ``"fused"`` or
        ``"numba"``; ``None`` consults ``REPRO_BACKEND``.  Compiled
        backends are bit-identical to the reference interpreter and fall
        back to it transparently (audit hooks, unsupported modules,
        off-envelope inputs), recording the reason in
        ``result.extra["backend"]``.
    instrument_ops:
        Compile the fused backend's per-op timing variant (see
        :class:`~repro.nn.backend.fused.InstrumentedFusedBackend`):
        forward passes additionally report per-op wall time into the
        ``backend_op_seconds`` histogram and
        ``result.extra["backend"]["op_seconds"]``.  ``None`` (default)
        consults ``REPRO_INSTRUMENT_OPS``; only meaningful on the fused
        backend.
    """

    def __init__(
        self,
        model: Module,
        codec: Compressor,
        plan: InferencePlan,
        on_corruption: "CorruptionPolicy | str" = CorruptionPolicy.RAISE,
        max_retries: int = 1,
        screen: bool = True,
        backend: "str | None" = None,
        instrument_ops: "bool | None" = None,
    ) -> None:
        self.model = model
        self.codec = codec
        self.plan = plan
        self.on_corruption = resolve_policy(on_corruption)
        self.max_retries = int(max_retries)
        self.screen = screen
        self.backend = resolve_backend_name(backend)
        self.instrument_ops = instrument_ops
        self.quantized: QuantizedModel = quantize_model(model, plan.fmt)
        self._forward_quant = CompiledForward(
            self.quantized.model, self.backend, instrument=instrument_ops
        )
        self._forward_ref = CompiledForward(
            self.model, self.backend, instrument=instrument_ops
        )
        self._mode = self._select_mode()
        self._audit_recorder = None
        self._audit_lock = threading.Lock()

    def _select_mode(self) -> ErrorBoundMode:
        if self.plan.norm == "linf":
            return ErrorBoundMode.ABS
        if ErrorBoundMode.L2_ABS in self.codec.supported_modes:
            return ErrorBoundMode.L2_ABS
        raise PlanningError(
            f"codec {self.codec.name!r} does not support an L2 tolerance "
            "(the paper notes the same restriction for ZFP)"
        )

    def store(self, fields: np.ndarray) -> CompressedBlob:
        """Compress normalized input fields under the planned tolerance."""
        return self.codec.compress(fields, self.plan.input_tolerance, self._mode)

    def load(self, blob: CompressedBlob) -> np.ndarray:
        """Decompress fields back into network-ready arrays (screened)."""
        return self.codec.safe_decompress(blob, screen=self.screen)

    def _lossless_blob(self, fields: np.ndarray) -> CompressedBlob:
        """Degraded-mode blob: source fields stored uncompressed."""
        fields = np.asarray(fields)
        return CompressedBlob(
            codec=self.codec.name,
            payload=np.ascontiguousarray(fields).tobytes(),
            shape=fields.shape,
            dtype=str(fields.dtype),
            mode=self._mode,
            tolerance=float(self.plan.input_tolerance),
            metadata={"lossless": True, "degraded": True},
        )

    def _store_and_load(
        self, fields: np.ndarray, force_lossless: bool = False
    ) -> tuple[CompressedBlob, np.ndarray, float, float, int, dict]:
        """Compress + decompress under the degradation policy.

        Returns ``(blob, reconstruction, compress_s, decompress_s,
        recoveries, spans)`` where ``recoveries`` counts policy
        activations and ``spans`` holds the compress/decompress trace
        spans for post-hoc attribute enrichment (observed errors are only
        measurable once the reconstruction is compared to the source).

        ``force_lossless`` skips the codec entirely and goes straight to
        the degraded lossless blob — the quarantine path for a chunk the
        supervised pool gave up on.
        """
        tracer = get_tracer()
        predicted = float(self.plan.input_tolerance)
        recoveries = 0
        failure: Exception | None = None
        spans: dict = {}
        for attempt in range(0 if force_lossless else self.max_retries + 1):
            if attempt:
                record_retry("pipeline")
            start = time.perf_counter()
            with tracer.span(
                "pipeline.compress",
                codec=self.codec.name,
                attempt=attempt,
                predicted_bound=predicted,
            ) as span:
                blob = self.store(fields)
                span.set(compression_ratio=blob.compression_ratio)
            spans["compress"] = span
            compress_seconds = time.perf_counter() - start
            start = time.perf_counter()
            span = tracer.span(
                "pipeline.decompress",
                codec=self.codec.name,
                attempt=attempt,
                predicted_bound=predicted,
            )
            try:
                with span:
                    reconstructed = self.load(blob)
                spans["decompress"] = span
                if recoveries:
                    record_recovery(self.on_corruption, "pipeline")
                return (
                    blob,
                    reconstructed,
                    compress_seconds,
                    time.perf_counter() - start,
                    recoveries,
                    spans,
                )
            except (IntegrityError, CompressionError) as exc:
                spans["decompress"] = span
                if self.on_corruption is CorruptionPolicy.RAISE:
                    raise
                failure = exc
                recoveries += 1
                if self.on_corruption is CorruptionPolicy.FALLBACK_LOSSLESS:
                    break
        # recompression kept failing (or the policy is lossless): degrade.
        if not force_lossless:
            record_retry("pipeline")
        blob = self._lossless_blob(fields)
        start = time.perf_counter()
        span = tracer.span(
            "pipeline.decompress",
            codec=self.codec.name,
            degraded=True,
            predicted_bound=predicted,
        )
        try:
            with span:
                reconstructed = self.load(blob)
        except (IntegrityError, CompressionError) as exc:
            raise IntegrityError(
                "pipeline could not recover a clean reconstruction even "
                f"losslessly (policy {self.on_corruption.value!r}): {exc}"
            ) from (failure or exc)
        spans["decompress"] = span
        record_recovery(
            CorruptionPolicy.FALLBACK_LOSSLESS if force_lossless else self.on_corruption,
            "pipeline",
        )
        return blob, reconstructed, 0.0, time.perf_counter() - start, recoveries, spans

    def execute(
        self,
        fields: np.ndarray,
        samples_from_fields=None,
        force_lossless: bool = False,
    ) -> PipelineResult:
        """Run the full pipeline on a normalized field array.

        Parameters
        ----------
        fields:
            Input data as stored (e.g. ``(V, H, W)`` variable planes or
            image batches).
        samples_from_fields:
            Callable reshaping fields into model-input samples; defaults
            to treating axis 0 as the variable axis of a field workload.
        force_lossless:
            Skip the lossy codec and store the fields losslessly — the
            degraded mode quarantined chunks fall back to.

        Returns
        -------
        PipelineResult
            Outputs, reference (uncompressed FP32) outputs, timings and
            achieved input errors.  ``extra["integrity"]`` records what
            the guards observed; ``extra["audit"]`` holds the layerwise
            predicted-vs-observed record when auditing is enabled.
        """
        if samples_from_fields is None:
            samples_from_fields = lambda f: f.reshape(f.shape[0], -1).T.astype(np.float32)  # noqa: E731

        tracer = get_tracer()
        metrics = get_metrics()
        profiler = get_profiler()
        prof_window = profiler.begin_window() if profiler.enabled else None
        memory_stages: "dict | None" = {} if profiler.enabled and profiler.memory else None
        with tracer.span(
            "pipeline.execute",
            codec=self.codec.name,
            norm=self.plan.norm,
            fmt=self.plan.fmt.name,
            policy=self.on_corruption.value,
        ) as root:
            if self.screen:
                screen_finite(fields, stage="source", name="fields")

            mem_before = memory_snapshot() if memory_stages is not None else None
            blob, reconstructed, compress_seconds, decompress_seconds, recoveries, spans = (
                self._store_and_load(fields, force_lossless=force_lossless)
            )
            if memory_stages is not None:
                mem_after = memory_snapshot()
                memory_stages["store_load"] = memory_top_diff(
                    mem_before, mem_after, top=profiler.memory_top
                )
                mem_before = mem_after

            samples = samples_from_fields(reconstructed)
            with tracer.span(
                "pipeline.inference",
                fmt=self.plan.fmt.name,
                samples=int(len(samples)),
                predicted_bound=float(self.plan.quant_bound),
                backend=self.backend,
            ) as inference_span:
                start = time.perf_counter()
                outputs = self._forward_quant(samples)
                inference_seconds = time.perf_counter() - start
            if memory_stages is not None:
                mem_after = memory_snapshot()
                memory_stages["inference"] = memory_top_diff(
                    mem_before, mem_after, top=profiler.memory_top
                )

            self.model.eval()
            reference_samples = samples_from_fields(fields)
            reference = self._forward_ref(reference_samples)
            delta = reference_samples - samples
            input_error_linf = float(np.abs(delta).max()) if delta.size else 0.0
            input_error_l2_max = (
                float(np.linalg.norm(delta, axis=1).max()) if delta.size else 0.0
            )

            integrity: dict = {
                "screened": self.screen,
                "policy": self.on_corruption.value,
                "recoveries": recoveries,
                "degraded": bool(blob.metadata.get("degraded", False)),
            }
            # The codec's contract is over the stored field array in its
            # native dtype — measure it there, not after the sample cast.
            if self.screen or tracer.enabled:
                field_delta = np.asarray(fields, dtype=np.float64) - np.asarray(
                    reconstructed, dtype=np.float64
                )
                if self._mode.is_pointwise:
                    achieved = float(np.abs(field_delta).max()) if field_delta.size else 0.0
                else:
                    achieved = float(np.linalg.norm(field_delta))
            else:
                achieved = float("nan")
            with tracer.span(
                "pipeline.guard",
                codec=self.codec.name,
                norm=self.plan.norm,
                predicted_bound=float(self.plan.input_tolerance),
                observed_error=achieved,
                contract_slack=float(self.plan.input_tolerance) - achieved,
                screened=self.screen,
            ) as guard_span:
                if self.screen:
                    screen_finite(outputs, stage="qoi", name="outputs")
                    integrity["input_contract"] = {
                        "norm": self.plan.norm,
                        "expected": float(self.plan.input_tolerance),
                        "achieved": achieved,
                    }
                    check_contract(
                        achieved,
                        self.plan.input_tolerance,
                        codec=self.codec.name,
                        stage="decompress",
                        norm=self.plan.norm,
                        slack=1e-9,
                    )

            backend_info: dict = {"name": self.backend}
            if self._forward_quant.last_fallback_reason is not None:
                backend_info["fallback_quant"] = self._forward_quant.last_fallback_reason
            if self._forward_ref.last_fallback_reason is not None:
                backend_info["fallback_reference"] = self._forward_ref.last_fallback_reason
            if self._forward_quant.last_op_seconds is not None:
                backend_info["op_labels"] = list(self._forward_quant.op_labels or [])
                backend_info["op_seconds"] = list(self._forward_quant.last_op_seconds)

            result = PipelineResult(
                outputs=outputs,
                reference_outputs=reference,
                blob=blob,
                plan=self.plan,
                compress_seconds=compress_seconds,
                decompress_seconds=decompress_seconds,
                inference_seconds=inference_seconds,
                input_error_linf=input_error_linf,
                input_error_l2_max=input_error_l2_max,
                extra={"integrity": integrity, "backend": backend_info},
            )
            if prof_window is not None:
                result.extra["profile"] = profiler.end_window(
                    prof_window, memory_stages
                )

            if tracer.enabled or metrics.enabled:
                self._record_telemetry(
                    tracer, metrics, result, spans, inference_span, guard_span, root,
                    observed_input_error=achieved,
                )
            auditor = get_auditor()
            if auditor.enabled:
                self._audit_execution(auditor, result, reference_samples, samples)
        return result

    def _audit_execution(
        self,
        auditor,
        result: PipelineResult,
        reference_samples: np.ndarray,
        samples: np.ndarray,
    ) -> None:
        """Layerwise predicted-vs-observed audit of one execution.

        Only reached when a live auditor is installed (the disabled cost
        is one attribute check in :meth:`execute`).  Runs both models
        again with capture hooks — roughly doubling inference cost for
        the audited run — and never kills the run it observes: audit
        failures degrade to a warning.
        """
        try:
            # One audit at a time: the recorder attaches capture hooks to
            # the shared model, so concurrent chunk workers would observe
            # each other's activations.
            with self._audit_lock:
                record = self._audit_recorder_for(reference_samples, auditor).audit(
                    reference_samples, samples, loose_below=auditor.loose_below
                )
            record.codec = self.codec.name
            record.fmt = self.plan.fmt.name
            record.norm = self.plan.norm
            record.qoi_tolerance = float(self.plan.qoi_tolerance)
            record.input_tolerance = float(self.plan.input_tolerance)
            integrity = result.extra.get("integrity", {})
            record.metadata = {
                "compression_ratio": float(result.compression_ratio),
                "degraded": bool(integrity.get("degraded", False)),
                "recoveries": int(integrity.get("recoveries", 0)),
                "samples": int(len(samples)),
            }
            auditor.record_run(record)
            result.extra["audit"] = record.to_dict()
        except ReproError as exc:
            get_logger("pipeline").warning(
                "audit skipped: could not evaluate the layerwise envelope",
                error=str(exc),
            )

    def _audit_recorder_for(self, reference_samples: np.ndarray, auditor):
        """Cached lockstep recorder (spec extraction pays once per
        pipeline).  Caller must hold ``_audit_lock``."""
        if self._audit_recorder is None:
            from ..obs.audit import LayerwiseErrorRecorder

            n_input = int(np.prod(np.asarray(reference_samples).shape[1:]))
            self._audit_recorder = LayerwiseErrorRecorder(
                self.model,
                self.quantized,
                n_input=n_input or None,
                quant_safety=auditor.quant_safety,
            )
        return self._audit_recorder

    def execute_chunked(
        self,
        fields: np.ndarray,
        chunk_size: int,
        workers: int | None = None,
        chunk_axis: int = 0,
        samples_from_fields=None,
        *,
        executor: str = "auto",
        checkpoint: "str | None" = None,
        resume: bool = False,
        task_timeout: "float | None" = None,
        max_task_retries: int = 2,
        chaos=None,
        distrib=None,
    ) -> PipelineResult:
        """Run the pipeline over chunks of ``fields``, optionally in parallel.

        ``fields`` is split along ``chunk_axis`` into slabs of
        ``chunk_size``; each slab runs the full compress → decompress →
        infer path independently.  Results come back in input order
        regardless of completion order, so the assembled outputs are
        deterministic.

        Only pointwise (L-infinity) tolerances compose per chunk — the
        max over slab-wise maxima equals the global maximum.  An L2
        budget does not split this way, so L2 plans are rejected.

        When error auditing is enabled (:func:`repro.obs.enable_audit`)
        every chunk is audited as its own run: one
        :class:`~repro.obs.audit.AuditRecord` per chunk.  Records
        produced inside pool workers (or replayed from a checkpoint) are
        adopted into the parent auditor, so the in-memory record list and
        the run registry always end up with one entry per chunk.

        Parameters
        ----------
        fields:
            Input data as stored (same contract as :meth:`execute`).
        chunk_size:
            Slab extent along ``chunk_axis``.
        workers:
            ``None``/1 = serial, ``0`` = one per CPU, else literal.
        chunk_axis:
            Axis to split.  Pick the axis whose slabs map to contiguous
            blocks of model samples under ``samples_from_fields`` (axis 1
            for the default ``(V, H, W)`` field mapping, axis 0 for
            batch-of-images workloads).
        samples_from_fields:
            Same reshaping callable as :meth:`execute`, applied per chunk.
        executor:
            ``"process"`` — supervised fork-based worker pool (heartbeats,
            deadlines, respawn, retry/backoff, quarantine, circuit
            breaker; see :class:`~repro.resilience.supervisor.SupervisedPool`);
            ``"serial"`` — in-process loop;
            ``"distributed"`` — serve the chunks as leases to remote
            workers via a :class:`~repro.distrib.coordinator.
            ShardCoordinator` (configured by ``distrib``), degrading to
            the local supervised pool if no worker joins; ``"auto"``
            (default) — process pool when ``workers > 1`` and fork is
            available, else serial.  (The GIL-bound thread pool was
            removed as an inference executor: BENCH_pr4 showed it yields
            no speedup.  :func:`repro.perf.parallel.parallel_map` remains
            for chunked I/O, where threads do overlap.)  The executor
            actually used and the one requested are both recorded in
            ``result.extra["chunked"]``.
        checkpoint:
            Directory for a durable
            :class:`~repro.io.checkpoint.CheckpointJournal`: every
            certified-complete chunk is persisted (atomic artifact +
            journal line) as it finishes.  ``None`` disables.
        resume:
            Resume from ``checkpoint``: verify the journal belongs to
            this exact computation (plan fingerprint + per-chunk input
            digests), replay completed chunks, recompute only the rest.
        task_timeout:
            Per-chunk deadline in seconds (process executor only);
            expiry kills the worker and retries the chunk.
        max_task_retries:
            Retry budget per chunk before quarantine (process executor);
            a quarantined chunk re-runs serially in the parent in
            degraded lossless mode instead of failing the run.
        chaos:
            Optional :class:`~repro.resilience.inject.ChaosInjector`
            applied inside workers (tests/CI); defaults to the
            ``REPRO_CHAOS`` environment spec when set.  Not accepted by
            the distributed executor — there, chaos belongs to the
            worker processes.
        distrib:
            Optional :class:`~repro.distrib.coordinator.DistribConfig`
            for the distributed executor (bind address, lease TTL,
            shard size, expected worker count, join timeout).

        Returns
        -------
        PipelineResult
            Concatenated outputs; stage timings are summed over chunks,
            input errors are slab-wise maxima (exact for pointwise
            norms), ``blob`` is the first chunk's blob, and ``extra``
            carries ``"chunked"`` (pool configuration + aggregate ratio),
            ``"supervision"`` (retries/respawns/quarantine, process
            executor only) and ``"checkpoint"`` (path + replay counts,
            when journaling).
        """
        if not self._mode.is_pointwise:
            raise PlanningError(
                "chunked execution requires a pointwise (linf) tolerance: "
                "an L2 error budget does not decompose across chunks"
            )
        fields = np.asarray(fields)
        chunk_size = int(chunk_size)
        if resume and checkpoint is None:
            raise ConfigurationError("resume=True requires a checkpoint directory")
        chunks = split_chunks(fields, chunk_size, chunk_axis)
        n_workers = resolve_workers(workers)
        requested_executor = executor
        executor = self._resolve_executor(executor, n_workers)
        if distrib is not None and executor != "distributed":
            raise ConfigurationError(
                "distrib configuration requires executor='distributed', "
                f"got {executor!r}"
            )
        if executor == "distributed":
            # chaos is worker-side in distributed mode: the coordinator
            # must not consume a REPRO_CHAOS spec meant for its workers
            if chaos is not None:
                raise ConfigurationError(
                    "chaos injection in distributed mode belongs to the "
                    "worker processes (set REPRO_CHAOS there)"
                )
        else:
            if chaos is None:
                chaos = ChaosInjector.from_env()
            if chaos is not None and executor != "process":
                raise ConfigurationError(
                    "chaos injection simulates worker faults and requires the "
                    f"process executor (resolved executor: {executor!r})"
                )
        # eval() once up front: workers must not mutate module state.
        self.model.eval()
        auditor = get_auditor()

        journal = None
        digests: "list[str] | None" = None
        manifest: "dict | None" = None
        completed_entries: dict = {}
        if checkpoint is not None or executor == "distributed":
            digests = [digest_array(chunk) for chunk in chunks]
            manifest = self._checkpoint_manifest(
                chunks, chunk_size, chunk_axis, digests
            )
        if checkpoint is not None:
            journal = CheckpointJournal(checkpoint)
            completed_entries = journal.begin(manifest, resume=resume)

        tracer = get_tracer()
        profiler = get_profiler()
        prof_window = profiler.begin_window() if profiler.enabled else None
        wall_start = time.perf_counter()
        with tracer.span(
            "pipeline.execute_chunked",
            codec=self.codec.name,
            chunks=len(chunks),
            chunk_size=chunk_size,
            workers=n_workers,
            executor=executor,
            resumed=len(completed_entries),
        ) as root:
            results: "dict[int, PipelineResult]" = {}
            for index in sorted(completed_entries):
                results[index] = self._replay_chunk(
                    journal, completed_entries[index], auditor
                )
            pending = [i for i in range(len(chunks)) if i not in results]

            supervision = None
            distrib_summary = None
            if pending and executor == "distributed":
                distrib_summary, pending = self._run_chunks_distributed(
                    chunks, pending, manifest, journal, auditor, results, distrib
                )
                if pending:
                    # degradation: no (surviving) workers — finish on the
                    # local supervised pool so the run still completes
                    supervision = self._run_chunks_supervised(
                        chunks,
                        pending,
                        samples_from_fields,
                        journal,
                        digests,
                        auditor,
                        results,
                        n_workers=n_workers,
                        task_timeout=task_timeout,
                        max_task_retries=max_task_retries,
                        chaos=None,
                    )
            elif pending and executor == "process":
                supervision = self._run_chunks_supervised(
                    chunks,
                    pending,
                    samples_from_fields,
                    journal,
                    digests,
                    auditor,
                    results,
                    n_workers=n_workers,
                    task_timeout=task_timeout,
                    max_task_retries=max_task_retries,
                    chaos=chaos,
                )
            elif pending:
                for index in pending:
                    chunk = chunks[index]
                    started = time.perf_counter()
                    with tracer.span(
                        "pipeline.chunk", rows=int(chunk.shape[chunk_axis])
                    ):
                        result = self.execute(
                            chunk, samples_from_fields=samples_from_fields
                        )
                    if journal is not None:
                        # journal as each chunk completes — a crash loses
                        # only in-flight work, never finished chunks
                        self._journal_chunk(
                            journal,
                            index,
                            result,
                            digests[index],
                            seconds=time.perf_counter() - started,
                        )
                    results[index] = result

            wall_seconds = time.perf_counter() - wall_start
            ordered = [results[index] for index in range(len(chunks))]

            raw_total = sum(
                int(np.prod(r.blob.shape)) * np.dtype(r.blob.dtype).itemsize
                for r in ordered
            )
            compressed_total = sum(len(r.blob.payload) for r in ordered)
            integrity = {
                "screened": self.screen,
                "policy": self.on_corruption.value,
                "recoveries": sum(
                    r.extra["integrity"].get("recoveries", 0) for r in ordered
                ),
                "degraded": any(
                    r.extra["integrity"].get("degraded", False) for r in ordered
                ),
            }
            aggregate_ratio = (
                raw_total / compressed_total if compressed_total else float("inf")
            )
            root.set(compression_ratio=aggregate_ratio, wall_seconds=wall_seconds)

        extra = {
            "integrity": integrity,
            "chunked": {
                "n_chunks": len(chunks),
                "chunk_size": chunk_size,
                "chunk_axis": chunk_axis,
                "workers": n_workers,
                "executor": executor,
                "requested_executor": requested_executor,
                "wall_seconds": wall_seconds,
                "compression_ratio": aggregate_ratio,
            },
        }
        if supervision is not None:
            extra["supervision"] = supervision
        if distrib_summary is not None:
            extra["distrib"] = distrib_summary
            if tracer.enabled:
                # the same per-chunk timeline `repro trace analyze` builds
                # from an exported trace, available without the export
                from ..obs.timeline import analyze_spans

                extra["timeline"] = analyze_spans(tracer.to_dicts())
        if journal is not None:
            extra["checkpoint"] = {
                "path": journal.path,
                "resumed": bool(resume),
                "replayed_chunks": len(completed_entries),
                "computed_chunks": len(chunks) - len(completed_entries),
            }
        if prof_window is not None:
            # whole-run window: per-chunk serial execute() calls attach
            # their own nested windows inside each chunk result
            extra["profile"] = profiler.end_window(prof_window)

        return PipelineResult(
            outputs=np.concatenate([r.outputs for r in ordered], axis=0),
            reference_outputs=np.concatenate(
                [r.reference_outputs for r in ordered], axis=0
            ),
            blob=ordered[0].blob,
            plan=self.plan,
            compress_seconds=sum(r.compress_seconds for r in ordered),
            decompress_seconds=sum(r.decompress_seconds for r in ordered),
            inference_seconds=sum(r.inference_seconds for r in ordered),
            input_error_linf=max(r.input_error_linf for r in ordered),
            input_error_l2_max=max(r.input_error_l2_max for r in ordered),
            extra=extra,
        )

    @staticmethod
    def _resolve_executor(executor: str, n_workers: int) -> str:
        if executor not in ("auto", "serial", "process", "distributed"):
            raise ConfigurationError(
                "executor must be auto|serial|process|distributed, "
                f"got {executor!r}"
            )
        if executor == "auto":
            if n_workers <= 1:
                return "serial"
            # BENCH_pr4 showed the GIL-bound thread pool yields no
            # inference speedup, and it was removed as an executor in the
            # backend-engine PR (the thread pool itself remains for
            # chunked I/O in repro.perf.parallel) — process if fork
            # exists, else serial.  "distributed" stays explicit.
            return "process" if fork_available() else "serial"
        return executor

    def _checkpoint_manifest(
        self, chunks, chunk_size: int, chunk_axis: int, digests: "list[str]"
    ) -> dict:
        """Run identity for the checkpoint journal: every decision that
        makes two runs 'the same computation' — plan, codec, chunking —
        plus per-chunk input digests."""
        return {
            "fingerprint": {
                "codec": self.codec.name,
                "fmt": self.plan.fmt.name,
                "norm": self.plan.norm,
                "qoi_tolerance": float(self.plan.qoi_tolerance),
                "input_tolerance": float(self.plan.input_tolerance),
                "quant_bound": float(self.plan.quant_bound),
                "policy": self.on_corruption.value,
                "screen": bool(self.screen),
                "chunk_size": int(chunk_size),
                "chunk_axis": int(chunk_axis),
                "n_chunks": len(chunks),
            },
            "chunk_digests": list(digests),
        }

    def _journal_chunk(
        self,
        journal: CheckpointJournal,
        index: int,
        result: PipelineResult,
        digest: str,
        attempts: int = 1,
        quarantined: bool = False,
        seconds: "float | None" = None,
    ) -> dict:
        """Persist one certified-complete chunk (artifact + journal line).

        Returns the journal entry as written — the distributed worker
        resends exactly this entry (plus the journaled artifact bytes)
        over the wire, so local and merged journals agree bit for bit.
        ``seconds`` is the chunk's end-to-end wall time as measured
        where it ran (it includes retries and injected slowness the
        per-stage timings exclude — the signal straggler detection
        needs).
        """
        entry = {
            "input_digest": digest,
            "attempts": int(attempts),
            "quarantined": bool(quarantined),
            "observed_qoi_error": float(
                result.qoi_error(self.plan.norm, relative=False)
            ),
            "input_error_linf": float(result.input_error_linf),
            "input_error_l2_max": float(result.input_error_l2_max),
            "timings": {
                "compress": result.compress_seconds,
                "decompress": result.decompress_seconds,
                "inference": result.inference_seconds,
            },
            "integrity": result.extra.get("integrity", {}),
            "audit": result.extra.get("audit"),
        }
        if seconds is not None:
            entry["task_seconds"] = float(seconds)
        return journal.record(
            index,
            outputs=result.outputs,
            reference_outputs=result.reference_outputs,
            blob_bytes=blob_to_bytes(result.blob),
            entry=entry,
        )

    def _replay_chunk(
        self, journal: CheckpointJournal, entry: dict, auditor
    ) -> PipelineResult:
        """Reconstruct a completed chunk's result from the journal.

        The stored audit record (the killed run's verdicts, not a fresh
        re-audit) is adopted into the parent auditor, so a resumed run's
        registry matches an uninterrupted one chunk-for-chunk.
        """
        return self._result_from_payload(journal.load(entry), entry, auditor)

    def _result_from_payload(
        self, payload: dict, entry: dict, auditor, origin: str = "replayed"
    ) -> PipelineResult:
        """A :class:`PipelineResult` from journaled/remote chunk data.

        ``payload`` carries the arrays (``outputs``, ``reference_outputs``,
        ``blob_bytes``); ``entry`` the journal metadata.  Audit records
        riding in the entry are adopted into the live auditor, exactly as
        for process-pool workers.
        """
        extra: dict = {
            "integrity": dict(entry.get("integrity", {})),
            origin: True,
        }
        audit_dict = entry.get("audit")
        if audit_dict:
            if auditor.enabled:
                record = auditor.adopt(AuditRecord.from_dict(audit_dict))
                audit_dict = record.to_dict()
            extra["audit"] = audit_dict
        timings = entry.get("timings", {})
        return PipelineResult(
            outputs=payload["outputs"],
            reference_outputs=payload["reference_outputs"],
            blob=blob_from_bytes(payload["blob_bytes"]),
            plan=self.plan,
            compress_seconds=float(timings.get("compress", 0.0)),
            decompress_seconds=float(timings.get("decompress", 0.0)),
            inference_seconds=float(timings.get("inference", 0.0)),
            input_error_linf=float(entry.get("input_error_linf", 0.0)),
            input_error_l2_max=float(entry.get("input_error_l2_max", 0.0)),
            extra=extra,
        )

    def _run_chunks_distributed(
        self,
        chunks,
        pending: "list[int]",
        manifest: dict,
        journal: "CheckpointJournal | None",
        auditor,
        results: "dict[int, PipelineResult]",
        config,
    ) -> "tuple[dict, list[int]]":
        """Serve pending chunks as leases to remote shard workers.

        Blocks until the coordinator run resolves, materializes every
        accepted remote result into ``results`` and returns the
        coordinator summary plus whatever chunks remain uncomputed (the
        caller degrades those to the local supervised pool).  A drain
        (SIGTERM) that leaves work unfinished raises
        :class:`~repro.distrib.coordinator.DrainedError` so the caller
        exits resumable instead of silently recomputing locally.
        """
        from ..distrib.coordinator import (
            DistribConfig,
            DrainedError,
            ShardCoordinator,
        )

        coordinator = ShardCoordinator(
            manifest,
            weights=digest_model(self.model),
            journal=journal,
            completed=set(results),
            config=config if config is not None else DistribConfig(),
        )
        summary = coordinator.run()

        for index in sorted(coordinator.accepted):
            entry = coordinator.accepted[index]
            if journal is not None:
                # the merged journal holds the worker's artifact bytes
                # verbatim; replaying through it re-verifies the digest
                results[index] = self._replay_chunk(journal, entry, auditor)
                results[index].extra["remote"] = True
                results[index].extra.pop("replayed", None)
            else:
                data = coordinator.payload(index)
                with np.load(io.BytesIO(data)) as archive:
                    payload = {
                        "outputs": archive["outputs"],
                        "reference_outputs": archive["reference_outputs"],
                        "blob_bytes": archive["blob"].tobytes(),
                    }
                results[index] = self._result_from_payload(
                    payload, entry, auditor, origin="remote"
                )

        remaining = [i for i in pending if i not in results]
        if remaining and summary.get("outcome") == "drained":
            raise DrainedError(
                f"coordinator drained with {len(remaining)} chunks "
                "unfinished; re-run with resume=True to continue from the "
                "checkpoint journal"
            )
        if remaining:
            get_logger("pipeline").warning(
                "distributed run left chunks unfinished; degrading to the "
                "local supervised pool",
                outcome=summary.get("outcome"),
                remaining=len(remaining),
            )
            get_metrics().counter("distrib_degraded_local_total").inc(
                len(remaining)
            )
        return summary, remaining

    def _run_chunks_supervised(
        self,
        chunks,
        pending: "list[int]",
        samples_from_fields,
        journal: "CheckpointJournal | None",
        digests: "list[str] | None",
        auditor,
        results: "dict[int, PipelineResult]",
        *,
        n_workers: int,
        task_timeout: "float | None",
        max_task_retries: int,
        chaos,
    ) -> dict:
        """Run pending chunks on the supervised process pool.

        Fills ``results`` in place and returns the supervision summary.
        Quarantined chunks are re-run serially in the parent in degraded
        lossless mode — the run completes with every chunk certified,
        some of them at compression ratio 1.
        """

        def task_fn(index: int) -> PipelineResult:
            return self.execute(chunks[index], samples_from_fields=samples_from_fields)

        def validate(task_id: int, result) -> None:
            # Workers screen internally, but a fault (or injected
            # corruption) between the worker's guard and the parent's
            # queue must not go unnoticed: re-screen on arrival.
            if self.screen:
                screen_finite(result.outputs, stage="chunk", name="outputs")

        def on_result(task_id: int, result, outcome) -> None:
            index = pending[task_id]
            if (
                not outcome.inline
                and auditor.enabled
                and "audit" in result.extra
            ):
                record = auditor.adopt(AuditRecord.from_dict(result.extra["audit"]))
                result.extra["audit"] = record.to_dict()
            results[index] = result
            if journal is not None:
                self._journal_chunk(
                    journal,
                    index,
                    result,
                    digests[index],
                    attempts=outcome.attempts,
                    seconds=outcome.seconds,
                )

        pool = SupervisedPool(
            task_fn,
            workers=n_workers,
            task_timeout=task_timeout,
            retry=RetryPolicy(max_retries=max_task_retries),
            chaos=chaos,
            validate=validate if self.screen else None,
            label="pipeline",
        )
        report = pool.run(pending, on_result=on_result)

        quarantined_chunks = [pending[pos] for pos in report.quarantined]
        for index in quarantined_chunks:
            outcome = report.outcomes[pending.index(index)]
            get_logger("pipeline").warning(
                "quarantined chunk degrading to fallback-lossless in-process",
                chunk=index,
                attempts=outcome.attempts,
                reason=outcome.error,
            )
            started = time.perf_counter()
            result = self.execute(
                chunks[index],
                samples_from_fields=samples_from_fields,
                force_lossless=True,
            )
            results[index] = result
            if journal is not None:
                self._journal_chunk(
                    journal,
                    index,
                    result,
                    digests[index],
                    attempts=outcome.attempts,
                    quarantined=True,
                    seconds=time.perf_counter() - started,
                )

        summary = report.summary()
        summary["quarantined"] = quarantined_chunks
        summary["degraded_chunks"] = quarantined_chunks
        return summary

    def _record_telemetry(
        self,
        tracer,
        metrics,
        result: PipelineResult,
        spans: dict,
        inference_span,
        guard_span,
        root,
        observed_input_error: float,
    ) -> None:
        """Post-hoc span enrichment + counters (observability on only).

        Observed errors are only known once the reconstruction and the
        reference outputs exist, so the stage spans created earlier are
        completed here — every stage span carries both its predicted
        bound and the error actually observed.
        """
        qoi_error = result.qoi_error(self.plan.norm, relative=False)
        input_error = (
            result.input_error_linf
            if self._mode.is_pointwise
            else result.input_error_l2_max
        )
        if "compress" in spans:
            spans["compress"].set(observed_error=observed_input_error)
        if "decompress" in spans:
            spans["decompress"].set(observed_error=observed_input_error)
        inference_span.set(observed_error=qoi_error)
        guard_span.set(qoi_predicted_bound=float(self.plan.qoi_tolerance), qoi_observed_error=qoi_error)
        root.set(
            compression_ratio=result.compression_ratio,
            predicted_bound=float(self.plan.qoi_tolerance),
            observed_error=qoi_error,
            input_error=input_error,
            recoveries=result.extra["integrity"]["recoveries"],
            degraded=result.extra["integrity"]["degraded"],
        )
        metrics.counter("pipeline_executions_total", codec=self.codec.name).inc()
        for stage, seconds in (
            ("compress", result.compress_seconds),
            ("decompress", result.decompress_seconds),
            ("inference", result.inference_seconds),
        ):
            metrics.histogram("pipeline_stage_seconds", stage=stage).observe(seconds)
        metrics.gauge("pipeline_compression_ratio", codec=self.codec.name).set(
            result.compression_ratio
        )
        metrics.gauge("pipeline_qoi_error", norm=self.plan.norm).set(qoi_error)
