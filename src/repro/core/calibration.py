"""Data-driven signal calibration for tighter quantization bounds.

The paper's quantization term bounds the hidden-signal norm with the
worst case ``||h~^(l-1)|| <= prod sigma~ * sqrt(n_0)`` (normalized-input
assumption).  In practice activations saturate and sparsify, so the true
norms sit far below that product — especially in deep residual networks.
Calibration measures the actual per-layer signal norms on representative
data and caps the recurrence with them (plus a safety margin), the
standard practice for data-driven quantization error models.

The traversal mirrors :func:`repro.core.graph.extract_spec` exactly, so
the recorded caps align one-to-one with the spec's linear layers
(residual bodies before shortcuts).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..obs import get_metrics, get_tracer
from ..nn.conv import Conv2d, SpectralConv2d
from ..nn.linear import Linear, SpectralLinear
from ..nn.module import Module
from ..nn.residual import ResidualBlock
from ..nn.sequential import Sequential

__all__ = ["collect_signal_norms"]


def _max_sample_norm(tensor: np.ndarray) -> float:
    flat = tensor.reshape(len(tensor), -1)
    return float(np.linalg.norm(flat, axis=1).max())


def _walk(module: Module, x: np.ndarray, norms: list[float]) -> np.ndarray:
    if hasattr(module, "calibration_walk"):
        # Extension hook: composites (e.g. U-Net levels) define their own
        # traversal, mirroring their error_flow_spec layer order.
        return module.calibration_walk(_walk, x, norms)
    if isinstance(module, Sequential):
        for layer in module:
            x = _walk(layer, x, norms)
        return x
    if isinstance(module, ResidualBlock):
        branch = _walk(module.body, x, norms)
        if module.shortcut is None:
            skip = x
        else:
            skip = _walk(module.shortcut, x, norms)
        out = branch + skip
        if module.post_activation is not None:
            out = module.post_activation(out)
        return out
    if isinstance(module, (Linear, SpectralLinear, Conv2d, SpectralConv2d)):
        # record the signal *entering* this linear operator — the h^(l-1)
        # of the quantization term
        norms.append(_max_sample_norm(x))
    return module(x)


def collect_signal_norms(
    model: Module, inputs: np.ndarray, margin: float = 1.25
) -> list[float]:
    """Measured max per-sample L2 norm feeding each linear layer.

    Parameters
    ----------
    model:
        Sequential network (the same object the analyzer was built from).
    inputs:
        Calibration batch shaped like training inputs.
    margin:
        Multiplier applied to each measured norm; covers inputs somewhat
        outside the calibration distribution.

    Returns
    -------
    list[float]
        One value per linear layer in extraction order.
    """
    if not isinstance(model, Sequential):
        raise ConfigurationError("calibration expects a Sequential model")
    if margin < 1.0:
        raise ConfigurationError(f"margin must be >= 1, got {margin}")
    model.eval()
    norms: list[float] = []
    with get_tracer().span(
        "quant.calibrate", samples=int(len(inputs)), margin=float(margin)
    ) as span:
        _walk(model, np.asarray(inputs, dtype=np.float32), norms)
        span.set(layers=len(norms))
    get_metrics().counter("calibrations_total").inc()
    return [norm * margin for norm in norms]
