"""Tolerance allocation between quantization and compression (Fig. 1, 10).

Given a total QoI tolerance, the planner:

1. allocates ``quant_fraction`` of it to quantization (the paper's
   "configurable factor to control the proportion of total tolerance
   allocated to quantization", Section IV-D);
2. picks the *fastest* numeric format whose predicted Eq. (3) bound fits
   in that allocation (quantization tolerances are discrete — there are
   only a few formats);
3. hands every unutilized bit of tolerance to data reduction, inverting
   the compression term of the bound into an input tolerance for the
   codec.

:meth:`TolerancePlanner.auto_plan` additionally searches the allocation
fraction to maximize predicted pipeline throughput — the optimization the
paper's Section IV-D flags as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import PlanningError, ToleranceError
from ..quant.formats import FP32, STANDARD_FORMATS, NumericFormat
from .errorflow import ErrorFlowAnalyzer

__all__ = ["InferencePlan", "TolerancePlanner", "DEFAULT_FORMAT_RANKING"]

#: Formats ordered by descending execution speedup (paper Fig. 9: FP16 and
#: INT8 deliver the large speedups; TF32/BF16 are marginal; FP32 is 1x).
DEFAULT_FORMAT_RANKING: tuple[str, ...] = ("int8", "fp16", "bf16", "tf32", "fp32")


@dataclass
class InferencePlan:
    """A concrete configuration for the inference pipeline.

    Attributes
    ----------
    qoi_tolerance:
        The user's total QoI budget, in ``norm`` units.
    norm:
        ``"linf"`` or ``"l2"`` — the norm the tolerance is expressed in.
    fmt:
        Chosen weight format.
    quant_bound:
        Predicted Eq. (3) quantization-only bound for ``fmt`` (QoI units).
    input_tolerance:
        Tolerance handed to the compressor, in the same norm applied to
        the *input*: pointwise for ``linf``, per-sample L2 for ``l2``.
    compression_budget:
        QoI-level budget left for compression after quantization.
    """

    qoi_tolerance: float
    norm: str
    fmt: NumericFormat
    quant_bound: float
    input_tolerance: float
    compression_budget: float
    quant_fraction: float
    metadata: dict = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"tol={self.qoi_tolerance:.2e} ({self.norm}) -> format={self.fmt.name} "
            f"(bound {self.quant_bound:.2e}), input tol {self.input_tolerance:.2e}"
        )


class TolerancePlanner:
    """Allocates a QoI tolerance across quantization and compression.

    Parameters
    ----------
    analyzer:
        Error-flow analyzer of the trained model.
    format_ranking:
        Candidate format names, fastest first.  The planner picks the
        first whose predicted bound fits the quantization allocation.
    """

    def __init__(
        self,
        analyzer: ErrorFlowAnalyzer,
        format_ranking: tuple[str, ...] = DEFAULT_FORMAT_RANKING,
    ) -> None:
        self.analyzer = analyzer
        self.formats: list[NumericFormat] = [
            STANDARD_FORMATS[name] for name in format_ranking
        ]

    def _quant_bound(self, fmt: NumericFormat, norm: str) -> float:
        bound_l2 = self.analyzer.quantization_bound(fmt)
        # ||.||_inf <= ||.||_2: the L2 bound also bounds the Linf error.
        return bound_l2

    def plan(
        self,
        qoi_tolerance: float,
        norm: str = "linf",
        quant_fraction: float = 0.5,
    ) -> InferencePlan:
        """Produce a plan for one total tolerance and allocation fraction.

        Raises
        ------
        PlanningError
            If the tolerance is non-positive or the fraction invalid.
        """
        if qoi_tolerance <= 0:
            raise PlanningError(f"QoI tolerance must be positive, got {qoi_tolerance}")
        if not 0.0 <= quant_fraction <= 1.0:
            raise PlanningError(f"quant_fraction must be in [0, 1], got {quant_fraction}")
        if norm not in ("linf", "l2"):
            raise PlanningError(f"norm must be 'linf' or 'l2', got {norm!r}")

        quant_allocation = qoi_tolerance * quant_fraction
        chosen = FP32
        chosen_bound = 0.0
        for fmt in self.formats:
            bound = 0.0 if fmt.is_identity else self._quant_bound(fmt, norm)
            if bound <= quant_allocation:
                chosen, chosen_bound = fmt, bound
                break
        # FP32 always fits (zero quantization error).

        compression_budget = qoi_tolerance - chosen_bound
        try:
            # The inversion subtracts the chosen format's own bound from
            # the *total* tolerance, so everything quantization left over
            # flows to compression (paper Section IV-D: "all unutilized
            # tolerance are allocated for data reduction").
            input_l2 = self.analyzer.invert_compression_tolerance(
                qoi_tolerance, chosen if not chosen.is_identity else None
            )
        except ToleranceError as exc:  # pragma: no cover - fits by construction
            raise PlanningError(str(exc)) from exc
        if norm == "linf":
            # Pointwise input tolerance: ||dx||_2 <= sqrt(n0) * ||dx||_inf.
            input_tolerance = input_l2 / np.sqrt(self.analyzer.n_input)
        else:
            input_tolerance = input_l2
        return InferencePlan(
            qoi_tolerance=float(qoi_tolerance),
            norm=norm,
            fmt=chosen,
            quant_bound=chosen_bound,
            input_tolerance=float(input_tolerance),
            compression_budget=float(compression_budget),
            quant_fraction=float(quant_fraction),
        )

    def plan_sweep(
        self,
        tolerances: list[float],
        norm: str = "linf",
        quant_fraction: float = 0.5,
    ) -> list[InferencePlan]:
        """Plans across a tolerance sweep (one per figure x-axis point)."""
        return [self.plan(tol, norm=norm, quant_fraction=quant_fraction) for tol in tolerances]

    def auto_plan(
        self,
        qoi_tolerance: float,
        throughput_model,
        norm: str = "linf",
        fractions: np.ndarray | None = None,
    ) -> InferencePlan:
        """Search the allocation fraction for maximum predicted throughput.

        Parameters
        ----------
        throughput_model:
            Callable ``(plan) -> float`` returning predicted end-to-end
            throughput; typically built from
            :mod:`repro.perf` (I/O and execution models).
        fractions:
            Candidate quantization fractions (default 0.05..0.95).

        Returns
        -------
        InferencePlan
            The plan with the highest predicted throughput; its metadata
            records the full search trace.
        """
        if fractions is None:
            fractions = np.linspace(0.05, 0.95, 19)
        best_plan: InferencePlan | None = None
        best_throughput = -np.inf
        trace = []
        for fraction in fractions:
            plan = self.plan(qoi_tolerance, norm=norm, quant_fraction=float(fraction))
            throughput = float(throughput_model(plan))
            trace.append((float(fraction), plan.fmt.name, throughput))
            if throughput > best_throughput:
                best_plan, best_throughput = plan, throughput
        assert best_plan is not None
        best_plan.metadata["search_trace"] = trace
        best_plan.metadata["predicted_throughput"] = best_throughput
        return best_plan
