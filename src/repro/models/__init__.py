"""Model builders: task surrogates (paper Section IV-A) and the zoo."""

from .mlp import (
    borghesi_net,
    build_mlp,
    h2_reaction_net,
    mlp_flops,
    mlp_large,
    mlp_medium,
    mlp_small,
)
from .registry import MODEL_REGISTRY, ZOO_INPUT_SHAPES, build_model
from .resnet import conv_flops, model_flops, resnet, resnet18
from .unet import UNet, UNetLevel, unet

__all__ = [
    "MODEL_REGISTRY",
    "ZOO_INPUT_SHAPES",
    "borghesi_net",
    "build_mlp",
    "build_model",
    "conv_flops",
    "h2_reaction_net",
    "mlp_flops",
    "mlp_large",
    "mlp_medium",
    "mlp_small",
    "model_flops",
    "resnet",
    "resnet18",
    "UNet",
    "UNetLevel",
    "unet",
]
