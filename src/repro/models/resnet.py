"""ResNet builders for 10-class classification.

Two families, both built from :class:`~repro.nn.residual.BasicBlock`:

* :func:`resnet` — CIFAR-style residual networks of depth ``6n + 2``
  (resnet8/14/20/...), the "varying depths" zoo of Figs. 2 and 9.  The
  paper benchmarks torch ResNets at 224x224 on GPUs; on the numpy
  substrate we keep the identical topology at 32x32 inputs, which
  preserves the depth-vs-throughput shape the figures show.
* :func:`resnet18` — the ImageNet-style [2, 2, 2, 2] basic-block network
  the paper trains on EuroSAT, with a 3x3 stem (no max-pool) suited to
  small multispectral tiles and optional parameterized spectral
  normalization.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.activations import ReLU
from ..nn.conv import Conv2d, SpectralConv2d
from ..nn.linear import Linear, SpectralLinear
from ..nn.normalization import BatchNorm2d
from ..nn.pooling import GlobalAvgPool2d
from ..nn.residual import BasicBlock
from ..nn.sequential import Sequential

__all__ = ["resnet", "resnet18", "conv_flops", "model_flops"]


def _stage(
    in_channels: int,
    out_channels: int,
    n_blocks: int,
    stride: int,
    rng: np.random.Generator,
    spectral: bool,
    alpha_init: float | None = None,
) -> list[BasicBlock]:
    blocks = [
        BasicBlock(
            in_channels, out_channels, stride=stride, rng=rng, spectral=spectral,
            alpha_init=alpha_init,
        )
    ]
    for __ in range(n_blocks - 1):
        blocks.append(
            BasicBlock(
                out_channels, out_channels, stride=1, rng=rng, spectral=spectral,
                alpha_init=alpha_init,
            )
        )
    return blocks


def resnet(
    depth: int,
    in_channels: int = 3,
    num_classes: int = 10,
    base_width: int = 16,
    rng: np.random.Generator | None = None,
    spectral: bool = False,
) -> Sequential:
    """CIFAR-style ResNet of depth ``6n + 2`` (8, 14, 20, 26, ...).

    Three stages at widths ``base_width * (1, 2, 4)`` with ``n`` basic
    blocks each, global average pooling and a dense classifier.
    """
    if (depth - 2) % 6 != 0 or depth < 8:
        raise ConfigurationError(f"CIFAR ResNet depth must be 6n+2 >= 8, got {depth}")
    n = (depth - 2) // 6
    if rng is None:
        rng = np.random.default_rng(0)
    conv_cls = SpectralConv2d if spectral else Conv2d
    linear_cls = SpectralLinear if spectral else Linear
    widths = (base_width, base_width * 2, base_width * 4)
    layers: list = [
        conv_cls(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng),
        BatchNorm2d(widths[0]),
        ReLU(),
    ]
    layers += _stage(widths[0], widths[0], n, 1, rng, spectral)
    layers += _stage(widths[0], widths[1], n, 2, rng, spectral)
    layers += _stage(widths[1], widths[2], n, 2, rng, spectral)
    layers += [GlobalAvgPool2d(), linear_cls(widths[2], num_classes, rng=rng)]
    return Sequential(*layers)


def resnet18(
    in_channels: int = 13,
    num_classes: int = 10,
    base_width: int = 32,
    rng: np.random.Generator | None = None,
    spectral: bool = True,
    alpha_init: float | None = 1.0,
) -> Sequential:
    """ImageNet-topology ResNet18 ([2, 2, 2, 2] basic blocks).

    ``base_width=32`` (instead of torch's 64) keeps numpy training
    tractable; pass 64 for the full-width network.  The paper trains this
    with parameterized spectral normalization on EuroSAT; ``alpha_init``
    starts every PSN conv at a unit Lipschitz budget so the per-block
    gain ``1 + prod sigma`` stays small.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    widths = (base_width, base_width * 2, base_width * 4, base_width * 8)
    if spectral:
        # PSN replaces batch norm throughout (paper Section III-C).
        stem: list = [
            SpectralConv2d(
                in_channels, widths[0], 3, stride=1, padding=1, bias=True, rng=rng,
                alpha_init=alpha_init,
            ),
            ReLU(),
        ]
        head = SpectralLinear(widths[3], num_classes, rng=rng, alpha_init=None)
    else:
        stem = [
            Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng),
            BatchNorm2d(widths[0]),
            ReLU(),
        ]
        head = Linear(widths[3], num_classes, rng=rng)
    layers: list = list(stem)
    layers += _stage(widths[0], widths[0], 2, 1, rng, spectral, alpha_init)
    layers += _stage(widths[0], widths[1], 2, 2, rng, spectral, alpha_init)
    layers += _stage(widths[1], widths[2], 2, 2, rng, spectral, alpha_init)
    layers += _stage(widths[2], widths[3], 2, 2, rng, spectral, alpha_init)
    layers += [GlobalAvgPool2d(), head]
    return Sequential(*layers)


def conv_flops(layer: Conv2d, spatial: tuple[int, int]) -> tuple[int, tuple[int, int]]:
    """Multiply-accumulate FLOPs of one conv and its output spatial size."""
    h, w = spatial
    out_h = (h + 2 * layer.padding - layer.kernel_size) // layer.stride + 1
    out_w = (w + 2 * layer.padding - layer.kernel_size) // layer.stride + 1
    flops = (
        2
        * layer.in_channels
        * layer.kernel_size**2
        * layer.out_channels
        * out_h
        * out_w
    )
    return int(flops), (out_h, out_w)


def model_flops(model, input_shape: tuple[int, ...]) -> int:
    """FLOPs per sample via a shape-tracking traversal.

    Supports the containers and leaves used by the builders in this
    package (convs, linears, pooling, residual blocks).
    """
    from ..nn.pooling import AvgPool2d, Flatten, MaxPool2d
    from ..nn.residual import ResidualBlock

    def walk(module, shape) -> tuple[int, tuple[int, ...]]:
        total = 0
        if isinstance(module, Sequential):
            for child in module:
                flops, shape = walk(child, shape)
                total += flops
            return total, shape
        if isinstance(module, ResidualBlock):
            body_flops, out_shape = walk(module.body, shape)
            total += body_flops
            if module.shortcut is not None:
                skip_flops, __ = walk(module.shortcut, shape)
                total += skip_flops
            return total, out_shape
        if isinstance(module, (Conv2d, SpectralConv2d)):
            flops, spatial = conv_flops(module, shape[1:])
            return flops, (module.out_channels,) + spatial
        if isinstance(module, (Linear, SpectralLinear)):
            return 2 * module.in_features * module.out_features, (module.out_features,)
        if isinstance(module, GlobalAvgPool2d):
            return int(np.prod(shape)), (shape[0],)
        if isinstance(module, (MaxPool2d, AvgPool2d)):
            h, w = shape[1:]
            out_h = (h + 2 * module.padding - module.kernel_size) // module.stride + 1
            out_w = (w + 2 * module.padding - module.kernel_size) // module.stride + 1
            return int(np.prod(shape)), (shape[0], out_h, out_w)
        if isinstance(module, Flatten):
            return 0, (int(np.prod(shape)),)
        # activations / batch norm: one op per element
        return int(np.prod(shape)), shape

    total, __ = walk(model, input_shape)
    return total
