"""Named model registry for the benchmark zoo (Figs. 2 and 9)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn.sequential import Sequential
from .mlp import borghesi_net, h2_reaction_net, mlp_large, mlp_medium, mlp_small
from .resnet import resnet, resnet18

__all__ = ["MODEL_REGISTRY", "ZOO_INPUT_SHAPES", "build_model"]

MODEL_REGISTRY: dict[str, Callable[..., Sequential]] = {
    "h2_reaction_net": h2_reaction_net,
    "borghesi_net": borghesi_net,
    "resnet18": resnet18,
    "resnet8": lambda rng=None, **kw: resnet(8, rng=rng, **kw),
    "resnet14": lambda rng=None, **kw: resnet(14, rng=rng, **kw),
    "resnet20": lambda rng=None, **kw: resnet(20, rng=rng, **kw),
    "resnet26": lambda rng=None, **kw: resnet(26, rng=rng, **kw),
    "mlp_s": mlp_small,
    "mlp_m": mlp_medium,
    "mlp_l": mlp_large,
}

#: Per-sample input shapes for throughput benchmarking.
ZOO_INPUT_SHAPES: dict[str, tuple[int, ...]] = {
    "h2_reaction_net": (9,),
    "borghesi_net": (13,),
    "resnet18": (13, 32, 32),
    "resnet8": (3, 32, 32),
    "resnet14": (3, 32, 32),
    "resnet20": (3, 32, 32),
    "resnet26": (3, 32, 32),
    "mlp_s": (256,),
    "mlp_m": (512,),
    "mlp_l": (1024,),
}


def build_model(name: str, rng: np.random.Generator | None = None, **kwargs) -> Sequential:
    """Instantiate a registered model by name."""
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise ValueError(f"unknown model {name!r}; known: {known}") from None
    return builder(rng=rng, **kwargs)
