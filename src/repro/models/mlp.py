"""MLP builders: task surrogates and the throughput zoo.

* :func:`h2_reaction_net` — the paper's compact 2-hidden-layer, 50-neuron
  Tanh network computing 9-species reaction rates (Section I, IV-A.1).
* :func:`borghesi_net` — the 8-hidden-layer MLP producing the three
  filtered dissipation rates (Section IV-A.2).
* :func:`mlp_small` / :func:`mlp_medium` / :func:`mlp_large` — the
  mlp_s / mlp_m / mlp_l models of Figs. 2 and 9 at 0.5M / 4.2M / 33.7M
  FLOPs per sample.
"""

from __future__ import annotations

import numpy as np

from ..nn.activations import Identity, make_activation
from ..nn.linear import Linear, SpectralLinear
from ..nn.sequential import Sequential

__all__ = [
    "build_mlp",
    "h2_reaction_net",
    "borghesi_net",
    "mlp_small",
    "mlp_medium",
    "mlp_large",
    "mlp_flops",
]


def build_mlp(
    in_features: int,
    hidden: list[int],
    out_features: int,
    activation: str = "relu",
    spectral: bool = True,
    rng: np.random.Generator | None = None,
    weight_init: str | None = None,
    alpha_init: float | None = None,
) -> Sequential:
    """Fully connected network with one activation between linear layers.

    Parameters
    ----------
    in_features, hidden, out_features:
        Layer widths; ``hidden`` may be empty for a single linear map.
    activation:
        Registry name (``relu``, ``tanh``, ``prelu``, ...).
    spectral:
        Use :class:`SpectralLinear` (parameterized spectral normalization,
        the paper's training recipe) instead of plain :class:`Linear`.
    weight_init:
        Initializer override; defaults to Xavier for tanh/sigmoid and
        Kaiming otherwise.
    alpha_init:
        Starting spectral norm per PSN layer.  Values slightly above 1
        start the network with a small Lipschitz budget, letting the
        spectral penalty keep the Eq. (3) gain tight while training grows
        only the norms the task actually needs.  ``None`` starts at the
        raw initialization's own spectral norm.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if weight_init is None:
        weight_init = (
            "xavier_uniform" if activation in ("tanh", "sigmoid") else "kaiming_uniform"
        )
    widths = [in_features] + list(hidden) + [out_features]
    layers = []
    for index in range(len(widths) - 1):
        if spectral:
            layer = SpectralLinear(
                widths[index],
                widths[index + 1],
                rng=rng,
                weight_init=weight_init,
                alpha_init=alpha_init,
            )
        else:
            layer = Linear(widths[index], widths[index + 1], rng=rng, weight_init=weight_init)
        layers.append(layer)
        if index < len(widths) - 2:
            layers.append(make_activation(activation))
        else:
            layers.append(Identity())
    return Sequential(*layers)


def h2_reaction_net(
    rng: np.random.Generator | None = None, spectral: bool = True
) -> Sequential:
    """9 mass fractions -> 9 reaction rates; 2 hidden layers of 50, Tanh."""
    return build_mlp(
        9, [50, 50], 9, activation="tanh", spectral=spectral, rng=rng, alpha_init=1.2
    )


def borghesi_net(
    rng: np.random.Generator | None = None,
    spectral: bool = True,
    width: int = 64,
    activation: str = "prelu",
) -> Sequential:
    """13 thermochemical inputs -> 3 dissipation rates; 8 hidden layers."""
    return build_mlp(
        13,
        [width] * 8,
        3,
        activation=activation,
        spectral=spectral,
        rng=rng,
        alpha_init=1.3,
    )


def mlp_flops(widths: list[int]) -> int:
    """Multiply-accumulate FLOPs per sample for a dense stack."""
    return int(sum(2 * a * b for a, b in zip(widths[:-1], widths[1:])))


def mlp_small(rng: np.random.Generator | None = None, spectral: bool = False) -> Sequential:
    """mlp_s of Figs. 2/9: ~0.5M FLOPs per sample."""
    return build_mlp(256, [512, 256], 10, activation="relu", spectral=spectral, rng=rng)


def mlp_medium(rng: np.random.Generator | None = None, spectral: bool = False) -> Sequential:
    """mlp_m of Figs. 2/9: ~4.2M FLOPs per sample."""
    return build_mlp(
        512, [1024, 1024, 512], 10, activation="relu", spectral=spectral, rng=rng
    )


def mlp_large(rng: np.random.Generator | None = None, spectral: bool = False) -> Sequential:
    """mlp_l of Figs. 2/9: ~33.7M FLOPs per sample."""
    return build_mlp(
        1024,
        [2048, 2048, 2048, 2048, 1024],
        10,
        activation="relu",
        spectral=spectral,
        rng=rng,
    )
