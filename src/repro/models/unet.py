"""U-Net surrogates — the paper's Section VI extension.

"Scientific community is increasingly deploying more complex surrogate
models, such as U-Nets ... Adapting our approach to these architectures
requires deriving the corresponding error-flow equations for their unique
components, such as nested residual connections."

This module implements both halves of that sentence for U-Nets:

* :class:`UNet` — a recursive encoder/decoder with skip *concatenations*
  built entirely from this library's conv substrate;
* error-flow support — each :class:`UNetLevel` exposes an
  ``error_flow_spec`` hook consumed by
  :func:`repro.core.graph.extract_spec`.  A concat skip obeys
  ``||Delta [a; b]|| <= ||Delta a|| + ||Delta b||``, so it maps onto the
  residual-join algebra the bound already knows, with the x2 L2 gain of
  nearest-neighbour upsampling folded into the inner branch.
"""

from __future__ import annotations

import numpy as np

from ..nn.activations import Identity, ReLU
from ..nn.conv import Conv2d, SpectralConv2d
from ..nn.module import Module
from ..nn.pooling import AvgPool2d
from ..nn.sequential import Sequential
from ..nn.upsample import ConcatChannels, Upsample2d

__all__ = ["UNetLevel", "UNet", "unet"]


def _conv(
    c_in: int, c_out: int, spectral: bool, rng, alpha_init: float | None
) -> Module:
    if spectral:
        return SpectralConv2d(
            c_in, c_out, 3, padding=1, bias=True, rng=rng, alpha_init=alpha_init
        )
    return Conv2d(c_in, c_out, 3, padding=1, bias=True, rng=rng)


class UNetLevel(Module):
    """One encoder/decoder level: down-conv, inner recursion, fuse-conv.

    ``forward``: ``d = down(x); u = up(inner(pool(d))); fuse([d; u])``.
    The skip carries ``d`` unchanged — the nested residual connection of
    Section VI.
    """

    def __init__(
        self,
        in_channels: int,
        channels: int,
        inner: Module,
        inner_channels: int,
        rng: np.random.Generator,
        spectral: bool,
        alpha_init: float | None,
    ) -> None:
        super().__init__()
        self.down = Sequential(
            _conv(in_channels, channels, spectral, rng, alpha_init), ReLU()
        )
        self.pool = AvgPool2d(2)
        self.inner = inner
        self.upsample = Upsample2d(2)
        self.fuse = Sequential(
            _conv(channels + inner_channels, channels, spectral, rng, alpha_init),
            ReLU(),
        )
        self.concat = ConcatChannels()
        self.out_channels = channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        skip = self.down(x)
        inner_out = self.inner(self.pool(skip))
        upsampled = self.upsample(inner_out)
        return self.fuse(self.concat(skip, upsampled))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_concat = self.fuse.backward(grad_output)
        grad_skip_direct, grad_up = self.concat.backward(grad_concat)
        grad_inner = self.upsample.backward(grad_up)
        grad_pooled = self.inner.backward(grad_inner)
        grad_skip_pool = self.pool.backward(grad_pooled)
        return self.down.backward(grad_skip_direct + grad_skip_pool)

    def calibration_walk(self, walk, x: np.ndarray, norms: list) -> np.ndarray:
        """Signal-norm traversal mirroring :meth:`error_flow_spec` order."""
        skip = walk(self.down, x, norms)
        inner_out = walk(self.inner, self.pool(skip), norms)
        upsampled = self.upsample(inner_out)
        return walk(self.fuse, self.concat(skip, upsampled), norms)

    # -- error-flow extension hook (consumed by repro.core.graph) ---------
    def error_flow_spec(self, extract_chain, prefix: str):
        """Spec for the bound: down -> concat-join(inner path) -> fuse.

        The concat join is additive in L2 (like a residual with identity
        shortcut); the inner branch carries the pool (1-Lipschitz) and
        the x2 upsample gain.
        """
        from ..core.graph import ChainSpec, ResidualSpec

        down = extract_chain(self.down, f"{prefix}.down.")
        if isinstance(self.inner, UNetLevel):
            inner_items = [self.inner.error_flow_spec(extract_chain, f"{prefix}.inner")]
        else:
            inner_items = extract_chain(self.inner, f"{prefix}.inner.").items
        inner_chain = ChainSpec(items=inner_items)
        # fold the upsample's L2 gain into the last linear of the branch
        branch_linears = inner_chain.linear_specs()
        if branch_linears:
            branch_linears[-1].lipschitz_after *= self.upsample.l2_gain
        join = ResidualSpec(body=inner_chain, shortcut=None)
        fuse = extract_chain(self.fuse, f"{prefix}.fuse.")
        return ChainSpec(items=down.items + [join] + fuse.items)


class UNet(Sequential):
    """Recursive U-Net ending in a 1x1 projection head."""


def unet(
    in_channels: int = 1,
    out_channels: int = 1,
    base_width: int = 8,
    depth: int = 2,
    rng: np.random.Generator | None = None,
    spectral: bool = True,
    alpha_init: float | None = 1.0,
) -> UNet:
    """Build a U-Net of the given depth.

    Parameters
    ----------
    in_channels, out_channels:
        Input/output channel counts (e.g. 1 -> 1 for field denoising).
    base_width:
        Channels of the outermost level; each inner level doubles it.
    depth:
        Number of encoder/decoder levels (input spatial size must be
        divisible by ``2**depth``).
    spectral:
        Use PSN convolutions so the error-flow bound stays tight.
    """
    if rng is None:
        rng = np.random.default_rng(0)

    def build_level(level: int, c_in: int) -> tuple[Module, int]:
        channels = base_width * 2**level
        if level == depth:
            bottleneck = Sequential(
                _conv(c_in, channels, spectral, rng, alpha_init), ReLU()
            )
            return bottleneck, channels
        inner, inner_channels = build_level(level + 1, channels)
        block = UNetLevel(
            c_in, channels, inner, inner_channels, rng, spectral, alpha_init
        )
        return block, block.out_channels

    body, body_channels = build_level(0, in_channels)
    if spectral:
        head: Module = SpectralConv2d(
            body_channels, out_channels, 1, bias=True, rng=rng, alpha_init=alpha_init
        )
    else:
        head = Conv2d(body_channels, out_channels, 1, bias=True, rng=rng)
    return UNet(body, head, Identity())
