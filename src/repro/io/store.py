"""A tiny error-bounded array store.

Models the persistent-storage side of the paper's pipeline (Fig. 1):
simulation output lands on disk compressed under an error contract, and
the analysis stage reads it back, paying decompression instead of raw
bandwidth.  Each array becomes one ``<name>.rblob`` file written
atomically; codecs are resolved from the blob itself on read.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from ..compress import CompressedBlob, Compressor, ErrorBoundMode, get_compressor
from ..exceptions import CompressionError
from .serialization import blob_from_bytes, blob_to_bytes

__all__ = ["DatasetStore"]

_SUFFIX = ".rblob"


class DatasetStore:
    """Directory of compressed arrays with per-array error contracts.

    Parameters
    ----------
    directory:
        Storage root; created if missing.
    default_codec:
        Codec used by :meth:`put` when none is given.
    """

    def __init__(self, directory: str, default_codec: str = "sz") -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.default_codec = default_codec

    def _path(self, name: str) -> str:
        if not name or "/" in name or name.startswith("."):
            raise CompressionError(f"invalid array name {name!r}")
        return os.path.join(self.directory, name + _SUFFIX)

    # -- write -------------------------------------------------------------
    def put(
        self,
        name: str,
        array: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
        codec: Compressor | str | None = None,
    ) -> CompressedBlob:
        """Compress and persist ``array`` under the given error contract.

        The file write is atomic (temp file + rename), so a crashed
        writer can never leave a torn blob behind.
        """
        if isinstance(codec, str) or codec is None:
            codec = get_compressor(codec or self.default_codec)
        blob = codec.compress(np.asarray(array), tolerance, mode)
        payload = blob_to_bytes(blob)
        fd, temp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, self._path(name))
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return blob

    # -- read --------------------------------------------------------------
    def get(self, name: str) -> np.ndarray:
        """Load and decompress one array."""
        blob = self.get_blob(name)
        codec = get_compressor(blob.codec)
        return codec.decompress(blob)

    def get_blob(self, name: str) -> CompressedBlob:
        """Load the raw blob without decompressing."""
        path = self._path(name)
        if not os.path.exists(path):
            raise CompressionError(f"array {name!r} not found in {self.directory}")
        with open(path, "rb") as handle:
            return blob_from_bytes(handle.read())

    # -- management ----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def names(self) -> list[str]:
        """Stored array names, sorted."""
        return sorted(
            entry[: -len(_SUFFIX)]
            for entry in os.listdir(self.directory)
            if entry.endswith(_SUFFIX)
        )

    def delete(self, name: str) -> None:
        path = self._path(name)
        if os.path.exists(path):
            os.unlink(path)

    def stored_bytes(self, name: str) -> int:
        """On-disk size of one entry."""
        return os.path.getsize(self._path(name))

    def summary(self) -> list[tuple[str, str, tuple[int, ...], float, float]]:
        """(name, codec, shape, tolerance, compression ratio) per entry."""
        rows = []
        for name in self.names():
            blob = self.get_blob(name)
            rows.append(
                (name, blob.codec, blob.shape, blob.tolerance, blob.compression_ratio)
            )
        return rows
