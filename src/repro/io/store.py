"""A tiny error-bounded array store with integrity verification.

Models the persistent-storage side of the paper's pipeline (Fig. 1):
simulation output lands on disk compressed under an error contract, and
the analysis stage reads it back, paying decompression instead of raw
bandwidth.  Each array becomes one ``<name>.rblob`` file written
atomically; codecs are resolved from the blob itself on read.

Every read is verified: the v2 wire format carries a CRC32 over
header+payload, decompressed arrays are screened for NaN/Inf, and a
configurable ``on_corruption`` policy decides what happens when
verification fails — ``raise`` the typed error, ``recompress-from-source``
under the original contract, or ``fallback-lossless`` (store the source
uncompressed, trivially inside any tolerance).  Recovery needs a source:
either keep one at :meth:`put` time (``keep_source=True``) or register a
provider with :meth:`attach_source`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..compress import CompressedBlob, Compressor, ErrorBoundMode, get_compressor
from ..exceptions import CompressionError, IntegrityError
from ..obs import get_tracer
from ..resilience.policy import (
    CorruptionPolicy,
    record_recovery,
    record_retry,
    resolve_policy,
)
from .serialization import blob_from_bytes, blob_to_bytes

__all__ = ["DatasetStore"]

_SUFFIX = ".rblob"
_FORBIDDEN_FRAGMENTS = ("/", "\\", "..")


@dataclass
class _Contract:
    """The compression contract one entry was written under."""

    tolerance: float
    mode: ErrorBoundMode
    codec: str


class DatasetStore:
    """Directory of compressed arrays with per-array error contracts.

    Parameters
    ----------
    directory:
        Storage root; created if missing.
    default_codec:
        Codec used by :meth:`put` when none is given.
    on_corruption:
        Degradation policy applied when a read fails verification:
        ``"raise"`` (default), ``"recompress-from-source"`` or
        ``"fallback-lossless"``.
    max_retries:
        Recovery attempts per read before the original error propagates.
    """

    def __init__(
        self,
        directory: str,
        default_codec: str = "sz",
        on_corruption: "CorruptionPolicy | str" = CorruptionPolicy.RAISE,
        max_retries: int = 2,
    ) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.default_codec = default_codec
        self.on_corruption = resolve_policy(on_corruption)
        self.max_retries = int(max_retries)
        self._sources: dict[str, Callable[[], np.ndarray]] = {}
        self._contracts: dict[str, _Contract] = {}

    def _path(self, name: str) -> str:
        bad = (
            not name
            or name.startswith(".")
            or any(fragment in name for fragment in _FORBIDDEN_FRAGMENTS)
            or os.sep in name
            or (os.altsep is not None and os.altsep in name)
        )
        if bad:
            raise CompressionError(f"invalid array name {name!r}")
        return os.path.join(self.directory, name + _SUFFIX)

    # -- write -------------------------------------------------------------
    def put(
        self,
        name: str,
        array: np.ndarray,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
        codec: Compressor | str | None = None,
        keep_source: bool = False,
    ) -> CompressedBlob:
        """Compress and persist ``array`` under the given error contract.

        The file write is atomic (temp file + rename), so a crashed
        writer can never leave a torn blob behind.  With
        ``keep_source=True`` the store retains the (uncompressed) array
        in memory so recovery policies can repair this entry later.
        """
        path = self._path(name)  # validate before compressing
        if isinstance(codec, str) or codec is None:
            codec = get_compressor(codec or self.default_codec)
        array = np.asarray(array)
        with get_tracer().span(
            "store.put", entry=name, codec=codec.name, tolerance=float(tolerance)
        ) as span:
            blob = codec.compress(array, tolerance, mode)
            self._write_blob(path, blob)
            span.set(compression_ratio=blob.compression_ratio, payload_bytes=blob.nbytes)
        self._contracts[name] = _Contract(float(tolerance), mode, codec.name)
        if keep_source:
            frozen = array.copy()
            frozen.setflags(write=False)
            self._sources[name] = lambda: frozen
        return blob

    def _write_blob(self, path: str, blob: CompressedBlob) -> None:
        payload = blob_to_bytes(blob)
        fd, temp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def attach_source(self, name: str, provider: Callable[[], np.ndarray]) -> None:
        """Register a zero-argument callable reproducing ``name``'s data.

        Recovery policies call it when the stored blob fails
        verification — e.g. a loader that re-reads simulation output.
        """
        self._path(name)  # validate the name
        self._sources[name] = provider

    # -- read --------------------------------------------------------------
    def get(self, name: str, screen: bool = True) -> np.ndarray:
        """Load, verify and decompress one array.

        Checksum verification happens in :func:`blob_from_bytes`; the
        reconstruction is screened for NaN/Inf unless ``screen=False``.
        On verification failure the configured ``on_corruption`` policy
        runs, bounded by ``max_retries``.
        """
        failure: CompressionError | None = None
        with get_tracer().span("store.get", entry=name, policy=self.on_corruption.value) as span:
            for attempt in range(self.max_retries + 1):
                try:
                    blob = self.get_blob(name)
                    codec = get_compressor(blob.codec)
                    data = codec.safe_decompress(blob, screen=screen)
                    span.set(attempts=attempt + 1, recovered=attempt > 0)
                    if attempt:
                        record_recovery(self.on_corruption, "store")
                    return data
                except IntegrityError as exc:
                    failure = exc
                except CompressionError as exc:
                    if not os.path.exists(self._path(name)):
                        raise  # missing entry: not a corruption event
                    failure = exc
                if self.on_corruption is CorruptionPolicy.RAISE or attempt >= self.max_retries:
                    break
                record_retry("store")
                if not self._repair(name):
                    break
        assert failure is not None
        if self.on_corruption.recovers:
            raise IntegrityError(
                f"array {name!r} failed verification and could not be "
                f"recovered under policy {self.on_corruption.value!r} "
                f"(source attached: {name in self._sources}): {failure}"
            ) from failure
        raise failure

    def _repair(self, name: str) -> bool:
        """Rewrite a corrupt entry from its source; False if impossible."""
        provider = self._sources.get(name)
        contract = self._contracts.get(name)
        if provider is None:
            return False
        if contract is None:
            # Last resort: the on-disk header may still be readable even
            # if the payload is corrupt — recover the contract from it.
            try:
                blob = self.get_blob(name)
                contract = _Contract(blob.tolerance, blob.mode, blob.codec)
            except CompressionError:
                return False
        array = np.asarray(provider())
        codec = get_compressor(contract.codec)
        if self.on_corruption is CorruptionPolicy.FALLBACK_LOSSLESS:
            blob = CompressedBlob(
                codec=contract.codec,
                payload=np.ascontiguousarray(array).tobytes(),
                shape=array.shape,
                dtype=str(array.dtype),
                mode=contract.mode,
                tolerance=contract.tolerance,
                metadata={"lossless": True, "degraded": True},
            )
        else:  # RECOMPRESS
            blob = codec.compress(array, contract.tolerance, contract.mode)
        self._write_blob(self._path(name), blob)
        self._contracts[name] = contract
        return True

    def get_blob(self, name: str) -> CompressedBlob:
        """Load the raw blob without decompressing (checksum-verified)."""
        path = self._path(name)
        if not os.path.exists(path):
            raise CompressionError(f"array {name!r} not found in {self.directory}")
        with open(path, "rb") as handle:
            return blob_from_bytes(handle.read())

    def verify(self, name: str) -> bool:
        """True if the stored entry passes checksum + structural checks."""
        try:
            self.get_blob(name).validate()
            return True
        except CompressionError:
            return False

    # -- management ----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def names(self) -> list[str]:
        """Stored array names, sorted."""
        return sorted(
            entry[: -len(_SUFFIX)]
            for entry in os.listdir(self.directory)
            if entry.endswith(_SUFFIX)
        )

    def delete(self, name: str) -> None:
        path = self._path(name)
        if os.path.exists(path):
            os.unlink(path)
        self._sources.pop(name, None)
        self._contracts.pop(name, None)

    def stored_bytes(self, name: str) -> int:
        """On-disk size of one entry."""
        return os.path.getsize(self._path(name))

    def summary(self) -> list[tuple[str, str, tuple[int, ...], float, float]]:
        """(name, codec, shape, tolerance, compression ratio) per entry."""
        rows = []
        for name in self.names():
            blob = self.get_blob(name)
            rows.append(
                (name, blob.codec, blob.shape, blob.tolerance, blob.compression_ratio)
            )
        return rows
