"""On-disk serialization of compressed blobs.

A :class:`~repro.compress.base.CompressedBlob` becomes a self-contained
byte string: magic, JSON header (codec, shape, dtype, mode, tolerance,
metadata) and the raw payload.  Everything a decoder needs travels inside
the file, so blobs written by one process decode anywhere.
"""

from __future__ import annotations

import json
import struct

from ..compress.base import CompressedBlob, ErrorBoundMode
from ..exceptions import CompressionError

__all__ = ["blob_to_bytes", "blob_from_bytes"]

_MAGIC = b"RBLB"
_VERSION = 1


def _jsonable_metadata(metadata: dict) -> dict:
    """Keep only JSON-representable metadata entries."""
    out = {}
    for key, value in metadata.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, tuple) and all(isinstance(v, int) for v in value):
            out[key] = list(value)
    return out


def blob_to_bytes(blob: CompressedBlob) -> bytes:
    """Serialize a blob into a self-contained byte string."""
    header = {
        "codec": blob.codec,
        "shape": list(blob.shape),
        "dtype": blob.dtype,
        "mode": blob.mode.value,
        "tolerance": blob.tolerance,
        "metadata": _jsonable_metadata(blob.metadata),
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return (
        _MAGIC
        + struct.pack("<HI", _VERSION, len(header_bytes))
        + header_bytes
        + blob.payload
    )


def blob_from_bytes(data: bytes) -> CompressedBlob:
    """Reconstruct a blob from :func:`blob_to_bytes` output."""
    if data[:4] != _MAGIC:
        raise CompressionError("not a repro blob (bad magic)")
    version, header_length = struct.unpack_from("<HI", data, 4)
    if version != _VERSION:
        raise CompressionError(f"unsupported blob version {version}")
    offset = 4 + struct.calcsize("<HI")
    try:
        header = json.loads(data[offset : offset + header_length].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CompressionError(f"corrupt blob header: {exc}") from exc
    metadata = header.get("metadata", {})
    if "padded_shape" in metadata:
        metadata["padded_shape"] = tuple(metadata["padded_shape"])
    return CompressedBlob(
        codec=header["codec"],
        payload=data[offset + header_length :],
        shape=tuple(header["shape"]),
        dtype=header["dtype"],
        mode=ErrorBoundMode(header["mode"]),
        tolerance=float(header["tolerance"]),
        metadata=metadata,
    )
