"""On-disk serialization of compressed blobs.

A :class:`~repro.compress.base.CompressedBlob` becomes a self-contained
byte string: magic, JSON header (codec, shape, dtype, mode, tolerance,
metadata) and the raw payload.  Everything a decoder needs travels inside
the file, so blobs written by one process decode anywhere.

Two wire versions exist:

* **v1** (legacy): ``RBLB | u16 version | u32 header_len | header | payload``.
  No integrity protection; still readable for backward compatibility.
* **v2** (default): ``RBLB | u16 version | u32 header_len | u32 crc32 |
  header | payload`` where the CRC32 covers ``header + payload``.  Any
  bit flip or truncation anywhere after the prelude is detected on read
  and surfaced as :class:`~repro.exceptions.IntegrityError` — corrupted
  bytes can never silently reach a codec.

Every malformed input raises a typed :class:`CompressionError` (or its
:class:`IntegrityError` subclass); ``struct.error``/``KeyError``/
``IndexError`` never escape this module.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from ..compress.base import CompressedBlob, ErrorBoundMode
from ..exceptions import CompressionError, IntegrityError

__all__ = [
    "blob_to_bytes",
    "blob_from_bytes",
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_json",
    "read_jsonl_records",
    "BLOB_MAGIC",
    "BLOB_VERSION",
]

_MAGIC = b"RBLB"
_VERSION = 2
_PRELUDE_V1 = struct.Struct("<HI")  # version, header length
_PRELUDE_V2 = struct.Struct("<HII")  # version, header length, crc32(header+payload)

#: public aliases (used by the fault-injection harness and docs)
BLOB_MAGIC = _MAGIC
BLOB_VERSION = _VERSION

_REQUIRED_HEADER_KEYS = ("codec", "shape", "dtype", "mode", "tolerance")


def _jsonable_metadata(metadata: dict) -> dict:
    """Keep only JSON-representable metadata entries."""
    out = {}
    for key, value in metadata.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, tuple) and all(isinstance(v, int) for v in value):
            out[key] = list(value)
    return out


def blob_to_bytes(blob: CompressedBlob, version: int = _VERSION) -> bytes:
    """Serialize a blob into a self-contained byte string.

    ``version=2`` (the default) embeds a CRC32 over header+payload so
    readers detect corruption; ``version=1`` writes the legacy
    unprotected layout (useful for compatibility testing).
    """
    header = {
        "codec": blob.codec,
        "shape": list(blob.shape),
        "dtype": blob.dtype,
        "mode": blob.mode.value,
        "tolerance": blob.tolerance,
        "metadata": _jsonable_metadata(blob.metadata),
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if version == 1:
        prelude = _PRELUDE_V1.pack(1, len(header_bytes))
    elif version == 2:
        crc = zlib.crc32(header_bytes)
        crc = zlib.crc32(blob.payload, crc)
        prelude = _PRELUDE_V2.pack(2, len(header_bytes), crc)
    else:
        raise CompressionError(f"cannot write blob version {version}")
    return _MAGIC + prelude + header_bytes + blob.payload


# -- atomic whole-file writes (manifests, checkpoints) ----------------------


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename).

    A reader never observes a half-written file: it sees either the old
    content or the new, which is what checkpoint manifests rely on when
    a run is killed mid-write.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp.{os.getpid()}")
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    try:
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        finally:
            raise


def atomic_write_json(path: str, payload: dict, default=None) -> None:
    """Atomically write ``payload`` as pretty-printed JSON."""
    text = json.dumps(payload, indent=2, sort_keys=True, default=default) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"))


# -- append-only JSONL (audit run registry) ---------------------------------


def append_jsonl(path: str, payload: dict, default=None) -> None:
    """Append one JSON object to ``path`` as a single atomic write.

    The record is serialized first, then written with one ``os.write`` on
    an ``O_APPEND`` descriptor: concurrent appenders (parallel chunked
    execution auditing per chunk) interleave whole lines, never bytes,
    and a crashed writer can at worst lose its own line — readers skip a
    torn trailing line rather than failing.  ``default`` is the
    ``json.dumps`` fallback converter for non-native values.
    """
    line = json.dumps(payload, sort_keys=True, default=default) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def read_jsonl_records(path: str) -> list[dict]:
    """Load every well-formed record from an append-only JSONL file.

    Blank lines are skipped; a malformed *final* line (a torn append from
    a crashed writer) is dropped silently, but corruption anywhere else
    raises :class:`IntegrityError` — that indicates real file damage, not
    an interrupted append.
    """
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    lines = [line for line in lines if line]
    records: list[dict] = []
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            if index == len(lines) - 1:
                break  # torn trailing append: recoverable by design
            raise IntegrityError(
                f"corrupt JSONL record at line {index + 1} of {path!r}: {exc}"
            ) from exc
    return records


def _parse_header(raw: bytes) -> dict:
    """Decode and validate the JSON header; typed errors only."""
    try:
        header = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CompressionError(f"corrupt blob header: {exc}") from exc
    if not isinstance(header, dict):
        raise CompressionError("corrupt blob header: not a JSON object")
    missing = [key for key in _REQUIRED_HEADER_KEYS if key not in header]
    if missing:
        raise CompressionError(f"blob header missing required keys {missing}")
    if not isinstance(header["shape"], list) or not all(
        isinstance(v, int) and v >= 0 for v in header["shape"]
    ):
        raise CompressionError(f"blob header has invalid shape {header['shape']!r}")
    try:
        header["mode"] = ErrorBoundMode(header["mode"])
    except ValueError as exc:
        raise CompressionError(f"blob header has unknown mode: {exc}") from exc
    try:
        header["tolerance"] = float(header["tolerance"])
    except (TypeError, ValueError) as exc:
        raise CompressionError(f"blob header has invalid tolerance: {exc}") from exc
    if not isinstance(header.get("codec"), str) or not isinstance(
        header.get("dtype"), str
    ):
        raise CompressionError("blob header codec/dtype must be strings")
    metadata = header.get("metadata", {})
    if not isinstance(metadata, dict):
        raise CompressionError("blob header metadata must be an object")
    header["metadata"] = metadata
    return header


def blob_from_bytes(data: bytes) -> CompressedBlob:
    """Reconstruct a blob from :func:`blob_to_bytes` output.

    Reads both wire versions; v2 blobs are checksum-verified and raise
    :class:`IntegrityError` on any mismatch.
    """
    data = bytes(data)
    if len(data) < 4 or data[:4] != _MAGIC:
        raise CompressionError("not a repro blob (bad magic)")
    if len(data) < 4 + 2:
        raise IntegrityError(
            f"truncated blob: {len(data)} bytes is too short for a version field"
        )
    (version,) = struct.unpack_from("<H", data, 4)
    if version == 1:
        prelude, checksum = _PRELUDE_V1, None
    elif version == 2:
        prelude, checksum = _PRELUDE_V2, 0
    else:
        raise CompressionError(f"unsupported blob version {version}")
    offset = 4 + prelude.size
    if len(data) < offset:
        raise IntegrityError(
            f"truncated blob: {len(data)} bytes is too short for a "
            f"v{version} prelude ({offset} bytes)"
        )
    if version == 1:
        __, header_length = prelude.unpack_from(data, 4)
    else:
        __, header_length, checksum = prelude.unpack_from(data, 4)
    if offset + header_length > len(data):
        raise IntegrityError(
            f"truncated blob: header claims {header_length} bytes but only "
            f"{len(data) - offset} remain after the prelude"
        )
    header_bytes = data[offset : offset + header_length]
    payload = data[offset + header_length :]
    if checksum is not None:
        actual = zlib.crc32(header_bytes)
        actual = zlib.crc32(payload, actual)
        if actual != checksum:
            raise IntegrityError(
                f"blob checksum mismatch: stored {checksum:#010x}, "
                f"computed {actual:#010x} — data corrupted on disk or in transit"
            )
    header = _parse_header(header_bytes)
    metadata = header["metadata"]
    if "padded_shape" in metadata:
        metadata["padded_shape"] = tuple(metadata["padded_shape"])
    return CompressedBlob(
        codec=header["codec"],
        payload=payload,
        shape=tuple(header["shape"]),
        dtype=header["dtype"],
        mode=header["mode"],
        tolerance=header["tolerance"],
        metadata=metadata,
    )
