"""Chunked storage of large arrays — the tile pattern of in-situ HPC I/O.

Petabyte-scale simulation output is never compressed as one buffer: it is
tiled so readers can fetch regions of interest and writers stream as data
is produced.  :class:`ChunkedArrayWriter`/:class:`ChunkedArrayReader`
split an array into regular chunks along its leading axis, store each as
an independent error-bounded blob in a :class:`~repro.io.store.DatasetStore`,
and reassemble on read — each chunk individually honours the pointwise
tolerance, so the assembled array does too.

Both directions accept a ``workers`` count: chunk compression
(``store.put``) and decompression (``store.get``) run on a thread pool
(the codecs' numpy kernels release the GIL).  Chunk *numbering* and
manifest order are fixed at ``append`` time, and reads assemble in
manifest order, so parallel and serial round-trips produce identical
arrays.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..compress import Compressor, ErrorBoundMode
from ..exceptions import CompressionError
from ..perf.parallel import WorkerPool, parallel_map
from .serialization import atomic_write_bytes
from .store import DatasetStore

__all__ = ["ChunkedArrayWriter", "ChunkedArrayReader", "write_chunked", "read_chunked"]

_MANIFEST_SUFFIX = ".manifest.json"


class ChunkedArrayWriter:
    """Stream an array into a store as leading-axis chunks.

    Parameters
    ----------
    store:
        Destination store.
    name:
        Logical array name; chunks become ``<name>.cNNNN`` entries plus a
        JSON manifest.
    tolerance, mode, codec:
        Error contract applied to every chunk.
    workers:
        ``None``/1 = compress chunks inline; otherwise ``append`` only
        enqueues and a pool of this many threads compresses concurrently.
        ``close`` waits for every pending chunk (re-raising the first
        failure) before the manifest is written, so a manifest on disk
        always describes fully stored chunks.
    """

    def __init__(
        self,
        store: DatasetStore,
        name: str,
        tolerance: float,
        mode: ErrorBoundMode = ErrorBoundMode.ABS,
        codec: Compressor | str | None = None,
        workers: int | None = None,
    ) -> None:
        if not mode.is_pointwise:
            raise CompressionError(
                "chunked storage requires a pointwise mode: per-chunk L2 "
                "budgets do not compose into a whole-array L2 budget"
            )
        self.store = store
        self.name = name
        self.tolerance = float(tolerance)
        self.mode = mode
        self.codec = codec
        self._pool = WorkerPool(workers, label="chunked_write")
        self._chunks: list[dict] = []
        self._dtype: str | None = None
        self._closed = False

    def _store_chunk(self, job: tuple[str, np.ndarray]) -> None:
        entry, chunk = job
        self.store.put(entry, chunk, self.tolerance, self.mode, codec=self.codec)

    def append(self, chunk: np.ndarray) -> None:
        """Write one chunk (a slab along the final array's leading axis)."""
        if self._closed:
            raise CompressionError("writer already closed")
        chunk = np.asarray(chunk)
        if self._chunks and tuple(chunk.shape[1:]) != tuple(self._chunks[0]["shape"][1:]):
            raise CompressionError(
                f"chunk trailing shape {chunk.shape[1:]} does not match "
                f"{tuple(self._chunks[0]['shape'][1:])}"
            )
        index = len(self._chunks)
        entry = f"{self.name}.c{index:04d}"
        self._pool.submit(self._store_chunk, (entry, chunk))
        self._chunks.append({"entry": entry, "shape": list(chunk.shape)})
        self._dtype = str(chunk.dtype)

    def close(self) -> None:
        """Finalize: drain pending chunk stores, then write the manifest."""
        if self._closed:
            return
        try:
            self._pool.drain()
        finally:
            self._pool.shutdown()
        if not self._chunks:
            raise CompressionError("no chunks were written")
        manifest = {
            "name": self.name,
            "dtype": self._dtype,
            "tolerance": self.tolerance,
            "mode": self.mode.value,
            "chunks": self._chunks,
        }
        path = os.path.join(self.store.directory, self.name + _MANIFEST_SUFFIX)
        # atomic: a reader (or a resumed run) never sees a torn manifest
        atomic_write_bytes(path, json.dumps(manifest).encode("utf-8"))
        self._closed = True

    def __enter__(self) -> "ChunkedArrayWriter":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is None:
            self.close()
        else:
            # error exit: abandon pending work, never write a manifest
            self._pool.shutdown()


class ChunkedArrayReader:
    """Reassemble (parts of) a chunked array."""

    def __init__(self, store: DatasetStore, name: str) -> None:
        path = os.path.join(store.directory, name + _MANIFEST_SUFFIX)
        if not os.path.exists(path):
            raise CompressionError(f"no chunked array {name!r} in {store.directory}")
        with open(path, encoding="utf-8") as handle:
            self.manifest = json.load(handle)
        self.store = store

    @property
    def n_chunks(self) -> int:
        return len(self.manifest["chunks"])

    @property
    def shape(self) -> tuple[int, ...]:
        chunks = self.manifest["chunks"]
        leading = sum(chunk["shape"][0] for chunk in chunks)
        return (leading,) + tuple(chunks[0]["shape"][1:])

    def read_chunk(self, index: int) -> np.ndarray:
        """Load one chunk by position."""
        if not 0 <= index < self.n_chunks:
            raise CompressionError(f"chunk index {index} out of range")
        return self.store.get(self.manifest["chunks"][index]["entry"])

    def read(self, workers: int | None = None) -> np.ndarray:
        """Load and concatenate every chunk (in manifest order)."""
        parts = parallel_map(
            self.read_chunk, range(self.n_chunks), workers=workers, label="chunked_read"
        )
        return np.concatenate(parts)


def write_chunked(
    store: DatasetStore,
    name: str,
    array: np.ndarray,
    tolerance: float,
    chunk_size: int,
    mode: ErrorBoundMode = ErrorBoundMode.ABS,
    codec: Compressor | str | None = None,
    workers: int | None = None,
) -> int:
    """Split ``array`` along axis 0 into ``chunk_size`` slabs and store.

    Returns the number of chunks written.
    """
    if chunk_size < 1:
        raise CompressionError("chunk_size must be >= 1")
    with ChunkedArrayWriter(store, name, tolerance, mode, codec, workers=workers) as writer:
        for start in range(0, len(array), chunk_size):
            writer.append(array[start : start + chunk_size])
        n_chunks = len(writer._chunks)
    return n_chunks


def read_chunked(
    store: DatasetStore, name: str, workers: int | None = None
) -> np.ndarray:
    """Load a chunked array written by :func:`write_chunked`."""
    return ChunkedArrayReader(store, name).read(workers=workers)
