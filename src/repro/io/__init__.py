"""Persistent storage of compressed arrays (the disk side of Fig. 1)."""

from .chunked import ChunkedArrayReader, ChunkedArrayWriter, read_chunked, write_chunked
from .serialization import append_jsonl, blob_from_bytes, blob_to_bytes, read_jsonl_records
from .store import DatasetStore

__all__ = [
    "ChunkedArrayReader",
    "ChunkedArrayWriter",
    "DatasetStore",
    "append_jsonl",
    "blob_from_bytes",
    "blob_to_bytes",
    "read_chunked",
    "read_jsonl_records",
    "write_chunked",
]
