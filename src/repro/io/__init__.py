"""Persistent storage of compressed arrays (the disk side of Fig. 1)."""

from .checkpoint import CheckpointJournal, digest_array, digest_bytes, digest_model
from .chunked import ChunkedArrayReader, ChunkedArrayWriter, read_chunked, write_chunked
from .serialization import (
    append_jsonl,
    atomic_write_bytes,
    atomic_write_json,
    blob_from_bytes,
    blob_to_bytes,
    read_jsonl_records,
)
from .store import DatasetStore

__all__ = [
    "CheckpointJournal",
    "ChunkedArrayReader",
    "ChunkedArrayWriter",
    "DatasetStore",
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_json",
    "blob_from_bytes",
    "blob_to_bytes",
    "digest_array",
    "digest_bytes",
    "digest_model",
    "read_chunked",
    "read_jsonl_records",
    "write_chunked",
]
