"""Persistent storage of compressed arrays (the disk side of Fig. 1)."""

from .chunked import ChunkedArrayReader, ChunkedArrayWriter, read_chunked, write_chunked
from .serialization import blob_from_bytes, blob_to_bytes
from .store import DatasetStore

__all__ = [
    "ChunkedArrayReader",
    "ChunkedArrayWriter",
    "DatasetStore",
    "blob_from_bytes",
    "blob_to_bytes",
    "read_chunked",
    "write_chunked",
]
