"""Durable checkpoint journal for resumable chunked runs.

A checkpoint is a directory:

```
<checkpoint>/
  manifest.json        # run identity: plan fingerprint + chunk digests
  journal.jsonl        # one record per certified-complete chunk (append-only)
  chunks/
    chunk-0000.npz     # outputs, reference outputs, serialized blob bytes
    ...
```

Durability model, weakest link first:

* ``manifest.json`` is written atomically (temp + fsync + rename) before
  any chunk work starts, so a resumed run can always verify it is
  resuming *the same computation* — same plan decisions, same codec and
  tolerances, same chunking, same input bytes (per-chunk BLAKE2b
  digests).  Any mismatch is an :class:`~repro.exceptions.IntegrityError`:
  silently mixing results from two different runs is exactly the failure
  mode checkpointing exists to prevent.
* Chunk artifacts are written atomically **before** their journal line,
  and each journal line carries the artifact's digest.  The journal is
  therefore the commit record: an artifact without a journal line is
  invisible (recomputed), a journal line whose artifact is missing or
  corrupt is ignored (recomputed), and a torn trailing journal line —
  the signature of a writer killed mid-append — is dropped by
  :func:`~repro.io.serialization.read_jsonl_records`.  At every kill
  point the journal describes only fully-persisted work.

Nothing here knows about pipelines; the journal stores arrays, bytes
and JSON entries.  :meth:`InferencePipeline.execute_chunked
<repro.core.pipeline.InferencePipeline.execute_chunked>` composes it.
"""

from __future__ import annotations

import hashlib
import io
import json
import os

import numpy as np

from ..exceptions import ConfigurationError, IntegrityError
from ..obs import get_logger, get_metrics, get_tracer, json_default
from .serialization import append_jsonl, atomic_write_bytes, atomic_write_json, read_jsonl_records

__all__ = ["CheckpointJournal", "digest_bytes", "digest_array", "digest_model"]

_LOG = get_logger("checkpoint")

_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"
_CHUNK_DIR = "chunks"
_FORMAT_VERSION = 1


def digest_bytes(data: bytes) -> str:
    """Short BLAKE2b hex digest used for all checkpoint integrity checks."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def digest_array(array: np.ndarray) -> str:
    """Digest of an array's contiguous bytes (dtype+shape prefixed, so
    identical bytes under different views don't collide)."""
    array = np.ascontiguousarray(array)
    prefix = f"{array.dtype.str}:{array.shape}:".encode("utf-8")
    return digest_bytes(prefix + array.tobytes())


def digest_model(model) -> str:
    """Digest of a model's parameter tensors, in registration order.

    Two processes that load "the same" weights can only exchange chunk
    results if this digest agrees — the plan fingerprint covers the
    format and tolerances but not the weight *values*, and a coordinator
    merging results computed against different weights would certify a
    computation nobody ran.
    """
    state = hashlib.blake2b(digest_size=16)
    for name, parameter in model.named_parameters():
        data = np.ascontiguousarray(parameter.data)
        state.update(f"{name}:{data.dtype.str}:{data.shape}:".encode("utf-8"))
        state.update(data.tobytes())
    return state.hexdigest()


class CheckpointJournal:
    """Append-only journal of certified-complete chunks in a directory.

    Lifecycle::

        journal = CheckpointJournal(path)
        completed = journal.begin(manifest, resume=True)  # {} when fresh
        for index not in completed: ...compute...
            journal.record(index, outputs=o, reference_outputs=r,
                           blob_bytes=b, entry={...})
        payload = journal.load(completed[index])          # replay arrays
    """

    def __init__(self, path: str) -> None:
        if not path:
            raise ConfigurationError("checkpoint path must be non-empty")
        self.path = os.path.abspath(path)
        self.manifest_path = os.path.join(self.path, _MANIFEST)
        self.journal_path = os.path.join(self.path, _JOURNAL)
        self.chunk_dir = os.path.join(self.path, _CHUNK_DIR)
        self._manifest: "dict | None" = None

    # -- lifecycle ---------------------------------------------------------

    def begin(self, manifest: dict, resume: bool = False) -> "dict[int, dict]":
        """Open the checkpoint; returns completed entries by chunk index.

        ``manifest`` must carry ``fingerprint`` (plan/codec/chunking
        identity) and ``chunk_digests`` (input digest per chunk index).
        Fresh start (``resume=False``) discards any previous journal for
        this directory.  Resume validates the stored manifest against
        the supplied one and replays only journal entries whose artifact
        digests verify.
        """
        if "fingerprint" not in manifest or "chunk_digests" not in manifest:
            raise ConfigurationError(
                "checkpoint manifest requires 'fingerprint' and 'chunk_digests'"
            )
        manifest = dict(manifest)
        manifest["format_version"] = _FORMAT_VERSION
        os.makedirs(self.chunk_dir, exist_ok=True)
        tracer = get_tracer()

        if resume and os.path.exists(self.manifest_path):
            with tracer.span("checkpoint.resume", path=self.path) as span:
                stored = self._read_manifest()
                self._check_compatible(stored, manifest)
                self._manifest = stored
                completed = self._replay()
                span.set(completed=len(completed))
            get_metrics().counter("checkpoint_resumes_total").inc()
            _LOG.info(
                "resuming from checkpoint",
                path=self.path,
                completed=len(completed),
                total=len(manifest["chunk_digests"]),
            )
            return completed

        # fresh start: drop stale state from any previous run
        for stale in (self.journal_path,):
            if os.path.exists(stale):
                os.unlink(stale)
        for name in os.listdir(self.chunk_dir):
            os.unlink(os.path.join(self.chunk_dir, name))
        atomic_write_json(self.manifest_path, manifest)
        self._manifest = manifest
        return {}

    def _read_manifest(self) -> dict:
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                stored = json.load(handle)
        except ValueError as exc:
            raise IntegrityError(
                f"checkpoint manifest {self.manifest_path!r} is corrupt: {exc}"
            ) from exc
        if not isinstance(stored, dict):
            raise IntegrityError("checkpoint manifest is not a JSON object")
        return stored

    @staticmethod
    def _check_compatible(stored: dict, manifest: dict) -> None:
        if stored.get("format_version") != _FORMAT_VERSION:
            raise IntegrityError(
                f"checkpoint format version {stored.get('format_version')!r} "
                f"does not match {_FORMAT_VERSION}"
            )
        if stored.get("fingerprint") != manifest["fingerprint"]:
            raise IntegrityError(
                "checkpoint belongs to a different run: plan/codec/chunking "
                "fingerprint mismatch — refusing to mix results. Use a fresh "
                "checkpoint directory (or resume=False) for the new plan."
            )
        if stored.get("chunk_digests") != manifest["chunk_digests"]:
            raise IntegrityError(
                "checkpoint input digests do not match the supplied fields: "
                "the data changed since the checkpoint was written"
            )

    def _replay(self) -> "dict[int, dict]":
        """Validated journal entries, one per chunk index.

        Duplicate entries for a chunk — the normal shape after merging
        journals from reassigned shards, or after a crash between the
        artifact write and the journal append — resolve last-wins *only
        when their artifact digests agree* (the entries describe the
        same certified bytes, so the later metadata is at least as
        fresh).  A duplicate whose digest disagrees with the entry
        already replayed is a conflict: the on-disk artifact can only
        match one of them, so the already-verified entry is kept and the
        conflicting one dropped with a warning.
        """
        digests = self._manifest["chunk_digests"]
        completed: dict[int, dict] = {}
        dropped = 0
        conflicts = 0
        for entry in read_jsonl_records(self.journal_path):
            index = entry.get("chunk")
            if not isinstance(index, int) or not 0 <= index < len(digests):
                dropped += 1
                continue
            if entry.get("input_digest") not in (None, digests[index]):
                dropped += 1
                continue
            previous = completed.get(index)
            if previous is not None and (
                entry.get("artifact_digest") != previous.get("artifact_digest")
            ):
                conflicts += 1
                continue
            artifact = os.path.join(self.path, entry.get("artifact", ""))
            try:
                with open(artifact, "rb") as handle:
                    data = handle.read()
            except OSError:
                dropped += 1
                continue
            if digest_bytes(data) != entry.get("artifact_digest"):
                dropped += 1
                continue
            completed[index] = entry
        if dropped:
            _LOG.warning(
                "dropped unverifiable journal entries; their chunks will be "
                "recomputed",
                dropped=dropped,
            )
        if conflicts:
            get_metrics().counter("checkpoint_conflicting_entries_total").inc(
                conflicts
            )
            _LOG.warning(
                "journal holds conflicting duplicate entries; kept the first "
                "verified entry per chunk",
                conflicts=conflicts,
            )
        return completed

    # -- writes ------------------------------------------------------------

    def record(
        self,
        index: int,
        *,
        outputs: np.ndarray,
        reference_outputs: np.ndarray,
        blob_bytes: bytes,
        entry: dict,
    ) -> dict:
        """Persist one completed chunk: artifact first, then journal line.

        Returns the journal entry as written (with artifact paths and
        digests filled in).
        """
        buffer = io.BytesIO()
        np.savez(
            buffer,
            outputs=np.ascontiguousarray(outputs),
            reference_outputs=np.ascontiguousarray(reference_outputs),
            blob=np.frombuffer(bytes(blob_bytes), dtype=np.uint8),
        )
        return self.record_raw(index, data=buffer.getvalue(), entry=entry)

    def record_raw(self, index: int, *, data: bytes, entry: dict) -> dict:
        """Persist one completed chunk from already-serialized npz bytes.

        The journal-merge path: a coordinator adopting a remote worker's
        artifact writes the bytes *verbatim*, so the merged journal is
        bit-identical to one the worker would have written locally —
        digests computed on either side agree by construction.
        """
        if self._manifest is None:
            raise ConfigurationError("CheckpointJournal.record before begin()")
        tracer = get_tracer()
        with tracer.span("checkpoint.record", chunk=index):
            artifact_rel = os.path.join(_CHUNK_DIR, f"chunk-{index:04d}.npz")
            atomic_write_bytes(os.path.join(self.path, artifact_rel), data)
            entry = dict(entry)
            entry["chunk"] = int(index)
            entry["artifact"] = artifact_rel
            entry["artifact_digest"] = digest_bytes(data)
            append_jsonl(self.journal_path, entry, default=json_default)
        get_metrics().counter("checkpoint_chunks_recorded_total").inc()
        return entry

    # -- reads -------------------------------------------------------------

    def load(self, entry: dict) -> dict:
        """Replay one journal entry's arrays; digest-verified.

        Returns ``{"outputs", "reference_outputs", "blob_bytes", "entry"}``.
        """
        artifact = os.path.join(self.path, entry["artifact"])
        with open(artifact, "rb") as handle:
            data = handle.read()
        if digest_bytes(data) != entry.get("artifact_digest"):
            raise IntegrityError(
                f"checkpoint artifact {artifact!r} digest mismatch: file "
                "changed since it was journaled"
            )
        with np.load(io.BytesIO(data)) as archive:
            return {
                "outputs": archive["outputs"],
                "reference_outputs": archive["reference_outputs"],
                "blob_bytes": archive["blob"].tobytes(),
                "entry": entry,
            }

    def entries(self) -> "list[dict]":
        """Every raw journal record (newest last); for inspection/tests."""
        return read_jsonl_records(self.journal_path)
