"""Hierarchical tracer: nested spans with JSONL export and a text tree.

A :class:`Span` measures one named region of work (wall-clock duration
plus free-form attributes); a :class:`Tracer` maintains the active span
stack so nested regions become a tree.  The paper's Fig. 2 asks *where
inference time goes* — spans answer that at runtime with the same
vocabulary the figure uses (``pipeline.compress``, ``pipeline.decompress``,
``pipeline.inference``, ``pipeline.guard``).

When observability is off the :class:`NullTracer` stands in: its
``span()`` returns a shared, attribute-less singleton whose enter/exit
and ``set()`` do nothing, so instrumented hot paths cost one method call
and no allocation.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "json_default",
    "read_jsonl",
]


def json_default(value):
    """Best-effort converter for non-JSON-native values in telemetry.

    Span attributes and audit metadata routinely carry numpy scalars and
    small arrays (``np.float32`` errors, shape tuples); a bare
    ``json.dumps`` raises ``TypeError`` on them, which would lose a whole
    trace at export time.  Numpy scalars and arrays both expose
    ``tolist()`` (scalars return plain Python numbers), so that one hook
    covers the common cases without importing numpy here; anything else
    degrades to ``str`` rather than failing the export.
    """
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) if not isinstance(v, (int, float, str)) else v for v in value)
    return str(value)


class Span:
    """One timed region: name, wall time, attributes, position in the tree.

    Spans are context managers handed out by :meth:`Tracer.span`;
    attributes may be attached at creation, inside the block via
    :meth:`set`, or after exit (post-hoc enrichment, e.g. an observed
    error that is only measurable later in the pipeline).
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attributes",
        "start_unix",
        "duration_s",
        "_tracer",
        "_t0",
    )

    def __init__(self, name: str, span_id: int, parent_id: int | None, depth: int, tracer: "Tracer", attributes: dict) -> None:
        self.name = str(name)
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attributes = attributes
        self.start_unix = 0.0
        self.duration_s = 0.0
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, **attributes) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration_s = time.perf_counter() - self._t0
        self._tracer._finish(self)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, {self.attributes})"


class Tracer:
    """Collects spans into a tree; safe to use from worker threads.

    ``span()`` opens a child of the currently active span (the enclosing
    ``with`` block).  The active-span stack is *thread-local*: spans
    opened inside a worker thread nest under whatever that thread opened,
    and become roots otherwise — a worker-pool task therefore shows up as
    its own root span carrying its worker's name.  The shared collections
    (:attr:`finished` in completion order, :attr:`roots` in start order,
    the id counter) are guarded by a lock.
    """

    #: instrumented code may branch on this to skip expensive attribute
    #: computation (the NullTracer reports False)
    enabled = True

    def __init__(self) -> None:
        self.finished: list[Span] = []
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1

    def _stack_for_thread(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes) -> Span:
        """Open a new span as a child of the current one (context manager)."""
        stack = self._stack_for_thread()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name,
            span_id=span_id,
            parent_id=None if parent is None else parent.span_id,
            depth=0 if parent is None else parent.depth + 1,
            tracer=self,
            attributes=attributes,
        )
        if parent is None:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def current(self) -> Span | None:
        """The innermost span whose ``with`` block is active, if any."""
        stack = self._stack_for_thread()
        return stack[-1] if stack else None

    def _finish(self, span: Span) -> None:
        # Exiting out of order (an inner span leaked past its parent's
        # exit) is tolerated: pop down to the span being closed.
        stack = self._stack_for_thread()
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self.finished.append(span)

    # -- queries ---------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name, in completion order."""
        return [span for span in self.finished if span.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.finished if s.parent_id == span.span_id]

    def total_seconds(self, name: str) -> float:
        """Summed duration of all finished spans named ``name``."""
        return sum(span.duration_s for span in self.find(name))

    # -- export ----------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.finished]

    def export_jsonl(self, path: str) -> None:
        """Write one JSON object per finished span (completion order).

        Non-JSON-native attribute values (numpy scalars, arrays) are
        converted through :func:`json_default` so an exotic attribute can
        never crash the export and lose the trace.
        """
        with open(path, "w") as handle:
            for span in self.finished:
                handle.write(json.dumps(span.to_dict(), sort_keys=True, default=json_default))
                handle.write("\n")

    def render_tree(self, min_fraction: float = 0.0) -> str:
        """Text tree of all root spans with durations and attributes.

        ``min_fraction`` prunes children consuming less than that share
        of their parent (flame-graph style focus on the hot path).
        """
        by_parent: dict[int | None, list[Span]] = {}
        for span in self.finished:
            by_parent.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def walk(span: Span, indent: int, parent_duration: float | None) -> None:
            share = ""
            if parent_duration and parent_duration > 0:
                fraction = span.duration_s / parent_duration
                if fraction < min_fraction:
                    return
                share = f"  {100 * fraction:5.1f}%"
            attrs = " ".join(f"{k}={_fmt_value(v)}" for k, v in span.attributes.items())
            lines.append(
                f"{'  ' * indent}{span.name:<{max(1, 40 - 2 * indent)}} "
                f"{1e3 * span.duration_s:9.3f} ms{share}"
                + (f"  [{attrs}]" if attrs else "")
            )
            for child in sorted(
                by_parent.get(span.span_id, []), key=lambda s: s.start_unix
            ):
                walk(child, indent + 1, span.duration_s)

        for root in self.roots:
            walk(root, 0, None)
        return "\n".join(lines)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class _NullSpan:
    """Shared do-nothing span: the disabled-mode fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attributes) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible no-op tracer installed while observability is off."""

    enabled = False
    finished: tuple = ()
    roots: tuple = ()

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def find(self, name: str) -> list:
        return []

    def children(self, span) -> list:
        return []

    def total_seconds(self, name: str) -> float:
        return 0.0

    def to_dicts(self) -> list:
        return []

    def export_jsonl(self, path: str) -> None:
        with open(path, "w"):
            pass

    def render_tree(self, min_fraction: float = 0.0) -> str:
        return ""


NULL_TRACER = NullTracer()


def read_jsonl(path: str) -> list[dict]:
    """Load spans exported by :meth:`Tracer.export_jsonl`."""
    spans: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
