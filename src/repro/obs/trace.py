"""Hierarchical tracer: nested spans with JSONL export and a text tree.

A :class:`Span` measures one named region of work (wall-clock duration
plus free-form attributes); a :class:`Tracer` maintains the active span
stack so nested regions become a tree.  The paper's Fig. 2 asks *where
inference time goes* — spans answer that at runtime with the same
vocabulary the figure uses (``pipeline.compress``, ``pipeline.decompress``,
``pipeline.inference``, ``pipeline.guard``).

When observability is off the :class:`NullTracer` stands in: its
``span()`` returns a shared, attribute-less singleton whose enter/exit
and ``set()`` do nothing, so instrumented hot paths cost one method call
and no allocation.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "json_default",
    "new_span_id",
    "new_trace_id",
    "read_jsonl",
]


def new_trace_id() -> str:
    """Random 128-bit trace id as 32 lowercase hex chars (W3C traceparent)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """Random 64-bit span id as 16 lowercase hex chars.

    Random (rather than sequential) ids are what make cross-process trace
    stitching possible: a forked pool child and a TCP worker can both mint
    ids without coordination, and :meth:`Tracer.merge_remote` can
    deduplicate re-shipped spans by id alone.
    """
    return os.urandom(8).hex()


def json_default(value):
    """Best-effort converter for non-JSON-native values in telemetry.

    Span attributes and audit metadata routinely carry numpy scalars and
    small arrays (``np.float32`` errors, shape tuples); a bare
    ``json.dumps`` raises ``TypeError`` on them, which would lose a whole
    trace at export time.  Numpy scalars and arrays both expose
    ``tolist()`` (scalars return plain Python numbers), so that one hook
    covers the common cases without importing numpy here; anything else
    degrades to ``str`` rather than failing the export.
    """
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) if not isinstance(v, (int, float, str)) else v for v in value)
    return str(value)


class Span:
    """One timed region: name, wall time, attributes, position in the tree.

    Spans are context managers handed out by :meth:`Tracer.span`;
    attributes may be attached at creation, inside the block via
    :meth:`set`, or after exit (post-hoc enrichment, e.g. an observed
    error that is only measurable later in the pipeline).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "depth",
        "attributes",
        "start_unix",
        "duration_s",
        "_tracer",
        "_t0",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None,
        depth: int,
        tracer: "Tracer | None",
        attributes: dict,
        trace_id: str = "",
    ) -> None:
        self.name = str(name)
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attributes = attributes
        self.start_unix = 0.0
        self.duration_s = 0.0
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, **attributes) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration_s = time.perf_counter() - self._t0
        if self._tracer is not None:
            self._tracer._finish(self)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            # explicit root marker: a re-imported trace keeps the
            # "genuine root" vs "parent span lives elsewhere" distinction
            # even if a reader drops null-valued fields
            "root": self.parent_id is None,
            "name": self.name,
            "depth": self.depth,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, payload: dict, tracer: "Tracer | None" = None) -> "Span":
        """Rebuild a finished span from its :meth:`to_dict` form.

        The inverse of the JSONL export: ``to_dict`` → ``json`` →
        ``from_dict`` round-trips every structural field (ids, parent
        link, root flag, timing, attributes).  Used by
        :meth:`Tracer.merge_remote` to adopt spans shipped over the fork
        seam or the distrib wire.
        """
        span = cls(
            payload.get("name", "?"),
            span_id=str(payload["span_id"]),
            parent_id=(
                None
                if payload.get("parent_id") is None or payload.get("root")
                else str(payload["parent_id"])
            ),
            depth=int(payload.get("depth", 0)),
            tracer=tracer,
            attributes=dict(payload.get("attributes") or {}),
            trace_id=str(payload.get("trace_id") or ""),
        )
        span.start_unix = float(payload.get("start_unix") or 0.0)
        span.duration_s = float(payload.get("duration_s") or 0.0)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, {self.attributes})"


class Tracer:
    """Collects spans into a tree; safe to use from worker threads.

    ``span()`` opens a child of the currently active span (the enclosing
    ``with`` block).  The active-span stack is *thread-local*: spans
    opened inside a worker thread nest under whatever that thread opened,
    and become roots otherwise — a worker-pool task therefore shows up as
    its own root span carrying its worker's name.  The shared collections
    (:attr:`finished` in completion order, :attr:`roots` in start order,
    the id counter) are guarded by a lock.
    """

    #: instrumented code may branch on this to skip expensive attribute
    #: computation (the NullTracer reports False)
    enabled = True

    def __init__(self, trace_id: str | None = None, remote_context: dict | None = None) -> None:
        self.finished: list[Span] = []
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._remote_context = Tracer.extract(remote_context) if remote_context else None
        if trace_id is None and self._remote_context is not None:
            trace_id = self._remote_context["trace_id"]
        self.trace_id = trace_id or new_trace_id()
        #: every span id this tracer has minted or adopted — the dedup set
        #: merge_remote consults so a span shipped twice lands once
        self._seen_ids: set[str] = set()

    def _stack_for_thread(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, *, remote_parent: dict | None = None, **attributes) -> Span:
        """Open a new span as a child of the current one (context manager).

        ``remote_parent`` (a context from :meth:`inject`/:meth:`extract`)
        parents a span under work happening in *another* process or
        thread when this thread's local stack is empty — the seam that
        stitches coordinator connection threads, TCP workers and forked
        pool children into one trace.  A non-empty local stack wins: the
        span nests where it actually runs.
        """
        stack = self._stack_for_thread()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent_id = parent.span_id
            trace_id = parent.trace_id or self.trace_id
            depth = parent.depth + 1
            local_root = False
        else:
            context = remote_parent if remote_parent is not None else self._remote_context
            context = Tracer.extract(context) if context else None
            parent_id = context["parent_span_id"] if context else None
            trace_id = (context["trace_id"] if context else "") or self.trace_id
            depth = 0
            local_root = True
        span = Span(
            name,
            span_id=new_span_id(),
            parent_id=parent_id,
            depth=depth,
            tracer=self,
            attributes=attributes,
            trace_id=trace_id,
        )
        with self._lock:
            self._seen_ids.add(span.span_id)
            if local_root:
                self.roots.append(span)
        stack.append(span)
        return span

    # -- context propagation ---------------------------------------------
    def inject(self, span: Span | None = None) -> dict:
        """Serializable trace context for handing work to another process.

        Returns ``{"trace_id", "parent_span_id"}`` anchored at ``span``
        (default: this thread's current span, falling back to the remote
        context this tracer was constructed with).  Attach it to a frame
        or fork seam and rebuild the link on the far side via
        ``Tracer(remote_context=ctx)`` or ``span(..., remote_parent=ctx)``.
        """
        target = span if span is not None else self.current()
        if target is not None:
            return {"trace_id": target.trace_id or self.trace_id, "parent_span_id": target.span_id}
        if self._remote_context is not None:
            return dict(self._remote_context)
        return {"trace_id": self.trace_id, "parent_span_id": None}

    @staticmethod
    def extract(carrier: dict | None) -> dict | None:
        """Validate a trace context from a frame ``trace`` field.

        Accepts either the bare context or a message carrying it under a
        ``"trace"`` key; returns ``{"trace_id", "parent_span_id"}`` or
        ``None`` when absent or malformed (never raises — telemetry must
        not take down the data path).
        """
        if not isinstance(carrier, dict):
            return None
        context = carrier.get("trace", carrier) if "trace" in carrier else carrier
        if not isinstance(context, dict):
            return None
        trace_id = context.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = context.get("parent_span_id")
        if parent is not None and not isinstance(parent, str):
            return None
        return {"trace_id": trace_id, "parent_span_id": parent}

    def merge_remote(self, span_dicts: list, parent: Span | None = None) -> list:
        """Adopt spans shipped from another tracer (fork child, TCP worker).

        Spans are rebuilt via :meth:`Span.from_dict` and appended to
        :attr:`finished`; ids already known to this tracer are skipped, so
        re-shipping (worker retries, shared-process test harnesses where
        worker threads share the global tracer) cannot duplicate spans.

        With ``parent`` given, every span in the batch whose parent is not
        *also in the batch* is reparented under it and rewritten onto its
        trace id — the fork-seam contract: a pool child's root spans land
        under the parent's per-task span.  With ``parent=None`` the spans
        keep their shipped parent links (the distrib wire contract: the
        worker already parented them via the context carried on frames).

        Returns the list of newly adopted spans.
        """
        if not span_dicts:
            return []
        batch_ids = set()
        for payload in span_dicts:
            if isinstance(payload, dict) and payload.get("span_id"):
                batch_ids.add(str(payload["span_id"]))
        with self._lock:
            known = set(self._seen_ids)
        adopted: list[Span] = []
        ordered = sorted(
            (p for p in span_dicts if isinstance(p, dict) and p.get("span_id")),
            key=lambda p: float(p.get("start_unix") or 0.0),
        )
        for payload in ordered:
            span_id = str(payload["span_id"])
            if span_id in known:
                continue
            known.add(span_id)
            try:
                span = Span.from_dict(payload, tracer=self)
            except (KeyError, TypeError, ValueError):
                continue
            if parent is not None and (span.parent_id is None or span.parent_id not in batch_ids):
                span.parent_id = parent.span_id
                span.trace_id = parent.trace_id or self.trace_id
            elif not span.trace_id:
                span.trace_id = self.trace_id
            adopted.append(span)
        with self._lock:
            for span in adopted:
                self._seen_ids.add(span.span_id)
                self.finished.append(span)
                if span.parent_id is None:
                    self.roots.append(span)
        return adopted

    def dicts_since(self, cursor: int) -> tuple[list, int]:
        """Exported dicts of spans finished since ``cursor``, plus the new cursor.

        The shipping primitive for incremental span transport: a worker
        keeps a cursor into :attr:`finished` and attaches only the fresh
        tail to each outgoing frame.
        """
        with self._lock:
            fresh = list(self.finished[cursor:])
            new_cursor = len(self.finished)
        return [span.to_dict() for span in fresh], new_cursor

    def current(self) -> Span | None:
        """The innermost span whose ``with`` block is active, if any."""
        stack = self._stack_for_thread()
        return stack[-1] if stack else None

    def _finish(self, span: Span) -> None:
        # Exiting out of order (an inner span leaked past its parent's
        # exit) is tolerated: pop down to the span being closed.
        stack = self._stack_for_thread()
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self.finished.append(span)

    # -- queries ---------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name, in completion order."""
        return [span for span in self.finished if span.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.finished if s.parent_id == span.span_id]

    def total_seconds(self, name: str) -> float:
        """Summed duration of all finished spans named ``name``."""
        return sum(span.duration_s for span in self.find(name))

    # -- export ----------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.finished]

    def export_jsonl(self, path: str) -> None:
        """Write one JSON object per finished span (completion order).

        Non-JSON-native attribute values (numpy scalars, arrays) are
        converted through :func:`json_default` so an exotic attribute can
        never crash the export and lose the trace.
        """
        with open(path, "w") as handle:
            for span in self.finished:
                handle.write(json.dumps(span.to_dict(), sort_keys=True, default=json_default))
                handle.write("\n")

    def render_tree(self, min_fraction: float = 0.0) -> str:
        """Text tree of all root spans with durations and attributes.

        ``min_fraction`` prunes children consuming less than that share
        of their parent (flame-graph style focus on the hot path).
        """
        by_parent: dict[str | None, list[Span]] = {}
        for span in self.finished:
            by_parent.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def walk(span: Span, indent: int, parent_duration: float | None) -> None:
            share = ""
            if parent_duration and parent_duration > 0:
                fraction = span.duration_s / parent_duration
                if fraction < min_fraction:
                    return
                share = f"  {100 * fraction:5.1f}%"
            attrs = " ".join(f"{k}={_fmt_value(v)}" for k, v in span.attributes.items())
            lines.append(
                f"{'  ' * indent}{span.name:<{max(1, 40 - 2 * indent)}} "
                f"{1e3 * span.duration_s:9.3f} ms{share}"
                + (f"  [{attrs}]" if attrs else "")
            )
            for child in sorted(
                by_parent.get(span.span_id, []), key=lambda s: s.start_unix
            ):
                walk(child, indent + 1, span.duration_s)

        for root in self.roots:
            walk(root, 0, None)
        return "\n".join(lines)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class _NullSpan:
    """Shared do-nothing span: the disabled-mode fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attributes) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible no-op tracer installed while observability is off."""

    enabled = False
    finished: tuple = ()
    roots: tuple = ()
    trace_id = ""

    def span(self, name: str, *, remote_parent: dict | None = None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def inject(self, span=None) -> None:
        return None

    @staticmethod
    def extract(carrier) -> None:
        return None

    def merge_remote(self, span_dicts, parent=None) -> list:
        return []

    def dicts_since(self, cursor: int) -> tuple[list, int]:
        return [], 0

    def find(self, name: str) -> list:
        return []

    def children(self, span) -> list:
        return []

    def total_seconds(self, name: str) -> float:
        return 0.0

    def to_dicts(self) -> list:
        return []

    def export_jsonl(self, path: str) -> None:
        with open(path, "w"):
            pass

    def render_tree(self, min_fraction: float = 0.0) -> str:
        return ""


NULL_TRACER = NullTracer()


def read_jsonl(path: str) -> list[dict]:
    """Load spans exported by :meth:`Tracer.export_jsonl`."""
    spans: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
