"""Timeline analysis over stitched traces: critical path, per-worker
utilization, straggler detection and a text Gantt.

Consumes the span dicts produced by :meth:`Tracer.export_jsonl` (or
``Tracer.to_dicts()`` live) after a distributed run has merged worker
and pool-child spans into the coordinator's tracer.  Two span families
carry the lease timeline:

``distrib.chunk``
    One instant span per accepted chunk, emitted by the coordinator at
    result time, with absolute timestamps and the phase split in its
    attributes: ``chunk``, ``worker``, ``lease``, ``enqueued_unix``,
    ``granted_unix``, ``accepted_unix``, ``queue_s``, ``run_s``,
    ``transfer_s``.

``distrib.lease``
    One instant span per lease resolution (completed / expired /
    released) with ``worker``, ``chunks``, ``outcome``, ``lease_seconds``.

Everything else (``pipeline.*``, ``supervisor.*``, ``worker.lease``)
feeds the generic tree statistics: orphan detection and the critical
path.  The analyzer never raises on a malformed trace — a span file is
evidence, and evidence is graded, not rejected.
"""

from __future__ import annotations

import statistics

from .trace import read_jsonl

__all__ = ["analyze_spans", "analyze_trace", "render_gantt", "render_report"]


def _attr(span: dict, key: str, default=None):
    attributes = span.get("attributes") or {}
    return attributes.get(key, default)


def _float(value, default: float = 0.0) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _end(span: dict) -> float:
    # clock skew in merged remote spans can yield negative durations;
    # a span never ends before it starts
    return _float(span.get("start_unix")) + max(0.0, _float(span.get("duration_s")))


def analyze_trace(path: str, straggler_k: float = 2.0) -> dict:
    """:func:`analyze_spans` over a JSONL trace file."""
    return analyze_spans(read_jsonl(path), straggler_k=straggler_k)


def analyze_spans(spans: list, straggler_k: float = 2.0) -> dict:
    """Reconstruct the run timeline from exported span dicts.

    Returns a JSON-serializable report:

    - ``orphans`` — spans not reachable from any root (a stitched trace
      from a healthy distributed run must report zero);
    - ``critical_path`` — the latest-finishing chain from the dominant
      root span down to a leaf;
    - ``workers`` — per-worker lease/chunk counts, busy seconds and
      utilization against the run wall-clock;
    - ``chunks`` / ``phase_seconds`` — per-chunk queue/run/transfer
      split and its aggregate;
    - ``stragglers`` — chunks whose run phase exceeded
      ``straggler_k × median(run)``.
    """
    if straggler_k <= 0:
        raise ValueError(f"straggler_k must be positive, got {straggler_k}")
    spans = [s for s in spans if isinstance(s, dict) and s.get("span_id")]
    by_id = {str(s["span_id"]): s for s in spans}
    children: dict[str | None, list] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is None or span.get("root"):
            roots.append(span)
        else:
            children.setdefault(str(parent), []).append(span)

    # -- reachability / orphans ------------------------------------------
    reachable: set[str] = set()
    frontier = [str(s["span_id"]) for s in roots]
    while frontier:
        span_id = frontier.pop()
        if span_id in reachable:
            continue
        reachable.add(span_id)
        frontier.extend(str(c["span_id"]) for c in children.get(span_id, []))
    orphan_spans = [s for s in spans if str(s["span_id"]) not in reachable]
    orphans = {
        "count": len(orphan_spans),
        "spans": [
            {"span_id": str(s["span_id"]), "name": s.get("name"), "parent_id": s.get("parent_id")}
            for s in orphan_spans[:20]
        ],
    }

    # -- wall clock and dominant root ------------------------------------
    main_root = max(roots, key=lambda s: _float(s.get("duration_s")), default=None)
    # merged spans missing start_unix decode as 0.0; letting epoch-zero
    # into min() inflates the wall by ~56 years and collapses every
    # utilization figure, so the trace origin is taken over *dated*
    # spans only
    starts = [_float(s.get("start_unix")) for s in spans]
    dated = [t for t in starts if t > 0]
    if dated:
        start = min(dated)
        wall = max(0.0, max(_end(s) for s in spans if _float(s.get("start_unix")) > 0) - start)
    elif spans:
        start = min(starts)
        wall = max(0.0, max(_end(s) for s in spans) - start)
    else:
        start, wall = 0.0, 0.0
    if main_root is not None:
        wall = max(wall, _float(main_root.get("duration_s")))

    # -- critical path: latest-finishing chain from the dominant root ----
    critical_path: list[dict] = []
    node = main_root
    seen_path: set[str] = set()
    while node is not None and str(node["span_id"]) not in seen_path:
        seen_path.add(str(node["span_id"]))
        critical_path.append(
            {
                "span_id": str(node["span_id"]),
                "name": node.get("name"),
                "duration_s": _float(node.get("duration_s")),
            }
        )
        node = max(children.get(str(node["span_id"]), []), key=_end, default=None)

    # -- lease timeline ---------------------------------------------------
    chunk_rows: list[dict] = []
    for span in spans:
        if span.get("name") != "distrib.chunk":
            continue
        chunk_rows.append(
            {
                "chunk": _attr(span, "chunk"),
                "worker": str(_attr(span, "worker", "?")),
                "lease": _attr(span, "lease"),
                "queue_s": _float(_attr(span, "queue_s")),
                "run_s": _float(_attr(span, "run_s")),
                "transfer_s": _float(_attr(span, "transfer_s")),
                "enqueued_unix": _float(_attr(span, "enqueued_unix")),
                "granted_unix": _float(_attr(span, "granted_unix")),
                "accepted_unix": _float(_attr(span, "accepted_unix")),
            }
        )
    chunk_rows.sort(key=lambda r: (r["chunk"] is None, r["chunk"]))

    workers: dict[str, dict] = {}
    for span in spans:
        if span.get("name") == "distrib.lease":
            name = str(_attr(span, "worker", "?"))
            entry = workers.setdefault(
                name, {"leases": 0, "chunks": 0, "busy_s": 0.0, "utilization": 0.0}
            )
            entry["leases"] += 1
    for row in chunk_rows:
        entry = workers.setdefault(
            row["worker"], {"leases": 0, "chunks": 0, "busy_s": 0.0, "utilization": 0.0}
        )
        entry["chunks"] += 1
        entry["busy_s"] += row["run_s"]
    for entry in workers.values():
        entry["utilization"] = (entry["busy_s"] / wall) if wall > 0 else 0.0

    phase_seconds = {
        "queue": sum(r["queue_s"] for r in chunk_rows),
        "run": sum(r["run_s"] for r in chunk_rows),
        "transfer": sum(r["transfer_s"] for r in chunk_rows),
    }

    stragglers: list[dict] = []
    run_times = [r["run_s"] for r in chunk_rows if r["run_s"] > 0]
    median_run = statistics.median(run_times) if run_times else 0.0
    if median_run > 0:
        for row in chunk_rows:
            if row["run_s"] > straggler_k * median_run:
                stragglers.append(
                    {
                        "chunk": row["chunk"],
                        "worker": row["worker"],
                        "run_s": row["run_s"],
                        "ratio_to_median": row["run_s"] / median_run,
                    }
                )

    return {
        "trace_id": str(main_root.get("trace_id") or "") if main_root else "",
        "n_spans": len(spans),
        "n_roots": len(roots),
        "root": (
            {"name": main_root.get("name"), "duration_s": _float(main_root.get("duration_s"))}
            if main_root
            else None
        ),
        "wall_seconds": wall,
        "start_unix": start,
        "orphans": orphans,
        "critical_path": critical_path,
        "workers": workers,
        "chunks": chunk_rows,
        "phase_seconds": phase_seconds,
        "median_run_s": median_run,
        "straggler_k": straggler_k,
        "stragglers": stragglers,
    }


def render_gantt(report: dict, width: int = 72) -> str:
    """Text Gantt of the per-chunk lease timeline.

    One row per accepted chunk: ``.`` marks queue wait, ``=`` the run
    phase, ``>`` result transfer, all on a shared absolute time axis.
    """
    if width < 16:
        raise ValueError(f"gantt width must be >= 16, got {width}")
    rows = [r for r in report.get("chunks", []) if r.get("accepted_unix")]
    if not rows:
        return "(no distrib.chunk spans in trace)"
    origin = min(r["enqueued_unix"] or r["granted_unix"] or r["accepted_unix"] for r in rows)
    horizon = max(r["accepted_unix"] for r in rows) - origin
    scale = (width - 1) / horizon if horizon > 0 else 0.0

    def cell(t: float) -> int:
        return min(width - 1, max(0, int((t - origin) * scale)))

    lines = [f"{'chunk':>6} {'worker':<14} |{'time →':<{width}}|"]
    for row in rows:
        enqueued = row["enqueued_unix"] or origin
        granted = row["granted_unix"] or enqueued
        accepted = row["accepted_unix"]
        run_s = max(0.0, row["run_s"])
        run_end = min(accepted, granted + run_s) if run_s else accepted
        # clock skew across hosts can deliver out-of-order timestamps;
        # the painted boundaries must stay monotonic (e <= g < eq_end)
        # or the ">" transfer loop walks backwards over the "=" bar
        e = cell(enqueued)
        g = max(e, cell(granted))
        eq_end = max(g + 1, cell(run_end))
        lane = [" "] * width
        for i in range(e, g):
            lane[i] = "."
        for i in range(g, min(eq_end, width)):
            lane[i] = "="
        for i in range(eq_end, cell(accepted)):
            lane[i] = ">"
        lines.append(f"{str(row['chunk']):>6} {row['worker']:<14} |{''.join(lane)}|")
    return "\n".join(lines)


def render_report(report: dict) -> str:
    """Human-readable summary of an :func:`analyze_spans` report."""
    lines: list[str] = []
    root = report.get("root") or {}
    lines.append(
        f"trace {report.get('trace_id') or '?'}: {report.get('n_spans', 0)} spans, "
        f"{report.get('n_roots', 0)} roots, wall {report.get('wall_seconds', 0.0):.3f}s"
        + (f", root {root.get('name')}" if root else "")
    )
    orphans = report.get("orphans", {})
    lines.append(f"orphans: {orphans.get('count', 0)}")
    workers = report.get("workers", {})
    if workers:
        lines.append(f"{'worker':<20} {'leases':>6} {'chunks':>6} {'busy s':>9} {'util':>7}")
        for name in sorted(workers):
            w = workers[name]
            lines.append(
                f"{name:<20} {w['leases']:>6} {w['chunks']:>6} "
                f"{w['busy_s']:>9.3f} {100 * w['utilization']:>6.1f}%"
            )
    phases = report.get("phase_seconds", {})
    if any(phases.values()):
        lines.append(
            "phases: queue {queue:.3f}s  run {run:.3f}s  transfer {transfer:.3f}s".format(**phases)
        )
    stragglers = report.get("stragglers", [])
    if stragglers:
        for s in stragglers:
            lines.append(
                f"straggler: chunk {s['chunk']} on {s['worker']} ran {s['run_s']:.3f}s "
                f"({s['ratio_to_median']:.1f}x median)"
            )
    else:
        lines.append("stragglers: none")
    path = report.get("critical_path", [])
    if path:
        chain = " -> ".join(f"{p['name']} ({p['duration_s'] * 1e3:.1f}ms)" for p in path)
        lines.append(f"critical path: {chain}")
    return "\n".join(lines)
