"""Observability: tracing, metrics and structured logging.

An always-available, **off-by-default** telemetry layer.  Hot paths are
instrumented unconditionally but route through process-global singletons
that default to no-op implementations (:class:`~repro.obs.trace.NullTracer`,
:class:`~repro.obs.metrics.NullMetrics`), so the disabled cost is one
attribute lookup and a couple of no-op method calls per stage — no
allocation, no branching in user code.

Usage::

    from repro import obs

    tracer, metrics = obs.enable()
    pipeline.execute(fields)
    print(tracer.render_tree())
    print(metrics.render())
    tracer.export_jsonl("trace.jsonl")
    obs.disable()

or scoped (restores the previous state, used throughout the tests)::

    with obs.capture() as (tracer, metrics):
        pipeline.execute(fields)

The CLI exposes the same switchboard via ``repro --trace FILE
--metrics FILE --log-level LEVEL <command>``.
"""

from __future__ import annotations

from contextlib import contextmanager

from .hooks import LayerTimingHandle, attach_layer_timing
from .log import LEVELS, Logger, get_log_level, get_logger, set_log_level
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    render_metrics_json,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    json_default,
    new_span_id,
    new_trace_id,
    read_jsonl,
)
from .prof import (
    NULL_PROFILER,
    NullProfiler,
    SamplingProfiler,
    StackAccumulator,
    disable_profile,
    enable_profile,
    get_profiler,
    profile_capture,
    set_profiler,
    write_profile,
)
from .registry import RunRegistry
from .audit import (
    NULL_AUDITOR,
    AuditRecord,
    Auditor,
    LayerAudit,
    LayerwiseErrorRecorder,
    NullAuditor,
    audit_capture,
    disable_audit,
    enable_audit,
    get_auditor,
    set_auditor,
)

__all__ = [
    "AuditRecord",
    "Auditor",
    "Counter",
    "Gauge",
    "Histogram",
    "LayerAudit",
    "LayerTimingHandle",
    "LayerwiseErrorRecorder",
    "LEVELS",
    "Logger",
    "MetricsRegistry",
    "NullAuditor",
    "NullMetrics",
    "NullProfiler",
    "NullTracer",
    "RunRegistry",
    "SamplingProfiler",
    "Span",
    "StackAccumulator",
    "Tracer",
    "attach_layer_timing",
    "audit_capture",
    "capture",
    "disable",
    "disable_audit",
    "disable_profile",
    "enable",
    "enable_audit",
    "enable_profile",
    "enabled",
    "get_auditor",
    "get_log_level",
    "get_logger",
    "get_metrics",
    "get_profiler",
    "get_tracer",
    "json_default",
    "new_span_id",
    "new_trace_id",
    "profile_capture",
    "read_jsonl",
    "render_metrics_json",
    "set_auditor",
    "set_log_level",
    "set_metrics",
    "set_profiler",
    "set_tracer",
    "write_profile",
]

_tracer = NULL_TRACER
_metrics = NULL_METRICS


def get_tracer():
    """The process-global tracer (a no-op unless :func:`enable` ran)."""
    return _tracer


def get_metrics():
    """The process-global metrics registry (no-op unless enabled)."""
    return _metrics


def set_tracer(tracer) -> None:
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER


def set_metrics(metrics) -> None:
    global _metrics
    _metrics = metrics if metrics is not None else NULL_METRICS


def enabled() -> bool:
    """True when either tracing or metrics collection is live."""
    return _tracer.enabled or _metrics.enabled


def enable(tracer=None, metrics=None):
    """Install live observability globally; returns ``(tracer, metrics)``.

    Fresh instances are created unless explicit ones are passed.
    """
    set_tracer(tracer if tracer is not None else Tracer())
    set_metrics(metrics if metrics is not None else MetricsRegistry())
    return _tracer, _metrics


def disable() -> None:
    """Restore the no-op tracer and registry."""
    set_tracer(NULL_TRACER)
    set_metrics(NULL_METRICS)


@contextmanager
def capture(tracer=None, metrics=None):
    """Scoped :func:`enable`; restores whatever was installed before."""
    previous = (_tracer, _metrics)
    try:
        yield enable(tracer=tracer, metrics=metrics)
    finally:
        set_tracer(previous[0])
        set_metrics(previous[1])
