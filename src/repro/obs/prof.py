"""Continuous profiling: a stdlib-only sampling wall-clock profiler.

A daemon thread walks :func:`sys._current_frames` at a configurable rate
and aggregates what it sees into per-thread *folded stacks* — the
``thread;frame;frame;frame count`` lines flamegraph tooling consumes.
Like the rest of :mod:`repro.obs` the profiler is **off by default** and
routes through a process-global singleton: :func:`get_profiler` returns
:data:`NULL_PROFILER` (every method a no-op, no thread, no allocation)
until :func:`enable_profile` or :func:`profile_capture` installs a live
:class:`SamplingProfiler`.

Cost model, metered not promised:

* **off** — zero: no sampler thread exists, ``tracemalloc`` is never
  started, and the hot-path hooks are one attribute lookup on the null
  singleton;
* **on** — every sample's own walk time is measured and the inter-sample
  sleep is stretched so the sampler's duty cycle never exceeds
  ``max_overhead`` (default 5%): on a process with many threads or deep
  stacks the profiler degrades its rate, never the workload.  The
  measured fraction is exposed as :meth:`SamplingProfiler.overhead_fraction`.

Exports: folded-stack text (``to_folded``) and speedscope JSON
(``to_speedscope``) — drop the latter onto https://www.speedscope.app
for an interactive flamegraph.  Allocation tracking is opt-in
(``memory=True``) via :mod:`tracemalloc` with top-N diffs attached to
pipeline stages through :func:`memory_snapshot` / :func:`memory_top_diff`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_MAX_OVERHEAD",
    "NULL_PROFILER",
    "NullProfiler",
    "SamplingProfiler",
    "StackAccumulator",
    "diff_rows",
    "disable_profile",
    "enable_profile",
    "get_profiler",
    "memory_snapshot",
    "memory_top_diff",
    "profile_capture",
    "set_profiler",
    "write_profile",
]

DEFAULT_HZ = 100.0
DEFAULT_MAX_OVERHEAD = 0.05

_SAMPLER_THREAD_NAME = "repro-prof-sampler"
_MAX_STACK_DEPTH = 128


def _frame_label(frame) -> str:
    """``module:qualname`` for a frame; generated kernels keep their
    synthetic filename (``<repro-fused-kernel>``) so backend frames stay
    attributable in the flamegraph."""
    code = frame.f_code
    module = frame.f_globals.get("__name__") if frame.f_globals is not None else None
    if not module:
        module = os.path.basename(code.co_filename) or "?"
    name = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}:{name}"


def _extract_stack(frame) -> "tuple[str, ...]":
    """Root-first frame labels for one thread's current frame."""
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < _MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return tuple(labels)


def diff_rows(current: dict, baseline: dict) -> list:
    """``[[folded, count], ...]`` of samples in ``current`` beyond ``baseline``."""
    rows = []
    for folded, count in current.items():
        fresh = count - baseline.get(folded, 0)
        if fresh > 0:
            rows.append([folded, fresh])
    rows.sort(key=lambda r: (-r[1], r[0]))
    return rows


class StackAccumulator:
    """Thread-safe folded-stack aggregation.

    Keys are folded strings ``thread;frame;...;frame`` (root first);
    values are sample counts.  Aggregation is a pure multiset sum, so it
    is invariant to sample order and to how batches were partitioned
    before merging — the property remote shipping relies on (and the
    hypothesis suite asserts).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def add(self, thread: str, stack, count: int = 1) -> None:
        folded = ";".join((str(thread),) + tuple(stack))
        with self._lock:
            self._counts[folded] = self._counts.get(folded, 0) + int(count)

    def merge_rows(self, rows) -> None:
        """Fold ``[[folded, count], ...]`` (a remote delta) into this one."""
        if not rows:
            return
        with self._lock:
            for row in rows:
                try:
                    folded, count = str(row[0]), int(row[1])
                except (TypeError, ValueError, IndexError):
                    continue  # telemetry is evidence, not a contract
                if count > 0:
                    self._counts[folded] = self._counts.get(folded, 0) + count

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._counts)

    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def rows(self) -> list:
        return diff_rows(self.snapshot(), {})

    def top(self, limit: int = 20) -> list:
        rows = self.rows()[: max(0, int(limit))]
        total = self.total() or 1
        return [
            {"stack": folded, "samples": count, "fraction": count / total}
            for folded, count in rows
        ]

    # -- exports -------------------------------------------------------

    def to_folded(self) -> str:
        """Folded-stack text: one ``thread;frame;... count`` line each."""
        lines = [f"{folded} {count}" for folded, count in sorted(self.snapshot().items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro profile") -> dict:
        """Speedscope JSON (``type: sampled``), one profile per thread."""
        frames: list[dict] = []
        frame_index: dict[str, int] = {}

        def index_of(label: str) -> int:
            idx = frame_index.get(label)
            if idx is None:
                idx = frame_index[label] = len(frames)
                frames.append({"name": label})
            return idx

        per_thread: dict[str, list] = {}
        for folded, count in sorted(self.snapshot().items()):
            parts = folded.split(";")
            thread, stack = parts[0], parts[1:]
            if not stack:
                continue
            per_thread.setdefault(thread, []).append(
                ([index_of(label) for label in stack], count)
            )
        profiles = []
        for thread in sorted(per_thread):
            samples = [stack for stack, _ in per_thread[thread]]
            weights = [count for _, count in per_thread[thread]]
            profiles.append(
                {
                    "type": "sampled",
                    "name": thread,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": sum(weights),
                    "samples": samples,
                    "weights": weights,
                }
            )
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": profiles,
        }


class SamplingProfiler:
    """Daemon-thread wall-clock sampler over :func:`sys._current_frames`.

    ``hz`` is the *target* rate; the governor stretches the sleep after
    each sample so the sampler's measured duty cycle stays at or below
    ``max_overhead`` (throttled samples are counted in
    ``stats["throttled"]``).  ``memory=True`` additionally starts
    :mod:`tracemalloc` for allocation snapshots (substantially more
    intrusive than sampling — it hooks every allocation).
    """

    enabled = True

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_overhead: float = DEFAULT_MAX_OVERHEAD,
        memory: bool = False,
        memory_top: int = 10,
    ) -> None:
        if not hz > 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if not 0 < max_overhead <= 1:
            raise ValueError(f"max_overhead must be in (0, 1], got {max_overhead}")
        self.hz = float(hz)
        self.max_overhead = float(max_overhead)
        self.memory = bool(memory)
        self.memory_top = int(memory_top)
        self.stacks = StackAccumulator()
        self.stats = {"samples": 0, "sample_seconds": 0.0, "throttled": 0}
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._started_memory = False
        self._started_at: "float | None" = None
        self._wall_seconds = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_memory = True
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name=_SAMPLER_THREAD_NAME, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self._wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        if self._started_memory:
            import tracemalloc

            tracemalloc.stop()
            self._started_memory = False
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def wall_seconds(self) -> float:
        live = 0.0
        if self._started_at is not None:
            live = time.perf_counter() - self._started_at
        return self._wall_seconds + live

    def overhead_fraction(self) -> float:
        """Measured sampler duty cycle: sampling seconds / profiled wall."""
        wall = self.wall_seconds()
        return (self.stats["sample_seconds"] / wall) if wall > 0 else 0.0

    # -- sampling loop -------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        while not self._stop.is_set():
            started = time.perf_counter()
            try:
                frames = sys._current_frames()
                names = {t.ident: t.name for t in threading.enumerate()}
                for ident, frame in frames.items():
                    if ident == own:
                        continue
                    stack = _extract_stack(frame)
                    if stack:
                        self.stacks.add(names.get(ident, f"thread-{ident}"), stack)
            except Exception:  # sampling must never take down the process
                pass
            cost = time.perf_counter() - started
            self.stats["samples"] += 1
            self.stats["sample_seconds"] += cost
            # overhead governor: a sample that cost c may not be followed
            # by less than c * (1/max_overhead - 1) of sleep
            floor = cost * (1.0 / self.max_overhead - 1.0)
            nap = interval - cost
            if floor > nap:
                nap = floor
                self.stats["throttled"] += 1
            self._stop.wait(max(nap, 0.0))

    # -- windows (per-execution deltas for result.extra["profile"]) ----

    def begin_window(self) -> dict:
        window = {
            "counts": self.stacks.snapshot(),
            "started": time.perf_counter(),
            "memory": memory_snapshot() if self.memory else None,
        }
        return window

    def end_window(self, window: dict, memory_stages: "dict | None" = None) -> dict:
        current = self.stacks.snapshot()
        rows = diff_rows(current, window["counts"])
        total = sum(count for _, count in rows) or 1
        out = {
            "hz": self.hz,
            "seconds": time.perf_counter() - window["started"],
            "samples": sum(count for _, count in rows),
            "overhead_fraction": self.overhead_fraction(),
            "hot": [
                {"stack": folded, "samples": count, "fraction": count / total}
                for folded, count in rows[:10]
            ],
        }
        if memory_stages:
            out["memory"] = memory_stages
        return out

    # -- rendering -----------------------------------------------------

    def render_hot(self, limit: int = 25) -> str:
        rows = self.stacks.top(limit)
        if not rows:
            return "(no samples yet)\n"
        lines = [f"{'samples':>8} {'share':>7}  hottest stacks (root;...;leaf)"]
        for row in rows:
            stack = row["stack"]
            if len(stack) > 160:
                stack = "..." + stack[-157:]
            lines.append(f"{row['samples']:>8} {100 * row['fraction']:>6.1f}%  {stack}")
        lines.append(
            f"total {self.stacks.total()} samples @ {self.hz:g} hz, "
            f"measured overhead {100 * self.overhead_fraction():.2f}%"
        )
        return "\n".join(lines) + "\n"


class NullProfiler:
    """No-op stand-in: profiling off costs one attribute lookup."""

    enabled = False
    hz = 0.0
    memory = False
    memory_top = 0
    stats = {"samples": 0, "sample_seconds": 0.0, "throttled": 0}

    def __init__(self) -> None:
        self.stacks = StackAccumulator()

    def start(self) -> "NullProfiler":
        return self

    def stop(self) -> "NullProfiler":
        return self

    @property
    def running(self) -> bool:
        return False

    def wall_seconds(self) -> float:
        return 0.0

    def overhead_fraction(self) -> float:
        return 0.0

    def begin_window(self) -> None:
        return None

    def end_window(self, window, memory_stages=None) -> dict:
        return {}

    def render_hot(self, limit: int = 25) -> str:
        return "(profiling off)\n"


NULL_PROFILER = NullProfiler()

_profiler = NULL_PROFILER


def get_profiler():
    """The process-global profiler (:data:`NULL_PROFILER` unless enabled)."""
    return _profiler


def set_profiler(profiler) -> None:
    global _profiler
    _profiler = profiler if profiler is not None else NULL_PROFILER


def enable_profile(
    hz: float = DEFAULT_HZ,
    max_overhead: float = DEFAULT_MAX_OVERHEAD,
    memory: bool = False,
) -> SamplingProfiler:
    """Install and start a live global profiler; returns it."""
    profiler = SamplingProfiler(hz=hz, max_overhead=max_overhead, memory=memory)
    profiler.start()
    set_profiler(profiler)
    return profiler


def disable_profile():
    """Stop and uninstall the global profiler; returns the stopped
    instance so its samples can still be exported."""
    previous = _profiler
    previous.stop()
    set_profiler(NULL_PROFILER)
    return previous


@contextmanager
def profile_capture(
    hz: float = DEFAULT_HZ,
    max_overhead: float = DEFAULT_MAX_OVERHEAD,
    memory: bool = False,
):
    """Scoped :func:`enable_profile`; restores the previous profiler."""
    previous = _profiler
    profiler = SamplingProfiler(hz=hz, max_overhead=max_overhead, memory=memory)
    profiler.start()
    set_profiler(profiler)
    try:
        yield profiler
    finally:
        profiler.stop()
        set_profiler(previous)


# -- allocation snapshots (tracemalloc top-N diffs) --------------------


def memory_snapshot():
    """A tracemalloc snapshot, or ``None`` when tracing is off."""
    import tracemalloc

    if not tracemalloc.is_tracing():
        return None
    return tracemalloc.take_snapshot()


def memory_top_diff(before, after, top: int = 10) -> list:
    """Top-N allocation growth rows between two snapshots."""
    if before is None or after is None:
        return []
    rows = []
    for stat in after.compare_to(before, "lineno")[: max(0, int(top))]:
        frame = stat.traceback[0] if stat.traceback else None
        location = f"{frame.filename}:{frame.lineno}" if frame else "?"
        rows.append(
            {
                "location": location,
                "size_diff_kb": stat.size_diff / 1024.0,
                "count_diff": stat.count_diff,
            }
        )
    return rows


# -- file export -------------------------------------------------------


def write_profile(profiler, path: str, name: "str | None" = None) -> str:
    """Write a profiler's samples to ``path``.

    ``.json`` (speedscope JSON, openable at speedscope.app) unless the
    name ends in ``.folded``/``.txt``, which selects folded-stack text.
    Returns the format written (``"speedscope"`` or ``"folded"``).
    """
    if path.endswith((".folded", ".txt")):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(profiler.stacks.to_folded())
        return "folded"
    document = profiler.stacks.to_speedscope(name=name or os.path.basename(path))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return "speedscope"
