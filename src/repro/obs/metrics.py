"""Metrics registry: counters, gauges and percentile histograms.

Counters track monotone event totals (``integrity_failures_total``),
gauges track last-written values (``compression_ratio``), histograms
collect raw observations and summarize them as percentiles
(``codec_compress_seconds``).  Every instrument is identified by a name
plus a sorted label set, so ``recoveries_total{policy="fallback-lossless"}``
and ``recoveries_total{policy="recompress-from-source"}`` are distinct
series — the same data model Prometheus uses, and the registry exports
both a JSON document and the Prometheus text exposition format.

The :class:`NullMetrics` registry backs the disabled mode: it hands out
shared no-op instruments so hot-path ``counter(...).inc()`` calls cost
two cheap method calls and no allocation.
"""

from __future__ import annotations

import math
import random
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "decode_counter_delta",
    "encode_counter_delta",
    "render_metrics_json",
]


def encode_counter_delta(delta: dict) -> list:
    """JSON-safe wire form of a :meth:`MetricsRegistry.counter_delta`.

    Deltas key each series by a tuple of label pairs — picklable for the
    fork seam, but not JSON-encodable for the distributed wire. The wire
    form is a flat row list: ``[{"name", "labels": [[k, v], ...],
    "value"}, ...]``.
    """
    return [
        {"name": name, "labels": [list(pair) for pair in key], "value": change}
        for name, series in delta.items()
        for key, change in series.items()
    ]


def decode_counter_delta(payload) -> dict:
    """Inverse of :func:`encode_counter_delta`; drops malformed rows.

    Rows arrive over the network, so anything mis-shapen is evidence to
    skip, not an exception: a telemetry frame must never be able to take
    the coordinator down.
    """
    delta: dict = {}
    if not isinstance(payload, list):
        return delta
    for row in payload:
        if not isinstance(row, dict):
            continue
        name = row.get("name")
        value = row.get("value")
        labels = row.get("labels", [])
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            continue
        try:
            key = tuple((str(k), str(v)) for k, v in labels)
        except (TypeError, ValueError):
            continue
        delta.setdefault(name, {})[key] = float(value)
    return delta


class Counter:
    """Monotonically increasing event total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount


class Gauge:
    """Last-written value (may go up or down)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Raw-sample histogram with exact percentile summaries.

    Observation counts in this codebase are usually small (per-stage
    timings, per-layer step sizes), so the histogram keeps the raw
    samples and computes exact percentiles by sorting on demand — no
    bucket-boundary error, no pre-declared bucket layout.

    Long chunked runs are the exception: a per-chunk timing series grows
    with the data, so retained samples are capped at ``cap`` (default
    :data:`DEFAULT_CAP`).  Below the cap percentiles stay exact; beyond
    it the retained set degrades gracefully to a uniform reservoir
    (Vitter's Algorithm R) and percentiles become estimates over it.
    ``sum``, ``count``, ``min`` and ``max`` remain exact regardless.
    Pass ``cap=None`` for the old unbounded behavior.
    """

    __slots__ = ("samples", "sum", "cap", "_count", "_min", "_max", "_random")

    #: default retained-sample budget; at 8 bytes a float this bounds a
    #: series at ~32 KiB no matter how many chunks a run observes
    DEFAULT_CAP = 4096

    def __init__(self, cap: int | None = DEFAULT_CAP) -> None:
        if cap is not None and cap <= 0:
            raise ValueError(f"histogram cap must be positive or None, got {cap}")
        self.samples: list[float] = []
        self.sum = 0.0
        self.cap = cap
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        # deterministic per-instance stream so exports are reproducible
        self._random = random.Random(0x5EED)

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.cap is None or len(self.samples) < self.cap:
            self.samples.append(value)
        else:
            # reservoir replacement: every observation so far retained
            # with equal probability cap / count
            slot = self._random.randrange(self._count)
            if slot < self.cap:
                self.samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, p: float) -> float:
        """Exact percentile (linear interpolation), ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = p / 100.0 * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    def summary(self) -> dict:
        if not self.samples:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self._min,
            "max": self._max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(label_key: tuple) -> str:
    if not label_key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return "{" + inner + "}"


class MetricsRegistry:
    """Name+labels keyed collection of counters, gauges and histograms.

    ``histogram_cap`` bounds the raw samples each histogram retains (see
    :class:`Histogram`); ``None`` disables the cap.
    """

    enabled = True

    def __init__(self, histogram_cap: int | None = Histogram.DEFAULT_CAP) -> None:
        self._series: dict[str, dict] = {}
        self._help: dict[str, str] = {}
        self.histogram_cap = histogram_cap
        # Guards series creation so worker threads (parallel chunked
        # execution) can request instruments concurrently.  Increments on
        # the instruments themselves stay lock-free.
        self._register_lock = threading.Lock()

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric name (idempotent)."""
        with self._register_lock:
            self._help[name] = str(help_text)

    def _instrument(self, kind: str, factory, name: str, labels: dict):
        with self._register_lock:
            entry = self._series.get(name)
            if entry is None:
                entry = {"kind": kind, "series": {}}
                self._series[name] = entry
            elif entry["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {entry['kind']}, "
                    f"cannot re-register as {kind}"
                )
            key = _label_key(labels)
            instrument = entry["series"].get(key)
            if instrument is None:
                instrument = factory()
                entry["series"][key] = instrument
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._instrument("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._instrument("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._instrument(
            "histogram", lambda: Histogram(cap=self.histogram_cap), name, labels
        )

    # -- reads ----------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge series (0 if never touched)."""
        entry = self._series.get(name)
        if entry is None:
            return 0.0
        instrument = entry["series"].get(_label_key(labels))
        return 0.0 if instrument is None else instrument.value

    def names(self) -> list[str]:
        return sorted(self._series)

    # -- cross-process merge ---------------------------------------------
    def counter_snapshot(self) -> dict:
        """Picklable ``{name: {label_key: value}}`` view of every counter.

        Forked workers take a snapshot after fork, diff against it after
        each task (:func:`counter_delta`) and ship the delta back with
        the result; the parent folds it in via
        :meth:`merge_counter_deltas`, keeping one coherent registry
        across process boundaries.
        """
        with self._register_lock:
            return {
                name: {
                    key: instrument.value
                    for key, instrument in entry["series"].items()
                }
                for name, entry in self._series.items()
                if entry["kind"] == "counter"
            }

    @staticmethod
    def counter_delta(current: dict, baseline: dict) -> dict:
        """Per-series increments between two :meth:`counter_snapshot` calls."""
        delta: dict = {}
        for name, series in current.items():
            base_series = baseline.get(name, {})
            for key, value in series.items():
                change = value - base_series.get(key, 0.0)
                if change:
                    delta.setdefault(name, {})[key] = change
        return delta

    def merge_counter_deltas(self, delta: dict) -> None:
        """Fold worker-side counter increments into this registry."""
        for name, series in delta.items():
            for key, change in series.items():
                self.counter(name, **dict(key)).inc(change)

    # -- export ----------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serializable snapshot of every series."""
        out: dict = {"metrics": []}
        for name in sorted(self._series):
            entry = self._series[name]
            for key in sorted(entry["series"]):
                instrument = entry["series"][key]
                row: dict = {"name": name, "kind": entry["kind"], "labels": dict(key)}
                if entry["kind"] == "histogram":
                    row.update(instrument.summary())
                else:
                    row["value"] = instrument.value
                out["metrics"].append(row)
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (histograms as summaries).

        Per the exposition grammar each metric name gets its ``# HELP``
        and ``# TYPE`` header exactly once, before all of its series —
        regardless of how many label sets the name carries.
        """
        lines: list[str] = []
        for name in sorted(self._series):
            entry = self._series[name]
            kind = entry["kind"]
            help_text = self._help.get(name) or f"repro runtime metric {name}"
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {'summary' if kind == 'histogram' else kind}")
            for key in sorted(entry["series"]):
                instrument = entry["series"][key]
                if kind == "histogram":
                    for quantile in (0.5, 0.9, 0.99):
                        labels = key + (("quantile", f"{quantile}"),)
                        value = instrument.percentile(100 * quantile)
                        lines.append(f"{name}{_label_suffix(labels)} {_fmt(value)}")
                    lines.append(f"{name}_sum{_label_suffix(key)} {_fmt(instrument.sum)}")
                    lines.append(f"{name}_count{_label_suffix(key)} {instrument.count}")
                else:
                    lines.append(f"{name}{_label_suffix(key)} {_fmt(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable summary table of every series."""
        return render_metrics_json(self.to_json())


def _escape_help(text: str) -> str:
    # HELP values escape backslash and newline per the exposition format
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def render_metrics_json(payload: dict) -> str:
    """Render a :meth:`MetricsRegistry.to_json` document as a text table.

    Shared by ``MetricsRegistry.render`` and the ``repro metrics`` CLI
    command, so a saved export and a live registry print identically.
    """
    rows = payload.get("metrics", [])
    if not rows:
        return "(no metrics recorded)"
    lines = [f"{'metric':<44} {'kind':<9} {'value':>12}"]
    for row in rows:
        label = row["name"] + _label_suffix(_label_key(row.get("labels", {})))
        if row["kind"] == "histogram":
            count = row.get("count", 0)
            if count:
                value = (
                    f"n={count} p50={row['p50']:.3g} "
                    f"p90={row['p90']:.3g} max={row['max']:.3g}"
                )
            else:
                value = "n=0"
            lines.append(f"{label:<44} {row['kind']:<9} {value}")
        else:
            lines.append(f"{label:<44} {row['kind']:<9} {row['value']:>12g}")
    return "\n".join(lines)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    samples: tuple = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """API-compatible no-op registry installed while observability is off."""

    enabled = False

    def describe(self, name: str, help_text: str) -> None:
        return None

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def value(self, name: str, **labels) -> float:
        return 0.0

    def names(self) -> list:
        return []

    def counter_snapshot(self) -> dict:
        return {}

    @staticmethod
    def counter_delta(current: dict, baseline: dict) -> dict:
        return {}

    def merge_counter_deltas(self, delta: dict) -> None:
        return None

    def to_json(self) -> dict:
        return {"metrics": []}

    def to_prometheus(self) -> str:
        return ""

    def render(self) -> str:
        return "(no metrics recorded)"


NULL_METRICS = NullMetrics()
