"""Per-layer forward/backward timing hooks for the nn substrate.

``attach_layer_timing`` wraps every leaf module's bound ``forward`` and
``backward`` with a timing shim that records observations into
``nn_layer_forward_seconds{layer=...}`` / ``nn_layer_backward_seconds``
histograms.  The wrapping is per *instance* (an attribute shadowing the
class method), so untouched models pay nothing and ``detach()`` restores
the original methods exactly.

The trainer attaches these automatically while observability is enabled,
giving the per-layer time breakdown the paper's Fig. 2 motivates without
a profiler.
"""

from __future__ import annotations

import time

from .metrics import NULL_METRICS

__all__ = ["LayerTimingHandle", "attach_layer_timing"]


class LayerTimingHandle:
    """Undo token returned by :func:`attach_layer_timing`."""

    def __init__(self) -> None:
        self._wrapped: list[tuple[object, str]] = []

    def _register(self, module: object, attr: str) -> None:
        self._wrapped.append((module, attr))

    @property
    def n_wrapped(self) -> int:
        return len(self._wrapped)

    def detach(self) -> None:
        """Remove every shim, restoring the original class methods."""
        for module, attr in self._wrapped:
            try:
                object.__delattr__(module, attr)
            except AttributeError:  # pragma: no cover - already detached
                pass
        self._wrapped.clear()

    def __enter__(self) -> "LayerTimingHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()


def attach_layer_timing(model, metrics=None, prefix: str = "nn_layer") -> LayerTimingHandle:
    """Time every leaf layer's ``forward``/``backward`` into histograms.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.module.Module` tree; only leaves (modules
        without children) are wrapped, so container overhead is not
        double-counted.
    metrics:
        Target registry; defaults to the globally installed one.
    prefix:
        Metric name prefix (``{prefix}_forward_seconds`` etc.).
    """
    if metrics is None:
        from . import get_metrics

        metrics = get_metrics()
    handle = LayerTimingHandle()
    if metrics is NULL_METRICS:
        return handle  # nothing to record into; leave the model untouched
    for name, module in model.named_modules():
        if next(module.children(), None) is not None:
            continue
        label = name or type(module).__name__
        for attr in ("forward", "backward"):
            original = getattr(module, attr, None)
            if original is None:
                continue
            histogram = metrics.histogram(f"{prefix}_{attr}_seconds", layer=label)
            object.__setattr__(module, attr, _timed(original, histogram))
            handle._register(module, attr)
    return handle


def _timed(fn, histogram):
    def wrapped(*args, **kwargs):
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            histogram.observe(time.perf_counter() - start)

    wrapped.__wrapped__ = fn
    return wrapped
