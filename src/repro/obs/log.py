"""Structured, leveled logging with key=value context.

Two output formats:

* ``plain`` — the message followed by optional ``key=value`` pairs.
  This is byte-identical to the ``print()`` calls it replaces when no
  context is attached, so CLI output (and the tests asserting on it)
  is unchanged.
* ``logfmt`` — ``level=info logger=cli msg="..." key=value`` lines for
  machine consumption.

Severities ``info`` and below write to stdout, ``warning`` and above to
stderr (the standard CLI convention).  Streams are resolved at emit
time, so test harnesses that swap ``sys.stdout`` (pytest's capsys)
observe every line.
"""

from __future__ import annotations

import sys

__all__ = ["Logger", "get_logger", "set_log_level", "get_log_level", "LEVELS"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_global_level = LEVELS["info"]
_loggers: dict[str, "Logger"] = {}


def _resolve_level(level: "int | str") -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.lower()]
    except KeyError:
        known = ", ".join(sorted(LEVELS))
        raise ValueError(f"unknown log level {level!r}; known: {known}") from None


def set_log_level(level: "int | str") -> None:
    """Set the process-wide threshold (affects every logger)."""
    global _global_level
    _global_level = _resolve_level(level)


def get_log_level() -> int:
    return _global_level


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return '"' + text.replace('"', '\\"') + '"'
    return text


class Logger:
    """A named logger; severity filtering is global, format is per-logger."""

    def __init__(self, name: str, fmt: str = "plain") -> None:
        if fmt not in ("plain", "logfmt"):
            raise ValueError(f"fmt must be 'plain' or 'logfmt', got {fmt!r}")
        self.name = name
        self.fmt = fmt

    def is_enabled_for(self, level: "int | str") -> bool:
        return _resolve_level(level) >= _global_level

    def log(self, level: str, message: str, **context) -> None:
        severity = _resolve_level(level)
        if severity < _global_level:
            return
        stream = sys.stderr if severity >= LEVELS["warning"] else sys.stdout
        if self.fmt == "plain":
            pairs = " ".join(f"{k}={_fmt_value(v)}" for k, v in context.items())
            line = message if not pairs else f"{message} {pairs}"
        else:
            parts = [f"level={level}", f"logger={self.name}", f"msg={_fmt_value(message)}"]
            parts.extend(f"{k}={_fmt_value(v)}" for k, v in context.items())
            line = " ".join(parts)
        stream.write(line + "\n")

    def debug(self, message: str, **context) -> None:
        self.log("debug", message, **context)

    def info(self, message: str, **context) -> None:
        self.log("info", message, **context)

    def warning(self, message: str, **context) -> None:
        self.log("warning", message, **context)

    def error(self, message: str, **context) -> None:
        self.log("error", message, **context)


def get_logger(name: str, fmt: str = "plain") -> Logger:
    """Shared logger instance per (name, fmt)."""
    key = f"{name}/{fmt}"
    logger = _loggers.get(key)
    if logger is None:
        logger = Logger(name, fmt=fmt)
        _loggers[key] = logger
    return logger
