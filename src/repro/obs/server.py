"""Live telemetry endpoint: a stdlib HTTP thread serving /metrics,
/status, /profile and /healthz.

The coordinator (or any long-running command) starts a
:class:`MetricsServer` on a daemon thread; scrapers poll ``/metrics``
for the Prometheus exposition of the process-global registry,
``/status`` for a caller-supplied JSON document (the coordinator wires
its live lease table here), ``/profile`` for the hot-stack table of the
process-global sampling profiler (no-op text when profiling is off) and
``/healthz`` for a liveness probe.  No
third-party dependency: ``http.server`` + ``ThreadingHTTPServer`` only,
and the handler never raises into the data path — telemetry failures
degrade to 500 responses.

``repro serve-metrics`` reuses the same server standalone to re-serve a
saved metrics export (JSON or Prometheus text) after a run has ended.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from . import get_metrics, get_profiler
from .metrics import _label_key, _label_suffix
from .trace import json_default

__all__ = ["MetricsServer", "prometheus_from_json_export"]


def prometheus_from_json_export(payload: dict) -> str:
    """Render a saved :meth:`MetricsRegistry.to_json` document as
    Prometheus exposition text.

    Lets ``repro serve-metrics`` serve a post-mortem ``--metrics`` JSON
    file on the same ``/metrics`` contract a live coordinator exposes.
    Histogram summaries are re-emitted as summary quantile series from
    the exported percentiles.
    """
    rows = payload.get("metrics", [])
    by_name: dict[str, list] = {}
    kinds: dict[str, str] = {}
    for row in rows:
        name = row.get("name")
        if not name:
            continue
        by_name.setdefault(name, []).append(row)
        kinds[name] = row.get("kind", "gauge")
    lines: list[str] = []
    for name in sorted(by_name):
        kind = kinds[name]
        lines.append(f"# HELP {name} repro runtime metric {name}")
        lines.append(f"# TYPE {name} {'summary' if kind == 'histogram' else kind}")
        for row in by_name[name]:
            key = _label_key(row.get("labels", {}))
            if kind == "histogram":
                for quantile, field in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                    if field in row:
                        labels = key + (("quantile", f"{quantile}"),)
                        lines.append(f"{name}{_label_suffix(labels)} {row[field]}")
                lines.append(f"{name}_sum{_label_suffix(key)} {row.get('sum', 0.0)}")
                lines.append(f"{name}_count{_label_suffix(key)} {row.get('count', 0)}")
            else:
                lines.append(f"{name}{_label_suffix(key)} {row.get('value', 0.0)}")
    return "\n".join(lines) + ("\n" if lines else "")


class _Handler(BaseHTTPRequestHandler):
    # the server instance stuffs itself onto the handler class via
    # ThreadingHTTPServer attribute lookup (self.server)
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr spam
        return None

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.server.owner.render_metrics().encode()
                self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/status":
                document = self.server.owner.render_status()
                body = json.dumps(document, sort_keys=True, default=json_default).encode()
                self._reply(200, body, "application/json")
            elif path == "/profile":
                body = self.server.owner.render_profile().encode()
                self._reply(200, body, "text/plain; charset=utf-8")
            elif path == "/healthz":
                self._reply(200, b"ok\n", "text/plain; charset=utf-8")
            else:
                self._reply(404, b"not found\n", "text/plain; charset=utf-8")
        except Exception as exc:  # telemetry must not crash the run
            try:
                self._reply(500, f"error: {exc}\n".encode(), "text/plain; charset=utf-8")
            except OSError:
                pass


class MetricsServer:
    """Daemon-thread HTTP server exposing live metrics and status.

    ``metrics_fn`` defaults to rendering the process-global registry at
    request time (so it tracks whatever ``obs.enable`` installed);
    ``status_fn`` supplies the ``/status`` JSON document and defaults to
    an empty object.  ``port=0`` binds an ephemeral port; the bound
    address is available as :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_fn=None,
        status_fn=None,
        profile_fn=None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._metrics_fn = metrics_fn
        self._status_fn = status_fn
        self._profile_fn = profile_fn
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- handler callbacks -----------------------------------------------
    def render_metrics(self) -> str:
        if self._metrics_fn is not None:
            return self._metrics_fn()
        return get_metrics().to_prometheus()

    def render_status(self) -> dict:
        if self._status_fn is not None:
            return self._status_fn()
        return {}

    def render_profile(self) -> str:
        if self._profile_fn is not None:
            return self._profile_fn()
        return get_profiler().render_hot()

    # -- lifecycle --------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            return (self.host, self.port)
        return self._httpd.server_address[:2]

    def start(self) -> tuple[str, int]:
        if self._httpd is not None:
            return self.address
        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self
        # serve_forever checks its shutdown flag once per poll_interval,
        # and stop() blocks for the remainder of the current interval —
        # the coordinator calls stop() inside its run-resolution path,
        # so a coarse interval here is wall time billed to every
        # distributed run.  50 idle wakes/s costs ~nothing.
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.02},
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
