"""Error-budget audit: layerwise predicted-vs-observed bound telemetry.

The paper's Inequality (3) predicts how far a quantized model run on
lossily-compressed inputs may drift from the clean FP32 run.  The rest
of the codebase *uses* that prediction (the planner allocates budgets
with it); this module *checks* it, continuously, on live pipeline
executions:

* :class:`LayerwiseErrorRecorder` walks the clean and the quantized
  model through the same batch in lockstep (forward hooks on the
  top-level :class:`~repro.nn.sequential.Sequential` children of both),
  measures the observed L2/L-infinity activation error at every segment
  end — just before the next weight-bearing layer, exactly the points
  the recurrence of :func:`~repro.core.bounds.propagate_chain_trajectory`
  bounds — and compares each against the predicted cumulative envelope
  from :meth:`~repro.core.errorflow.ErrorFlowAnalyzer.layer_bounds`,
  seeded with the *observed* per-sample input error.
* :class:`AuditRecord` aggregates one run's per-layer verdicts plus a
  QoI-level verdict with full provenance (codec, format, norm, plan
  tolerances, weight version) for persistence and diffing.
* :class:`Auditor` is the process-global switchboard, off by default
  through the same null-object pattern as tracing/metrics: pipeline hot
  paths pay one attribute check when auditing is disabled.  When
  enabled it appends every record to a
  :class:`~repro.obs.registry.RunRegistry`, emits
  ``audit_runs_total`` / ``audit_violations_total`` /
  ``audit_tightness_ratio`` / ``audit_layer_tightness`` metrics, and
  mirrors violations into the resilience layer's
  ``contract_violations_total`` family.

Verdicts per comparison point: ``VIOLATION`` when observed error exceeds
the predicted bound beyond numerical slack (the theory failed — this
should never happen for the deterministic compression term and is a
red-alert for the CLT quantization estimate), ``loose`` when the bound
overshoots reality by more than ``1/loose_below`` (tightness below 5 %
by default — the bound is sound but wasteful), ``ok`` otherwise.

Residual/graph models (no pure chain of linears) fall back to a
QoI-only audit: the end-to-end bound is still checked, the per-layer
table is empty and ``layerwise`` is ``False``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .log import get_logger
from .registry import RunRegistry

__all__ = [
    "AuditRecord",
    "Auditor",
    "LayerAudit",
    "LayerwiseErrorRecorder",
    "NULL_AUDITOR",
    "NullAuditor",
    "VERDICT_LOOSE",
    "VERDICT_OK",
    "VERDICT_VIOLATION",
    "audit_capture",
    "classify",
    "disable_audit",
    "enable_audit",
    "get_auditor",
    "set_auditor",
]

VERDICT_OK = "ok"
VERDICT_LOOSE = "loose"
VERDICT_VIOLATION = "VIOLATION"

#: relative slack before an observed > predicted comparison is a
#: violation — covers float64 reduction noise, not modelling error
VIOLATION_REL_EPS = 1e-6
#: absolute floor below which observed error counts as zero
VIOLATION_ABS_EPS = 1e-12
#: tightness below this is flagged "loose" (bound > 20x reality)
DEFAULT_LOOSE_BELOW = 0.05

_LOG = get_logger("audit")


def classify(
    observed: float, predicted: float, loose_below: float = DEFAULT_LOOSE_BELOW
) -> tuple[float, str]:
    """``(tightness, verdict)`` for one observed-vs-predicted comparison.

    Tightness is ``observed / predicted`` — 1.0 means the bound is
    exactly attained, small values mean a slack (sound but pessimistic)
    bound, values above 1 mean the prediction was wrong.
    """
    observed = float(observed)
    predicted = float(predicted)
    if predicted <= 0.0:
        if observed <= VIOLATION_ABS_EPS:
            return 0.0, VERDICT_OK
        return float("inf"), VERDICT_VIOLATION
    tightness = observed / predicted
    if tightness > 1.0 + VIOLATION_REL_EPS:
        return tightness, VERDICT_VIOLATION
    if tightness < loose_below:
        return tightness, VERDICT_LOOSE
    return tightness, VERDICT_OK


@dataclass
class LayerAudit:
    """Predicted-vs-observed comparison at one segment end."""

    index: int
    name: str
    observed_l2: float
    observed_linf: float
    predicted_bound: float
    tightness: float
    verdict: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "observed_l2": self.observed_l2,
            "observed_linf": self.observed_linf,
            "predicted_bound": self.predicted_bound,
            "tightness": self.tightness,
            "verdict": self.verdict,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LayerAudit":
        return cls(
            index=int(payload["index"]),
            name=str(payload["name"]),
            observed_l2=float(payload["observed_l2"]),
            observed_linf=float(payload["observed_linf"]),
            predicted_bound=float(payload["predicted_bound"]),
            tightness=float(payload["tightness"]),
            verdict=str(payload["verdict"]),
        )


@dataclass
class AuditRecord:
    """One audited pipeline execution: measurements plus provenance.

    The measurement fields (errors, bounds, verdicts) are filled by
    :meth:`LayerwiseErrorRecorder.audit`; the provenance fields (codec,
    format, plan tolerances, label) by whoever owns the run context —
    :meth:`~repro.core.pipeline.InferencePipeline.execute` or the CLI.
    """

    qoi_predicted: float
    qoi_observed: float
    qoi_tightness: float
    verdict: str
    input_error_l2: float
    input_error_linf: float
    weight_version: int = 0
    layers: list[LayerAudit] = field(default_factory=list)
    layerwise: bool = True
    run_id: str = ""
    label: str = ""
    codec: str = ""
    fmt: str = ""
    norm: str = ""
    qoi_tolerance: float = 0.0
    input_tolerance: float = 0.0
    created_unix: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def violations(self) -> list[str]:
        """Names of every comparison point whose bound was exceeded."""
        names = [layer.name for layer in self.layers if layer.verdict == VERDICT_VIOLATION]
        if self.verdict == VERDICT_VIOLATION and not self.layers:
            names.append("qoi")
        return names

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "label": self.label,
            "codec": self.codec,
            "fmt": self.fmt,
            "norm": self.norm,
            "qoi_tolerance": self.qoi_tolerance,
            "input_tolerance": self.input_tolerance,
            "weight_version": self.weight_version,
            "input_error_l2": self.input_error_l2,
            "input_error_linf": self.input_error_linf,
            "qoi_predicted": self.qoi_predicted,
            "qoi_observed": self.qoi_observed,
            "qoi_tightness": self.qoi_tightness,
            "verdict": self.verdict,
            "layerwise": self.layerwise,
            "layers": [layer.to_dict() for layer in self.layers],
            "created_unix": self.created_unix,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditRecord":
        return cls(
            qoi_predicted=float(payload["qoi_predicted"]),
            qoi_observed=float(payload["qoi_observed"]),
            qoi_tightness=float(payload["qoi_tightness"]),
            verdict=str(payload["verdict"]),
            input_error_l2=float(payload["input_error_l2"]),
            input_error_linf=float(payload["input_error_linf"]),
            weight_version=int(payload.get("weight_version", 0)),
            layers=[LayerAudit.from_dict(l) for l in payload.get("layers", [])],
            layerwise=bool(payload.get("layerwise", True)),
            run_id=str(payload.get("run_id", "")),
            label=str(payload.get("label", "")),
            codec=str(payload.get("codec", "")),
            fmt=str(payload.get("fmt", "")),
            norm=str(payload.get("norm", "")),
            qoi_tolerance=float(payload.get("qoi_tolerance", 0.0)),
            input_tolerance=float(payload.get("input_tolerance", 0.0)),
            created_unix=float(payload.get("created_unix", 0.0)),
            metadata=dict(payload.get("metadata", {})),
        )


def _flat(samples: np.ndarray) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    return samples.reshape(len(samples), -1)


def _max_errors(clean: np.ndarray, perturbed: np.ndarray) -> tuple[float, float]:
    """Worst per-sample ``(L2, L-infinity)`` difference of two batches."""
    delta = _flat(clean) - _flat(perturbed)
    if not delta.size:
        return 0.0, 0.0
    return (
        float(np.linalg.norm(delta, axis=1).max()),
        float(np.abs(delta).max()),
    )


def _collect_child_outputs(sequential, samples: np.ndarray):
    """Forward ``samples`` once, capturing every top-level child output.

    Uses :meth:`~repro.nn.module.Module.register_forward_hook`, so the
    model's forward logic is untouched; outputs arrive in execution
    order, which for a ``Sequential`` is child order.
    """
    outputs: list[np.ndarray] = []
    handles = [
        child.register_forward_hook(
            lambda module, inputs, output: outputs.append(output)
        )
        for child in sequential
    ]
    try:
        final = sequential(samples)
    finally:
        for handle in handles:
            handle.remove()
    return outputs, final


def _weight_positions(sequential) -> list[int]:
    """Indices of the weight-bearing top-level children, forward order."""
    from ..nn.conv import Conv2d, SpectralConv2d
    from ..nn.linear import Linear, SpectralLinear

    weight_types = (Linear, SpectralLinear, Conv2d, SpectralConv2d)
    return [
        index
        for index, child in enumerate(sequential)
        if isinstance(child, weight_types)
    ]


class LayerwiseErrorRecorder:
    """Dual-path lockstep recorder for one (model, quantized model) pair.

    Parameters
    ----------
    model:
        The clean trained network (spectral layers allowed).
    quantized:
        Its :class:`~repro.quant.quantizer.QuantizedModel` — supplies the
        per-layer formats for the predicted envelope and the perturbed
        forward path.
    n_input:
        Input dimensionality per sample; defaults to the analyzer's
        first-layer fan-in (pass ``prod(sample.shape[1:])`` for conv
        models).
    quant_safety:
        Forwarded to :class:`~repro.core.errorflow.ErrorFlowAnalyzer`.
    """

    def __init__(
        self,
        model,
        quantized,
        n_input: "int | None" = None,
        quant_safety: float = 1.0,
    ) -> None:
        self.model = model
        self.quantized = quantized
        self.n_input = n_input
        self.quant_safety = float(quant_safety)
        self._analyzer = None

    @property
    def analyzer(self):
        """Lazily-built bound analyzer (core import deferred: obs must
        stay importable before core)."""
        if self._analyzer is None:
            from ..core.errorflow import ErrorFlowAnalyzer

            self._analyzer = ErrorFlowAnalyzer(
                self.model, n_input=self.n_input, quant_safety=self.quant_safety
            )
        return self._analyzer

    def supports_layerwise(self) -> bool:
        """Whether per-layer envelopes are well-defined for this model.

        Requires a flat ``Sequential`` whose weight-bearing children map
        one-to-one onto the spec's linear chain (residual graphs and
        nested containers fall back to the QoI-only audit).
        """
        from ..nn.sequential import Sequential

        if not isinstance(self.model, Sequential):
            return False
        if not isinstance(self.quantized.model, Sequential):
            return False
        if not self.analyzer.spec.is_chain:
            return False
        n_linears = len(self.analyzer.spec.linear_specs())
        return (
            len(_weight_positions(self.model)) == n_linears
            and len(_weight_positions(self.quantized.model)) == n_linears
        )

    def audit(
        self,
        clean_samples: np.ndarray,
        perturbed_samples: np.ndarray,
        loose_below: float = DEFAULT_LOOSE_BELOW,
    ) -> AuditRecord:
        """Run both paths on one batch and score every comparison point.

        ``clean_samples`` are the reference model inputs, ``perturbed_samples``
        the same batch after the lossy round-trip; their difference seeds
        the predicted envelope, so the comparison isolates *propagation*
        (did the recurrence cover how the network amplified this exact
        input error?) from the codec's own contract, which the
        resilience guards check separately.
        """
        clean = np.asarray(clean_samples, dtype=np.float32)
        perturbed = np.asarray(perturbed_samples, dtype=np.float32)
        if clean.shape != perturbed.shape:
            from ..exceptions import ShapeError

            raise ShapeError(
                f"audit batches disagree: clean {clean.shape} vs "
                f"perturbed {perturbed.shape}"
            )
        input_l2, input_linf = _max_errors(clean, perturbed)
        formats = self.quantized.formats

        self.model.eval()
        self.quantized.model.eval()
        if self.supports_layerwise():
            layers = self._audit_layerwise(clean, perturbed, input_l2, loose_below)
            qoi_predicted = layers[-1].predicted_bound
            qoi_observed = layers[-1].observed_l2
            layerwise = True
        else:
            layers = []
            qoi_predicted = float(self.analyzer.combined_bound(input_l2, formats))
            reference = self.model(clean)
            outputs = self.quantized(perturbed)
            qoi_observed, _ = _max_errors(reference, outputs)
            layerwise = False

        tightness, verdict = classify(qoi_observed, qoi_predicted, loose_below)
        return AuditRecord(
            qoi_predicted=qoi_predicted,
            qoi_observed=qoi_observed,
            qoi_tightness=tightness,
            verdict=verdict,
            input_error_l2=input_l2,
            input_error_linf=input_linf,
            weight_version=int(self.model.weight_version()),
            layers=layers,
            layerwise=layerwise,
        )

    def _audit_layerwise(
        self,
        clean: np.ndarray,
        perturbed: np.ndarray,
        input_l2: float,
        loose_below: float,
    ) -> list[LayerAudit]:
        bounds = self.analyzer.layer_bounds(input_l2, self.quantized.formats)
        clean_outputs, _ = _collect_child_outputs(self.model, clean)
        quant_outputs, _ = _collect_child_outputs(self.quantized.model, perturbed)
        positions = _weight_positions(self.model)
        # The trajectory state after linear spec l bounds the activation
        # error at the *segment end*: the output feeding the next weight
        # layer (or the network output for the last spec).
        points = [positions[l + 1] - 1 for l in range(len(positions) - 1)]
        points.append(len(self.model) - 1)
        names = self.quantized.layer_names
        layers: list[LayerAudit] = []
        for index, (point, bound) in enumerate(zip(points, bounds)):
            observed_l2, observed_linf = _max_errors(
                clean_outputs[point], quant_outputs[point]
            )
            tightness, verdict = classify(observed_l2, bound, loose_below)
            layers.append(
                LayerAudit(
                    index=index,
                    name=names[index] if index < len(names) else str(index),
                    observed_l2=observed_l2,
                    observed_linf=observed_linf,
                    predicted_bound=float(bound),
                    tightness=tightness,
                    verdict=verdict,
                )
            )
        return layers


class Auditor:
    """Process-global audit switchboard (live implementation).

    Thread-safe: parallel chunked execution audits every chunk from its
    worker thread; record appends (memory and registry) are serialized
    by a lock, and the registry write itself is a single ``O_APPEND``
    syscall.
    """

    enabled = True

    def __init__(
        self,
        registry: "RunRegistry | None" = None,
        loose_below: float = DEFAULT_LOOSE_BELOW,
        quant_safety: float = 1.0,
        label: str = "",
    ) -> None:
        self.registry = registry
        self.loose_below = float(loose_below)
        self.quant_safety = float(quant_safety)
        self.label = label
        self.records: list[AuditRecord] = []
        self._lock = threading.Lock()

    def detached(self) -> "Auditor":
        """A registry-less clone with the same thresholds.

        Forked workers must keep auditing (the per-chunk record rides
        back to the parent inside ``PipelineResult.extra``) but must not
        write the shared run registry — concurrent appends from several
        processes would race on run-id assignment.  The parent re-records
        each reconstructed record through its own auditor instead.
        """
        return Auditor(
            registry=None,
            loose_below=self.loose_below,
            quant_safety=self.quant_safety,
            label=self.label,
        )

    def adopt(self, record: AuditRecord) -> AuditRecord:
        """Register a record produced in another process under this auditor.

        Pool workers audit with a :meth:`detached` clone and ship the
        record back to the parent; resumed checkpoints replay records
        the killed run already persisted.  Either way the record gets a
        fresh sequential run id here and is stored in memory + registry,
        but its metrics are **not** re-emitted — the producing process
        emitted them once (worker counter deltas merge separately).
        """
        record.run_id = ""
        if not record.created_unix:
            record.created_unix = time.time()
        if not record.label:
            record.label = self.label
        with self._lock:
            if self.registry is not None:
                payload = self.registry.append(record)
                record.run_id = payload["run_id"]
            self.records.append(record)
        return record

    def record_run(self, record: AuditRecord) -> AuditRecord:
        """Persist one record and emit its metrics; returns the record
        with its registry-assigned ``run_id`` backfilled."""
        if not record.created_unix:
            record.created_unix = time.time()
        if not record.label:
            record.label = self.label
        with self._lock:
            if self.registry is not None:
                payload = self.registry.append(record)
                record.run_id = payload["run_id"]
            self.records.append(record)
        self._emit(record)
        return record

    def _emit(self, record: AuditRecord) -> None:
        from . import get_metrics

        metrics = get_metrics()
        metrics.counter("audit_runs_total").inc()
        metrics.gauge(
            "audit_tightness_ratio",
            fmt=record.fmt or "?",
            codec=record.codec or "?",
        ).set(record.qoi_tightness)
        for layer in record.layers:
            metrics.histogram("audit_layer_tightness").observe(layer.tightness)
        violations = record.violations
        if violations:
            metrics.counter("audit_violations_total").inc(len(violations))
            from ..resilience.policy import record_audit_violation

            record_audit_violation(record.codec or "pipeline", count=len(violations))
            _LOG.warning(
                "audit bound VIOLATION: observed error exceeded the predicted envelope",
                run_id=record.run_id or "-",
                at=",".join(violations),
                qoi_tightness=record.qoi_tightness,
                fmt=record.fmt or "?",
            )

    @property
    def violation_count(self) -> int:
        with self._lock:
            return sum(len(record.violations) for record in self.records)


class NullAuditor:
    """No-op stand-in installed by default: one attribute check on the
    hot path, nothing else."""

    enabled = False
    registry = None
    loose_below = DEFAULT_LOOSE_BELOW
    quant_safety = 1.0
    label = ""

    @property
    def records(self) -> list:
        return []

    def record_run(self, record: AuditRecord) -> AuditRecord:
        return record

    @property
    def violation_count(self) -> int:
        return 0


NULL_AUDITOR = NullAuditor()

_auditor = NULL_AUDITOR


def get_auditor():
    """The process-global auditor (a no-op unless :func:`enable_audit` ran)."""
    return _auditor


def set_auditor(auditor) -> None:
    global _auditor
    _auditor = auditor if auditor is not None else NULL_AUDITOR


def enable_audit(
    registry: "RunRegistry | str | None" = None,
    loose_below: float = DEFAULT_LOOSE_BELOW,
    quant_safety: float = 1.0,
    label: str = "",
) -> Auditor:
    """Install a live auditor globally; returns it.

    ``registry`` may be a :class:`~repro.obs.registry.RunRegistry` or a
    path string (a registry is built around it); ``None`` keeps records
    in memory only.
    """
    if isinstance(registry, str):
        registry = RunRegistry(registry)
    auditor = Auditor(
        registry=registry,
        loose_below=loose_below,
        quant_safety=quant_safety,
        label=label,
    )
    set_auditor(auditor)
    return auditor


def disable_audit() -> None:
    """Restore the no-op auditor."""
    set_auditor(NULL_AUDITOR)


@contextmanager
def audit_capture(
    registry: "RunRegistry | str | None" = None,
    loose_below: float = DEFAULT_LOOSE_BELOW,
    quant_safety: float = 1.0,
    label: str = "",
):
    """Scoped :func:`enable_audit`; restores the previous auditor."""
    previous = _auditor
    try:
        yield enable_audit(
            registry=registry,
            loose_below=loose_below,
            quant_safety=quant_safety,
            label=label,
        )
    finally:
        set_auditor(previous)
