"""Persistent audit-run registry: append-only JSONL with diff and drift.

Every audited pipeline execution becomes one JSON line in a registry
file (written through :func:`repro.io.serialization.append_jsonl`, a
single ``O_APPEND`` write, so concurrent chunk workers interleave whole
records and a crash can at worst lose its own line).  The registry is
the memory the bound-tightness telemetry needs to become *regression*
telemetry: ``diff`` compares the per-layer tightness ratios of any two
runs, and ``detect_drift`` flags layers whose tightness regressed beyond
a threshold since the previous run — the "did a code or weight change
silently loosen the bound?" question the paper's Figs. 5–8 answer once,
asked continuously.

Run ids are assigned at append time as ``run-0001``, ``run-0002``, … so
two CI runs against the same registry are directly diffable; records
that already carry a ``run_id`` (re-imports, merges) keep it.
"""

from __future__ import annotations

__all__ = ["RunRegistry"]

#: relative tightness increase treated as a regression by default (20%)
DEFAULT_DRIFT_THRESHOLD = 0.2

#: ignore drift on layers whose tightness is below this floor — at such
#: slack levels a "regression" is numerical noise, not a loosening bound
DRIFT_TIGHTNESS_FLOOR = 1e-9


class RunRegistry:
    """Append-only JSONL store of :class:`~repro.obs.audit.AuditRecord` rows.

    Parameters
    ----------
    path:
        Registry file; created on first append.  Reads tolerate a
        missing file (empty registry) and a torn trailing line.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # -- persistence -----------------------------------------------------
    def append(self, record) -> dict:
        """Persist one record (an ``AuditRecord`` or a plain dict).

        Assigns a sequential ``run_id`` when the record has none and
        returns the payload as written.
        """
        from ..io.serialization import append_jsonl
        from .trace import json_default

        payload = record.to_dict() if hasattr(record, "to_dict") else dict(record)
        if not payload.get("run_id"):
            payload["run_id"] = f"run-{len(self) + 1:04d}"
        append_jsonl(self.path, payload, default=json_default)
        return payload

    def runs(self) -> list[dict]:
        """Every persisted run, oldest first."""
        from ..io.serialization import read_jsonl_records

        return read_jsonl_records(self.path)

    def __len__(self) -> int:
        return len(self.runs())

    def run_ids(self) -> list[str]:
        return [run.get("run_id", "?") for run in self.runs()]

    def last(self, n: int = 1) -> list[dict]:
        """The most recent ``n`` runs, oldest of them first."""
        return self.runs()[-n:]

    def get(self, key: "str | int") -> dict:
        """Look up a run by ``run_id`` or by (possibly negative) index."""
        runs = self.runs()
        if isinstance(key, int):
            try:
                return runs[key]
            except IndexError:
                raise KeyError(
                    f"registry {self.path!r} has {len(runs)} runs, no index {key}"
                ) from None
        for run in runs:
            if run.get("run_id") == key:
                return run
        known = ", ".join(self.run_ids()) or "(empty)"
        raise KeyError(f"no run {key!r} in registry {self.path!r}; known: {known}")

    # -- comparison ------------------------------------------------------
    def diff(
        self,
        key_a: "str | int",
        key_b: "str | int",
        threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ) -> dict:
        """Layer-by-layer tightness comparison of two runs.

        ``threshold`` is the relative tightness increase from A to B that
        counts as a regression.  Layers are matched by name; a layer
        present in only one run is reported under ``structure_changed``
        rather than silently dropped.
        """
        run_a, run_b = self.get(key_a), self.get(key_b)
        return diff_runs(run_a, run_b, threshold=threshold)

    def detect_drift(self, threshold: float = DEFAULT_DRIFT_THRESHOLD) -> "dict | None":
        """Diff the latest run against its predecessor (None if < 2 runs)."""
        runs = self.runs()
        if len(runs) < 2:
            return None
        return diff_runs(runs[-2], runs[-1], threshold=threshold)


def _layer_map(run: dict) -> dict:
    return {layer.get("name"): layer for layer in run.get("layers", [])}


def diff_runs(
    run_a: dict, run_b: dict, threshold: float = DEFAULT_DRIFT_THRESHOLD
) -> dict:
    """Structural diff of two persisted audit records (A = baseline)."""
    layers_a, layers_b = _layer_map(run_a), _layer_map(run_b)
    shared = [name for name in layers_a if name in layers_b]
    rows = []
    regressions: list[str] = []
    new_violations: list[str] = []
    for name in shared:
        a, b = layers_a[name], layers_b[name]
        ta = float(a.get("tightness", 0.0))
        tb = float(b.get("tightness", 0.0))
        delta = tb - ta
        relative = delta / ta if ta > 0 else (float("inf") if delta > 0 else 0.0)
        regressed = tb > DRIFT_TIGHTNESS_FLOOR and relative > threshold
        if regressed:
            regressions.append(name)
        if b.get("verdict") == "VIOLATION" and a.get("verdict") != "VIOLATION":
            new_violations.append(name)
        rows.append(
            {
                "name": name,
                "index": b.get("index", a.get("index")),
                "tightness_a": ta,
                "tightness_b": tb,
                "delta": delta,
                "relative": relative,
                "regressed": regressed,
            }
        )
    qoi_a = float(run_a.get("qoi_tightness", 0.0))
    qoi_b = float(run_b.get("qoi_tightness", 0.0))
    return {
        "run_a": run_a.get("run_id"),
        "run_b": run_b.get("run_id"),
        "weight_version_a": run_a.get("weight_version"),
        "weight_version_b": run_b.get("weight_version"),
        "weights_changed": run_a.get("weight_version") != run_b.get("weight_version"),
        "threshold": float(threshold),
        "qoi": {
            "tightness_a": qoi_a,
            "tightness_b": qoi_b,
            "delta": qoi_b - qoi_a,
            "relative": (qoi_b - qoi_a) / qoi_a if qoi_a > 0 else 0.0,
        },
        "layers": rows,
        "regressions": regressions,
        "new_violations": new_violations,
        "structure_changed": sorted(
            set(layers_a).symmetric_difference(layers_b)
        ),
        "verdict_a": run_a.get("verdict"),
        "verdict_b": run_b.get("verdict"),
    }
