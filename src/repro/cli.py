"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``analyze``     — spectral norms, Eq. (5) gain and per-format bounds of
                    a trained workload;
* ``plan``        — allocate a QoI tolerance between quantization and
                    compression;
* ``pipeline``    — run the full error-bounded inference pipeline;
* ``coordinate`` /
  ``worker``      — distributed chunked execution: the coordinator
                    serves the chunk manifest as TTL leases over TCP,
                    workers compute leased chunks on their local
                    supervised pool and stream results back;
* ``compress`` /
  ``decompress``  — error-bounded (de)compression of ``.npy`` arrays;
* ``store``       — summarize a :class:`~repro.io.DatasetStore` directory;
* ``metrics``     — render a metrics export produced with ``--metrics``;
* ``audit``       — predicted-vs-observed error audits: ``record`` runs
                    an audited pipeline execution into a registry,
                    ``report`` summarizes a registry and checks drift,
                    ``diff`` compares the bound tightness of two runs;
* ``profile``     — run any other command under the sampling profiler
                    and write a flamegraph-ready export (also available
                    as the global ``--profile FILE`` flag);
* ``bench``       — persistent benchmark history: ``record`` appends a
                    ``benchmarks/*.py`` rows file to a JSONL registry,
                    ``report`` lists it, ``diff`` gates two runs against
                    the robust regression detector (nonzero exit on a
                    flagged slowdown — the CI perf gate).

Observability is wired through global flags: ``--trace FILE`` writes a
JSONL span trace of the run, ``--metrics FILE`` a metrics snapshot
(JSON, or Prometheus text when the file ends in ``.prom``/``.txt``),
``--trace-summary`` prints the span tree to stderr, ``--audit FILE``
audits every pipeline execution into a JSONL run registry, and
``--log-level`` adjusts verbosity.  All human-readable output goes
through the structured logger; at the default level its ``plain``
format matches the historical ``print()`` output byte for byte.

Telemetry files are flushed even when a command raises: export and
teardown run in nested ``finally`` blocks, so a crashed run still
leaves its trace, metrics and audit records on disk and the process
never exits with live observability singletons installed.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from . import __version__
from .compress import ErrorBoundMode, get_compressor
from .core import InferencePipeline, TolerancePlanner
from .exceptions import ConfigurationError, ReproError
from .io import DatasetStore, blob_from_bytes, blob_to_bytes
from .nn.backend import resolve_backend_name
from .obs import (
    RunRegistry,
    audit_capture,
    disable as obs_disable,
    disable_audit,
    disable_profile,
    enable as obs_enable,
    enable_audit,
    enable_profile,
    get_auditor,
    get_logger,
    get_metrics,
    get_profiler,
    get_tracer,
    profile_capture,
    render_metrics_json,
    set_log_level,
    write_profile,
)
from .obs.prof import DEFAULT_HZ
from .obs.audit import DEFAULT_LOOSE_BELOW
from .obs.registry import DEFAULT_DRIFT_THRESHOLD
from .perf.history import (
    DEFAULT_BENCH_THRESHOLD,
    DEFAULT_MAD_K,
    DEFAULT_MIN_REPS,
    BenchRegistry,
    describe_bench_diff,
)
from .quant import STANDARD_FORMATS
from .workloads import WORKLOAD_NAMES, load_workload

__all__ = ["main", "build_parser"]

_LOG = get_logger("cli")


def _add_plan_flags(sub) -> None:
    """Shared plan-identity flags for the distributed commands.

    Coordinator and workers must agree on all of these — they feed the
    plan fingerprint checked at handshake, so a mismatch is refused
    instead of silently merging results from different computations.
    """
    sub.add_argument("workload", choices=WORKLOAD_NAMES)
    sub.add_argument("--tolerance", type=float, required=True)
    sub.add_argument("--norm", choices=("linf", "l2"), default="linf")
    sub.add_argument("--codec", choices=("sz", "zfp", "mgard"), default="sz")
    sub.add_argument("--fraction", type=float, default=0.5,
                     help="share of the tolerance allocated to quantization")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error-controlled neural inference on reduced scientific data",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a span trace of the run and write it as JSONL",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a metrics snapshot (JSON; Prometheus text for .prom/.txt)",
    )
    parser.add_argument(
        "--trace-summary", action="store_true",
        help="print the span tree to stderr after the command",
    )
    parser.add_argument(
        "--audit", metavar="FILE", default=None,
        help="audit every pipeline execution (predicted-vs-observed "
        "layerwise bounds) into this JSONL run registry",
    )
    parser.add_argument(
        "--profile", metavar="FILE", default=None,
        help="sample the run with the wall-clock profiler and write the "
        "result (.json = speedscope, .folded/.txt = folded stacks)",
    )
    parser.add_argument(
        "--profile-hz", type=float, default=DEFAULT_HZ, metavar="HZ",
        help=f"target sampling rate for --profile (default: {DEFAULT_HZ:g}; "
        "the overhead governor throttles below this when sampling costs "
        "more than 5%% of wall time)",
    )
    parser.add_argument(
        "--instrument-ops", action="store_true",
        help="compile the fused backend's per-op timing variant: forward "
        "passes report per-op wall time into the backend_op_seconds "
        "histogram (fused backend only)",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="info",
        help="minimum severity printed (default: info)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="forward-pass execution backend: auto|reference|fused|numba "
        "(default: env REPRO_BACKEND, else auto = fused; compiled "
        "backends are bit-identical to reference and fall back to it "
        "when hooks or unsupported modules appear)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="error-flow analysis of a workload")
    analyze.add_argument("workload", choices=WORKLOAD_NAMES)
    analyze.add_argument("--calibrate", action="store_true",
                         help="tighten bounds with measured signal norms")
    analyze.add_argument("--verbose", action="store_true",
                         help="include the per-layer model report")

    plan = commands.add_parser("plan", help="allocate a QoI tolerance")
    plan.add_argument("workload", choices=WORKLOAD_NAMES)
    plan.add_argument("--tolerance", type=float, required=True)
    plan.add_argument("--norm", choices=("linf", "l2"), default="linf")
    plan.add_argument("--fraction", type=float, default=0.5,
                      help="share of the tolerance allocated to quantization")

    pipeline = commands.add_parser("pipeline", help="run the full pipeline")
    pipeline.add_argument("workload", choices=WORKLOAD_NAMES)
    pipeline.add_argument("--tolerance", type=float, required=True)
    pipeline.add_argument("--norm", choices=("linf", "l2"), default="linf")
    pipeline.add_argument("--codec", choices=("sz", "zfp", "mgard"), default="sz")
    pipeline.add_argument("--fraction", type=float, default=0.5)
    pipeline.add_argument(
        "--chunk-size", type=int, default=None,
        help="run chunked: split the fields into slabs of this extent "
        "(positive integer; default: sized so every worker gets one slab)",
    )
    pipeline.add_argument(
        "--workers", type=int, default=None,
        help="worker count for chunked execution (positive integer; "
        "default: 1 = serial); implies chunked mode when --chunk-size "
        "is omitted",
    )
    pipeline.add_argument(
        "--executor", choices=("auto", "serial", "process"),
        default="auto",
        help="chunked execution engine (default: auto = supervised "
        "process pool when --workers > 1 and fork is available)",
    )
    pipeline.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="journal every certified-complete chunk into this directory "
        "so a killed run can be resumed; implies chunked mode",
    )
    pipeline.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint DIR: verify the journal against "
        "this run's plan and inputs, replay completed chunks, recompute "
        "only the rest",
    )
    pipeline.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk deadline for the process executor; a worker "
        "exceeding it is killed and the chunk retried (default: none)",
    )
    pipeline.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per chunk before quarantine (process "
        "executor; quarantined chunks degrade to fallback-lossless "
        "in-process; default: 2)",
    )

    coordinate = commands.add_parser(
        "coordinate",
        help="serve a chunked run's shards to remote workers over TCP",
    )
    _add_plan_flags(coordinate)
    coordinate.add_argument(
        "--chunk-size", type=int, required=True,
        help="slab extent per chunk; must match every worker's "
        "--chunk-size exactly (it is part of the handshake identity)",
    )
    coordinate.add_argument(
        "--host", default="127.0.0.1",
        help="interface to listen on (default: 127.0.0.1)",
    )
    coordinate.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (default: 0 = ephemeral, printed "
        "at startup)",
    )
    coordinate.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECONDS",
        help="heartbeat-renewed lease lifetime; a silent worker's chunks "
        "are re-leased after this (default: 15)",
    )
    coordinate.add_argument(
        "--shard-size", type=int, default=1,
        help="chunks per lease (default: 1 = smallest reassignment unit)",
    )
    coordinate.add_argument(
        "--expect-workers", type=int, default=0,
        help="hold back leases until this many workers joined, so the "
        "first worker does not take every shard (default: 0 = grant "
        "immediately)",
    )
    coordinate.add_argument(
        "--worker-wait", type=float, default=30.0, metavar="SECONDS",
        help="how long to wait for workers to join (or rejoin) before "
        "degrading to the local supervised pool (default: 30)",
    )
    coordinate.add_argument(
        "--workers", type=int, default=None,
        help="local pool size used only if the run degrades to "
        "single-host execution",
    )
    coordinate.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="merge every accepted shard into this journal so a killed "
        "coordinator resumes without recomputing",
    )
    coordinate.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint DIR: replay completed chunks, "
        "lease out only the rest",
    )
    coordinate.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk deadline for the degraded local pool",
    )
    coordinate.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per chunk in the degraded local pool "
        "(default: 2)",
    )
    coordinate.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve live /metrics, /status and /healthz over HTTP on "
        "this port while the run is active (0 = ephemeral, printed at "
        "startup; default: no endpoint)",
    )
    coordinate.add_argument(
        "--metrics-host", default="127.0.0.1",
        help="interface for the live telemetry endpoint "
        "(default: 127.0.0.1)",
    )

    worker = commands.add_parser(
        "worker", help="join a distributed run as a shard worker"
    )
    _add_plan_flags(worker)
    worker.add_argument(
        "--chunk-size", type=int, required=True,
        help="slab extent per chunk; must match the coordinator's "
        "--chunk-size exactly",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address to join",
    )
    worker.add_argument(
        "--name", default=None,
        help="worker name reported to the coordinator "
        "(default: worker-<pid>)",
    )
    worker.add_argument(
        "--workers", type=int, default=None,
        help="local supervised-pool size for computing leased chunks",
    )
    worker.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk deadline in the local pool; an overdue chunk is "
        "killed and retried (default: none)",
    )
    worker.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per chunk before quarantine (default: 2)",
    )
    worker.add_argument(
        "--local-checkpoint", metavar="DIR", default=None,
        help="journal computed chunks here so a restarted worker resends "
        "instead of recomputing (default: a temp directory)",
    )

    compress = commands.add_parser("compress", help="compress a .npy array")
    compress.add_argument("input", help="path to a .npy file")
    compress.add_argument("--out", required=True, help="output .rblob path")
    compress.add_argument("--codec", choices=("sz", "zfp", "mgard"), default="sz")
    compress.add_argument("--tolerance", type=float, required=True)
    compress.add_argument(
        "--mode", choices=[m.value for m in ErrorBoundMode], default="abs"
    )

    decompress = commands.add_parser("decompress", help="decompress an .rblob")
    decompress.add_argument("input", help="path to an .rblob file")
    decompress.add_argument("--out", required=True, help="output .npy path")

    store = commands.add_parser("store", help="summarize a DatasetStore directory")
    store.add_argument("directory")

    metrics = commands.add_parser(
        "metrics", help="render a metrics export written by --metrics"
    )
    metrics.add_argument("file", help="metrics JSON produced by --metrics")

    serve_metrics = commands.add_parser(
        "serve-metrics",
        help="serve a saved --metrics JSON export over HTTP "
        "(/metrics, /healthz)",
    )
    serve_metrics.add_argument("file", help="metrics JSON produced by --metrics")
    serve_metrics.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve_metrics.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = ephemeral, printed at startup)",
    )
    serve_metrics.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for this long then exit (default: until interrupted)",
    )

    trace = commands.add_parser(
        "trace", help="analyze span traces written by --trace"
    )
    trace_cmds = trace.add_subparsers(dest="trace_command", required=True)
    trace_analyze = trace_cmds.add_parser(
        "analyze",
        help="reconstruct the per-chunk lease timeline of a distributed "
        "run: critical path, per-worker utilization, stragglers, "
        "queue/run/transfer breakdown",
    )
    trace_analyze.add_argument("file", help="JSONL trace written by --trace")
    trace_analyze.add_argument(
        "--straggler-k", type=float, default=2.0, metavar="K",
        help="flag chunks whose run time exceeds K x the median "
        "(default: 2.0)",
    )
    trace_analyze.add_argument(
        "--json", metavar="OUT", default=None,
        help="also write the full analysis report as JSON",
    )
    trace_analyze.add_argument(
        "--width", type=int, default=72,
        help="character width of the text Gantt chart (default: 72)",
    )

    audit = commands.add_parser(
        "audit", help="predicted-vs-observed error audits and drift reports"
    )
    audit_cmds = audit.add_subparsers(dest="audit_command", required=True)

    record = audit_cmds.add_parser(
        "record", help="run one audited pipeline execution into a registry"
    )
    record.add_argument("workload", choices=WORKLOAD_NAMES)
    record.add_argument("--tolerance", type=float, required=True)
    record.add_argument("--norm", choices=("linf", "l2"), default="linf")
    record.add_argument("--codec", choices=("sz", "zfp", "mgard"), default="sz")
    record.add_argument("--fraction", type=float, default=0.5,
                        help="share of the tolerance allocated to quantization")
    record.add_argument("--fmt", choices=tuple(STANDARD_FORMATS), default=None,
                        help="force a weight format instead of letting the "
                        "planner rank candidates")
    record.add_argument("--registry", metavar="FILE", default=None,
                        help="append the audit record to this JSONL registry")
    record.add_argument("--label", default="",
                        help="free-form label stored with the run")
    record.add_argument("--loose-below", type=float, default=DEFAULT_LOOSE_BELOW,
                        help="tightness below this is flagged 'loose' "
                        f"(default: {DEFAULT_LOOSE_BELOW})")

    report = audit_cmds.add_parser(
        "report", help="summarize a run registry and detect tightness drift"
    )
    report.add_argument("registry", help="JSONL registry written by 'audit record'")
    report.add_argument("--last", type=int, default=10,
                        help="number of most recent runs to list")
    report.add_argument("--threshold", type=float, default=DEFAULT_DRIFT_THRESHOLD,
                        help="relative tightness increase flagged as drift "
                        f"(default: {DEFAULT_DRIFT_THRESHOLD})")

    diff = audit_cmds.add_parser(
        "diff", help="compare the bound tightness of two registered runs"
    )
    diff.add_argument("run_a", help="baseline run id (e.g. run-0001) or index")
    diff.add_argument("run_b", help="candidate run id or index")
    diff.add_argument("--registry", required=True,
                      help="JSONL registry holding both runs")
    diff.add_argument("--threshold", type=float, default=DEFAULT_DRIFT_THRESHOLD,
                      help="relative tightness increase flagged as regression "
                      f"(default: {DEFAULT_DRIFT_THRESHOLD})")

    profile = commands.add_parser(
        "profile",
        help="run another repro command under the sampling profiler "
        "and write a flamegraph-ready export",
    )
    profile.add_argument(
        "--out", metavar="FILE", default="profile.speedscope.json",
        help="export path (.json = speedscope, .folded/.txt = folded "
        "stacks; default: profile.speedscope.json)",
    )
    profile.add_argument(
        "--hz", type=float, default=DEFAULT_HZ,
        help=f"target sampling rate (default: {DEFAULT_HZ:g})",
    )
    profile.add_argument(
        "profiled_argv", nargs=argparse.REMAINDER, metavar="command",
        help="the repro command to profile, e.g. "
        "'repro profile -- pipeline heat3d --tolerance 1e-3'",
    )

    bench = commands.add_parser(
        "bench",
        help="persistent benchmark history: record bench rows into a "
        "JSONL registry, report it, diff two runs with regression gates",
    )
    bench_cmds = bench.add_subparsers(dest="bench_command", required=True)

    bench_record = bench_cmds.add_parser(
        "record", help="append a benchmarks/*.py rows file to the history"
    )
    bench_record.add_argument(
        "rows_file",
        help="bench JSON written by benchmarks/*.py (a row list, or an "
        "object with a 'rows' list)",
    )
    bench_record.add_argument("--registry", required=True, metavar="FILE",
                              help="JSONL bench history to append to")
    bench_record.add_argument("--label", default="",
                              help="free-form label stored with the run")
    bench_record.add_argument("--bench", default=None,
                              help="bench name (default: rows file stem)")
    bench_record.add_argument("--git-rev", default=None,
                              help="source revision recorded with the run "
                              "(default: git rev-parse, empty outside a repo)")

    bench_report = bench_cmds.add_parser(
        "report", help="list the recorded benchmark runs"
    )
    bench_report.add_argument("registry", help="JSONL history written by 'bench record'")
    bench_report.add_argument("--last", type=int, default=10,
                              help="number of most recent runs to list")

    bench_diff = bench_cmds.add_parser(
        "diff",
        help="regression gate between two recorded runs "
        "(exits nonzero when a row regressed)",
    )
    bench_diff.add_argument("run_a", nargs="?", default=None,
                            help="baseline run id (e.g. bench-0001) or index "
                            "(default: second-latest run)")
    bench_diff.add_argument("run_b", nargs="?", default=None,
                            help="candidate run id or index (default: latest run)")
    bench_diff.add_argument("--registry", required=True, metavar="FILE",
                            help="JSONL history holding both runs")
    bench_diff.add_argument(
        "--threshold", type=float, default=DEFAULT_BENCH_THRESHOLD,
        help="relative slowdown flagged as regression "
        f"(default: {DEFAULT_BENCH_THRESHOLD}; doubled when either side "
        "has sparse reps)",
    )
    bench_diff.add_argument(
        "--min-reps", type=int, default=DEFAULT_MIN_REPS,
        help="reps below this widen the gate to 2x the threshold "
        f"(default: {DEFAULT_MIN_REPS})",
    )
    bench_diff.add_argument(
        "--mad-k", type=float, default=DEFAULT_MAD_K,
        help="absolute change must clear this many scaled MADs of the "
        f"noisier run (default: {DEFAULT_MAD_K})",
    )
    return parser


def _cmd_analyze(args) -> int:
    workload = load_workload(args.workload)
    analyzer = workload.qoi_analyzer()
    if args.calibrate:
        analyzer.calibrate(workload.dataset.test_inputs)
    sigmas = [f"{s:.3f}" for s in analyzer.layer_sigmas()]
    _LOG.info(f"workload: {workload.name} (variant {workload.variant})")
    _LOG.info(f"layers: {len(sigmas)}  sigmas: {', '.join(sigmas)}")
    _LOG.info(f"Eq. (5) gain: {analyzer.gain():.3f}")
    calibrated = " (calibrated)" if analyzer.is_calibrated else ""
    _LOG.info(f"quantization bounds{calibrated}:")
    for name in ("tf32", "fp16", "bf16", "int8"):
        bound = analyzer.quantization_bound(STANDARD_FORMATS[name])
        _LOG.info(f"  {name:>5s}: {bound:.4e}")
    if args.verbose:
        from .reporting import describe_model

        _LOG.info("")
        _LOG.info(describe_model(workload.qoi_model()))
    return 0


def _cmd_plan(args) -> int:
    workload = load_workload(args.workload)
    planner = TolerancePlanner(workload.qoi_analyzer())
    plan = planner.plan(args.tolerance, norm=args.norm, quant_fraction=args.fraction)
    _LOG.info(plan.describe())
    _LOG.info(f"compression budget: {plan.compression_budget:.4e}")
    return 0


def _instrument_flag(args) -> "bool | None":
    """``--instrument-ops`` as the pipeline's ``instrument_ops`` value.

    ``None`` when the flag is absent so the ``REPRO_INSTRUMENT_OPS``
    environment default still applies."""
    return True if getattr(args, "instrument_ops", False) else None


def _samples_reshape(workload):
    """Field-to-sample mapping for a workload (None = pipeline default).

    Image workloads feed the batch straight through; ``(V, H, W)`` field
    workloads use the pipeline's default variables-to-columns reshape.
    """
    if workload.name == "eurosat":
        return lambda f: f.astype(np.float32)
    return None


def _validate_pipeline_args(args) -> None:
    """Reject malformed chunking flags with a clear typed error instead
    of a deep traceback from the execution layers."""
    if args.chunk_size is not None and args.chunk_size <= 0:
        raise ConfigurationError(
            f"--chunk-size must be a positive integer, got {args.chunk_size}"
        )
    if args.workers is not None and args.workers <= 0:
        raise ConfigurationError(
            f"--workers must be a positive integer, got {args.workers}"
        )
    if args.max_retries < 0:
        raise ConfigurationError(
            f"--max-retries must be >= 0, got {args.max_retries}"
        )
    if args.task_timeout is not None and args.task_timeout <= 0:
        raise ConfigurationError(
            f"--task-timeout must be positive, got {args.task_timeout}"
        )
    if args.resume and not args.checkpoint:
        raise ConfigurationError("--resume requires --checkpoint DIR")


def _cmd_pipeline(args) -> int:
    _validate_pipeline_args(args)
    workload = load_workload(args.workload)
    _LOG.debug("workload loaded", workload=workload.name, variant=workload.variant)
    planner = TolerancePlanner(workload.qoi_analyzer())
    plan = planner.plan(args.tolerance, norm=args.norm, quant_fraction=args.fraction)
    pipeline = InferencePipeline(
        workload.qoi_model(), get_compressor(args.codec), plan,
        backend=args.backend, instrument_ops=_instrument_flag(args),
    )
    reshape = _samples_reshape(workload)
    fields = workload.dataset.fields
    chunked_mode = (
        args.chunk_size is not None
        or args.workers is not None
        or args.checkpoint is not None
    )
    if chunked_mode:
        from .perf.parallel import resolve_workers

        # images chunk by batch; (V, H, W) fields chunk by rows so slabs
        # map to contiguous sample blocks
        chunk_axis = 0 if workload.name == "eurosat" else 1
        extent = fields.shape[chunk_axis]
        workers = resolve_workers(args.workers)
        chunk_size = args.chunk_size or max(1, -(-extent // max(workers, 2)))
        result = pipeline.execute_chunked(
            fields,
            chunk_size=chunk_size,
            workers=args.workers,
            chunk_axis=chunk_axis,
            samples_from_fields=reshape,
            executor=args.executor,
            checkpoint=args.checkpoint,
            resume=args.resume,
            task_timeout=args.task_timeout,
            max_task_retries=args.max_retries,
        )
        chunked = result.extra["chunked"]
        _LOG.info(
            f"chunked run: {chunked['n_chunks']} chunks of {chunked['chunk_size']} "
            f"on {chunked['workers']} worker(s) [{chunked['executor']}], "
            f"wall {chunked['wall_seconds']:.3f}s"
        )
        supervision = result.extra.get("supervision")
        if supervision is not None and (
            supervision["retries"]
            or supervision["respawns"]
            or supervision["quarantined"]
        ):
            _LOG.info(
                f"supervision: {supervision['retries']} retries, "
                f"{supervision['respawns']} worker respawns, "
                f"quarantined chunks {supervision['quarantined'] or 'none'}"
                + (" (circuit breaker tripped)" if supervision["breaker_tripped"] else "")
            )
        checkpoint = result.extra.get("checkpoint")
        if checkpoint is not None:
            _LOG.info(
                f"checkpoint: {checkpoint['path']} "
                f"({checkpoint['replayed_chunks']} replayed, "
                f"{checkpoint['computed_chunks']} computed)"
            )
        ratio = chunked["compression_ratio"]
    else:
        result = pipeline.execute(fields, samples_from_fields=reshape)
        ratio = result.compression_ratio
    achieved = result.qoi_error(args.norm, relative=False)
    _LOG.info(plan.describe())
    _LOG.info(f"compression ratio: {ratio:.2f}x")
    _LOG.info(f"achieved QoI error: {achieved:.4e} (tolerance {args.tolerance:.1e})")
    if achieved > args.tolerance:
        _LOG.error("TOLERANCE VIOLATED")
        return 1
    _LOG.info("tolerance honoured")
    return 0


def _distrib_pipeline(args):
    """Build (pipeline, fields, reshape, chunk_axis) for coordinate/worker.

    Both sides run exactly this construction, so their plan fingerprints
    and chunk digests agree whenever the flags do."""
    if args.chunk_size <= 0:
        raise ConfigurationError(
            f"--chunk-size must be a positive integer, got {args.chunk_size}"
        )
    if args.workers is not None and args.workers <= 0:
        raise ConfigurationError(
            f"--workers must be a positive integer, got {args.workers}"
        )
    if args.max_retries < 0:
        raise ConfigurationError(
            f"--max-retries must be >= 0, got {args.max_retries}"
        )
    if args.task_timeout is not None and args.task_timeout <= 0:
        raise ConfigurationError(
            f"--task-timeout must be positive, got {args.task_timeout}"
        )
    workload = load_workload(args.workload)
    planner = TolerancePlanner(workload.qoi_analyzer())
    plan = planner.plan(args.tolerance, norm=args.norm, quant_fraction=args.fraction)
    pipeline = InferencePipeline(
        workload.qoi_model(), get_compressor(args.codec), plan,
        backend=args.backend, instrument_ops=_instrument_flag(args),
    )
    chunk_axis = 0 if workload.name == "eurosat" else 1
    return pipeline, workload.dataset.fields, _samples_reshape(workload), chunk_axis


def _cmd_coordinate(args) -> int:
    import signal as signal_module

    from .distrib import DistribConfig, DrainedError

    if args.resume and not args.checkpoint:
        raise ConfigurationError("--resume requires --checkpoint DIR")
    pipeline, fields, reshape, chunk_axis = _distrib_pipeline(args)

    def on_start(coordinator) -> None:
        def drain(signum, frame) -> None:
            coordinator.request_drain("SIGTERM")

        signal_module.signal(signal_module.SIGTERM, drain)
        if coordinator.metrics_address is not None:
            mhost, mport = coordinator.metrics_address
            _LOG.info(
                f"telemetry: http://{mhost}:{mport}/status "
                f"(/metrics, /healthz)"
            )

    config = DistribConfig(
        host=args.host,
        port=args.port,
        lease_ttl=args.lease_ttl,
        shard_size=args.shard_size,
        expect_workers=args.expect_workers,
        worker_wait=args.worker_wait,
        on_start=on_start,
        metrics_host=args.metrics_host,
        metrics_port=args.metrics_port,
    )
    try:
        result = pipeline.execute_chunked(
            fields,
            chunk_size=args.chunk_size,
            workers=args.workers,
            chunk_axis=chunk_axis,
            samples_from_fields=reshape,
            executor="distributed",
            distrib=config,
            checkpoint=args.checkpoint,
            resume=args.resume,
            task_timeout=args.task_timeout,
            max_task_retries=args.max_retries,
        )
    except DrainedError as exc:
        # a drain is a clean, resumable stop, not a failure
        _LOG.info(f"coordinator drained: {exc}")
        _LOG.info("resume with the same flags plus --resume")
        return 0
    distrib = result.extra.get("distrib")
    if distrib is None:
        # every chunk replayed from the journal: no coordinator ran
        _LOG.info("nothing to distribute: all chunks replayed from the checkpoint")
    else:
        counts = distrib["results"]
        _LOG.info(
            f"distributed run [{distrib['outcome']}]: "
            f"{distrib['completed_chunks']} chunks via {distrib['workers_joined']} "
            f"worker(s), {distrib['leases_granted']} leases "
            f"({distrib['leases_expired']} expired, "
            f"{distrib['leases_reassigned']} reassigned)"
        )
        if counts["duplicate"] or counts["conflict"] or counts["rejected"]:
            _LOG.info(
                f"results: {counts['accepted']} accepted, "
                f"{counts['duplicate']} duplicate, {counts['conflict']} conflict, "
                f"{counts['rejected']} rejected"
            )
    checkpoint = result.extra.get("checkpoint")
    if checkpoint is not None:
        _LOG.info(
            f"checkpoint: {checkpoint['path']} "
            f"({checkpoint['replayed_chunks']} replayed, "
            f"{checkpoint['computed_chunks']} computed)"
        )
    achieved = result.qoi_error(args.norm, relative=False)
    _LOG.info(f"achieved QoI error: {achieved:.4e} (tolerance {args.tolerance:.1e})")
    if achieved > args.tolerance:
        _LOG.error("TOLERANCE VIOLATED")
        return 1
    _LOG.info("tolerance honoured")
    return 0


def _cmd_worker(args) -> int:
    from .distrib import ShardWorker
    from .resilience import ChaosInjector

    pipeline, fields, reshape, chunk_axis = _distrib_pipeline(args)
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ConfigurationError(
            f"--connect must be HOST:PORT, got {args.connect!r}"
        )
    shard_worker = ShardWorker(
        pipeline,
        fields,
        args.chunk_size,
        chunk_axis=chunk_axis,
        samples_from_fields=reshape,
        name=args.name,
        workers=args.workers,
        task_timeout=args.task_timeout,
        max_task_retries=args.max_retries,
        chaos=ChaosInjector.from_env(),
        checkpoint=args.local_checkpoint,
    )
    summary = shard_worker.run(host, int(port_text))
    _LOG.info(
        f"worker {summary['worker']}: {summary['leases']} leases, "
        f"{summary['chunks_computed']} computed, "
        f"{summary['chunks_resent']} resent, "
        f"{summary['reconnects']} reconnects "
        f"(drained: {summary['drained'] or 'n/a'})"
    )
    return 0


def _cmd_compress(args) -> int:
    array = np.load(args.input)
    codec = get_compressor(args.codec)
    blob = codec.compress(array, args.tolerance, ErrorBoundMode(args.mode))
    with open(args.out, "wb") as handle:
        handle.write(blob_to_bytes(blob))
    _LOG.info(
        f"{args.input}: {array.nbytes} B -> {blob.nbytes} B "
        f"(ratio {blob.compression_ratio:.2f}x, codec {blob.codec}, "
        f"{blob.mode.value} tol {blob.tolerance:.2e})"
    )
    return 0


def _cmd_decompress(args) -> int:
    with open(args.input, "rb") as handle:
        blob = blob_from_bytes(handle.read())
    codec = get_compressor(blob.codec)
    array = codec.decompress(blob)
    np.save(args.out, array)
    _LOG.info(f"{args.input} -> {args.out} shape={array.shape} dtype={array.dtype}")
    return 0


def _cmd_store(args) -> int:
    store = DatasetStore(args.directory)
    rows = store.summary()
    if not rows:
        _LOG.info(f"{args.directory}: empty store")
        return 0
    _LOG.info(f"{'name':20s} {'codec':6s} {'shape':>16s} {'tol':>10s} {'ratio':>7s}")
    for name, codec, shape, tolerance, ratio in rows:
        _LOG.info(f"{name:20s} {codec:6s} {str(shape):>16s} {tolerance:10.2e} {ratio:7.2f}")
    return 0


def _cmd_metrics(args) -> int:
    try:
        with open(args.file) as handle:
            payload = json.load(handle)
    except OSError as exc:
        _LOG.error(f"error (OSError): cannot read metrics file: {exc}")
        return 1
    except json.JSONDecodeError as exc:
        _LOG.error(f"error (JSONDecodeError): {args.file} is not a metrics export: {exc}")
        return 1
    _LOG.info(render_metrics_json(payload))
    return 0


def _cmd_serve_metrics(args) -> int:
    import time as time_module

    from .obs.server import MetricsServer, prometheus_from_json_export

    try:
        with open(args.file) as handle:
            payload = json.load(handle)
    except OSError as exc:
        _LOG.error(f"error (OSError): cannot read metrics file: {exc}")
        return 1
    except json.JSONDecodeError as exc:
        _LOG.error(f"error (JSONDecodeError): {args.file} is not a metrics export: {exc}")
        return 1
    body = prometheus_from_json_export(payload)
    server = MetricsServer(
        host=args.host, port=args.port, metrics_fn=lambda: body
    )
    host, port = server.start()
    _LOG.info(f"serving {args.file} at http://{host}:{port}/metrics")
    try:
        if args.duration is not None:
            time_module.sleep(max(0.0, args.duration))
        else:  # pragma: no cover - interactive mode
            while True:
                time_module.sleep(3600.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        server.stop()
    return 0


def _cmd_trace_analyze(args) -> int:
    from .obs import json_default
    from .obs.timeline import analyze_trace, render_gantt, render_report

    try:
        report = analyze_trace(args.file, straggler_k=args.straggler_k)
    except OSError as exc:
        _LOG.error(f"error (OSError): cannot read trace file: {exc}")
        return 1
    _LOG.info(render_report(report))
    _LOG.info("")
    _LOG.info(render_gantt(report, width=args.width))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True, default=json_default)
            handle.write("\n")
        _LOG.info(f"report written -> {args.json}")
    return 1 if report["orphans"]["count"] else 0


def _cmd_trace(args) -> int:
    return {"analyze": _cmd_trace_analyze}[args.trace_command](args)


def _forced_plan(analyzer, tolerance: float, norm: str, fmt_name: str):
    """An :class:`InferencePlan` for one *required* weight format.

    Unlike :meth:`TolerancePlanner.plan` there is no fallback: if the
    format's own quantization bound exceeds the tolerance the resulting
    :class:`~repro.exceptions.ToleranceError` propagates, because an
    audit of a format the planner would have rejected is exactly the
    point of forcing it.
    """
    from .core.planner import InferencePlan

    fmt = STANDARD_FORMATS[fmt_name]
    effective = None if fmt.is_identity else fmt
    quant_bound = 0.0 if effective is None else analyzer.quantization_bound(effective)
    input_l2 = analyzer.invert_compression_tolerance(tolerance, effective)
    input_tolerance = (
        input_l2 / np.sqrt(analyzer.n_input) if norm == "linf" else input_l2
    )
    return InferencePlan(
        qoi_tolerance=float(tolerance),
        norm=norm,
        fmt=fmt,
        quant_bound=float(quant_bound),
        input_tolerance=float(input_tolerance),
        compression_budget=float(tolerance - quant_bound),
        quant_fraction=float(quant_bound / tolerance),
        metadata={"forced_fmt": fmt_name},
    )


def _cmd_audit_record(args) -> int:
    from .reporting import describe_audit

    workload = load_workload(args.workload)
    if args.fmt:
        plan = _forced_plan(
            workload.qoi_analyzer(), args.tolerance, args.norm, args.fmt
        )
    else:
        planner = TolerancePlanner(workload.qoi_analyzer())
        plan = planner.plan(
            args.tolerance, norm=args.norm, quant_fraction=args.fraction
        )
    pipeline = InferencePipeline(
        workload.qoi_model(), get_compressor(args.codec), plan,
        backend=args.backend, instrument_ops=_instrument_flag(args),
    )
    with audit_capture(
        registry=args.registry,
        loose_below=args.loose_below,
        label=args.label or args.workload,
    ) as auditor:
        pipeline.execute(
            workload.dataset.fields, samples_from_fields=_samples_reshape(workload)
        )
        if not auditor.records:
            _LOG.error("error: the pipeline run produced no audit record")
            return 1
        record = auditor.records[-1]
        violations = record.violations
    _LOG.info(describe_audit(record.to_dict()))
    if args.registry:
        _LOG.info(f"recorded {record.run_id} -> {args.registry}")
    if violations:
        _LOG.error(
            f"AUDIT VIOLATION: observed error exceeded the predicted bound "
            f"at {', '.join(violations)}"
        )
        return 1
    return 0


def _cmd_audit_report(args) -> int:
    from .reporting import describe_audit_diff

    registry = RunRegistry(args.registry)
    runs = registry.runs()
    if not runs:
        _LOG.info(f"{args.registry}: empty registry")
        return 0
    _LOG.info(
        f"{'run':10s} {'label':16s} {'fmt':>5s} {'codec':>6s} "
        f"{'qoi tight':>10s} {'verdict':>9s}"
    )
    for run in runs[-args.last:]:
        _LOG.info(
            f"{run.get('run_id', '?'):10s} {run.get('label', '')[:16]:16s} "
            f"{run.get('fmt', '?'):>5s} {run.get('codec', '?'):>6s} "
            f"{run.get('qoi_tightness', 0.0):10.3f} {run.get('verdict', '?'):>9s}"
        )
    drift = registry.detect_drift(threshold=args.threshold)
    if drift is not None:
        _LOG.info("")
        _LOG.info(describe_audit_diff(drift))
        if drift["regressions"] or drift["new_violations"]:
            return 1
    return 0


def _cmd_audit_diff(args) -> int:
    from .reporting import describe_audit_diff

    registry = RunRegistry(args.registry)
    try:
        diff = registry.diff(args.run_a, args.run_b, threshold=args.threshold)
    except KeyError as exc:
        _LOG.error(f"error (KeyError): {exc.args[0]}")
        return 1
    _LOG.info(describe_audit_diff(diff))
    return 1 if diff["regressions"] or diff["new_violations"] else 0


def _cmd_audit(args) -> int:
    handlers = {
        "record": _cmd_audit_record,
        "report": _cmd_audit_report,
        "diff": _cmd_audit_diff,
    }
    return handlers[args.audit_command](args)


def _cmd_profile(args) -> int:
    command = list(args.profiled_argv)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        raise ConfigurationError(
            "profile requires a command to run, e.g. "
            "repro profile -- pipeline heat3d --tolerance 1e-3"
        )
    if command[0] == "profile":
        raise ConfigurationError("profile cannot profile itself")
    with profile_capture(hz=args.hz) as profiler:
        code = main(command)
    fmt = write_profile(profiler, args.out)
    _LOG.info(
        f"profile written -> {args.out} ({fmt}, "
        f"{profiler.stacks.total()} samples @ {profiler.hz:g} hz, "
        f"overhead {100 * profiler.overhead_fraction():.2f}%)"
    )
    return code


def _git_rev() -> str:
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def _cmd_bench_record(args) -> int:
    import os

    try:
        with open(args.rows_file) as handle:
            payload = json.load(handle)
    except OSError as exc:
        _LOG.error(f"error (OSError): cannot read rows file: {exc}")
        return 1
    except json.JSONDecodeError as exc:
        _LOG.error(f"error (JSONDecodeError): {args.rows_file} is not bench JSON: {exc}")
        return 1
    rows = payload if isinstance(payload, list) else payload.get("rows")
    if not isinstance(rows, list):
        _LOG.error(
            f"error: {args.rows_file} holds neither a row list nor a "
            "'rows' object"
        )
        return 1
    bench = args.bench or os.path.splitext(os.path.basename(args.rows_file))[0]
    git_rev = args.git_rev if args.git_rev is not None else _git_rev()
    registry = BenchRegistry(args.registry)
    try:
        run = registry.record(rows, bench=bench, label=args.label, git_rev=git_rev)
    except ValueError as exc:
        _LOG.error(f"error (ValueError): {exc}")
        return 1
    _LOG.info(
        f"recorded {run['run_id']} ({len(run['rows'])} row(s), "
        f"bench {run['bench']}"
        + (f", rev {run['git_rev']}" if run["git_rev"] else "")
        + f") -> {args.registry}"
    )
    return 0


def _cmd_bench_report(args) -> int:
    registry = BenchRegistry(args.registry)
    runs = registry.runs()
    if not runs:
        _LOG.info(f"{args.registry}: empty bench history")
        return 0
    _LOG.info(
        f"{'run':12s} {'bench':24s} {'label':16s} {'rev':>8s} {'rows':>5s}"
    )
    for run in runs[-args.last:]:
        _LOG.info(
            f"{run.get('run_id', '?'):12s} {run.get('bench', '?')[:24]:24s} "
            f"{run.get('label', '')[:16]:16s} {run.get('git_rev', '')[:8]:>8s} "
            f"{len(run.get('rows', [])):>5d}"
        )
    return 0


def _cmd_bench_diff(args) -> int:
    registry = BenchRegistry(args.registry)
    run_a, run_b = args.run_a, args.run_b
    if run_a is None or run_b is None:
        runs = registry.runs()
        if len(runs) < 2:
            _LOG.error(
                f"error: bench diff needs two runs, {args.registry} holds "
                f"{len(runs)}"
            )
            return 1
        run_a = run_a if run_a is not None else runs[-2]["run_id"]
        run_b = run_b if run_b is not None else runs[-1]["run_id"]
    try:
        report = registry.diff(
            run_a, run_b,
            threshold=args.threshold,
            min_reps=args.min_reps,
            mad_k=args.mad_k,
        )
    except (KeyError, ValueError) as exc:
        _LOG.error(f"error ({type(exc).__name__}): {exc.args[0]}")
        return 1
    _LOG.info(f"bench diff {report['run_a']} -> {report['run_b']}")
    _LOG.info(describe_bench_diff(report))
    if not report["compared"]:
        _LOG.info(
            "no comparable rows (different benches or host shapes); "
            "nothing to gate"
        )
        return 0
    return 1 if report["regressions"] else 0


def _cmd_bench(args) -> int:
    handlers = {
        "record": _cmd_bench_record,
        "report": _cmd_bench_report,
        "diff": _cmd_bench_diff,
    }
    return handlers[args.bench_command](args)


_HANDLERS = {
    "analyze": _cmd_analyze,
    "plan": _cmd_plan,
    "pipeline": _cmd_pipeline,
    "coordinate": _cmd_coordinate,
    "worker": _cmd_worker,
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "store": _cmd_store,
    "metrics": _cmd_metrics,
    "serve-metrics": _cmd_serve_metrics,
    "trace": _cmd_trace,
    "audit": _cmd_audit,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
}


def _export_metrics(registry, path: str) -> None:
    from .obs import json_default

    if path.endswith((".prom", ".txt")):
        with open(path, "w") as handle:
            handle.write(registry.to_prometheus())
    else:
        with open(path, "w") as handle:
            json.dump(
                registry.to_json(), handle, indent=2, sort_keys=True,
                default=json_default,
            )
            handle.write("\n")


def _flush_observability(args) -> None:
    """Export every requested telemetry file, attempting all of them.

    One failing export must not swallow the others, so each file is
    written under its own ``finally`` chain; the first failure is
    re-raised after every export was attempted.
    """
    tracer, registry = get_tracer(), get_metrics()
    try:
        if args.trace:
            tracer.export_jsonl(args.trace)
            _LOG.debug("trace written", file=args.trace, spans=len(tracer.finished))
    finally:
        try:
            if args.metrics:
                _export_metrics(registry, args.metrics)
                _LOG.debug("metrics written", file=args.metrics)
        finally:
            if args.trace_summary:
                tree = tracer.render_tree()
                if tree:
                    sys.stderr.write(tree + "\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    set_log_level(args.log_level)
    observing = bool(args.trace or args.metrics or args.trace_summary)
    if observing:
        obs_enable()
    if args.audit:
        enable_audit(registry=args.audit)
    profiling = bool(args.profile) and args.command != "profile"
    if profiling:
        enable_profile(hz=args.profile_hz)
    try:
        try:
            # validate eagerly so a typo fails before any work starts,
            # with the same typed error the execution layers would raise
            resolve_backend_name(args.backend)
            return _HANDLERS[args.command](args)
        except ReproError as exc:
            _LOG.error(f"error ({type(exc).__name__}): {exc}")
            return 1
    finally:
        # Nested so teardown always runs: a raising export (or a raising
        # command) must still restore the no-op singletons and must not
        # lose the other telemetry files.
        try:
            if profiling:
                stopped = disable_profile()
                fmt = write_profile(stopped, args.profile)
                _LOG.debug(
                    "profile written", file=args.profile, format=fmt,
                    samples=stopped.stacks.total(),
                )
        finally:
            try:
                if observing:
                    _flush_observability(args)
            finally:
                auditor = get_auditor()
                if args.audit and auditor.enabled:
                    _LOG.debug(
                        "audit registry written",
                        file=args.audit,
                        runs=len(auditor.records),
                        violations=auditor.violation_count,
                    )
                disable_audit()
                obs_disable()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
