"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``analyze``     — spectral norms, Eq. (5) gain and per-format bounds of
                    a trained workload;
* ``plan``        — allocate a QoI tolerance between quantization and
                    compression;
* ``pipeline``    — run the full error-bounded inference pipeline;
* ``compress`` /
  ``decompress``  — error-bounded (de)compression of ``.npy`` arrays;
* ``store``       — summarize a :class:`~repro.io.DatasetStore` directory.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .compress import ErrorBoundMode, get_compressor
from .core import InferencePipeline, TolerancePlanner
from .exceptions import ReproError
from .io import DatasetStore, blob_from_bytes, blob_to_bytes
from .quant import STANDARD_FORMATS
from .workloads import WORKLOAD_NAMES, load_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error-controlled neural inference on reduced scientific data",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="error-flow analysis of a workload")
    analyze.add_argument("workload", choices=WORKLOAD_NAMES)
    analyze.add_argument("--calibrate", action="store_true",
                         help="tighten bounds with measured signal norms")
    analyze.add_argument("--verbose", action="store_true",
                         help="include the per-layer model report")

    plan = commands.add_parser("plan", help="allocate a QoI tolerance")
    plan.add_argument("workload", choices=WORKLOAD_NAMES)
    plan.add_argument("--tolerance", type=float, required=True)
    plan.add_argument("--norm", choices=("linf", "l2"), default="linf")
    plan.add_argument("--fraction", type=float, default=0.5,
                      help="share of the tolerance allocated to quantization")

    pipeline = commands.add_parser("pipeline", help="run the full pipeline")
    pipeline.add_argument("workload", choices=WORKLOAD_NAMES)
    pipeline.add_argument("--tolerance", type=float, required=True)
    pipeline.add_argument("--norm", choices=("linf", "l2"), default="linf")
    pipeline.add_argument("--codec", choices=("sz", "zfp", "mgard"), default="sz")
    pipeline.add_argument("--fraction", type=float, default=0.5)

    compress = commands.add_parser("compress", help="compress a .npy array")
    compress.add_argument("input", help="path to a .npy file")
    compress.add_argument("--out", required=True, help="output .rblob path")
    compress.add_argument("--codec", choices=("sz", "zfp", "mgard"), default="sz")
    compress.add_argument("--tolerance", type=float, required=True)
    compress.add_argument(
        "--mode", choices=[m.value for m in ErrorBoundMode], default="abs"
    )

    decompress = commands.add_parser("decompress", help="decompress an .rblob")
    decompress.add_argument("input", help="path to an .rblob file")
    decompress.add_argument("--out", required=True, help="output .npy path")

    store = commands.add_parser("store", help="summarize a DatasetStore directory")
    store.add_argument("directory")
    return parser


def _cmd_analyze(args) -> int:
    workload = load_workload(args.workload)
    analyzer = workload.qoi_analyzer()
    if args.calibrate:
        analyzer.calibrate(workload.dataset.test_inputs)
    sigmas = [f"{s:.3f}" for s in analyzer.layer_sigmas()]
    print(f"workload: {workload.name} (variant {workload.variant})")
    print(f"layers: {len(sigmas)}  sigmas: {', '.join(sigmas)}")
    print(f"Eq. (5) gain: {analyzer.gain():.3f}")
    calibrated = " (calibrated)" if analyzer.is_calibrated else ""
    print(f"quantization bounds{calibrated}:")
    for name in ("tf32", "fp16", "bf16", "int8"):
        bound = analyzer.quantization_bound(STANDARD_FORMATS[name])
        print(f"  {name:>5s}: {bound:.4e}")
    if args.verbose:
        from .reporting import describe_model

        print()
        print(describe_model(workload.qoi_model()))
    return 0


def _cmd_plan(args) -> int:
    workload = load_workload(args.workload)
    planner = TolerancePlanner(workload.qoi_analyzer())
    plan = planner.plan(args.tolerance, norm=args.norm, quant_fraction=args.fraction)
    print(plan.describe())
    print(f"compression budget: {plan.compression_budget:.4e}")
    return 0


def _cmd_pipeline(args) -> int:
    workload = load_workload(args.workload)
    planner = TolerancePlanner(workload.qoi_analyzer())
    plan = planner.plan(args.tolerance, norm=args.norm, quant_fraction=args.fraction)
    pipeline = InferencePipeline(workload.qoi_model(), get_compressor(args.codec), plan)
    if workload.name == "eurosat":
        reshape = lambda f: f.astype(np.float32)  # noqa: E731
    else:
        reshape = None
    result = pipeline.execute(workload.dataset.fields, samples_from_fields=reshape)
    achieved = result.qoi_error(args.norm, relative=False)
    print(plan.describe())
    print(f"compression ratio: {result.compression_ratio:.2f}x")
    print(f"achieved QoI error: {achieved:.4e} (tolerance {args.tolerance:.1e})")
    if achieved > args.tolerance:
        print("TOLERANCE VIOLATED", file=sys.stderr)
        return 1
    print("tolerance honoured")
    return 0


def _cmd_compress(args) -> int:
    array = np.load(args.input)
    codec = get_compressor(args.codec)
    blob = codec.compress(array, args.tolerance, ErrorBoundMode(args.mode))
    with open(args.out, "wb") as handle:
        handle.write(blob_to_bytes(blob))
    print(
        f"{args.input}: {array.nbytes} B -> {blob.nbytes} B "
        f"(ratio {blob.compression_ratio:.2f}x, codec {blob.codec}, "
        f"{blob.mode.value} tol {blob.tolerance:.2e})"
    )
    return 0


def _cmd_decompress(args) -> int:
    with open(args.input, "rb") as handle:
        blob = blob_from_bytes(handle.read())
    codec = get_compressor(blob.codec)
    array = codec.decompress(blob)
    np.save(args.out, array)
    print(f"{args.input} -> {args.out} shape={array.shape} dtype={array.dtype}")
    return 0


def _cmd_store(args) -> int:
    store = DatasetStore(args.directory)
    rows = store.summary()
    if not rows:
        print(f"{args.directory}: empty store")
        return 0
    print(f"{'name':20s} {'codec':6s} {'shape':>16s} {'tol':>10s} {'ratio':>7s}")
    for name, codec, shape, tolerance, ratio in rows:
        print(f"{name:20s} {codec:6s} {str(shape):>16s} {tolerance:10.2e} {ratio:7.2f}")
    return 0


_HANDLERS = {
    "analyze": _cmd_analyze,
    "plan": _cmd_plan,
    "pipeline": _cmd_pipeline,
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "store": _cmd_store,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error ({type(exc).__name__}): {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
