"""Bit-level I/O used by the entropy coding stages of the codecs.

Writing is vectorized with numpy (codes are expanded into a flat bit array
and packed with ``np.packbits``); reading keeps a cheap cursor-based
interface for the canonical-Huffman decoder.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CompressionError

__all__ = ["pack_codes", "BitReader"]

#: descending powers of two: _POW2[64 - k:] is [2^(k-1), ..., 2, 1], so a
#: dot product against it assembles a k-bit big-endian integer in one
#: vectorized pass instead of a per-bit Python loop.
_POW2 = np.left_shift(np.uint64(1), np.arange(63, -1, -1, dtype=np.uint64))


def pack_codes(values: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Concatenate variable-length big-endian codes into packed bytes.

    Parameters
    ----------
    values:
        Non-negative code values, one per symbol.
    lengths:
        Bit length of each code (1..32).

    Returns
    -------
    (payload, total_bits):
        Packed bytes (zero padded to a byte boundary) and the exact number
        of meaningful bits.
    """
    values = np.asarray(values, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.shape != lengths.shape:
        raise CompressionError("values and lengths must have the same shape")
    if values.size == 0:
        return b"", 0
    if lengths.min() < 1 or lengths.max() > 32:
        raise CompressionError("code lengths must lie in [1, 32]")
    ends = np.cumsum(lengths)
    starts = ends - lengths
    total_bits = int(ends[-1])
    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max())
    # One vectorized pass per bit position within a code (MSB first).
    for j in range(max_len):
        active = lengths > j
        shift = (lengths[active] - 1 - j).astype(np.uint64)
        bits[starts[active] + j] = (values[active] >> shift) & np.uint64(1)
    return np.packbits(bits).tobytes(), total_bits


class BitReader:
    """Sequential MSB-first bit reader over packed bytes."""

    def __init__(self, payload: bytes, total_bits: int) -> None:
        self._bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        if total_bits > self._bits.size:
            raise CompressionError(
                f"bitstream declares {total_bits} bits but payload has {self._bits.size}"
            )
        self.total_bits = total_bits
        self.position = 0

    def read(self, n_bits: int) -> int:
        """Read ``n_bits`` as an unsigned big-endian integer."""
        end = self.position + n_bits
        if end > self.total_bits:
            raise CompressionError("bitstream exhausted")
        chunk = self._bits[self.position : end]
        self.position = end
        if n_bits == 0:
            return 0
        if n_bits > 64:
            # Beyond uint64 the dot product would overflow; assemble with
            # the scalar loop (no caller reads codes this wide).
            value = 0
            for bit in chunk:
                value = (value << 1) | int(bit)
            return value
        return int(chunk.astype(np.uint64) @ _POW2[64 - n_bits :])

    def peek16(self) -> int:
        """Peek up to 16 bits (zero padded past the end) without advancing."""
        end = min(self.position + 16, self._bits.size)
        chunk = self._bits[self.position : end]
        if chunk.size == 0:
            return 0
        value = int(chunk.astype(np.uint64) @ _POW2[64 - chunk.size :])
        return value << (16 - chunk.size)

    def _read_reference(self, n_bits: int) -> int:
        """Scalar ``read`` kept as ground truth for property tests."""
        end = self.position + n_bits
        if end > self.total_bits:
            raise CompressionError("bitstream exhausted")
        chunk = self._bits[self.position : end]
        self.position = end
        value = 0
        for bit in chunk:
            value = (value << 1) | int(bit)
        return value

    def _peek16_reference(self) -> int:
        """Scalar ``peek16`` kept as ground truth for property tests."""
        end = min(self.position + 16, self._bits.size)
        chunk = self._bits[self.position : end]
        value = 0
        for bit in chunk:
            value = (value << 1) | int(bit)
        return value << (16 - len(chunk))

    def skip(self, n_bits: int) -> None:
        self.position += n_bits
        if self.position > self.total_bits:
            raise CompressionError("bitstream exhausted")

    @property
    def remaining(self) -> int:
        return self.total_bits - self.position
